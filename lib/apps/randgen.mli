(** Random FPPN workload generator for stress tests, benchmark sweeps
    and differential fuzzing.

    Generated networks always satisfy Def. 2.1 (FP DAG covering every
    channel pair) and the Sec. III-A scheduling subclass (every sporadic
    process has a single periodic user of no larger period, and a
    deadline exceeding the user period).  Process bodies are generic:
    read every input channel, combine with the invocation index, write
    every output channel — enough to exercise determinism checks.

    The drawn topology is exposed as a {!spec} value with fine-grained
    mutation hooks (flip a functional-priority edge, drop a channel or a
    process), so the fuzzer can inject priority-order bugs into a
    system-under-test copy and shrink failing workloads structurally
    without re-rolling the PRNG. *)

type params = {
  seed : int;
  n_periodic : int;  (** >= 1 *)
  n_sporadic : int;
  periods : int list;  (** candidate periods (ms); keep their lcm small *)
  channel_density : float;
      (** probability that an ordered periodic pair gets a channel *)
  max_burst : int;  (** sporadic burst drawn from [1..max_burst] *)
}

val default_params : params

(** {1 Workload topology} *)

type chan_spec = {
  cw : int;  (** writer periodic index *)
  cr : int;  (** reader periodic index *)
  fifo : bool;  (** FIFO channel, else blackboard *)
  rev_fp : bool;
      (** reversed functional priority: the FP edge runs reader →
          writer instead of the default writer → reader *)
  no_fp : bool;
      (** the channel declares {e no} FP edge at all — a deliberate
          Def. 2.1 violation ({!build} returns [Error]) used to seed
          known determinism races for the static analyzer's tests *)
}

type sporadic_spec = {
  sp_name : string;
  sp_user : int;  (** periodic index of the user [u(p)] *)
  sp_burst : int;
  sp_min_period : int;  (** [T_p], a multiple of the user's period *)
  sp_higher : bool;  (** FP edge sporadic → user (else user → sporadic) *)
}

type spec = {
  label : string;  (** network name *)
  periods : int array;  (** period of periodic process [P<i>] *)
  chans : chan_spec list;
  sporadics : sporadic_spec list;
}

val periodic_name : int -> string
(** ["P<i>"], the name {!build} gives periodic process [i]. *)

val channel_name : string -> string -> string
(** [channel_name w r] is ["ch_<w>_<r>"], the name {!build} gives the
    channel from writer [w] to reader [r]. *)

val spec_of_params : params -> spec
(** Deterministic in [params.seed]; mutation-free builds of the result
    equal {!network}[ params]. *)

val wide_spec : ?n:int -> ?pairs:int -> unit -> spec
(** [wide_spec ~n ~pairs ()] (defaults 16500 / 64): a deliberately
    {e wide} network — [n] periodic processes, all with period 100, so
    the derived graph has exactly [n] jobs per hyperperiod (one each),
    plus [pairs] disjoint blackboard channel pairs [P2i -> P2i+1] with
    the default direct priority edge.  Built directly (no PRNG, no
    O(n^2) density loop), it is the stress shape for the sharded
    engine's static certification: >16384 jobs while every channel pair
    stays trivially [Ordered]. *)

val build : spec -> (Fppn.Network.t, string) result
(** [Error] when a mutation broke well-formedness (e.g. a flipped FP
    edge closing a priority cycle). *)

val build_exn : spec -> Fppn.Network.t
(** @raise Invalid_argument on ill-formed specs. *)

val spec_processes : spec -> int
(** Total process count (periodic + sporadic). *)

(** {1 Mutation hooks}

    All return [None] when the referenced element does not exist (or,
    for {!drop_periodic}, when the last periodic process would vanish).
    Flips preserve process and channel names, so channel histories of a
    mutated network remain name-comparable with the original's. *)

val flip_channel_fp : spec -> writer:int -> reader:int -> spec option
val flip_sporadic_fp : spec -> string -> spec option

val drop_channel_fp : spec -> writer:int -> reader:int -> spec option
(** Marks the channel [no_fp]: its FP edge disappears while the channel
    stays, breaking Def. 2.1 on that accessor pair.  [None] if there is
    no such channel or its edge is already dropped. *)

val seed_race : Rt_util.Prng.t -> spec -> (spec * (int * int)) option
(** Seeds a {e known} determinism race: picks (uniformly, via the given
    generator) a channel whose writer/reader pair becomes unordered even
    transitively once its own FP edge is dropped, and drops that edge.
    Returns the mutated spec and the offending [(writer, reader)]
    periodic indices — a labeled positive for the race detector.  [None]
    when every channel pair stays transitively ordered (or there are no
    channels). *)

val drop_channel : spec -> writer:int -> reader:int -> spec option
val drop_sporadic : spec -> string -> spec option

val drop_periodic : spec -> int -> spec option
(** Removes periodic process [i], its incident channels and the
    sporadics it serves as user for; higher indices shift down. *)

(** {1 Whole-network convenience API} *)

val network : params -> Fppn.Network.t
(** Deterministic in [params.seed]. *)

val wcet : scale:Rt_util.Rat.t -> Taskgraph.Derive.wcet_map -> Fppn.Network.t -> Taskgraph.Derive.wcet_map
(** [wcet ~scale fallback net] assigns each process
    [scale · T_p], falling back to [fallback] for unknown names. *)

val sporadic_names : Fppn.Network.t -> string list

val random_traces :
  seed:int ->
  horizon:Rt_util.Rat.t ->
  density:float ->
  Fppn.Network.t ->
  (string * Rt_util.Rat.t list) list
(** Valid random event traces for all sporadic processes. *)
