module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

type params = {
  seed : int;
  n_periodic : int;
  n_sporadic : int;
  periods : int list;
  channel_density : float;
  max_burst : int;
}

let default_params =
  {
    seed = 42;
    n_periodic = 8;
    n_sporadic = 3;
    periods = [ 100; 200; 400; 800 ];
    channel_density = 0.3;
    max_burst = 2;
  }

(* --- explicit workload topology (mutation surface for the fuzzer) ------ *)

type chan_spec = { cw : int; cr : int; fifo : bool; rev_fp : bool; no_fp : bool }

type sporadic_spec = {
  sp_name : string;
  sp_user : int;
  sp_burst : int;
  sp_min_period : int;
  sp_higher : bool;
}

type spec = {
  label : string;
  periods : int array;
  chans : chan_spec list;
  sporadics : sporadic_spec list;
}

let periodic_name i = Printf.sprintf "P%d" i
let sporadic_name i = Printf.sprintf "S%d" i
let channel_name w r = Printf.sprintf "ch_%s_%s" w r

let spec_of_params p =
  if p.n_periodic < 1 then invalid_arg "Randgen.network: need >= 1 periodic";
  if p.periods = [] then invalid_arg "Randgen.network: empty period menu";
  let prng = Prng.create p.seed in
  let periods =
    Array.init p.n_periodic (fun _ -> Prng.pick prng p.periods)
  in
  (* channels between forward-ordered periodic pairs *)
  let chans = ref [] in
  for i = 0 to p.n_periodic - 1 do
    for j = i + 1 to p.n_periodic - 1 do
      if Prng.float prng 1.0 < p.channel_density then
        chans :=
          { cw = i; cr = j; fifo = Prng.bool prng; rev_fp = false; no_fp = false }
          :: !chans
    done
  done;
  let chans = List.rev !chans in
  (* sporadic processes: user, burst, min period (multiple of the user's) *)
  let sporadics =
    List.init p.n_sporadic (fun s ->
        let user = Prng.int prng p.n_periodic in
        let burst = Prng.int_in prng 1 p.max_burst in
        let factor = Prng.int_in prng 1 3 in
        let higher = Prng.bool prng in
        {
          sp_name = sporadic_name s;
          sp_user = user;
          sp_burst = burst;
          sp_min_period = periods.(user) * factor;
          sp_higher = higher;
        })
  in
  { label = Printf.sprintf "random%d" p.seed; periods; chans; sporadics }

let wide_spec ?(n = 16500) ?(pairs = 64) () =
  if n < 1 then invalid_arg "Randgen.wide_spec: need >= 1 periodic";
  let pairs = max 0 (min pairs (n / 2)) in
  (* hand-built (no PRNG, no O(n^2) draw loop): n one-job-per-hyperperiod
     processes plus [pairs] disjoint directly-related channel pairs *)
  let chans =
    List.init pairs (fun i ->
        { cw = 2 * i; cr = (2 * i) + 1; fifo = false; rev_fp = false; no_fp = false })
  in
  {
    label = Printf.sprintf "wide%d" n;
    periods = Array.make n 100;
    chans;
    sporadics = [];
  }

(* --- mutation hooks ---------------------------------------------------- *)

let flip_channel_fp spec ~writer ~reader =
  let hit = ref false in
  let chans =
    List.map
      (fun c ->
        if c.cw = writer && c.cr = reader then begin
          hit := true;
          { c with rev_fp = not c.rev_fp }
        end
        else c)
      spec.chans
  in
  if !hit then Some { spec with chans } else None

let flip_sporadic_fp spec name =
  let hit = ref false in
  let sporadics =
    List.map
      (fun s ->
        if s.sp_name = name then begin
          hit := true;
          { s with sp_higher = not s.sp_higher }
        end
        else s)
      spec.sporadics
  in
  if !hit then Some { spec with sporadics } else None

let drop_channel_fp spec ~writer ~reader =
  let hit = ref false in
  let chans =
    List.map
      (fun c ->
        if c.cw = writer && c.cr = reader && not c.no_fp then begin
          hit := true;
          { c with no_fp = true }
        end
        else c)
      spec.chans
  in
  if !hit then Some { spec with chans } else None

(* Node indices of the FP graph over a spec: periodic [i] is node [i],
   sporadic [j] is node [n_periodic + j]. *)
let spec_fp_graph spec =
  let n_periodic = Array.length spec.periods in
  let g =
    Rt_util.Digraph.create (n_periodic + List.length spec.sporadics)
  in
  List.iter
    (fun c ->
      if not c.no_fp then
        if c.rev_fp then Rt_util.Digraph.add_edge g c.cr c.cw
        else Rt_util.Digraph.add_edge g c.cw c.cr)
    spec.chans;
  List.iteri
    (fun j s ->
      if s.sp_higher then Rt_util.Digraph.add_edge g (n_periodic + j) s.sp_user
      else Rt_util.Digraph.add_edge g s.sp_user (n_periodic + j))
    spec.sporadics;
  g

let seed_race prng spec =
  let g = spec_fp_graph spec in
  let candidates =
    List.filter (fun c -> not c.no_fp) spec.chans |> Array.of_list
  in
  Prng.shuffle prng candidates;
  let unordered_without_edge c =
    let hi, lo = if c.rev_fp then (c.cr, c.cw) else (c.cw, c.cr) in
    Rt_util.Digraph.remove_edge g hi lo;
    let ordered =
      Rt_util.Digraph.path_exists g c.cw c.cr
      || Rt_util.Digraph.path_exists g c.cr c.cw
    in
    Rt_util.Digraph.add_edge g hi lo;
    not ordered
  in
  let rec pick i =
    if i >= Array.length candidates then None
    else
      let c = candidates.(i) in
      if unordered_without_edge c then
        match drop_channel_fp spec ~writer:c.cw ~reader:c.cr with
        | Some spec' -> Some (spec', (c.cw, c.cr))
        | None -> pick (i + 1)
      else pick (i + 1)
  in
  pick 0

let drop_channel spec ~writer ~reader =
  let chans =
    List.filter (fun c -> not (c.cw = writer && c.cr = reader)) spec.chans
  in
  if List.length chans < List.length spec.chans then Some { spec with chans }
  else None

let drop_sporadic spec name =
  let sporadics = List.filter (fun s -> s.sp_name <> name) spec.sporadics in
  if List.length sporadics < List.length spec.sporadics then
    Some { spec with sporadics }
  else None

let drop_periodic spec i =
  let n = Array.length spec.periods in
  if i < 0 || i >= n || n <= 1 then None
  else
    let remap j = if j > i then j - 1 else j in
    let periods =
      Array.init (n - 1) (fun j -> spec.periods.(if j >= i then j + 1 else j))
    in
    let chans =
      List.filter_map
        (fun c ->
          if c.cw = i || c.cr = i then None
          else Some { c with cw = remap c.cw; cr = remap c.cr })
        spec.chans
    in
    let sporadics =
      List.filter_map
        (fun s ->
          if s.sp_user = i then None else Some { s with sp_user = remap s.sp_user })
        spec.sporadics
    in
    Some { spec with periods; chans; sporadics }

let spec_processes spec = Array.length spec.periods + List.length spec.sporadics

(* Generic body: fold all inputs with the job index, write everywhere. *)
let generic_body ~ins ~outs (ctx : Process.job_ctx) =
  let combine acc c =
    match ctx.Process.read c with
    | V.Absent -> acc
    | V.Int n -> acc + n
    | V.Float f -> acc + int_of_float f
    | _ -> acc + 1
  in
  let acc = List.fold_left combine ctx.Process.job_index ins in
  List.iter (fun c -> ctx.Process.write c (V.Int acc)) outs

(* The same behavior as a Def. 2.2 automaton, so random workloads also
   exercise the formal-automaton execution path. *)
let generic_automaton ~ins ~outs =
  let module A = Fppn.Automaton in
  let read_locs = List.mapi (fun i c -> (Printf.sprintf "r%d" i, c)) ins in
  let sum_expr =
    List.fold_left
      (fun acc (v, _) ->
        (* absent reads contribute 0 via a guarded helper variable *)
        A.Add (acc, A.Var (v ^ "_n")))
      (A.Add (A.Var "k", A.Const (V.Int 0)))
      read_locs
  in
  let transitions =
    (* entry: bump the job counter *)
    [ {
        A.src = "start";
        guard = A.Const (V.Bool true);
        actions = [ A.Assign ("k", A.Add (A.Var "k", A.Const (V.Int 1))) ];
        dst = (match read_locs with [] -> "emit" | (l, _) :: _ -> l);
      } ]
    @ List.concat
        (List.mapi
           (fun i (l, c) ->
             let next =
               match List.nth_opt read_locs (i + 1) with
               | Some (l', _) -> l'
               | None -> "emit"
             in
             [
               {
                 A.src = l;
                 guard = A.Const (V.Bool true);
                 actions = [ A.Read (l ^ "_raw", c) ];
                 dst = l ^ "_norm";
               };
               {
                 A.src = l ^ "_norm";
                 guard = A.Avail (l ^ "_raw");
                 actions = [ A.Assign (l ^ "_n", A.Var (l ^ "_raw")) ];
                 dst = next;
               };
               {
                 A.src = l ^ "_norm";
                 guard = A.Not (A.Avail (l ^ "_raw"));
                 actions = [ A.Assign (l ^ "_n", A.Const (V.Int 0)) ];
                 dst = next;
               };
             ])
           read_locs)
    @ [ {
          A.src = "emit";
          guard = A.Const (V.Bool true);
          actions = List.map (fun c -> A.Write (c, sum_expr)) outs;
          dst = "start";
        } ]
  in
  let vars =
    ("k", V.Int 0)
    :: List.concat_map
         (fun (l, _) -> [ (l ^ "_raw", V.Absent); (l ^ "_n", V.Int 0) ])
         read_locs
  in
  Process.Automaton (A.make ~initial:"start" ~vars ~transitions)

let build spec =
  let n_periodic = Array.length spec.periods in
  let b = Network.Builder.create spec.label in
  (* in/out channel names per process, to instantiate the generic body *)
  let ins = Hashtbl.create 16 and outs = Hashtbl.create 16 in
  let push tbl key v =
    let prev = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (prev @ [ v ])
  in
  List.iter
    (fun c ->
      let w = periodic_name c.cw and r = periodic_name c.cr in
      push outs w (channel_name w r);
      push ins r (channel_name w r))
    spec.chans;
  List.iter
    (fun s ->
      let u = periodic_name s.sp_user in
      push outs s.sp_name (channel_name s.sp_name u);
      push ins u (channel_name s.sp_name u))
    spec.sporadics;
  (* every third process gets the automaton encoding of the behavior,
     so random workloads also cover the Def. 2.2 execution path *)
  let behavior_of idx name =
    let ins = try Hashtbl.find ins name with Not_found -> [] in
    let outs = try Hashtbl.find outs name with Not_found -> [] in
    if idx mod 3 = 2 then generic_automaton ~ins ~outs
    else Process.Native (generic_body ~ins ~outs)
  in
  for i = 0 to n_periodic - 1 do
    let name = periodic_name i in
    Network.Builder.add_process b
      (Process.make ~name
         ~event:
           (Event.periodic
              ~period:(Rat.of_int spec.periods.(i))
              ~deadline:(Rat.of_int spec.periods.(i))
              ())
         (behavior_of i name))
  done;
  List.iteri
    (fun i s ->
      Network.Builder.add_process b
        (Process.make ~name:s.sp_name
           ~event:
             (Event.sporadic ~burst:s.sp_burst
                ~min_period:(Rat.of_int s.sp_min_period)
                ~deadline:(Rat.of_int (2 * s.sp_min_period))
                ())
           (behavior_of (i + 1) s.sp_name)))
    spec.sporadics;
  List.iter
    (fun c ->
      let w = periodic_name c.cw and r = periodic_name c.cr in
      Network.Builder.add_channel b
        ~kind:(if c.fifo then Fppn.Channel.Fifo else Fppn.Channel.Blackboard)
        ~writer:w ~reader:r (channel_name w r);
      if c.no_fp then ()
      else if c.rev_fp then Network.Builder.add_priority b r w
      else Network.Builder.add_priority b w r)
    spec.chans;
  List.iter
    (fun s ->
      let u = periodic_name s.sp_user in
      Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard
        ~writer:s.sp_name ~reader:u
        (channel_name s.sp_name u);
      if s.sp_higher then Network.Builder.add_priority b s.sp_name u
      else Network.Builder.add_priority b u s.sp_name)
    spec.sporadics;
  match Network.Builder.finish b with
  | Ok net -> Ok net
  | Error errs ->
    Error
      (String.concat "; "
         (List.map (Format.asprintf "%a" Network.pp_error) errs))

let build_exn spec =
  match build spec with Ok net -> net | Error msg -> invalid_arg msg

let network p = build_exn (spec_of_params p)

let wcet ~scale fallback net name =
  match
    (try Some (Network.find net name) with Not_found -> None)
  with
  | Some p -> Rat.mul scale (Process.period (Network.process net p))
  | None -> fallback name

let sporadic_names net =
  Array.to_list (Network.processes net)
  |> List.filter Process.is_sporadic
  |> List.map Process.name

let random_traces ~seed ~horizon ~density net =
  let prng = Prng.create seed in
  List.map
    (fun name ->
      let p = Network.find net name in
      let ev = Process.event (Network.process net p) in
      (name, Event.random_sporadic_trace ev (Prng.split prng) ~horizon ~density))
    (sporadic_names net)
