(** A network purpose-built for the perf harness's allocation gate:
    four periodic processes whose job bodies perform no channel access
    and construct no value.  Every byte allocated while simulating a
    steady frame is therefore engine overhead, which the gate requires
    to be zero. *)

val network : unit -> Fppn.Network.t

val wcet : Taskgraph.Derive.wcet_map
(** 20 ms for every process (fits two per 100 ms period per core). *)
