module Rat = Rt_util.Rat
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

(* Four periodic processes whose bodies do nothing at all: no channel
   access, no value construction, no closure.  Any byte the engine
   allocates while simulating a steady frame of this network is engine
   overhead, which the perf harness's allocation gate holds to zero. *)

let body (_ : Process.job_ctx) = ()

let network () =
  let b = Network.Builder.create "alloc_probe" in
  let period = Rat.of_int 100 in
  let add name =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:(Event.periodic ~period ~deadline:period ())
         (Process.Native body))
  in
  add "P0";
  add "P1";
  add "P2";
  add "P3";
  Network.Builder.add_priority b "P0" "P1";
  Network.Builder.add_priority b "P2" "P3";
  Network.Builder.finish_exn b

let wcet = Taskgraph.Derive.const_wcet (Rat.of_int 20)
