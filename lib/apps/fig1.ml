module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

let ch_input_to_filter_a = "inA_to_fA"
let ch_input_to_filter_b = "inA_to_fB"
let ch_filter_a_to_norm = "fA_to_norm"
let ch_norm_to_filter_a = "gain"
let ch_filter_a_to_output = "fA_to_outA"
let ch_filter_b_to_output = "fB_to_outB"
let ch_coef_to_filter_b = "coef"

let ms n = Rat.of_int n

let periodic period = Event.periodic ~period:(ms period) ~deadline:(ms period) ()

(* InputA: fetch the k-th external sample (or synthesize one) and fan it
   out to both filters. *)
let input_a_body (ctx : Process.job_ctx) =
  let sample =
    match ctx.Process.read "in_samples" with
    | V.Absent -> V.Float (float_of_int ctx.Process.job_index)
    | v -> v
  in
  ctx.Process.write ch_input_to_filter_a sample;
  ctx.Process.write ch_input_to_filter_b sample

(* FilterA runs at twice the input rate: when no fresh sample is
   available it re-filters the last one (classic sample-and-hold). *)
let filter_a_body (ctx : Process.job_ctx) =
  let x =
    match ctx.Process.read ch_input_to_filter_a with
    | V.Absent -> ctx.Process.get "held"
    | v ->
      ctx.Process.set "held" v;
      v
  in
  let gain =
    match ctx.Process.read ch_norm_to_filter_a with
    | V.Absent -> 1.0
    | v -> V.to_float v
  in
  let y = V.Float (V.to_float x *. gain) in
  ctx.Process.write ch_filter_a_to_norm y;
  ctx.Process.write ch_filter_a_to_output y

(* NormA: automatic gain control feeding back to FilterA.  FilterA runs
   at twice NormA's rate, so the job drains the FIFO and uses the most
   recent sample (keeping the queue bounded). *)
(* top-level drains: a local [let rec] would close over [ctx] and
   allocate on every job *)
let rec drain_norm (ctx : Process.job_ctx) last =
  match ctx.Process.read ch_filter_a_to_norm with
  | V.Absent -> last
  | v -> drain_norm ctx v

let norm_a_body (ctx : Process.job_ctx) =
  match drain_norm ctx V.Absent with
  | V.Absent -> ()
  | v ->
    let gain = 1.0 /. (1.0 +. Float.abs (V.to_float v)) in
    ctx.Process.write ch_norm_to_filter_a (V.Float gain)

let filter_b_body (ctx : Process.job_ctx) =
  match ctx.Process.read ch_input_to_filter_b with
  | V.Absent -> ()
  | x ->
    let coef =
      match ctx.Process.read ch_coef_to_filter_b with
      | V.Absent -> 1.0
      | v -> V.to_float v
    in
    ctx.Process.write ch_filter_b_to_output (V.Float (V.to_float x *. coef))

let coef_b_body (ctx : Process.job_ctx) =
  let coef =
    match ctx.Process.read "coef_commands" with
    | V.Absent -> V.Float (0.5 +. (0.1 *. float_of_int ctx.Process.job_index))
    | v -> v
  in
  ctx.Process.write ch_coef_to_filter_b coef

(* OutputA: emits every sample FilterA produced since the last job (two
   per period in steady state), keeping the FIFO bounded. *)
let rec drain_out_a (ctx : Process.job_ctx) =
  match ctx.Process.read ch_filter_a_to_output with
  | V.Absent -> ()
  | v ->
    ctx.Process.write "out_a" v;
    drain_out_a ctx

let output_a_body (ctx : Process.job_ctx) = drain_out_a ctx

let output_b_body (ctx : Process.job_ctx) =
  ctx.Process.write "out_b" (ctx.Process.read ch_filter_b_to_output)

let network () =
  let b = Network.Builder.create "fig1" in
  let add name event body locals =
    Network.Builder.add_process b
      (Process.make ~locals ~name ~event (Process.Native body))
  in
  add "InputA" (periodic 200) input_a_body [];
  add "FilterA" (periodic 100) filter_a_body [ ("held", V.Float 0.0) ];
  add "FilterB" (periodic 200) filter_b_body [];
  add "OutputA" (periodic 200) output_a_body [];
  add "NormA" (periodic 200) norm_a_body [];
  add "OutputB" (periodic 100) output_b_body [];
  add "CoefB"
    (Event.sporadic ~burst:2 ~min_period:(ms 700) ~deadline:(ms 700) ())
    coef_b_body [];
  let fifo = Fppn.Channel.Fifo and bb = Fppn.Channel.Blackboard in
  Network.Builder.add_channel b ~kind:fifo ~writer:"InputA" ~reader:"FilterA"
    ch_input_to_filter_a;
  Network.Builder.add_channel b ~kind:fifo ~writer:"InputA" ~reader:"FilterB"
    ch_input_to_filter_b;
  Network.Builder.add_channel b ~kind:fifo ~writer:"FilterA" ~reader:"NormA"
    ch_filter_a_to_norm;
  Network.Builder.add_channel b ~kind:bb ~writer:"NormA" ~reader:"FilterA"
    ch_norm_to_filter_a;
  Network.Builder.add_channel b ~kind:fifo ~writer:"FilterA" ~reader:"OutputA"
    ch_filter_a_to_output;
  Network.Builder.add_channel b ~kind:fifo ~writer:"FilterB" ~reader:"OutputB"
    ch_filter_b_to_output;
  Network.Builder.add_channel b ~kind:bb ~writer:"CoefB" ~reader:"FilterB"
    ch_coef_to_filter_b;
  (* functional priorities; InputA → NormA is the deliberately redundant
     edge discussed under Fig. 3 *)
  Network.Builder.add_priority b "InputA" "FilterA";
  Network.Builder.add_priority b "InputA" "FilterB";
  Network.Builder.add_priority b "InputA" "NormA";
  Network.Builder.add_priority b "FilterA" "NormA";
  Network.Builder.add_priority b "FilterA" "OutputA";
  Network.Builder.add_priority b "FilterB" "OutputB";
  Network.Builder.add_priority b "CoefB" "FilterB";
  Network.Builder.add_input b ~owner:"InputA" "in_samples";
  Network.Builder.add_input b ~owner:"CoefB" "coef_commands";
  Network.Builder.add_output b ~owner:"OutputA" "out_a";
  Network.Builder.add_output b ~owner:"OutputB" "out_b";
  Network.Builder.finish_exn b

let wcet = Taskgraph.Derive.const_wcet (Rat.of_int 25)

let input_feed ~samples =
  let sample k = V.Float (sin (float_of_int k)) in
  let coef k = V.Float (0.25 +. (0.05 *. float_of_int k)) in
  Fppn.Netstate.feed_of_list
    [
      ("in_samples", List.init samples (fun i -> sample (i + 1)));
      ("coef_commands", List.init samples (fun i -> coef (i + 1)));
    ]
