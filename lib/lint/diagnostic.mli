(** Structured, source-mapped diagnostics for the static analyzer.

    Every finding carries a {e stable} code ([FPPN000..FPPN062]) so
    tooling can filter, baseline and diff lint output across versions;
    codes are never renumbered, only added.  A diagnostic is anchored
    either to a source position (when the network came from a [.fppn]
    file) or to a named network element (process, channel or priority
    pair) when only the in-memory [Fppn.Network.t] is available. *)

type severity = Error | Warning | Info

type code =
  | Source_error                (* FPPN000: lexing/parsing/elaboration *)
  | Unknown_process_ref         (* FPPN001 *)
  | Duplicate_process_decl      (* FPPN002 *)
  | Self_channel_decl           (* FPPN003 *)
  | Duplicate_channel_decl      (* FPPN004 *)
  | Determinism_race            (* FPPN010 *)
  | Transitive_only_order       (* FPPN011 *)
  | Priority_cycle_found        (* FPPN020 *)
  | Redundant_priority_edge     (* FPPN021 *)
  | Counter_dataflow_priority   (* FPPN022 *)
  | Sporadic_without_user       (* FPPN030 *)
  | Sporadic_ambiguous_user     (* FPPN031 *)
  | Sporadic_user_is_sporadic   (* FPPN032 *)
  | User_period_exceeds         (* FPPN033 *)
  | Channel_never_read          (* FPPN040 *)
  | Channel_never_written       (* FPPN041 *)
  | Fifo_rate_mismatch          (* FPPN042 *)
  | Deadline_exceeds_period     (* FPPN050 *)
  | Wcet_exceeds_deadline       (* FPPN051 *)
  | Utilization_bound           (* FPPN052 *)
  | Unordered_channel_pair      (* FPPN060: certification, Interference *)
  | Sporadic_shard_hazard       (* FPPN061 *)
  | Partition_cut_hotspot       (* FPPN062 *)

val code_id : code -> string
(** The stable identifier, e.g. ["FPPN010"]. *)

val default_severity : code -> severity

val all_codes : (code * severity * string) list
(** Every code with its default severity and a one-line description —
    the source of the README diagnostic table. *)

type t = {
  code : code;
  severity : severity;
  subject : string;
      (** the network element, e.g. ["channel raw"] or ["process S0"];
          pair findings use ["P ./ Q"] (the paper's conflict relation) *)
  message : string;
  file : string option;
  pos : Fppn_lang.Ast.pos option;
}

val make :
  ?severity:severity ->
  ?file:string ->
  ?pos:Fppn_lang.Ast.pos ->
  code ->
  subject:string ->
  string ->
  t
(** [severity] defaults to {!default_severity} of the code. *)

val severity_to_string : severity -> string
val is_error : t -> bool
val has_errors : t list -> bool

val counts : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val sort : t list -> t list
(** Canonical order: source position first (unpositioned findings
    last), then code, subject, message.  Renderers expect this order so
    output is stable across runs. *)

val fingerprint : t list -> (string * string) list
(** Sorted, deduplicated [(code_id, subject)] pairs — the shape of the
    lint output with messages and positions erased.  Two networks whose
    fingerprints differ are statically distinguishable; the fuzz
    subsystem uses this to prove sabotage injections visible without
    running an engine. *)

val pp : Format.formatter -> t -> unit
(** One line, no trailing newline:
    [file:line:col: severity CODE (subject): message]. *)

val pp_list : Format.formatter -> t list -> unit
(** All diagnostics (in {!sort} order) followed by a summary line. *)

val to_json : t list -> string
(** Schema (stable, version 1):
    [{"version":1,"errors":E,"warnings":W,"infos":I,"diagnostics":
    [{"code":..,"severity":..,"subject":..,"message":..,"file":..,
    "line":..,"col":..},..]}] with [null] for absent file/position. *)
