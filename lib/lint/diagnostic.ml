type severity = Error | Warning | Info

type code =
  | Source_error
  | Unknown_process_ref
  | Duplicate_process_decl
  | Self_channel_decl
  | Duplicate_channel_decl
  | Determinism_race
  | Transitive_only_order
  | Priority_cycle_found
  | Redundant_priority_edge
  | Counter_dataflow_priority
  | Sporadic_without_user
  | Sporadic_ambiguous_user
  | Sporadic_user_is_sporadic
  | User_period_exceeds
  | Channel_never_read
  | Channel_never_written
  | Fifo_rate_mismatch
  | Deadline_exceeds_period
  | Wcet_exceeds_deadline
  | Utilization_bound
  | Unordered_channel_pair
  | Sporadic_shard_hazard
  | Partition_cut_hotspot

let code_number = function
  | Source_error -> 0
  | Unknown_process_ref -> 1
  | Duplicate_process_decl -> 2
  | Self_channel_decl -> 3
  | Duplicate_channel_decl -> 4
  | Determinism_race -> 10
  | Transitive_only_order -> 11
  | Priority_cycle_found -> 20
  | Redundant_priority_edge -> 21
  | Counter_dataflow_priority -> 22
  | Sporadic_without_user -> 30
  | Sporadic_ambiguous_user -> 31
  | Sporadic_user_is_sporadic -> 32
  | User_period_exceeds -> 33
  | Channel_never_read -> 40
  | Channel_never_written -> 41
  | Fifo_rate_mismatch -> 42
  | Deadline_exceeds_period -> 50
  | Wcet_exceeds_deadline -> 51
  | Utilization_bound -> 52
  | Unordered_channel_pair -> 60
  | Sporadic_shard_hazard -> 61
  | Partition_cut_hotspot -> 62

let code_id c = Printf.sprintf "FPPN%03d" (code_number c)

let all_codes =
  [
    (Source_error, Error, "source file does not lex, parse or elaborate");
    (Unknown_process_ref, Error, "channel or priority references an undeclared process");
    (Duplicate_process_decl, Error, "process name declared more than once");
    (Self_channel_decl, Error, "channel connects a process to itself");
    (Duplicate_channel_decl, Error, "channel name declared more than once");
    ( Determinism_race,
      Error,
      "conflicting channel accessors can be invoked simultaneously but no \
       functional-priority path orders them (Prop. 2.1 precondition violated)" );
    ( Transitive_only_order,
      Warning,
      "channel pair ordered only transitively; Def. 2.1 requires a direct \
       priority edge" );
    (Priority_cycle_found, Error, "functional-priority relation has a cycle");
    ( Redundant_priority_edge,
      Warning,
      "priority edge is implied by a longer priority path and covers no channel" );
    ( Counter_dataflow_priority,
      Info,
      "priority edge runs against the channel's data-flow direction (reader \
       precedes writer: it reads previous-invocation data)" );
    (Sporadic_without_user, Error, "sporadic process has no periodic user (Sec. III-A)");
    (Sporadic_ambiguous_user, Error, "sporadic process has several users (Sec. III-A)");
    (Sporadic_user_is_sporadic, Error, "user of a sporadic process is itself sporadic");
    ( User_period_exceeds,
      Error,
      "user period exceeds the sporadic minimal inter-arrival time (T_u > T_p)" );
    (Channel_never_read, Warning, "channel is never read by its reader's behavior");
    (Channel_never_written, Warning, "channel is never written by its writer's behavior");
    ( Fifo_rate_mismatch,
      Warning,
      "FIFO writer jobs outnumber reader jobs per hyperperiod (may grow \
       without bound)" );
    (Deadline_exceeds_period, Warning, "periodic deadline exceeds the period (d > T)");
    (Wcet_exceeds_deadline, Error, "WCET exceeds the relative deadline (C > d)");
    ( Utilization_bound,
      Error,
      "total utilization exceeds the processor count (Prop. 3.1 necessary \
       bound); reported as info when no processor count is given" );
    ( Unordered_channel_pair,
      Error,
      "channel-sharing process pair has job invocations no precedence path \
       orders (witness-free pair named); the sharded engine cannot run this \
       network deterministically" );
    ( Sporadic_shard_hazard,
      Warning,
      "channel ordering cannot be certified statically (sporadic-stamp shard \
       hazard: the hyperperiod fold is undefined or beyond budget)" );
    ( Partition_cut_hotspot,
      Info,
      "channel accessors jointly exceed the balanced-partition share, so any \
       balanced cut into two or more shards must separate them" );
  ]

let default_severity c =
  let rec find = function
    | [] -> Error
    | (c', s, _) :: rest -> if c' = c then s else find rest
  in
  find all_codes

type t = {
  code : code;
  severity : severity;
  subject : string;
  message : string;
  file : string option;
  pos : Fppn_lang.Ast.pos option;
}

let make ?severity ?file ?pos code ~subject message =
  let severity =
    match severity with Some s -> s | None -> default_severity code
  in
  { code; severity; subject; message; file; pos }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let sort ds =
  let key d =
    let line, col =
      match d.pos with
      | Some p -> (p.Fppn_lang.Ast.line, p.Fppn_lang.Ast.col)
      | None -> (max_int, max_int)
    in
    (line, col, code_number d.code, d.subject, d.message)
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

let fingerprint ds =
  List.sort_uniq compare (List.map (fun d -> (code_id d.code, d.subject)) ds)

let pp ppf d =
  (match (d.file, d.pos) with
  | Some f, Some p ->
    Format.fprintf ppf "%s:%d:%d: " f p.Fppn_lang.Ast.line p.Fppn_lang.Ast.col
  | Some f, None -> Format.fprintf ppf "%s: " f
  | None, Some p ->
    Format.fprintf ppf "%d:%d: " p.Fppn_lang.Ast.line p.Fppn_lang.Ast.col
  | None, None -> ());
  Format.fprintf ppf "%s %s (%s): %s"
    (severity_to_string d.severity)
    (code_id d.code) d.subject d.message

let pp_list ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  let e, w, i = counts ds in
  Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@." e w i

(* JSON rendering goes through the shared Rt_util.Json writer; the
   output is pinned byte-for-byte by test_lint's schema-stability
   test, so field order below is load-bearing. *)

let to_json ds =
  let open Rt_util.Json in
  let ds = sort ds in
  let e, w, i = counts ds in
  let diag d =
    let line, col =
      match d.pos with
      | Some p -> (Int p.Fppn_lang.Ast.line, Int p.Fppn_lang.Ast.col)
      | None -> (Null, Null)
    in
    Obj
      [
        ("code", Str (code_id d.code));
        ("severity", Str (severity_to_string d.severity));
        ("subject", Str d.subject);
        ("message", Str d.message);
        ("file", (match d.file with None -> Null | Some f -> Str f));
        ("line", line);
        ("col", col);
      ]
  in
  to_string
    (Obj
       [
         ("version", Int 1);
         ("errors", Int e);
         ("warnings", Int w);
         ("infos", Int i);
         ("diagnostics", Arr (List.map diag ds));
       ])
