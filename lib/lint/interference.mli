(** Quotient-level static interference analysis (shardability core).

    [Engine.run_sharded] is deterministic only when every pair of jobs
    touching the same channel is ordered by a precedence path in the
    derived task graph.  PR 8 proved this per plan with an O(J^2)
    job-level transitive-closure bitset capped at 16384 jobs.  This
    module decides the same property {e statically at the process
    level}: the infinite job sequence folds over one hyperperiod into
    (process, phase) classes — at most [burst * H / T'] per process —
    and job-level reachability between two processes reduces to a
    single monotone sweep over those classes in the total invocation
    order [<J], giving O(P^2 * H / Tmin) instead of O(J^2).

    Key structural facts, mirroring {!Taskgraph.Derive}:

    - {b Directly related accessors are always ordered.}  If the
      transformed priority relation [fp'] has a direct edge between the
      writer and the reader (Def. 2.1), every pair of their jobs lies
      on a [<J] chain of precedence edges, so the verdict is
      [Ordered] with the two-process witness — no folding needed.
    - {b Transitively related accessors may still interleave.}  A pair
      ordered only through intermediate processes (lint code FPPN011)
      is decided exactly by the class sweep: either every job pair is
      bridged by intermediate jobs ([Ordered] with the witness process
      chain) or some concrete pair of invocations is incomparable
      ([Unordered] naming it).
    - {b Folding can be impossible.}  Sporadic processes whose server
      transformation is undefined (no unique periodic user with
      [T_u <= T_p], Sec. III-A), a transformed-priority cycle, a
      hyperperiod overflow, or a class count beyond
      {!max_sweep_classes} yield [Sporadic_hazard] — an abstention, not
      a proof of a race. *)

type offending = {
  off_proc_a : string;  (** process of the earlier, unordered job *)
  off_k_a : int;  (** its invocation count within the hyperperiod *)
  off_proc_b : string;
  off_k_b : int;
}
(** A concrete incomparable job pair: invocation [off_k_a] of
    [off_proc_a] and invocation [off_k_b] of [off_proc_b] share a
    channel but no precedence path orders them. *)

type verdict =
  | Ordered of string list
      (** every job pair is precedence-ordered; the witness is a chain
          of process names (writer-to-reader side first) in which
          consecutive processes are directly priority-related, along
          which the ordering paths run *)
  | Unordered of offending  (** statically proven order violation *)
  | Sporadic_hazard of string
      (** the quotient could not be built; the reason says why *)

type channel_verdict = {
  cv_channel : string;
  cv_writer : string;
  cv_reader : string;
  cv_verdict : verdict;
}

type hotspot = {
  hs_channel : string;
  hs_writer : string;
  hs_reader : string;
  hs_pair_utilization : Rt_util.Rat.t;
      (** combined utilization of the two accessors *)
  hs_total_utilization : Rt_util.Rat.t;
}
(** A partition-cut hotspot: the accessor pair's combined utilization
    exceeds the balanced-partition share [1.1 * total / 2] that
    {!Runtime.Partition} enforces, so any balanced cut into [>= 2]
    shards must place writer and reader on different shards and pay a
    cross-shard mailbox for this channel. *)

type t = {
  network : string;
  hyperperiod : Rt_util.Rat.t option;
      (** [None] when the fold failed (see [Sporadic_hazard]) *)
  classes : int;  (** total (process, phase) classes over one hyperperiod *)
  channels : channel_verdict list;  (** one per channel declaration *)
  hotspots : hotspot list;
}

val max_sweep_classes : int
(** Budget on the total class count above which non-direct pairs
    abstain with [Sporadic_hazard] instead of sweeping. *)

val analyse : Model.t -> t
(** Whole-network analysis.  Channels whose writer or reader is not a
    declared process abstain ([Sporadic_hazard]); a channel whose
    writer equals its reader is trivially [Ordered]. *)

val shardable : t -> bool
(** [true] iff every channel verdict is [Ordered] — the precondition
    under which the sharded engine is deterministic by construction. *)
