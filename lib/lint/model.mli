(** The analyzer's neutral view of an FPPN.

    [Fppn.Network.Builder] refuses ill-formed networks outright, so a
    determinism race can never be represented as a [Fppn.Network.t].
    The lint model is deliberately weaker: it represents {e any}
    declared topology — including ones with missing priority edges,
    cycles or dangling references — so the analyzer can explain what is
    wrong instead of merely rejecting.  Models are built from three
    sources:

    - a validated {!Fppn.Network.t} (element-level subjects only);
    - a parsed [.fppn] AST ({e before} elaboration, so findings carry
      [file:line:col] positions even when the builder would reject);
    - a {!Fppn_apps.Randgen.spec} (so the fuzz subsystem lints mutated
      workloads, e.g. with a dropped priority edge, without building). *)

type proc = {
  p_name : string;
  p_sporadic : bool;
  p_burst : int;  (** [m_e] *)
  p_period : Rt_util.Rat.t;  (** [T_e]; minimal inter-arrival for sporadic *)
  p_deadline : Rt_util.Rat.t;
  p_wcet : Rt_util.Rat.t option;
  p_reads : string list option;
      (** channels the behavior statically reads; [None] when the
          behavior is opaque (native closure / unresolved extern) *)
  p_writes : string list option;
  p_pos : Fppn_lang.Ast.pos option;
}

type chan = {
  c_name : string;
  c_kind : Fppn.Channel.kind;
  c_writer : string;
  c_reader : string;
  c_pos : Fppn_lang.Ast.pos option;
}

type t = {
  m_name : string;
  m_file : string option;
  m_procs : proc list;
  m_chans : chan list;
  m_fp : (string * string * Fppn_lang.Ast.pos option) list;
      (** declared functional-priority edges [hi -> lo] *)
}

val of_network :
  ?file:string ->
  ?wcet:(string -> Rt_util.Rat.t option) ->
  Fppn.Network.t ->
  t
(** Automaton behaviors expose their read/write channel sets; [Native]
    behaviors are opaque. *)

val of_ast : ?file:string -> Fppn_lang.Ast.network -> t
(** Keeps duplicate declarations and unknown references for the
    analyzer to report.  Machine behaviors expose their channel
    accesses; [extern] behaviors are opaque.  Per-process [wcet]
    annotations populate [p_wcet]. *)

val of_spec : Fppn_apps.Randgen.spec -> t
(** Mirrors {!Fppn_apps.Randgen.build} (generic bodies read every input
    and write every output) without requiring the spec to be buildable:
    a spec with a dropped FP edge ({!Fppn_apps.Randgen.seed_race})
    still yields a model. *)
