module Rat = Rt_util.Rat
module Ast = Fppn_lang.Ast

type proc = {
  p_name : string;
  p_sporadic : bool;
  p_burst : int;
  p_period : Rat.t;
  p_deadline : Rat.t;
  p_wcet : Rat.t option;
  p_reads : string list option;
  p_writes : string list option;
  p_pos : Ast.pos option;
}

type chan = {
  c_name : string;
  c_kind : Fppn.Channel.kind;
  c_writer : string;
  c_reader : string;
  c_pos : Ast.pos option;
}

type t = {
  m_name : string;
  m_file : string option;
  m_procs : proc list;
  m_chans : chan list;
  m_fp : (string * string * Ast.pos option) list;
}

let of_network ?file ?(wcet = fun _ -> None) net =
  let module N = Fppn.Network in
  let module P = Fppn.Process in
  let module A = Fppn.Automaton in
  let procs =
    Array.to_list (N.processes net)
    |> List.map (fun p ->
           let reads, writes =
             match p.P.behavior with
             | P.Native _ -> (None, None)
             | P.Automaton a ->
               (Some (A.channels_read a), Some (A.channels_written a))
           in
           {
             p_name = P.name p;
             p_sporadic = P.is_sporadic p;
             p_burst = P.burst p;
             p_period = P.period p;
             p_deadline = P.deadline p;
             p_wcet = wcet (P.name p);
             p_reads = reads;
             p_writes = writes;
             p_pos = None;
           })
  in
  let chans =
    List.map
      (fun (c : N.channel_decl) ->
        {
          c_name = c.N.ch_name;
          c_kind = c.N.ch_kind;
          c_writer = c.N.writer;
          c_reader = c.N.reader;
          c_pos = None;
        })
      (N.channels net)
  in
  let name_of i = P.name (N.process net i) in
  let fp =
    List.map (fun (hi, lo) -> (name_of hi, name_of lo, None)) (N.fp_edges net)
  in
  { m_name = N.name net; m_file = file; m_procs = procs; m_chans = chans; m_fp = fp }

let machine_accesses (m : Ast.machine) =
  let reads = ref [] and writes = ref [] in
  let add r c = if not (List.mem c !r) then r := c :: !r in
  List.iter
    (fun (l : Ast.location) ->
      List.iter
        (fun (t : Ast.transition) ->
          List.iter
            (function
              | Ast.Assign _ -> ()
              | Ast.Read (_, c) -> add reads c
              | Ast.Write (_, c) -> add writes c)
            t.Ast.actions)
        l.Ast.transitions)
    m.Ast.locations;
  (List.rev !reads, List.rev !writes)

let of_ast ?file (n : Ast.network) =
  let procs =
    List.map
      (fun (p : Ast.process_decl) ->
        let sporadic, burst, period, deadline =
          match p.Ast.event with
          | Ast.Periodic { burst; period; deadline } ->
            (false, burst, period, deadline)
          | Ast.Sporadic { burst; period; deadline } ->
            (true, burst, period, deadline)
        in
        let reads, writes =
          match p.Ast.behavior with
          | Ast.Extern -> (None, None)
          | Ast.Machine m ->
            let r, w = machine_accesses m in
            (Some r, Some w)
        in
        {
          p_name = p.Ast.p_name;
          p_sporadic = sporadic;
          p_burst = burst;
          p_period = period;
          p_deadline = deadline;
          p_wcet = p.Ast.wcet;
          p_reads = reads;
          p_writes = writes;
          p_pos = Some p.Ast.p_pos;
        })
      n.Ast.processes
  in
  let chans =
    List.map
      (fun (c : Ast.channel_decl) ->
        {
          c_name = c.Ast.c_name;
          c_kind = c.Ast.kind;
          c_writer = c.Ast.writer;
          c_reader = c.Ast.reader;
          c_pos = Some c.Ast.c_pos;
        })
      n.Ast.channels
  in
  let fp = List.map (fun (hi, lo, p) -> (hi, lo, Some p)) n.Ast.priorities in
  {
    m_name = n.Ast.n_name;
    m_file = file;
    m_procs = procs;
    m_chans = chans;
    m_fp = fp;
  }

let of_spec (s : Fppn_apps.Randgen.spec) =
  let module R = Fppn_apps.Randgen in
  let ins = Hashtbl.create 16 and outs = Hashtbl.create 16 in
  let push tbl key v =
    let prev = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (prev @ [ v ])
  in
  List.iter
    (fun (c : R.chan_spec) ->
      let w = R.periodic_name c.R.cw and r = R.periodic_name c.R.cr in
      push outs w (R.channel_name w r);
      push ins r (R.channel_name w r))
    s.R.chans;
  List.iter
    (fun (sp : R.sporadic_spec) ->
      let u = R.periodic_name sp.R.sp_user in
      push outs sp.R.sp_name (R.channel_name sp.R.sp_name u);
      push ins u (R.channel_name sp.R.sp_name u))
    s.R.sporadics;
  let accesses tbl name = try Hashtbl.find tbl name with Not_found -> [] in
  let periodic_procs =
    Array.to_list
      (Array.mapi
         (fun i t ->
           let name = R.periodic_name i in
           {
             p_name = name;
             p_sporadic = false;
             p_burst = 1;
             p_period = Rat.of_int t;
             p_deadline = Rat.of_int t;
             p_wcet = None;
             p_reads = Some (accesses ins name);
             p_writes = Some (accesses outs name);
             p_pos = None;
           })
         s.R.periods)
  in
  let sporadic_procs =
    List.map
      (fun (sp : R.sporadic_spec) ->
        {
          p_name = sp.R.sp_name;
          p_sporadic = true;
          p_burst = sp.R.sp_burst;
          p_period = Rat.of_int sp.R.sp_min_period;
          p_deadline = Rat.of_int (2 * sp.R.sp_min_period);
          p_wcet = None;
          p_reads = Some (accesses ins sp.R.sp_name);
          p_writes = Some (accesses outs sp.R.sp_name);
          p_pos = None;
        })
      s.R.sporadics
  in
  let chans =
    List.map
      (fun (c : R.chan_spec) ->
        let w = R.periodic_name c.R.cw and r = R.periodic_name c.R.cr in
        {
          c_name = R.channel_name w r;
          c_kind = (if c.R.fifo then Fppn.Channel.Fifo else Fppn.Channel.Blackboard);
          c_writer = w;
          c_reader = r;
          c_pos = None;
        })
      s.R.chans
    @ List.map
        (fun (sp : R.sporadic_spec) ->
          let u = R.periodic_name sp.R.sp_user in
          {
            c_name = R.channel_name sp.R.sp_name u;
            c_kind = Fppn.Channel.Blackboard;
            c_writer = sp.R.sp_name;
            c_reader = u;
            c_pos = None;
          })
        s.R.sporadics
  in
  let fp =
    List.filter_map
      (fun (c : R.chan_spec) ->
        if c.R.no_fp then None
        else
          let w = R.periodic_name c.R.cw and r = R.periodic_name c.R.cr in
          Some (if c.R.rev_fp then (r, w, None) else (w, r, None)))
      s.R.chans
    @ List.map
        (fun (sp : R.sporadic_spec) ->
          let u = R.periodic_name sp.R.sp_user in
          if sp.R.sp_higher then (sp.R.sp_name, u, None) else (u, sp.R.sp_name, None))
        s.R.sporadics
  in
  {
    m_name = s.R.label;
    m_file = None;
    m_procs = periodic_procs @ sporadic_procs;
    m_chans = chans;
    m_fp = fp;
  }
