module Rat = Rt_util.Rat
module Json = Rt_util.Json
module I = Interference
module D = Diagnostic

type t = {
  version : int;
  network : string;
  hyperperiod : string option;
  classes : int;
  shardable : bool;
  channels : I.channel_verdict list;
  hotspots : I.hotspot list;
}

let version = 1

let make (a : I.t) =
  {
    version;
    network = a.I.network;
    hyperperiod = Option.map Rat.to_string a.I.hyperperiod;
    classes = a.I.classes;
    shardable = I.shardable a;
    channels = a.I.channels;
    hotspots = a.I.hotspots;
  }

let of_model m = make (I.analyse m)

let of_network ?wcet net =
  let wcet = match wcet with Some f -> f | None -> fun _ -> None in
  of_model (Model.of_network ~wcet net)

let shardable t = t.shardable

let pair_subject x y =
  if String.compare x y <= 0 then Printf.sprintf "%s ./ %s" x y
  else Printf.sprintf "%s ./ %s" y x

let diagnostics t =
  let spf = Printf.sprintf in
  let of_channel (c : I.channel_verdict) =
    match c.I.cv_verdict with
    | I.Ordered _ -> None
    | I.Unordered off ->
      Some
        (D.make D.Unordered_channel_pair
           ~subject:(pair_subject c.I.cv_writer c.I.cv_reader)
           (spf
              "invocations %s#%d and %s#%d share channel %s but no precedence \
               path orders them; the sharded engine must fall back"
              off.I.off_proc_a off.I.off_k_a off.I.off_proc_b off.I.off_k_b
              c.I.cv_channel))
    | I.Sporadic_hazard reason ->
      Some
        (D.make D.Sporadic_shard_hazard
           ~subject:("channel " ^ c.I.cv_channel)
           (spf "ordering of %s and %s cannot be certified statically: %s"
              c.I.cv_writer c.I.cv_reader reason))
  in
  let of_hotspot (h : I.hotspot) =
    D.make D.Partition_cut_hotspot
      ~subject:("channel " ^ h.I.hs_channel)
      (spf
         "accessors %s and %s carry utilization %s of %s total, beyond the \
          balanced-partition share; any balanced cut into >= 2 shards \
          separates them"
         h.I.hs_writer h.I.hs_reader
         (Rat.to_string h.I.hs_pair_utilization)
         (Rat.to_string h.I.hs_total_utilization))
  in
  List.filter_map of_channel t.channels @ List.map of_hotspot t.hotspots

(* The JSON schema below is pinned byte-for-byte by test_certify, so
   field order is load-bearing. *)

let to_json t =
  let open Json in
  let channel (c : I.channel_verdict) =
    let base =
      [
        ("channel", Str c.I.cv_channel);
        ("writer", Str c.I.cv_writer);
        ("reader", Str c.I.cv_reader);
      ]
    in
    Obj
      (base
      @
      match c.I.cv_verdict with
      | I.Ordered w ->
        [
          ("verdict", Str "ordered");
          ("witness", Arr (List.map (fun p -> Str p) w));
        ]
      | I.Unordered off ->
        [
          ("verdict", Str "unordered");
          ("proc_a", Str off.I.off_proc_a);
          ("k_a", Int off.I.off_k_a);
          ("proc_b", Str off.I.off_proc_b);
          ("k_b", Int off.I.off_k_b);
        ]
      | I.Sporadic_hazard reason ->
        [ ("verdict", Str "sporadic-hazard"); ("reason", Str reason) ])
  in
  let hotspot (h : I.hotspot) =
    Obj
      [
        ("channel", Str h.I.hs_channel);
        ("writer", Str h.I.hs_writer);
        ("reader", Str h.I.hs_reader);
        ("pair_utilization", Str (Rat.to_string h.I.hs_pair_utilization));
        ("total_utilization", Str (Rat.to_string h.I.hs_total_utilization));
      ]
  in
  to_string
    (Obj
       [
         ("version", Int t.version);
         ("network", Str t.network);
         ( "hyperperiod",
           match t.hyperperiod with None -> Null | Some h -> Str h );
         ("classes", Int t.classes);
         ("shardable", Bool t.shardable);
         ("channels", Arr (List.map channel t.channels));
         ("hotspots", Arr (List.map hotspot t.hotspots));
       ])

let of_json s =
  let ( let* ) r f = Result.bind r f in
  let field name conv ctx j =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "certificate %s: missing %s" ctx name)
  in
  let rec map_m f = function
    | [] -> Ok []
    | x :: rest ->
      let* y = f x in
      let* ys = map_m f rest in
      Ok (y :: ys)
  in
  match Json.parse_opt s with
  | None -> Error "certificate: not valid JSON"
  | Some j ->
    let* v = field "version" Json.as_int "header" j in
    if v <> version then
      Error (Printf.sprintf "certificate: unsupported version %d" v)
    else
      let* network = field "network" Json.as_string "header" j in
      let hyperperiod =
        match Json.member "hyperperiod" j with
        | Some (Json.Str h) -> Some h
        | _ -> None
      in
      let* classes = field "classes" Json.as_int "header" j in
      let* shardable = field "shardable" Json.as_bool "header" j in
      let* chan_list = field "channels" Json.as_list "header" j in
      let channel cj =
        let* cv_channel = field "channel" Json.as_string "channel" cj in
        let ctx = Printf.sprintf "channel %s" cv_channel in
        let* cv_writer = field "writer" Json.as_string ctx cj in
        let* cv_reader = field "reader" Json.as_string ctx cj in
        let* verdict = field "verdict" Json.as_string ctx cj in
        let* cv_verdict =
          match verdict with
          | "ordered" ->
            let* w = field "witness" Json.as_list ctx cj in
            let* w =
              map_m
                (fun x ->
                  match Json.as_string x with
                  | Some s -> Ok s
                  | None ->
                    Error
                      (Printf.sprintf "certificate %s: non-string witness" ctx))
                w
            in
            Ok (I.Ordered w)
          | "unordered" ->
            let* off_proc_a = field "proc_a" Json.as_string ctx cj in
            let* off_k_a = field "k_a" Json.as_int ctx cj in
            let* off_proc_b = field "proc_b" Json.as_string ctx cj in
            let* off_k_b = field "k_b" Json.as_int ctx cj in
            Ok (I.Unordered { I.off_proc_a; off_k_a; off_proc_b; off_k_b })
          | "sporadic-hazard" ->
            let* reason = field "reason" Json.as_string ctx cj in
            Ok (I.Sporadic_hazard reason)
          | v ->
            Error (Printf.sprintf "certificate %s: unknown verdict %S" ctx v)
        in
        Ok { I.cv_channel; cv_writer; cv_reader; cv_verdict }
      in
      let* channels = map_m channel chan_list in
      let* hot_list = field "hotspots" Json.as_list "header" j in
      let hotspot hj =
        let* hs_channel = field "channel" Json.as_string "hotspot" hj in
        let ctx = Printf.sprintf "hotspot %s" hs_channel in
        let* hs_writer = field "writer" Json.as_string ctx hj in
        let* hs_reader = field "reader" Json.as_string ctx hj in
        let* pair = field "pair_utilization" Json.as_string ctx hj in
        let* total = field "total_utilization" Json.as_string ctx hj in
        match (Rat.of_string pair, Rat.of_string total) with
        | p, t ->
          Ok
            {
              I.hs_channel;
              hs_writer;
              hs_reader;
              hs_pair_utilization = p;
              hs_total_utilization = t;
            }
        | exception _ ->
          Error (Printf.sprintf "certificate %s: bad utilization" ctx)
      in
      let* hotspots = map_m hotspot hot_list in
      Ok { version = v; network; hyperperiod; classes; shardable; channels; hotspots }

let validate t (m : Model.t) =
  (* independent structural checks on the stated witnesses, then full
     agreement with a fresh analysis *)
  let witness_err =
    List.find_map
      (fun (c : I.channel_verdict) ->
        match c.I.cv_verdict with
        | I.Ordered (first :: _ as w) ->
          let last = List.nth w (List.length w - 1) in
          if first <> c.I.cv_writer || last <> c.I.cv_reader then
            Some
              (Printf.sprintf
                 "channel %s: witness endpoints %s..%s do not match accessors \
                  %s -> %s"
                 c.I.cv_channel first last c.I.cv_writer c.I.cv_reader)
          else None
        | _ -> None)
      t.channels
  in
  match witness_err with
  | Some e -> Error e
  | None ->
    let fresh = of_model m in
    if t.shardable <> fresh.shardable then
      Error
        (Printf.sprintf "shardable bit disagrees: stated %b, computed %b"
           t.shardable fresh.shardable)
    else if t.channels <> fresh.channels then
      Error "per-channel verdicts disagree with a fresh analysis"
    else if t <> fresh then Error "certificate metadata disagrees"
    else Ok ()

let pp ppf t =
  Format.fprintf ppf "certificate %s: %s, %d classes%a@." t.network
    (if t.shardable then "shardable" else "NOT shardable")
    t.classes
    (fun ppf -> function
      | Some h -> Format.fprintf ppf ", hyperperiod %s" h
      | None -> ())
    t.hyperperiod;
  List.iter
    (fun (c : I.channel_verdict) ->
      match c.I.cv_verdict with
      | I.Ordered w ->
        Format.fprintf ppf "  channel %s (%s -> %s): ordered%s@." c.I.cv_channel
          c.I.cv_writer c.I.cv_reader
          (match w with [] | [ _ ] -> "" | w -> " via " ^ String.concat " -> " w)
      | I.Unordered off ->
        Format.fprintf ppf
          "  channel %s (%s -> %s): UNORDERED at %s#%d vs %s#%d@."
          c.I.cv_channel c.I.cv_writer c.I.cv_reader off.I.off_proc_a
          off.I.off_k_a off.I.off_proc_b off.I.off_k_b
      | I.Sporadic_hazard reason ->
        Format.fprintf ppf "  channel %s (%s -> %s): hazard (%s)@."
          c.I.cv_channel c.I.cv_writer c.I.cv_reader reason)
    t.channels;
  List.iter
    (fun (h : I.hotspot) ->
      Format.fprintf ppf "  hotspot %s: %s + %s carry %s of %s@." h.I.hs_channel
        h.I.hs_writer h.I.hs_reader
        (Rat.to_string h.I.hs_pair_utilization)
        (Rat.to_string h.I.hs_total_utilization))
    t.hotspots
