(** The multi-pass static analyzer.

    Five passes over a {!Model.t} (after a structural pre-pass that
    resolves names and flags dangling references, duplicates and self
    channels):

    + {b determinism races} (FPPN010/011) — process pairs that can
      touch a common channel at a coinciding invocation instant must be
      ordered by the functional-priority relation (the Prop. 2.1
      precondition).  A pair ordered only transitively is flagged as a
      warning (Def. 2.1 asks for a direct edge); an unordered pair is an
      error, with the coincidence evidence (exact period lcm for
      periodic pairs, conservative any-instant for sporadic) in the
      message.
    + {b FP DAG hygiene} (FPPN020/021/022) — cycles, transitively
      redundant edges covering no channel, and priority edges running
      against a channel's data-flow direction.
    + {b Sec. III-A subclass} (FPPN030..033) — every sporadic process
      has exactly one user, periodic, with [T_u <= T_p]; mirrors
      [Fppn.Network.user_map].
    + {b channel misuse} (FPPN040/041/042) — channels never read or
      never written by behaviors whose channel accesses are statically
      known, and FIFO rate mismatches computed from periods alone
      (complementing the dynamic [Fppn_verify.Buffer_analysis]).
    + {b timing sanity} (FPPN050/051/052) — [d > T] on periodic
      processes, WCET above deadline, and the Prop. 3.1 necessary
      utilization bound when every process has a WCET.

    Results come back in {!Diagnostic.sort} order. *)

val lint_model : ?processors:int -> Model.t -> Diagnostic.t list
(** [processors] enables the hard Prop. 3.1 check (FPPN052 error when
    utilization exceeds the count); without it the bound is reported as
    an info giving the minimal feasible processor count.  Both need a
    complete WCET assignment, else the pass is silent. *)

val lint_network :
  ?file:string ->
  ?wcet:(string -> Rt_util.Rat.t option) ->
  ?processors:int ->
  Fppn.Network.t ->
  Diagnostic.t list
(** Lints {!Model.of_network}[ net].  A validated network cannot race
    (the builder enforces Def. 2.1), so this surfaces the warning/info
    passes plus timing findings from [wcet]. *)

val lint_ast :
  ?file:string -> ?processors:int -> Fppn_lang.Ast.network -> Diagnostic.t list
(** Lints a parsed [.fppn] network {e before} elaboration, so even
    networks the builder would reject produce positioned diagnostics. *)

val lint_spec :
  ?processors:int -> Fppn_apps.Randgen.spec -> Diagnostic.t list
(** Lints {!Model.of_spec}[ spec] — including specs sabotaged by the
    fuzz adversary or race-seeded via [Randgen.seed_race]. *)
