module D = Diagnostic
module Rat = Rt_util.Rat
module G = Rt_util.Digraph
module Bitset = Rt_util.Bitset

let spf = Printf.sprintf

let lint_model ?processors (m : Model.t) =
  let diags = ref [] in
  let emit ?severity ?pos code ~subject msg =
    diags := D.make ?severity ?file:m.Model.m_file ?pos code ~subject msg :: !diags
  in
  let procs = Array.of_list m.Model.m_procs in
  let n = Array.length procs in

  (* --- structural pre-pass: name resolution ---------------------------- *)
  let proc_tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i (p : Model.proc) ->
      if Hashtbl.mem proc_tbl p.Model.p_name then
        emit ?pos:p.Model.p_pos D.Duplicate_process_decl
          ~subject:("process " ^ p.Model.p_name)
          (spf "process %s is declared more than once" p.Model.p_name)
      else Hashtbl.add proc_tbl p.Model.p_name i)
    procs;
  let known name = Hashtbl.mem proc_tbl name in
  let idx name = Hashtbl.find proc_tbl name in
  let chan_seen = Hashtbl.create 16 in
  let valid_chans =
    List.filter
      (fun (c : Model.chan) ->
        let subject = "channel " ^ c.Model.c_name in
        (if Hashtbl.mem chan_seen c.Model.c_name then
           emit ?pos:c.Model.c_pos D.Duplicate_channel_decl ~subject
             (spf "channel %s is declared more than once" c.Model.c_name)
         else Hashtbl.add chan_seen c.Model.c_name ());
        let ok = ref true in
        if not (known c.Model.c_writer) then begin
          emit ?pos:c.Model.c_pos D.Unknown_process_ref ~subject
            (spf "writer %s of channel %s is not a declared process"
               c.Model.c_writer c.Model.c_name);
          ok := false
        end;
        if not (known c.Model.c_reader) then begin
          emit ?pos:c.Model.c_pos D.Unknown_process_ref ~subject
            (spf "reader %s of channel %s is not a declared process"
               c.Model.c_reader c.Model.c_name);
          ok := false
        end;
        if !ok && c.Model.c_writer = c.Model.c_reader then begin
          emit ?pos:c.Model.c_pos D.Self_channel_decl ~subject
            (spf "channel %s connects process %s to itself" c.Model.c_name
               c.Model.c_writer);
          ok := false
        end;
        !ok)
      m.Model.m_chans
  in
  let valid_fp =
    List.filter
      (fun (hi, lo, pos) ->
        let subject = spf "priority %s -> %s" hi lo in
        let ok = ref true in
        List.iter
          (fun p ->
            if not (known p) then begin
              emit ?pos D.Unknown_process_ref ~subject
                (spf "priority %s -> %s references undeclared process %s" hi lo p);
              ok := false
            end)
          (if hi = lo then [ hi ] else [ hi; lo ]);
        !ok)
      m.Model.m_fp
  in

  (* --- pass 2: FP graph hygiene ---------------------------------------- *)
  let g = G.create n in
  List.iter (fun (hi, lo, _) -> G.add_edge g (idx hi) (idx lo)) valid_fp;
  let acyclic = G.is_acyclic g in
  let closure = if acyclic then Some (G.transitive_closure g) else None in
  (match G.find_cycle g with
  | None -> ()
  | Some cyc ->
    let names = List.map (fun i -> procs.(i).Model.p_name) cyc in
    let pos =
      (* anchor at a declared edge lying on the cycle *)
      let on_cycle =
        match names with
        | [ v ] -> fun hi lo -> hi = v && lo = v
        | v0 :: _ ->
          let rec consecutive = function
            | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
            | [ last ] -> [ (last, v0) ]
            | [] -> []
          in
          let edges = consecutive names in
          fun hi lo -> List.mem (hi, lo) edges
        | [] -> fun _ _ -> false
      in
      List.find_map
        (fun (hi, lo, pos) -> if on_cycle hi lo then pos else None)
        valid_fp
    in
    emit ?pos D.Priority_cycle_found
      ~subject:("network " ^ m.Model.m_name)
      (spf "functional priorities form a cycle: %s -> %s"
         (String.concat " -> " names)
         (match names with v :: _ -> v | [] -> "?")));
  let chans_between =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (c : Model.chan) ->
        let a = idx c.Model.c_writer and b = idx c.Model.c_reader in
        let key = (min a b, max a b) in
        let prev = try Hashtbl.find tbl key with Not_found -> [] in
        Hashtbl.replace tbl key (prev @ [ c ]))
      valid_chans;
    fun a b -> try Hashtbl.find tbl (min a b, max a b) with Not_found -> []
  in
  List.iter
    (fun (hi, lo, pos) ->
      let u = idx hi and v = idx lo in
      if u <> v then begin
        let shared = chans_between u v in
        List.iter
          (fun (c : Model.chan) ->
            if c.Model.c_writer = lo && c.Model.c_reader = hi then
              emit
                ?pos:(match pos with Some _ -> pos | None -> c.Model.c_pos)
                D.Counter_dataflow_priority
                ~subject:("channel " ^ c.Model.c_name)
                (spf
                   "priority %s -> %s runs against the data flow of channel %s \
                    (%s writes, %s reads): the reader precedes the writer and \
                    observes previous-invocation data"
                   hi lo c.Model.c_name lo hi))
          shared;
        match closure with
        | Some closure when shared = [] ->
          let redundant =
            List.exists
              (fun w -> w <> v && Bitset.mem closure.(w) v)
              (G.succs g u)
          in
          if redundant then
            emit ?pos D.Redundant_priority_edge
              ~subject:(spf "priority %s -> %s" hi lo)
              (spf
                 "priority %s -> %s is implied by a longer priority path and \
                  the pair shares no channel"
                 hi lo)
        | _ -> ()
      end)
    valid_fp;

  (* --- pass 1 (main): determinism races -------------------------------- *)
  let ordered_somehow a b =
    match closure with
    | Some closure -> Bitset.mem closure.(a) b || Bitset.mem closure.(b) a
    | None -> G.path_exists g a b || G.path_exists g b a
  in
  let coincidence a b =
    let pa = procs.(a) and pb = procs.(b) in
    if pa.Model.p_sporadic || pb.Model.p_sporadic then
      "a sporadic generator may fire at any instant, including the other \
       process' invocation times"
    else
      match Rat.lcm pa.Model.p_period pb.Model.p_period with
      | l -> spf "both are invoked simultaneously at t=0 and every %s ms" (Rat.to_string l)
      | exception Rat.Overflow -> "both are invoked simultaneously at t=0"
  in
  let pair_subject a b =
    let x = procs.(a).Model.p_name and y = procs.(b).Model.p_name in
    if String.compare x y <= 0 then spf "%s ./ %s" x y else spf "%s ./ %s" y x
  in
  let pairs = Hashtbl.create 16 in
  let add_pair a b (c : Model.chan) =
    if a <> b then begin
      let key = (min a b, max a b) in
      if not (Hashtbl.mem pairs key) then Hashtbl.add pairs key c
    end
  in
  List.iter
    (fun (c : Model.chan) -> add_pair (idx c.Model.c_writer) (idx c.Model.c_reader) c)
    valid_chans;
  (* duplicate-named channels denote the same channel: every accessor of
     one declaration conflicts with every accessor of the others *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (c : Model.chan) ->
      let prev = try Hashtbl.find by_name c.Model.c_name with Not_found -> [] in
      Hashtbl.replace by_name c.Model.c_name (prev @ [ c ]))
    valid_chans;
  Hashtbl.iter
    (fun _ cs ->
      match cs with
      | [] | [ _ ] -> ()
      | cs ->
        let accessors =
          List.sort_uniq compare
            (List.concat_map
               (fun (c : Model.chan) -> [ idx c.Model.c_writer; idx c.Model.c_reader ])
               cs)
        in
        List.iter
          (fun a ->
            List.iter (fun b -> if a < b then add_pair a b (List.hd cs)) accessors)
          accessors)
    by_name;
  Hashtbl.iter
    (fun (a, b) (c : Model.chan) ->
      if G.has_edge g a b || G.has_edge g b a then ()
      else if ordered_somehow a b then
        emit ?pos:c.Model.c_pos D.Transitive_only_order ~subject:(pair_subject a b)
          (spf
             "%s and %s share channel %s but are ordered only transitively; \
              Def. 2.1 requires a direct priority edge"
             procs.(a).Model.p_name procs.(b).Model.p_name c.Model.c_name)
      else
        emit ?pos:c.Model.c_pos D.Determinism_race ~subject:(pair_subject a b)
          (spf
             "%s and %s both access channel %s and can be invoked at the same \
              time stamp (%s), but no functional-priority path orders them: \
              the access order is scheduler-dependent (Prop. 2.1 precondition \
              violated)"
             procs.(a).Model.p_name procs.(b).Model.p_name c.Model.c_name
             (coincidence a b)))
    pairs;

  (* --- pass 3: Sec. III-A scheduling subclass -------------------------- *)
  Array.iteri
    (fun p (proc : Model.proc) ->
      if proc.Model.p_sporadic && idx proc.Model.p_name = p then begin
        let subject = "process " ^ proc.Model.p_name in
        let partners =
          List.sort_uniq Int.compare
            (List.concat_map
               (fun (c : Model.chan) ->
                 let w = idx c.Model.c_writer and r = idx c.Model.c_reader in
                 if w = p then [ r ] else if r = p then [ w ] else [])
               valid_chans)
        in
        match partners with
        | [] ->
          emit ?pos:proc.Model.p_pos D.Sporadic_without_user ~subject
            (spf
               "sporadic process %s has no channel to a user; the Sec. III-A \
                subclass requires exactly one periodic user"
               proc.Model.p_name)
        | [ u ] ->
          let uproc = procs.(u) in
          if uproc.Model.p_sporadic then
            emit ?pos:proc.Model.p_pos D.Sporadic_user_is_sporadic ~subject
              (spf "user %s of sporadic process %s is itself sporadic"
                 uproc.Model.p_name proc.Model.p_name)
          else if Rat.(uproc.Model.p_period > proc.Model.p_period) then
            emit ?pos:proc.Model.p_pos D.User_period_exceeds ~subject
              (spf
                 "user %s has period %s ms, larger than the minimal \
                  inter-arrival time %s ms of sporadic process %s (T_u > T_p)"
                 uproc.Model.p_name
                 (Rat.to_string uproc.Model.p_period)
                 (Rat.to_string proc.Model.p_period)
                 proc.Model.p_name)
        | us ->
          emit ?pos:proc.Model.p_pos D.Sporadic_ambiguous_user ~subject
            (spf "sporadic process %s has several users: %s" proc.Model.p_name
               (String.concat ", "
                  (List.map (fun u -> procs.(u).Model.p_name) us)))
      end)
    procs;

  (* --- pass 4: channel misuse ------------------------------------------ *)
  List.iter
    (fun (c : Model.chan) ->
      let subject = "channel " ^ c.Model.c_name in
      let w = procs.(idx c.Model.c_writer) and r = procs.(idx c.Model.c_reader) in
      (match r.Model.p_reads with
      | Some reads when not (List.mem c.Model.c_name reads) ->
        emit ?pos:c.Model.c_pos D.Channel_never_read ~subject
          (spf "reader %s never reads channel %s: the channel is dead%s"
             r.Model.p_name c.Model.c_name
             (if c.Model.c_kind = Fppn.Channel.Fifo then
                " and written FIFO tokens accumulate"
              else ""))
      | _ -> ());
      (match w.Model.p_writes with
      | Some writes when not (List.mem c.Model.c_name writes) ->
        emit ?pos:c.Model.c_pos D.Channel_never_written ~subject
          (spf "writer %s never writes channel %s: the reader only ever sees %s"
             w.Model.p_name c.Model.c_name
             (if c.Model.c_kind = Fppn.Channel.Fifo then "an empty FIFO"
              else "the initial blackboard value"))
      | _ -> ());
      if c.Model.c_kind = Fppn.Channel.Fifo then
        if w.Model.p_sporadic then
          (* the writer's rate is only an upper bound: no static imbalance *)
          ()
        else if r.Model.p_sporadic then
          emit ?pos:c.Model.c_pos D.Fifo_rate_mismatch ~subject
            (spf
               "periodic writer %s fills FIFO %s but sporadic reader %s has no \
                guaranteed minimum invocation rate: worst-case backlog is \
                unbounded"
               w.Model.p_name c.Model.c_name r.Model.p_name)
        else begin
          match Rat.lcm w.Model.p_period r.Model.p_period with
          | h ->
            let jobs (p : Model.proc) =
              p.Model.p_burst * Rat.to_int_exn (Rat.div h p.Model.p_period)
            in
            let wn = jobs w and rn = jobs r in
            if wn > rn then
              emit ?pos:c.Model.c_pos D.Fifo_rate_mismatch ~subject
                (spf
                   "FIFO %s gains %d writer jobs but only %d reader jobs every \
                    %s ms: the backlog grows without bound unless each reader \
                    job drains several tokens"
                   c.Model.c_name wn rn (Rat.to_string h))
          | exception Rat.Overflow -> ()
        end)
    valid_chans;

  (* --- pass 5: timing sanity -------------------------------------------- *)
  Array.iter
    (fun (p : Model.proc) ->
      let subject = "process " ^ p.Model.p_name in
      if (not p.Model.p_sporadic) && Rat.(p.Model.p_deadline > p.Model.p_period)
      then
        emit ?pos:p.Model.p_pos D.Deadline_exceeds_period ~subject
          (spf "deadline %s ms exceeds period %s ms: invocations overlap"
             (Rat.to_string p.Model.p_deadline)
             (Rat.to_string p.Model.p_period));
      match p.Model.p_wcet with
      | Some c when Rat.(c > p.Model.p_deadline) ->
        emit ?pos:p.Model.p_pos D.Wcet_exceeds_deadline ~subject
          (spf "WCET %s ms exceeds the relative deadline %s ms: process %s can \
                never meet its deadline"
             (Rat.to_string c)
             (Rat.to_string p.Model.p_deadline)
             p.Model.p_name)
      | _ -> ())
    procs;
  let all_wcet =
    n > 0 && Array.for_all (fun (p : Model.proc) -> p.Model.p_wcet <> None) procs
  in
  (if all_wcet then
     let subject = "network " ^ m.Model.m_name in
     match
       Array.fold_left
         (fun acc (p : Model.proc) ->
           Rat.add acc
             (Rat.div
                (Rat.mul (Rat.of_int p.Model.p_burst) (Option.get p.Model.p_wcet))
                p.Model.p_period))
         Rat.zero procs
     with
     | u -> (
       match processors with
       | Some np ->
         if Rat.(u > of_int np) then
           emit D.Utilization_bound ~subject
             (spf
                "total utilization %s exceeds the %d available processor(s): \
                 the Prop. 3.1 necessary schedulability bound fails"
                (Rat.to_string u) np)
       | None ->
         (* the bound only says something once it rules out M=1 *)
         let need = Stdlib.max 1 (Rat.ceil u) in
         if need > 1 then
           emit ~severity:D.Info D.Utilization_bound ~subject
             (spf
                "total utilization %s needs at least %d processor(s) \
                 (Prop. 3.1 necessary bound)"
                (Rat.to_string u) need))
     | exception Rat.Overflow -> ());

  D.sort !diags

let lint_network ?file ?wcet ?processors net =
  lint_model ?processors (Model.of_network ?file ?wcet net)

let lint_ast ?file ?processors ast =
  lint_model ?processors (Model.of_ast ?file ast)

let lint_spec ?processors spec = lint_model ?processors (Model.of_spec spec)
