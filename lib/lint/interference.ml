module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph
module Derive = Taskgraph.Derive

type offending = {
  off_proc_a : string;
  off_k_a : int;
  off_proc_b : string;
  off_k_b : int;
}

type verdict =
  | Ordered of string list
  | Unordered of offending
  | Sporadic_hazard of string

type channel_verdict = {
  cv_channel : string;
  cv_writer : string;
  cv_reader : string;
  cv_verdict : verdict;
}

type hotspot = {
  hs_channel : string;
  hs_writer : string;
  hs_reader : string;
  hs_pair_utilization : Rat.t;
  hs_total_utilization : Rat.t;
}

type t = {
  network : string;
  hyperperiod : Rat.t option;
  classes : int;
  channels : channel_verdict list;
  hotspots : hotspot list;
}

let max_sweep_classes = 1 lsl 20

let shardable t =
  List.for_all
    (fun c -> match c.cv_verdict with Ordered _ -> true | _ -> false)
    t.channels

let analyse (m : Model.t) =
  let procs = Array.of_list m.Model.m_procs in
  let n = Array.length procs in
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i (p : Model.proc) ->
      if not (Hashtbl.mem index p.Model.p_name) then
        Hashtbl.add index p.Model.p_name i)
    procs;
  let name i = procs.(i).Model.p_name in
  let resolve s = Hashtbl.find_opt index s in
  let valid =
    List.filter_map
      (fun (c : Model.chan) ->
        match (resolve c.Model.c_writer, resolve c.Model.c_reader) with
        | Some w, Some r -> Some (c, w, r)
        | _ -> None)
      m.Model.m_chans
  in
  (* The fold mirrors Derive.derive exactly: it is valid only when every
     generator is positive and every sporadic process has the unique
     periodic user the server transformation needs (Network.user_map). *)
  let fold_error = ref None in
  let fail reason = if !fold_error = None then fold_error := Some reason in
  Array.iter
    (fun (p : Model.proc) ->
      if p.Model.p_burst <= 0 || Rat.sign p.Model.p_period <= 0 then
        fail
          (Printf.sprintf "process %s has a non-positive period or burst"
             p.Model.p_name)
      else if p.Model.p_sporadic && Rat.sign p.Model.p_deadline <= 0 then
        fail
          (Printf.sprintf "sporadic process %s has a non-positive deadline"
             p.Model.p_name))
    procs;
  let users = Array.make (max n 1) None in
  for p = 0 to n - 1 do
    let proc = procs.(p) in
    if proc.Model.p_sporadic then begin
      let partners =
        List.sort_uniq Int.compare
          (List.concat_map
             (fun (_, w, r) ->
               if w = p then [ r ] else if r = p then [ w ] else [])
             valid)
      in
      match partners with
      | [ u ]
        when (not procs.(u).Model.p_sporadic)
             && Rat.(procs.(u).Model.p_period <= proc.Model.p_period) ->
        users.(p) <- Some u
      | _ ->
        fail
          (Printf.sprintf
             "sporadic process %s has no foldable periodic user (Sec. III-A)"
             proc.Model.p_name)
    end
  done;
  (* FP' exactly as the derivation builds it: declared edges minus
     sporadic<->user pairs, plus the server-over-user edges. *)
  let fp' = Digraph.create (max n 1) in
  List.iter
    (fun (hi_name, lo_name, _) ->
      match (resolve hi_name, resolve lo_name) with
      | Some hi, Some lo when hi <> lo ->
        let dropped =
          (match users.(hi) with Some u -> u = lo | None -> false)
          || match users.(lo) with Some u -> u = hi | None -> false
        in
        if not dropped then Digraph.add_edge fp' hi lo
      | _ -> ())
    m.Model.m_fp;
  Array.iteri
    (fun s u -> match u with Some u -> Digraph.add_edge fp' s u | None -> ())
    users;
  let rank = Array.make (max n 1) 0 in
  (match Digraph.topo_sort fp' with
  | Some order -> List.iteri (fun i v -> rank.(v) <- i) order
  | None -> fail "transformed functional-priority relation has a cycle");
  let period' = Array.make (max n 1) Rat.one in
  (try
     for p = 0 to n - 1 do
       period'.(p) <-
         (match users.(p) with
         | Some u ->
           Derive.server_period ~user_period:procs.(u).Model.p_period
             ~deadline:procs.(p).Model.p_deadline
         | None -> procs.(p).Model.p_period)
     done
   with Rat.Overflow | Invalid_argument _ ->
     fail "server-period arithmetic overflow");
  let hyperperiod, counts =
    match !fold_error with
    | Some _ -> (None, [||])
    | None when n = 0 -> (None, [||])
    | None -> (
      try
        let h =
          Rat.lcm_list (List.init n (fun p -> period'.(p)))
        in
        let counts =
          Array.init n (fun p ->
              procs.(p).Model.p_burst * Rat.to_int_exn (Rat.div h period'.(p)))
        in
        (Some h, counts)
      with Rat.Overflow | Invalid_argument _ ->
        fail "hyperperiod arithmetic overflow";
        (None, [||]))
  in
  let classes_total = Array.fold_left ( + ) 0 counts in
  let rel =
    Array.init (max n 1) (fun p ->
        if p >= n then []
        else
          List.sort_uniq Int.compare (Digraph.succs fp' p @ Digraph.preds fp' p))
  in
  (* The (process, phase) classes over one hyperperiod, in the total
     invocation order <J = (arrival, transformed priority rank, k) —
     exactly the derived job sequence, built without the O(J^2) graph. *)
  let classes_arr =
    lazy
      (let cls = ref [] in
       for p = n - 1 downto 0 do
         let burst = procs.(p).Model.p_burst in
         for k = counts.(p) downto 1 do
           let arrival = Rat.mul period'.(p) (Rat.of_int ((k - 1) / burst)) in
           cls := (arrival, p, k) :: !cls
         done
       done;
       let arr = Array.of_list !cls in
       Array.stable_sort
         (fun (a1, p1, k1) (a2, p2, k2) ->
           let c = Rat.compare a1 a2 in
           if c <> 0 then c
           else
             let c = Int.compare rank.(p1) rank.(p2) in
             if c <> 0 then c else Int.compare k1 k2)
         arr;
       arr)
  in
  (* One monotone pass deciding "every src job preceding a dst job
     reaches it".  mark.(q) is the greatest src-class ordinal reachable
     from some already-seen class of q; a dst class is covered iff its
     best mark equals the ordinal of the latest src class seen, because
     earlier src classes reach later ones through their own process
     chain.  wit.(q) is the witness process chain, head = q. *)
  let sweep_dir seq src dst =
    let mark = Array.make n (-1) in
    let wit = Array.make n [] in
    let latest = ref (-1) and latest_k = ref 0 in
    let xcount = ref 0 in
    let final_wit = ref [] in
    let result = ref None in
    let len = Array.length seq in
    let i = ref 0 in
    while !result = None && !i < len do
      let _, p, k = seq.(!i) in
      let l = ref mark.(p) and lw = ref wit.(p) in
      List.iter
        (fun q ->
          if mark.(q) > !l then begin
            l := mark.(q);
            lw := wit.(q)
          end)
        rel.(p);
      if p = src && !xcount > !l then begin
        l := !xcount;
        lw := [ src ]
      end;
      if p = dst && !latest >= 0 then begin
        if !l < !latest then
          result :=
            Some
              (Error
                 {
                   off_proc_a = name src;
                   off_k_a = !latest_k;
                   off_proc_b = name dst;
                   off_k_b = k;
                 })
        else
          final_wit := (match !lw with h :: _ when h = dst -> !lw | w -> dst :: w)
      end;
      if !l > mark.(p) then begin
        mark.(p) <- !l;
        wit.(p) <- (match !lw with h :: _ when h = p -> !lw | w -> p :: w)
      end;
      if p = src then begin
        latest := !xcount;
        latest_k := k;
        incr xcount
      end;
      incr i
    done;
    match !result with
    | Some r -> r
    | None -> Ok (List.rev_map name !final_wit)
  in
  let pair_memo = Hashtbl.create 16 in
  let decide w r =
    match Hashtbl.find_opt pair_memo (w, r) with
    | Some v -> v
    | None ->
      let v =
        match !fold_error with
        | Some reason -> Sporadic_hazard reason
        | None ->
          if classes_total > max_sweep_classes then
            Sporadic_hazard
              (Printf.sprintf
                 "quotient has %d classes, beyond the %d-class sweep budget"
                 classes_total max_sweep_classes)
          else begin
            let seq = Lazy.force classes_arr in
            match sweep_dir seq w r with
            | Error off -> Unordered off
            | Ok wit_wr -> (
              match sweep_dir seq r w with
              | Error off -> Unordered off
              | Ok wit_rw ->
                Ordered (if wit_wr <> [] then wit_wr else List.rev wit_rw))
          end
      in
      Hashtbl.add pair_memo (w, r) v;
      v
  in
  let channels =
    List.map
      (fun (c : Model.chan) ->
        let v =
          match (resolve c.Model.c_writer, resolve c.Model.c_reader) with
          | None, _ | _, None ->
            Sporadic_hazard "channel endpoint is not a declared process"
          | Some w, Some r ->
            if w = r then Ordered [ name w ]
            else if Digraph.has_edge fp' w r || Digraph.has_edge fp' r w then
              (* direct FP relation: every job pair lies on a <J chain *)
              Ordered [ name w; name r ]
            else decide w r
        in
        {
          cv_channel = c.Model.c_name;
          cv_writer = c.Model.c_writer;
          cv_reader = c.Model.c_reader;
          cv_verdict = v;
        })
      m.Model.m_chans
  in
  let hotspots =
    try
      if n < 2 then []
      else begin
        let utils =
          Array.map
            (fun (p : Model.proc) ->
              match p.Model.p_wcet with
              | Some c when Rat.sign p.Model.p_period > 0 ->
                Some (Rat.div (Rat.mul (Rat.of_int p.Model.p_burst) c) p.Model.p_period)
              | _ -> None)
            procs
        in
        if Array.exists (fun u -> u = None) utils then []
        else begin
          let util p = match utils.(p) with Some u -> u | None -> Rat.zero in
          let total =
            Array.fold_left
              (fun acc u -> match u with Some u -> Rat.add acc u | None -> acc)
              Rat.zero utils
          in
          if Rat.sign total <= 0 then []
          else
            List.filter_map
              (fun ((c : Model.chan), w, r) ->
                if w = r then None
                else
                  let pair = Rat.add (util w) (util r) in
                  (* pair > 1.1 * total / 2, Partition's balance cap *)
                  if
                    Rat.compare
                      (Rat.mul pair (Rat.of_int 20))
                      (Rat.mul total (Rat.of_int 11))
                    > 0
                  then
                    Some
                      {
                        hs_channel = c.Model.c_name;
                        hs_writer = c.Model.c_writer;
                        hs_reader = c.Model.c_reader;
                        hs_pair_utilization = pair;
                        hs_total_utilization = total;
                      }
                  else None)
              valid
        end
      end
    with Rat.Overflow -> []
  in
  {
    network = m.Model.m_name;
    hyperperiod;
    classes = classes_total;
    channels;
    hotspots;
  }
