(** Serializable, machine-checkable shardability certificates.

    A certificate packages the {!Interference} analysis of one network:
    the per-channel ordering verdicts, the partition-cut hotspots and
    the overall [shardable] bit that [Engine.run_sharded] consumes
    instead of the legacy O(J^2) job-bitset closure.  Certificates
    render as diagnostics (stable codes FPPN060/061/062), serialize to
    a pinned JSON schema, and can be re-checked against a network with
    {!validate}. *)

type t = {
  version : int;  (** schema version, currently 1 *)
  network : string;
  hyperperiod : string option;  (** [Rat.to_string]; [None] if unfoldable *)
  classes : int;
  shardable : bool;
  channels : Interference.channel_verdict list;
  hotspots : Interference.hotspot list;
}

val version : int

val make : Interference.t -> t
val of_model : Model.t -> t

val of_network :
  ?wcet:(string -> Rt_util.Rat.t option) -> Fppn.Network.t -> t
(** Certify a validated network (via {!Model.of_network}).  [wcet]
    feeds the FPPN062 hotspot analysis; without it no hotspots are
    reported. *)

val shardable : t -> bool

val diagnostics : t -> Diagnostic.t list
(** FPPN060 (error) per [Unordered] channel with the offending
    invocation pair named, FPPN061 (warning) per [Sporadic_hazard]
    abstention, FPPN062 (info) per partition-cut hotspot.  An empty
    list means the certificate accepts the network. *)

val to_json : t -> string
(** Stable schema, version 1:
    [{"version":1,"network":..,"hyperperiod":..,"classes":..,
    "shardable":..,"channels":[{"channel":..,"writer":..,"reader":..,
    "verdict":"ordered","witness":[..]} | {..,"verdict":"unordered",
    "proc_a":..,"k_a":..,"proc_b":..,"k_b":..} | {..,
    "verdict":"sporadic-hazard","reason":..}],"hotspots":[{"channel":..,
    "writer":..,"reader":..,"pair_utilization":..,
    "total_utilization":..}]}]. *)

val of_json : string -> (t, string) result

val validate : t -> Model.t -> (unit, string) result
(** Machine-check: witness endpoints must match the channel accessors,
    and the certificate must agree verdict-for-verdict with a fresh
    analysis of [model]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering used by [fppn-tool certify]. *)
