type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

let rec gcd_int a b =
  let a = Stdlib.abs a and b = Stdlib.abs b in
  if b = 0 then a else gcd_int b (a mod b)

(* Overflow-checked primitive ops on the int representation. *)
let check_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let check_add a b =
  let s = a + b in
  (* overflow iff operands share sign and the result sign differs *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let lcm_int a b =
  if a = 0 || b = 0 then 0
  else check_mul (Stdlib.abs a / gcd_int a b) (Stdlib.abs b)

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let sgn = if den < 0 then -1 else 1 in
    let num = sgn * num and den = sgn * den in
    let g = gcd_int num den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let make_normalized num den =
  if den <= 0 then
    invalid_arg "Rat.make_normalized: denominator must be positive";
  { num; den }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den

(* Engine and scheduler inner loops are dominated by [add]/[compare] on
   values that are usually integers or share a denominator, so those
   cases skip the generic gcd renormalization entirely.  The generic
   case uses the classic two-small-gcd scheme (Knuth 4.5.1): for
   normalized inputs the intermediate results are already coprime where
   claimed, so no final [make] pass is needed. *)
let add a b =
  if a.den = b.den then begin
    let s = check_add a.num b.num in
    if a.den = 1 then { num = s; den = 1 }
    else
      let g = gcd_int s a.den in
      if g = 1 then { num = s; den = a.den }
      else { num = s / g; den = a.den / g }
  end
  else
    let g = gcd_int a.den b.den in
    if g = 1 then
      (* coprime denominators: num is coprime to den by construction *)
      {
        num = check_add (check_mul a.num b.den) (check_mul b.num a.den);
        den = check_mul a.den b.den;
      }
    else
      let da = a.den / g and db = b.den / g in
      let t = check_add (check_mul a.num db) (check_mul b.num da) in
      (* gcd(t, lcm) = gcd(t, g): only the shared factor can survive *)
      let g2 = gcd_int t g in
      { num = t / g2; den = check_mul da (b.den / g2) }

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  if a.den = 1 && b.den = 1 then { num = check_mul a.num b.num; den = 1 }
  else begin
    (* cross-cancel before multiplying to delay overflow; for
       normalized inputs the cancelled product is in lowest terms *)
    let g1 = gcd_int a.num b.den and g2 = gcd_int b.num a.den in
    let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
    {
      num = check_mul (a.num / g1) (b.num / g2);
      den = check_mul (a.den / g2) (b.den / g1);
    }
  end

let div a b =
  (* the reciprocal must stay normalized (positive denominator) now
     that [mul] constructs its result directly *)
  if b.num = 0 then raise Division_by_zero
  else if b.num < 0 then mul a { num = -b.den; den = -b.num }
  else mul a { num = b.den; den = b.num }

let abs a = { a with num = Stdlib.abs a.num }

let compare a b =
  if a.den = b.den then Stdlib.compare a.num b.num
  else
    let sa = Stdlib.compare a.num 0 and sb = Stdlib.compare b.num 0 in
    if sa <> sb then Stdlib.compare sa sb
    else
      (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den *)
      Stdlib.compare (check_mul a.num b.den) (check_mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer a = a.den = 1

let to_int_exn a =
  if is_integer a then a.num
  else invalid_arg (Printf.sprintf "Rat.to_int_exn: %d/%d" a.num a.den)

let to_float a = float_of_int a.num /. float_of_int a.den

let floor a =
  if a.num >= 0 then a.num / a.den
  else
    let q = a.num / a.den in
    if q * a.den = a.num then q else q - 1

let ceil a = -floor (neg a)
let fdiv a b = floor (div a b)

let lcm a b =
  if sign a <= 0 || sign b <= 0 then
    invalid_arg "Rat.lcm: arguments must be positive";
  (* lcm(p/q, r/s) = lcm(p, r) / gcd(q, s) for fractions in lowest terms *)
  make (lcm_int a.num b.num) (gcd_int a.den b.den)

let lcm_list = function
  | [] -> invalid_arg "Rat.lcm_list: empty list"
  | x :: rest -> List.fold_left lcm x rest

let pp ppf a =
  if is_integer a then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

let of_string s =
  let s = String.trim s in
  let fail () = invalid_arg (Printf.sprintf "Rat.of_string: %S" s) in
  match String.index_opt s '/' with
  | Some i ->
    let n = String.sub s 0 i
    and d = String.sub s (i + 1) (String.length s - i - 1) in
    (try make (int_of_string (String.trim n)) (int_of_string (String.trim d))
     with Failure _ -> fail ())
  | None ->
    (match String.index_opt s '.' with
     | None -> (try of_int (int_of_string s) with Failure _ -> fail ())
     | Some i ->
       let int_part = String.sub s 0 i
       and frac = String.sub s (i + 1) (String.length s - i - 1) in
       if String.length frac = 0 then fail ();
       let scale =
         String.fold_left (fun acc _ -> check_mul acc 10) 1 frac
       in
       (try
          let ip = if String.length int_part = 0 then 0 else int_of_string int_part in
          let neg_input = String.length s > 0 && s.[0] = '-' in
          let fp = int_of_string frac in
          if fp < 0 then fail ();
          let mag = add (abs (of_int ip)) (make fp scale) in
          if neg_input then neg mag else mag
        with Failure _ -> fail ()))

(* Infix aliases, defined last so the implementation above keeps the
   integer operators from Stdlib. *)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let ( = ) = equal
