(** Fixed-size domain pool with order-preserving parallel combinators.

    The pool owns [jobs - 1] worker domains (the caller is the
    [jobs]-th participant), all pulling chunks of work from a shared
    queue.  Results are merged {e in input order}, so every combinator
    is observably deterministic regardless of worker count or
    interleaving — and [jobs = 1] never spawns a domain and executes
    the exact sequential code path (a plain left-to-right loop), so
    callers are bit-for-bit compatible with their pre-pool behavior.

    Blocked callers {e help}: while waiting for their own chunks they
    drain other tasks from the shared queue, so nested [parallel_map]
    calls from inside a worker cannot deadlock. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.  [jobs]
    is clamped to at least 1.  Shut the pool down with {!shutdown} (or
    use {!with_pool}) — worker domains are only reclaimed then. *)

val jobs : t -> int
(** Parallelism degree the pool was created with (including the
    calling domain). *)

val self_id : unit -> int
(** Stable id of the calling worker domain: [0] for the domain that
    created the pool (and for any domain that never entered a pool),
    [1 .. jobs-1] for spawned workers, in spawn order.  Ids are
    domain-local, so tasks can attribute work (trace lanes, per-case
    timings) to the domain that actually ran them without threading
    the pool handle through. *)

val pending : t -> int
(** Number of tasks currently enqueued and not yet picked up by any
    worker (a point-in-time queue-depth reading, taken under the pool
    lock). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible default for CPU-
    bound work on this host. *)

val recommended_domains : unit -> int
(** Alias of {!default_jobs}: the largest worker count this host can
    run without oversubscription. *)

val clamp_jobs : int -> int
(** [clamp_jobs requested] caps a requested parallelism degree to
    [recommended_domains ()] (and raises it to at least 1).  CLI tools
    apply it to their [--jobs] so a generous default cannot slow a
    narrow machine down; the library combinators accept any [jobs]
    unclamped. *)

val shutdown : t -> unit
(** Joins all worker domains.  Idempotent.  Submitting work after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] with the
    applications distributed over the pool in index chunks of size
    [chunk] (default: input size over [4 * jobs], at least 1).
    Results are positioned by input index, so the output is identical
    to the sequential map for any deterministic [f].

    If one or more applications raise, the exception raised for the
    {e smallest} input index is re-raised in the caller (after all
    in-flight chunks have drained); remaining chunks are abandoned.
    With [jobs = 1] the applications run left to right in the calling
    domain and the first exception propagates immediately. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over a list, preserving order. *)

val parallel_for : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n body] runs [body i] for [i = 0 .. n-1] on the
    pool.  [body] must only perform index-disjoint writes (e.g. into
    cell [i] of a preallocated array) for the result to be
    deterministic.  Exceptions behave as in {!parallel_map}. *)
