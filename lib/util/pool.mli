(** Fixed-size domain pool with order-preserving parallel combinators
    over work-stealing index ranges.

    The pool owns [jobs - 1] worker domains (the caller is the
    [jobs]-th participant).  Each combinator call splits its index
    space into per-worker ranges claimed from the front in adaptively
    sized blocks (an eighth of the remainder, never below the grain);
    an idle worker steals the upper half of the fullest remaining
    range (steal-half).  Ranges migrate atomically between exactly two
    slots, so every index runs exactly once, and results are keyed by
    input index — every combinator is observably deterministic
    regardless of worker count, stealing or interleaving.  [jobs = 1]
    never spawns a domain and executes the exact sequential code path
    (a plain left-to-right loop), so callers are bit-for-bit compatible
    with their pre-pool behavior.

    Blocked callers {e help}: while waiting for their own call they
    drain other tasks from the shared task queue, so nested
    [parallel_map] calls from inside a worker cannot deadlock. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.  [jobs]
    is clamped to at least 1.  Shut the pool down with {!shutdown} (or
    use {!with_pool}) — worker domains are only reclaimed then. *)

val jobs : t -> int
(** Parallelism degree the pool was created with (including the
    calling domain). *)

val self_id : unit -> int
(** Stable id of the calling worker domain: [0] for the domain that
    created the pool (and for any domain that never entered a pool),
    [1 .. jobs-1] for spawned workers, in spawn order.  Ids are
    domain-local, so tasks can attribute work (trace lanes, per-case
    timings) to the domain that actually ran them without threading
    the pool handle through. *)

val with_self_id : int -> (unit -> 'a) -> 'a
(** [with_self_id id f] runs [f] with {!self_id} reading [id] on the
    calling domain, restoring the previous id afterwards.  For domains
    that participate in parallel work outside any pool (the sharded
    engine's shard domains), so their trace lanes and attributions
    stay distinguishable. *)

val pending : t -> int
(** Number of tasks currently enqueued and not yet picked up by any
    worker (a point-in-time queue-depth reading, taken under the pool
    lock). *)

val steals : unit -> int
(** Cumulative successful range steals across all pools in this
    process (monotone).  Observability layers sample a delta around a
    region; a reading is exact only while no combinator call is in
    flight. *)

val default_jobs : unit -> int
(** Alias of {!recommended_domains}. *)

val recommended_domains : unit -> int
(** The largest worker count this host can run without
    oversubscription: [Domain.recommended_domain_count ()] clamped to
    the container's cgroup CPU quota (both v1 [cpu.cfs_quota_us] /
    [cpu.cfs_period_us] and v2 [cpu.max] layouts are probed; an absent
    or unlimited quota leaves the count unclamped).  Memoized. *)

val clamp_jobs : int -> int
(** [clamp_jobs requested] caps a requested parallelism degree to
    [recommended_domains ()] (and raises it to at least 1).  CLI tools
    apply it to their [--jobs] so a generous default cannot slow a
    narrow machine down; the library combinators accept any [jobs]
    unclamped. *)

val shutdown : t -> unit
(** Joins all worker domains.  Idempotent.  Submitting work after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] with the
    applications distributed over the pool's work-stealing ranges.
    [chunk] sets the minimum claim grain (default: input size over
    [4 * jobs], at least 1); actual claims adapt down from an eighth
    of a range's remainder to that grain.  Results are positioned by
    input index, so the output is identical to the sequential map for
    any deterministic [f].

    If one or more applications raise, the exception raised for the
    {e smallest} input index is re-raised in the caller (after all
    in-flight blocks have drained); remaining blocks are abandoned.
    With [jobs = 1] the applications run left to right in the calling
    domain and the first exception propagates immediately. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over a list, preserving order. *)

val parallel_for : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n body] runs [body i] for [i = 0 .. n-1] on the
    pool.  [body] must only perform index-disjoint writes (e.g. into
    cell [i] of a preallocated array) for the result to be
    deterministic.  Exceptions behave as in {!parallel_map}. *)
