(** Exact rational arithmetic for model time.

    The paper takes periods and deadlines in [Q+] and computes
    hyperperiods as least common multiples of rationals (Sec. III-A,
    footnote 4).  All model times in this code base are values of
    {!type:t}; the conventional unit is the millisecond.

    Values are kept in normal form: positive denominator, numerator and
    denominator coprime.  Arithmetic raises {!Overflow} rather than
    silently wrapping. *)

type t = private { num : int; den : int }

exception Overflow
exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val make_normalized : int -> int -> t
(** [make_normalized num den] is [num/den] {e without} the gcd
    renormalization pass — the caller promises that [den > 0], that
    [num] and [den] are coprime, and that [num = 0] implies [den = 1].
    Violating the promise silently breaks {!equal}/{!compare}; when in
    doubt use {!make}.
    @raise Invalid_argument if [den <= 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool

val is_integer : t -> bool

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val floor : t -> int
(** Greatest integer [<=] the value. *)

val ceil : t -> int
(** Least integer [>=] the value. *)

val fdiv : t -> t -> int
(** [fdiv a b] is [floor (a / b)]: how many whole periods [b] fit in [a]. *)

val lcm : t -> t -> t
(** Least common multiple of two positive rationals: the smallest
    positive rational that is an integer multiple of both.  Used for
    hyperperiod computation.
    @raise Invalid_argument on non-positive arguments. *)

val lcm_list : t list -> t
(** {!lcm} folded over a non-empty list.
    @raise Invalid_argument on an empty list. *)

val gcd_int : int -> int -> int
(** Non-negative gcd of two integers; [gcd_int 0 0 = 0]. *)

val lcm_int : int -> int -> int

val pp : Format.formatter -> t -> unit
(** Prints integers without denominator, otherwise [num/den]. *)

val to_string : t -> string

val of_string : string -> t
(** Parses ["n"], ["n/d"] and decimal forms like ["2.5"].
    @raise Invalid_argument on malformed input. *)
