(* Vyukov bounded queue, specialized to many producers / one consumer.

   Each slot carries a sequence number.  Invariants (mod wrapping):
   - seq = index            : slot free, ready for the producer of
                              ticket [index]
   - seq = index + 1        : slot filled, ready for the consumer
   - seq = index + capacity : slot consumed, free for the next lap

   A producer claims ticket [t] by CASing [tail] from [t] to [t+1]
   after seeing [seq = t]; it then writes the payload and publishes
   with [seq := t + 1].  The consumer at [head = h] waits for
   [seq = h + 1], takes the payload, and releases with
   [seq := h + capacity].  Payload cells are plain (non-atomic): every
   access is ordered by the slot's own sequence atomic, so no two
   domains ever race on a cell. *)

type 'a t = {
  mask : int;
  seq : int Atomic.t array;
  cells : 'a option array;
  tail : int Atomic.t;  (* producers *)
  head : int Atomic.t;  (* consumer *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mpsc_ring.create: capacity <= 0";
  let cap =
    let c = ref 2 in
    while !c < capacity do
      c := !c * 2
    done;
    !c
  in
  {
    mask = cap - 1;
    seq = Array.init cap Atomic.make;
    cells = Array.make cap None;
    tail = Atomic.make 0;
    head = Atomic.make 0;
  }

let capacity t = t.mask + 1

let try_push t x =
  let rec go () =
    let ticket = Atomic.get t.tail in
    let i = ticket land t.mask in
    let s = Atomic.get t.seq.(i) in
    if s = ticket then
      if Atomic.compare_and_set t.tail ticket (ticket + 1) then begin
        t.cells.(i) <- Some x;
        Atomic.set t.seq.(i) (ticket + 1);
        true
      end
      else go () (* lost the ticket race; retry with the new tail *)
    else if s < ticket then false (* slot not yet consumed: full *)
    else go () (* another producer already advanced; reload *)
  in
  go ()

let pop t =
  let h = Atomic.get t.head in
  let i = h land t.mask in
  if Atomic.get t.seq.(i) = h + 1 then begin
    let x = t.cells.(i) in
    t.cells.(i) <- None;
    Atomic.set t.seq.(i) (h + t.mask + 1);
    Atomic.set t.head (h + 1);
    x
  end
  else None

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let drain ?max t =
  let budget = match max with Some m -> m | None -> length t in
  let rec go n acc =
    if n >= budget then List.rev acc
    else
      match pop t with
      | Some x -> go (n + 1) (x :: acc)
      | None -> List.rev acc
  in
  go 0 []

let pushed t = Atomic.get t.tail
let popped t = Atomic.get t.head
