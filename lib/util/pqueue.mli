(** Imperative binary-heap priority queue, {e stable}: elements that
    compare equal under [cmp] pop in insertion order (FIFO).

    Backbone of the discrete-event simulators (runtime engine, timed
    automata) and of the list scheduler's event loop; stability keeps
    those loops deterministic when distinct payloads share a key, which
    the differential fuzzing oracle relies on. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Min-queue under [cmp]: {!pop} returns the smallest element,
    breaking [cmp] ties by insertion order. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val pop : 'a t -> 'a option

val pop_distinct : 'a t -> 'a option
(** {!pop}, then discards every following element that compares equal
    to the popped one.  Discrete-event loops keyed on timestamps use it
    to coalesce the duplicate wakeups that blocked producers push. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; the queue is unchanged. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val drain : 'a t -> 'a list
(** Pops everything: the elements in ascending [cmp] order. *)
