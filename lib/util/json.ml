type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Length of the valid UTF-8 sequence starting at [i] (whose lead byte
   is >= 0x80), or 0 if the bytes there are not well-formed UTF-8
   (stray continuation, overlong form, surrogate, > U+10FFFF, or a
   truncated sequence). *)
let utf8_run s i =
  let n = String.length s in
  let cont k = k < n && Char.code s.[k] land 0xc0 = 0x80 in
  let b0 = Char.code s.[i] in
  if b0 < 0xc2 then 0 (* continuation byte or overlong C0/C1 lead *)
  else if b0 <= 0xdf then if cont (i + 1) then 2 else 0
  else if b0 <= 0xef then begin
    if not (cont (i + 1) && cont (i + 2)) then 0
    else
      let b1 = Char.code s.[i + 1] in
      if b0 = 0xe0 && b1 < 0xa0 then 0 (* overlong *)
      else if b0 = 0xed && b1 > 0x9f then 0 (* surrogate *)
      else 3
  end
  else if b0 <= 0xf4 then begin
    if not (cont (i + 1) && cont (i + 2) && cont (i + 3)) then 0
    else
      let b1 = Char.code s.[i + 1] in
      if b0 = 0xf0 && b1 < 0x90 then 0 (* overlong *)
      else if b0 = 0xf4 && b1 > 0x8f then 0 (* > U+10FFFF *)
      else 4
  end
  else 0

let escape s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' -> Buffer.add_string b "\\\""
    | '\\' -> Buffer.add_string b "\\\\"
    | '\n' -> Buffer.add_string b "\\n"
    | '\t' -> Buffer.add_string b "\\t"
    | '\r' -> Buffer.add_string b "\\r"
    | '\b' -> Buffer.add_string b "\\b"
    | '\012' -> Buffer.add_string b "\\f"
    | c when Char.code c < 0x20 ->
      Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
    | c when Char.code c < 0x80 -> Buffer.add_char b c
    | c -> (
      (* bytes >= 0x80: copy well-formed UTF-8 through verbatim; a
         byte that is not part of a valid sequence is escaped as
         \u00XX (its Latin-1 code point), which the reader inverts —
         so emitted documents are always valid UTF-8 and arbitrary
         byte strings still round-trip *)
      match utf8_run s !i with
      | 0 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | len ->
        Buffer.add_substring b s !i len;
        i := !i + len - 1));
    incr i
  done;
  Buffer.contents b

let number_to_string f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- reader ------------------------------------------------------------ *)

exception Malformed of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match text.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape"
               else begin
                 let hex = String.sub text (!pos + 1) 4 in
                 let valid =
                   String.for_all
                     (function
                       | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                       | _ -> false)
                     hex
                 in
                 (match
                    if valid then int_of_string_opt ("0x" ^ hex) else None
                  with
                 | None -> fail "bad \\u escape"
                 | Some cp when cp < 0x100 ->
                   (* inverts the writer's byte escapes (control chars
                      and stray non-UTF-8 bytes): one byte out *)
                   Buffer.add_char b (Char.chr cp)
                 | Some cp when cp < 0x800 ->
                   Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
                   Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
                 | Some cp ->
                   (* three-byte UTF-8; unpaired surrogates encode as
                      WTF-8 rather than failing *)
                   Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
                   Buffer.add_char b
                     (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                   Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f))));
                 pos := !pos + 4
               end
             | _ -> fail "bad escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match text.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Float f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt text = try Some (parse text) with Malformed _ -> None

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None
let as_string = function Str s -> Some s | _ -> None
let as_list = function Arr l -> Some l | _ -> None
