type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- reader ------------------------------------------------------------ *)

exception Malformed of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match text.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'u' ->
               (* the writers never emit multibyte escapes; keep the raw
                  sequence rather than decoding UTF-16 *)
               if !pos + 4 >= n then fail "truncated \\u escape"
               else begin
                 Buffer.add_string b (String.sub text (!pos - 1) 6);
                 pos := !pos + 4
               end
             | c -> Buffer.add_char b c);
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match text.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Float f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt text = try Some (parse text) with Malformed _ -> None

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None
let as_string = function Str s -> Some s | _ -> None
let as_list = function Arr l -> Some l | _ -> None
