(** Minimal JSON tree, writer and reader shared by every hand-rolled
    emitter in the repo (execution-trace export, fuzz reports, lint
    diagnostics, metrics snapshots, Chrome traces, the bench harness).

    The repo deliberately has no external JSON dependency; this module
    is the single place that fixes string escaping and float formatting,
    which the per-subsystem emitters used to disagree on.

    Rendering is compact (no whitespace) and deterministic: object
    fields are emitted in the order given, integers as [string_of_int],
    floats via {!number_to_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escaped string {e content} (no surrounding quotes): double quote,
    backslash, newline, tab, carriage return, backspace and form feed
    by their two-character escapes, any other control character below
    [0x20] as [\uXXXX].  Bytes [>= 0x80] forming well-formed UTF-8 are
    copied verbatim; a stray byte that is {e not} valid UTF-8 is
    escaped as [\u00XX] (its Latin-1 code point), so the emitted
    document is always valid UTF-8 and {!parse} inverts the encoding
    for arbitrary byte strings ([parse (to_string (Str s)) = Str s]). *)

val number_to_string : float -> string
(** Canonical float rendering: ["%.12g"] — compact for integral values
    (["200"]), round-trips common measurement precision, always a valid
    JSON number.  Non-finite values render as ["null"] (JSON has no
    NaN/infinity). *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

exception Malformed of string

val parse : string -> t
(** Strict reader for the subset the writers emit: objects, arrays,
    strings, numbers, booleans, null.  All numbers parse as {!Float}.
    String escapes: the common two-character forms, plus [\uXXXX] —
    code points below [U+0100] decode to the single byte of that value
    (inverting {!escape}'s control-character and stray-byte escapes),
    higher code points decode to UTF-8 (unpaired surrogates as WTF-8).
    @raise Malformed on any syntax error or trailing garbage. *)

val parse_opt : string -> t option

(** {1 Accessors} (shallow, total) *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val as_float : t -> float option
(** [Float f] and [Int i] both yield a float. *)

val as_int : t -> int option
(** [Int i], or a [Float] that is exactly integral. *)

val as_bool : t -> bool option
val as_string : t -> string option
val as_list : t -> t list option
