type t = { den : int }

exception Inexact

(* The engine adds tick values along a run (durations accumulate toward
   the horizon, deadlines sit one relative deadline past it).  Capping
   magnitudes well below [max_int] keeps every such sum exact without
   per-addition checks. *)
let magnitude_cap = 1 lsl 55

let checked_mul a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    if p / b = a && Stdlib.abs p < magnitude_cap then Some p else None

let create ?horizon times =
  let rec fold acc = function
    | [] -> Some acc
    | r :: rest ->
      let d = Rat.den r in
      let g = Rat.gcd_int acc d in
      (match checked_mul (acc / g) d with
      | Some l -> fold l rest
      | None -> None)
  in
  match fold 1 times with
  | None -> None
  | Some den -> (
    let t = { den } in
    match horizon with
    | None -> Some t
    | Some h ->
      (* the horizon must fit with headroom left for deadlines and
         overheads stacked on top of it *)
      if den mod Rat.den h <> 0 then None
      else (
        match checked_mul (Rat.num h) (den / Rat.den h) with
        | Some _ -> Some t
        | None -> None))

let den t = t.den

let ticks t r =
  let d = Rat.den r in
  if t.den mod d <> 0 then raise Inexact
  else
    match checked_mul (Rat.num r) (t.den / d) with
    | Some n -> n
    | None -> raise Rat.Overflow

let ticks_opt t r =
  match ticks t r with
  | n -> Some n
  | exception (Inexact | Rat.Overflow) -> None

let of_ticks t n = if t.den = 1 then Rat.of_int n else Rat.make n t.den

let representable t r = ticks_opt t r <> None
