(* Binary min-heap with insertion-order tie-breaking: every pushed
   element carries a sequence stamp, and [cmp] ties are resolved by
   ascending stamp, so equal-key elements pop FIFO.  Stability makes
   every discrete-event loop built on this queue deterministic even
   when distinct payloads compare equal. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable seq : int array;  (* parallel to [data]: insertion stamps *)
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; seq = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata;
    let nseq = Array.make ncap 0 in
    Array.blit t.seq 0 nseq 0 t.size;
    t.seq <- nseq
  end

(* [cmp] order, ties broken by insertion stamp *)
let before t i j =
  let c = t.cmp t.data.(i) t.data.(j) in
  if c <> 0 then c < 0 else t.seq.(i) < t.seq.(j)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t l !smallest then smallest := l;
  if r < t.size && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.seq.(t.size) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.seq.(0) <- t.seq.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_distinct t =
  match pop t with
  | None -> None
  | Some top ->
    (* blocked discrete-event loops re-push the same key once per poll,
       so equal-key runs are common; discarding them here saves one
       full no-op relaxation pass per duplicate in the caller *)
    let rec drop () =
      match peek t with
      | Some next when t.cmp next top = 0 ->
        ignore (pop t);
        drop ()
      | _ -> ()
    in
    drop ();
    Some top

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let clear t =
  t.data <- [||];
  t.seq <- [||];
  t.size <- 0

let to_list t = Array.to_list (Array.sub t.data 0 t.size)

let of_list ~cmp l =
  let t = create ~cmp in
  List.iter (push t) l;
  t

let drain t =
  let rec loop acc = match pop t with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []
