(** Min-heap of [(int key, int payload)] pairs in two parallel flat
    arrays — the allocation-free event queue of the compiled tick
    engine.

    Compared with {!Pqueue} this drops polymorphism, the comparator
    closure and the insertion-order tie-break: callers that drain every
    equal-key element before acting (as the tick engine's same-instant
    batching does) are insensitive to same-key pop order, and keys wide
    enough to need no payload packing lift {!Pqueue}'s encoding limits
    (the tick engine previously packed the processor index into 6 low
    bits of the event, capping networks at 64 processors).

    Pushes and pops allocate only when the backing arrays double. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap; [capacity] presizes the backing arrays. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Empties the heap, keeping its capacity. *)

val push : t -> key:int -> pay:int -> unit

val top_key : t -> int
(** Smallest key.  @raise Invalid_argument when empty. *)

val top_pay : t -> int
(** Payload pushed with the smallest key; ties yield an arbitrary
    element among the smallest.  @raise Invalid_argument when empty. *)

val drop : t -> unit
(** Removes the top element.  @raise Invalid_argument when empty. *)
