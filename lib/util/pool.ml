type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let recommended_domains = default_jobs

(* Stable per-domain worker id: the calling domain is worker 0, spawned
   workers are 1 .. jobs-1 in spawn order.  Stored in domain-local
   state so observability layers (trace lanes, per-case timing
   attribution) can ask "which worker am I?" from inside a task without
   threading the pool handle through every combinator. *)
let self_key = Domain.DLS.new_key (fun () -> 0)
let self_id () = Domain.DLS.get self_key

(* Oversubscribing domains is a reliable slowdown (BENCH.json recorded a
   0.37x "speedup" at jobs=4 on a 1-domain box), so user-facing tools
   clamp their --jobs to what the host can actually run in parallel. *)
let clamp_jobs requested = Stdlib.max 1 (Stdlib.min requested (default_jobs ()))

let jobs t = t.jobs

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

(* Workers sleep on [cond] when the queue is empty.  Every enqueue and
   every chunk-set completion broadcasts, so sleeping workers and
   helping callers re-check their predicates; spurious wakeups are
   harmless. *)
let worker_loop pool =
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    let rec next () =
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ()
      | None ->
        if pool.closed then begin
          Mutex.unlock pool.mutex;
          running := false
        end
        else begin
          Condition.wait pool.cond pool.mutex;
          next ()
        end
    in
    next ()
  done

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set self_key (i + 1);
            worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let ws = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join ws

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Record the failure with the smallest input index, so the exception
   the caller sees does not depend on scheduling. *)
let record_error errors i e bt =
  let rec go () =
    let cur = Atomic.get errors in
    let better = match cur with None -> true | Some (j, _, _) -> i < j in
    if better && not (Atomic.compare_and_set errors cur (Some (i, e, bt))) then
      go ()
  in
  go ()

(* The heart of every combinator: run [body i] for [i = 0 .. n-1],
   chunked over up to [pool.jobs] concurrent work units.  The caller
   runs one unit itself, then helps drain the shared queue until all
   units of this call have finished. *)
let run_indexed pool ~chunk n body =
  let next = Atomic.make 0 in
  let errors = Atomic.make None in
  let unit_body () =
    let continue = ref true in
    while !continue do
      if Atomic.get errors <> None then continue := false
      else begin
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            try body i
            with e -> record_error errors i e (Printexc.get_raw_backtrace ())
          done
      end
    done
  in
  let units = min pool.jobs ((n + chunk - 1) / chunk) in
  let pending = Atomic.make units in
  let finish_one () =
    if Atomic.fetch_and_add pending (-1) = 1 then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    end
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: pool is shut down"
  end;
  for _ = 2 to units do
    Queue.push
      (fun () ->
        unit_body ();
        finish_one ())
      pool.queue
  done;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  unit_body ();
  finish_one ();
  (* Help with queued tasks (possibly other calls' units) while our
     units drain; blocking only when there is nothing to steal. *)
  Mutex.lock pool.mutex;
  let rec wait () =
    if Atomic.get pending > 0 then begin
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        Mutex.lock pool.mutex;
        wait ()
      | None ->
        Condition.wait pool.cond pool.mutex;
        wait ()
    end
  in
  wait ();
  Mutex.unlock pool.mutex;
  match Atomic.get errors with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let default_chunk pool n = max 1 (n / (4 * pool.jobs))

let parallel_for ?chunk pool n body =
  if n <= 0 then ()
  else if pool.jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      body i
    done
  else
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk pool n in
    run_indexed pool ~chunk n body

let parallel_map ?chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.jobs = 1 || n = 1 then begin
    (* exact sequential path: left-to-right applications *)
    let res = Array.make n (f arr.(0)) in
    for i = 1 to n - 1 do
      res.(i) <- f arr.(i)
    done;
    res
  end
  else begin
    let results = Array.make n None in
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk pool n in
    run_indexed pool ~chunk n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?chunk pool f l =
  Array.to_list (parallel_map ?chunk pool f (Array.of_list l))
