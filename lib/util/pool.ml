type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Host capacity detection                                             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> Some (String.trim s)
  | exception _ -> None

(* Container CPU quota, ceil(quota/period), when one is set.  Both
   cgroup layouts are probed: v2 exposes "quota period" (or "max") in
   one file, v1 splits them across two.  Absent files, "max", or a
   negative quota all mean "no limit". *)
let cgroup_cpu_limit () =
  let parse_pair q p =
    match (int_of_string q, int_of_string p) with
    | q, p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
    | _ -> None
    | exception _ -> None
  in
  match read_file "/sys/fs/cgroup/cpu.max" with
  | Some s -> (
    match String.split_on_char ' ' s with
    | [ "max"; _ ] -> None
    | [ q; p ] -> parse_pair q p
    | _ -> None)
  | None -> (
    match
      ( read_file "/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
        read_file "/sys/fs/cgroup/cpu/cpu.cfs_period_us" )
    with
    | Some q, Some p -> parse_pair q p
    | _ -> None)

(* Memoized: the quota files do not change within a run, and callers
   consult this per combinator invocation. *)
let recommended_memo = ref 0

let recommended_domains () =
  let v = !recommended_memo in
  if v > 0 then v
  else begin
    let d = Domain.recommended_domain_count () in
    let v =
      match cgroup_cpu_limit () with
      | Some c -> Stdlib.max 1 (Stdlib.min d c)
      | None -> Stdlib.max 1 d
    in
    recommended_memo := v;
    v
  end

let default_jobs = recommended_domains

(* Stable per-domain worker id: the calling domain is worker 0, spawned
   workers are 1 .. jobs-1 in spawn order.  Stored in domain-local
   state so observability layers (trace lanes, per-case timing
   attribution) can ask "which worker am I?" from inside a task without
   threading the pool handle through every combinator. *)
let self_key = Domain.DLS.new_key (fun () -> 0)
let self_id () = Domain.DLS.get self_key

let with_self_id id f =
  let old = Domain.DLS.get self_key in
  Domain.DLS.set self_key id;
  Fun.protect ~finally:(fun () -> Domain.DLS.set self_key old) f

(* Oversubscribing domains is a reliable slowdown (BENCH.json recorded a
   0.37x "speedup" at jobs=4 on a 1-domain box), so user-facing tools
   clamp their --jobs to what the host can actually run in parallel. *)
let clamp_jobs requested = Stdlib.max 1 (Stdlib.min requested (recommended_domains ()))

let jobs t = t.jobs

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

(* Cumulative successful steals across all pools in this process.
   [Rt_util] sits below the observability layer, so the counter is
   exposed as a plain reading; callers that publish metrics sample a
   delta around the region they attribute. *)
let steal_counter = Atomic.make 0
let steals () = Atomic.get steal_counter

(* Workers sleep on [cond] when the queue is empty.  Every enqueue and
   every call completion broadcasts, so sleeping workers and helping
   callers re-check their predicates; spurious wakeups are harmless. *)
let worker_loop pool =
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    let rec next () =
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ()
      | None ->
        if pool.closed then begin
          Mutex.unlock pool.mutex;
          running := false
        end
        else begin
          Condition.wait pool.cond pool.mutex;
          next ()
        end
    in
    next ()
  done

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set self_key (i + 1);
            worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let ws = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join ws

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Record the failure with the smallest input index, so the exception
   the caller sees does not depend on scheduling. *)
let record_error errors i e bt =
  let rec go () =
    let cur = Atomic.get errors in
    let better = match cur with None -> true | Some (j, _, _) -> i < j in
    if better && not (Atomic.compare_and_set errors cur (Some (i, e, bt))) then
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Work-stealing index distribution                                    *)
(*                                                                     *)
(* Each work unit owns a contiguous index range packed into a single   *)
(* atomic word ([lo] in the low 31 bits, [hi] above), claimed from the *)
(* front in adaptively sized blocks: a claim takes an eighth of what   *)
(* remains (never below the grain), so early claims are large and CAS  *)
(* traffic low while tail claims shrink toward the grain for balance.  *)
(* A unit whose range runs dry steals the upper half of the fullest    *)
(* victim range into its own slot (classic steal-half), so a straggler *)
(* sheds work without any shared queue or lock on the index path.      *)
(* Ranges only ever migrate between slots through a CAS that removes   *)
(* them from exactly one slot, so every index is executed exactly once *)
(* and results keyed by input index assemble in input order.           *)
(* ------------------------------------------------------------------ *)

let pack lo hi = lo lor (hi lsl 31)
let unpack_lo r = r land 0x7fffffff
let unpack_hi r = r asr 31

let run_indexed pool ~grain n body =
  if n > 0x7fffffff then invalid_arg "Pool: too many items";
  let units = min pool.jobs (max 1 ((n + grain - 1) / grain)) in
  let ranges =
    Array.init units (fun u -> Atomic.make (pack (u * n / units) ((u + 1) * n / units)))
  in
  let errors = Atomic.make None in
  let unit_body u =
    let own = ranges.(u) in
    let continue = ref true in
    while !continue do
      if Atomic.get errors <> None then continue := false
      else begin
        (* claim an adaptive block from the front of our own range *)
        let rec claim () =
          let r = Atomic.get own in
          let lo = unpack_lo r and hi = unpack_hi r in
          if lo >= hi then -1
          else begin
            let b = min (hi - lo) (max grain ((hi - lo) / 8)) in
            if Atomic.compare_and_set own r (pack (lo + b) hi) then pack lo (lo + b)
            else claim ()
          end
        in
        let block = claim () in
        if block >= 0 then begin
          let stop = unpack_hi block in
          for i = unpack_lo block to stop - 1 do
            try body i
            with e -> record_error errors i e (Printexc.get_raw_backtrace ())
          done
        end
        else begin
          (* own range dry: steal the upper half of the fullest victim *)
          let victim = ref (-1) and best = ref 0 in
          for v = 0 to units - 1 do
            if v <> u then begin
              let r = Atomic.get ranges.(v) in
              let rem = unpack_hi r - unpack_lo r in
              if rem > !best then begin
                best := rem;
                victim := v
              end
            end
          done;
          if !victim < 0 then continue := false
          else begin
            let slot = ranges.(!victim) in
            let r = Atomic.get slot in
            let lo = unpack_lo r and hi = unpack_hi r in
            if hi > lo then begin
              let mid = hi - ((hi - lo + 1) / 2) in
              if Atomic.compare_and_set slot r (pack lo mid) then begin
                Atomic.set own (pack mid hi);
                Atomic.incr steal_counter
              end
            end
            (* contended or drained meanwhile: rescan *)
          end
        end
      end
    done
  in
  let pending = Atomic.make units in
  let finish_one () =
    if Atomic.fetch_and_add pending (-1) = 1 then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    end
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: pool is shut down"
  end;
  for u = 2 to units do
    let u = u - 1 in
    Queue.push
      (fun () ->
        unit_body u;
        finish_one ())
      pool.queue
  done;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  unit_body 0;
  finish_one ();
  (* Help with queued tasks (possibly other calls' units) while our
     units drain; blocking only when there is nothing to steal. *)
  Mutex.lock pool.mutex;
  let rec wait () =
    if Atomic.get pending > 0 then begin
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        Mutex.lock pool.mutex;
        wait ()
      | None ->
        Condition.wait pool.cond pool.mutex;
        wait ()
    end
  in
  wait ();
  Mutex.unlock pool.mutex;
  match Atomic.get errors with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let default_grain pool n = max 1 (n / (4 * pool.jobs))

let parallel_for ?chunk pool n body =
  if n <= 0 then ()
  else if pool.jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      body i
    done
  else
    let grain = match chunk with Some c -> max 1 c | None -> default_grain pool n in
    run_indexed pool ~grain n body

let parallel_map ?chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.jobs = 1 || n = 1 then begin
    (* exact sequential path: left-to-right applications *)
    let res = Array.make n (f arr.(0)) in
    for i = 1 to n - 1 do
      res.(i) <- f arr.(i)
    done;
    res
  end
  else begin
    let results = Array.make n None in
    let grain = match chunk with Some c -> max 1 c | None -> default_grain pool n in
    run_indexed pool ~grain n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?chunk pool f l =
  Array.to_list (parallel_map ?chunk pool f (Array.of_list l))
