(* Binary min-heap specialized to immediate-int keys with an int
   payload, held in two parallel arrays.  Unlike [Pqueue] it is neither
   polymorphic nor stable: the tick-engine drains every event of an
   instant into a worklist before acting on any of them, so same-key pop
   order is immaterial and the per-element sequence stamp (and the
   closure-based comparator) can be dropped.  Nothing here allocates
   after the backing arrays reach their high-water capacity. *)

type t = {
  mutable key : int array;
  mutable pay : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { key = Array.make capacity 0; pay = Array.make capacity 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

let grow t =
  let cap = Array.length t.key in
  if t.size = cap then begin
    let ncap = 2 * cap in
    let nkey = Array.make ncap 0 and npay = Array.make ncap 0 in
    Array.blit t.key 0 nkey 0 t.size;
    Array.blit t.pay 0 npay 0 t.size;
    t.key <- nkey;
    t.pay <- npay
  end

let push t ~key ~pay =
  grow t;
  let k = t.key and p = t.pay in
  (* sift up by hole-shifting: one store per level instead of a swap *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if Array.unsafe_get k parent > key then begin
      Array.unsafe_set k !i (Array.unsafe_get k parent);
      Array.unsafe_set p !i (Array.unsafe_get p parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set k !i key;
  Array.unsafe_set p !i pay

let top_key t =
  if t.size = 0 then invalid_arg "Iheap.top_key: empty heap";
  Array.unsafe_get t.key 0

let top_pay t =
  if t.size = 0 then invalid_arg "Iheap.top_pay: empty heap";
  Array.unsafe_get t.pay 0

let drop t =
  if t.size = 0 then invalid_arg "Iheap.drop: empty heap";
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let k = t.key and p = t.pay in
    let key = Array.unsafe_get k n and pay = Array.unsafe_get p n in
    (* sift the former last element down from the root *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && Array.unsafe_get k r < Array.unsafe_get k l then r
          else l
        in
        if Array.unsafe_get k c < key then begin
          Array.unsafe_set k !i (Array.unsafe_get k c);
          Array.unsafe_set p !i (Array.unsafe_get p c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set k !i key;
    Array.unsafe_set p !i pay
  end
