(** Compiled integer timelines for the simulation hot path.

    The discrete-event engine spends its inner loop comparing and adding
    model times.  All times reachable in one run are rationals whose
    denominators divide a common denominator [D] computable at setup
    time (periods, phases, deadlines, WCETs, overheads, event stamps,
    and the quantized execution-time samples derived from them).  A
    timebase maps every such rational [r] to the integer tick count
    [r·D] exactly, so the engine can run on machine integers and
    reconstruct bit-identical {!Rat.t} values only when materialising
    trace records.

    Construction is total: {!create} returns [None] whenever the common
    denominator overflows or the requested horizon would not fit
    comfortably in an [int] — callers fall back to the exact rational
    path instead of crashing. *)

type t

exception Inexact
(** Raised by {!ticks} on a rational whose denominator does not divide
    the compiled common denominator.  Never raised for values built
    from the rationals passed to {!create} under [+], [-], [min],
    [max], or multiplication by integers. *)

val create : ?horizon:Rat.t -> Rat.t list -> t option
(** [create ?horizon times] compiles the least common denominator of
    [times].  Returns [None] if that LCM overflows, or if it (or the
    optional [horizon] expressed in ticks, with headroom for summing
    many of them) exceeds a conservative magnitude cap. *)

val den : t -> int
(** The common denominator: ticks per model-time unit. *)

val ticks : t -> Rat.t -> int
(** Exact conversion to ticks.
    @raise Inexact if the denominator is not covered.
    @raise Rat.Overflow if the scaled numerator overflows. *)

val ticks_opt : t -> Rat.t -> int option
(** {!ticks} returning [None] instead of raising. *)

val of_ticks : t -> int -> Rat.t
(** Exact reconstruction; [of_ticks t (ticks t r) = r] (structurally —
    {!Rat.t} normal forms are unique). *)

val representable : t -> Rat.t -> bool
(** Whether {!ticks} would succeed. *)
