(** Bounded lock-free multi-producer single-consumer ring.

    The service layer's event ingestion queue: any number of producer
    domains [try_push] concurrently while one consumer domain drains.
    Slots carry sequence numbers (Vyukov's bounded-queue protocol), so
    a push is one CAS on the tail plus a plain write published by the
    slot's own atomic — producers never contend with the consumer, and
    a full ring is detected without locking ([try_push] returns
    [false]: that is the backpressure signal, counted by the caller).

    The consumer side ([pop], [drain], [length]) must only ever be
    called from one domain at a time; producers may call [try_push]
    from any domain, including the consumer's. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at least [capacity] elements (rounded up
    to a power of two, minimum 2).
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
(** The actual (rounded) capacity. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue from any domain.  [false] when the ring is full — the
    element is {e not} stored; the caller decides whether to retry,
    drop, or count backpressure. *)

val pop : 'a t -> 'a option
(** Dequeue the oldest element (consumer domain only). *)

val drain : ?max:int -> 'a t -> 'a list
(** Pop up to [max] elements (default: everything currently visible),
    oldest first (consumer domain only).  Elements pushed concurrently
    with the drain may or may not be included; they are never lost. *)

val length : 'a t -> int
(** Approximate occupancy (exact when no push is in flight). *)

val pushed : 'a t -> int
(** Total elements successfully pushed since creation (monotone). *)

val popped : 'a t -> int
(** Total elements popped since creation (monotone, consumer side). *)
