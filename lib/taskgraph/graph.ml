module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph

type t = {
  jobs : Job.t array;
  dag : Digraph.t;
  topo : int list;
  by_proc : (int, int list) Hashtbl.t; (* proc -> job ids ascending k *)
}

let make jobs dag =
  if Array.length jobs <> Digraph.n_nodes dag then
    invalid_arg "Taskgraph.Graph.make: job count and node count differ";
  Array.iteri
    (fun i j ->
      if j.Job.id <> i then
        invalid_arg "Taskgraph.Graph.make: job ids must be positional")
    jobs;
  let topo =
    match Digraph.topo_sort dag with
    | Some o -> o
    | None -> invalid_arg "Taskgraph.Graph.make: precedence graph is cyclic"
  in
  let by_proc = Hashtbl.create 16 in
  Array.iter
    (fun j ->
      let prev = try Hashtbl.find by_proc j.Job.proc with Not_found -> [] in
      Hashtbl.replace by_proc j.Job.proc (j.Job.id :: prev))
    jobs;
  Hashtbl.iter
    (fun p ids ->
      let sorted =
        List.sort (fun a b -> Int.compare jobs.(a).Job.k jobs.(b).Job.k) ids
      in
      Hashtbl.replace by_proc p sorted)
    (Hashtbl.copy by_proc);
  { jobs; dag; topo; by_proc }

let n_jobs t = Array.length t.jobs
let n_edges t = Digraph.n_edges t.dag
let job t i = t.jobs.(i)
let jobs t = t.jobs
let dag t = t.dag
let preds t i = Digraph.preds t.dag i
let succs t i = Digraph.succs t.dag i
let edges t = Digraph.edges t.dag
let has_edge t i j = Digraph.has_edge t.dag i j
let topo_order t = t.topo

let sources t =
  List.filter (fun i -> Digraph.in_degree t.dag i = 0) (List.init (n_jobs t) Fun.id)

let sinks t =
  List.filter (fun i -> Digraph.out_degree t.dag i = 0) (List.init (n_jobs t) Fun.id)

let jobs_of_process t p = try Hashtbl.find t.by_proc p with Not_found -> []

let find_job t ~proc ~k =
  match
    List.find_opt (fun i -> t.jobs.(i).Job.k = k) (jobs_of_process t proc)
  with
  | Some i -> i
  | None -> raise Not_found

let total_wcet t =
  Array.fold_left (fun acc j -> Rat.add acc j.Job.wcet) Rat.zero t.jobs

let induced ~keep t =
  let kept =
    List.filter (fun i -> keep t.jobs.(i)) (List.init (n_jobs t) Fun.id)
  in
  if kept = [] then invalid_arg "Taskgraph.Graph.induced: no jobs kept";
  let old_of_new = Array.of_list kept in
  let new_of_old = Array.make (n_jobs t) (-1) in
  Array.iteri (fun n o -> new_of_old.(o) <- n) old_of_new;
  let jobs' =
    Array.mapi (fun n o -> { t.jobs.(o) with Job.id = n }) old_of_new
  in
  (* connect kept jobs that were joined by any path, then minimize *)
  let closure = Digraph.transitive_closure t.dag in
  let dag' = Digraph.create (Array.length old_of_new) in
  Array.iteri
    (fun na oa ->
      Rt_util.Bitset.iter
        (fun ob -> if new_of_old.(ob) >= 0 then Digraph.add_edge dag' na new_of_old.(ob))
        closure.(oa))
    old_of_new;
  (make jobs' (Digraph.transitive_reduction dag'), old_of_new)

let disjoint_union ?prefixes gs =
  if gs = [] then invalid_arg "Taskgraph.Graph.disjoint_union: no graphs";
  let gs = Array.of_list gs in
  (match prefixes with
  | Some ps when Array.length ps <> Array.length gs ->
    invalid_arg "Taskgraph.Graph.disjoint_union: one prefix per graph required"
  | _ -> ());
  Array.iter
    (fun g ->
      if n_jobs g = 0 then
        invalid_arg "Taskgraph.Graph.disjoint_union: member graph has no jobs")
    gs;
  let total = Array.fold_left (fun acc g -> acc + n_jobs g) 0 gs in
  let jobs' = Array.make total gs.(0).jobs.(0) in
  let owner = Array.make total (0, 0) in
  let dag' = Digraph.create total in
  let off = ref 0 and proc_off = ref 0 in
  Array.iteri
    (fun gi g ->
      let max_proc =
        Array.fold_left (fun m j -> Stdlib.max m j.Job.proc) (-1) g.jobs
      in
      Array.iteri
        (fun i j ->
          let proc_name =
            match prefixes with
            | Some ps -> ps.(gi) ^ j.Job.proc_name
            | None -> j.Job.proc_name
          in
          jobs'.(!off + i) <-
            { j with Job.id = !off + i; proc = j.Job.proc + !proc_off; proc_name };
          owner.(!off + i) <- (gi, i))
        g.jobs;
      List.iter (fun (u, v) -> Digraph.add_edge dag' (!off + u) (!off + v)) (edges g);
      off := !off + n_jobs g;
      proc_off := !proc_off + max_proc + 1)
    gs;
  (make jobs' dag', owner)

let map_wcet f t =
  let jobs' = Array.map (fun j -> { j with Job.wcet = f j }) t.jobs in
  make jobs' (Digraph.copy t.dag)

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"jobs\": [\n";
  Array.iteri
    (fun i j ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\":%d,\"process\":\"%s\",\"k\":%d,\"arrival\":\"%s\",\
            \"deadline\":\"%s\",\"wcet\":\"%s\",\"arrival_ms\":%g,\
            \"deadline_ms\":%g,\"wcet_ms\":%g,\"server\":%b}%s\n"
           j.Job.id j.Job.proc_name j.Job.k
           (Rat.to_string j.Job.arrival)
           (Rat.to_string j.Job.deadline)
           (Rat.to_string j.Job.wcet)
           (Rat.to_float j.Job.arrival)
           (Rat.to_float j.Job.deadline)
           (Rat.to_float j.Job.wcet)
           j.Job.is_server
           (if i = Array.length t.jobs - 1 then "" else ",")))
    t.jobs;
  Buffer.add_string buf "  ],\n  \"edges\": [\n";
  let es = edges t in
  List.iteri
    (fun i (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    [%d,%d]%s\n" u v
           (if i = List.length es - 1 then "" else ",")))
    es;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let to_dot t =
  let module Dot = Rt_util.Dot in
  let nodes =
    Array.to_list
      (Array.map
         (fun j ->
           let label = Format.asprintf "%a" Job.pp j in
           let style = if j.Job.is_server then "dashed" else "" in
           Dot.node ~label ~shape:"ellipse" ~style (Job.label j))
         t.jobs)
  in
  let es =
    List.map
      (fun (u, v) -> Dot.edge (Job.label t.jobs.(u)) (Job.label t.jobs.(v)))
      (edges t)
  in
  Dot.render ~name:"taskgraph" nodes es
