(** Task-graph derivation from an FPPN (Sec. III-A).

    Steps, following the paper:
    + replace each sporadic process [p] by an [m]-periodic {e server}
      process [p'] with period [T_p' = T_u(p)] and priority
      [p' → u(p)]; its jobs' deadlines are corrected to
      [d_p' = d_p − T_p'] to compensate the worst-case one-period
      postponement (conservatively: arrival counted at the window start).
      When [d_p <= T_u(p)], footnote 3 applies: the server period is the
      largest fraction [T_u(p)/q] smaller than [d_p];
    + simulate the invocation order of the transformed network over one
      hyperperiod [H = lcm T_p], giving the totally ordered job sequence
      [J] (ordered by arrival time, then functional priority, then
      invocation count);
    + add a precedence edge [(J_a, J_b)] whenever [J_a <J J_b] and the
      two jobs belong to the same process or to directly
      priority-related ([./]) processes;
    + truncate required times to the hyperperiod;
    + remove redundant edges by transitive reduction. *)

type wcet_map = string -> Rt_util.Rat.t
(** Worst-case execution time of each process (profiled, in the paper). *)

val const_wcet : Rt_util.Rat.t -> wcet_map
val wcet_of_list : Rt_util.Rat.t -> (string * Rt_util.Rat.t) list -> wcet_map
(** [wcet_of_list default assoc]. *)

val server_period :
  user_period:Rt_util.Rat.t -> deadline:Rt_util.Rat.t -> Rt_util.Rat.t
(** Transformed server period [T_p']: the user period when
    [deadline > user_period], else footnote 3's largest fraction
    [T_u/q < deadline].  Exported so static analyses can fold sporadic
    processes exactly as the derivation does. *)

type server_info = {
  sporadic : int;  (** process index in the source network *)
  user : int;  (** [u(p)] *)
  server_period : Rt_util.Rat.t;  (** [T_p'] *)
  server_relative_deadline : Rt_util.Rat.t;  (** [d_p − T_p'] (> 0) *)
  boundary_closed_right : bool;
      (** Sec. IV boundary rule: [true] iff [p → u(p)] in the source
          network, i.e. a real job invoked exactly at a window boundary
          [b] is handled by the subset arriving at [b] (interval
          [(a,b\]]); otherwise it belongs to the next subset. *)
}

type t = {
  graph : Graph.t;
  hyperperiod : Rt_util.Rat.t;
  servers : server_info list;
  raw_edges : int;  (** edge count before transitive reduction *)
  order : int list;  (** job ids in the total invocation order [<J] *)
}

type error =
  | Subclass of Fppn.Network.user_error list
  | Transformed_priority_cycle of string list
      (** replacing [u → p] by [p' → u] re-cycled the priority DAG *)

val pp_error : Format.formatter -> error -> unit

val derive : ?reduce:bool -> wcet:wcet_map -> Fppn.Network.t -> (t, error) result
(** [reduce] (default true) controls the final transitive reduction —
    switchable for the ablation benchmark. *)

val derive_exn : ?reduce:bool -> wcet:wcet_map -> Fppn.Network.t -> t

val server_of : t -> int -> server_info option
(** Server info for a process index ([None] for periodic processes). *)
