module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph
module Network = Fppn.Network
module Process = Fppn.Process

type wcet_map = string -> Rat.t

let const_wcet c _ = c

let wcet_of_list default assoc name =
  match List.assoc_opt name assoc with Some c -> c | None -> default

type server_info = {
  sporadic : int;
  user : int;
  server_period : Rat.t;
  server_relative_deadline : Rat.t;
  boundary_closed_right : bool;
}

type t = {
  graph : Graph.t;
  hyperperiod : Rat.t;
  servers : server_info list;
  raw_edges : int;
  order : int list;
}

type error =
  | Subclass of Network.user_error list
  | Transformed_priority_cycle of string list

let pp_error ppf = function
  | Subclass errs ->
    Format.fprintf ppf "scheduling subclass violated: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Network.pp_user_error)
      errs
  | Transformed_priority_cycle ps ->
    Format.fprintf ppf "server transformation created a priority cycle: %s"
      (String.concat " -> " ps)

(* Per-process generator parameters in the transformed network PN'. *)
type gen' = {
  period' : Rat.t;
  burst' : int;
  rel_deadline' : Rat.t; (* relative deadline applied to each job *)
  is_server : bool;
}

let server_period ~user_period ~deadline =
  (* smallest q >= 1 with T_u / q < d, i.e. the plain user period when
     d > T_u, else footnote 3's fractional period *)
  if Rat.(deadline > user_period) then user_period
  else
    let q = Rat.fdiv user_period deadline + 1 in
    Rat.div user_period (Rat.of_int q)

let derive ?(reduce = true) ~wcet net =
  match Network.user_map net with
  | Error errs -> Error (Subclass errs)
  | Ok users ->
    let n = Network.n_processes net in
    let procs = Network.processes net in
    (* step 1: server transformation *)
    let gens =
      Array.init n (fun p ->
          let proc = procs.(p) in
          match users.(p) with
          | None ->
            {
              period' = Process.period proc;
              burst' = Process.burst proc;
              rel_deadline' = Process.deadline proc;
              is_server = false;
            }
          | Some u ->
            let tu = Process.period procs.(u) in
            let ts = server_period ~user_period:tu ~deadline:(Process.deadline proc) in
            {
              period' = ts;
              burst' = Process.burst proc;
              rel_deadline' = Rat.sub (Process.deadline proc) ts;
              is_server = true;
            })
    in
    let servers =
      List.filter_map
        (fun p ->
          match users.(p) with
          | None -> None
          | Some u ->
            Some
              {
                sporadic = p;
                user = u;
                server_period = gens.(p).period';
                server_relative_deadline = gens.(p).rel_deadline';
                boundary_closed_right = Network.higher_priority net p u;
              })
        (List.init n Fun.id)
    in
    (* FP': drop any priority edge between a sporadic and its user, then
       impose server-over-user priority p' -> u(p) *)
    let fp' = Digraph.create n in
    List.iter
      (fun (hi, lo) ->
        let dropped =
          (match users.(hi) with Some u -> u = lo | None -> false)
          || (match users.(lo) with Some u -> u = hi | None -> false)
        in
        if not dropped then Digraph.add_edge fp' hi lo)
      (Network.fp_edges net);
    List.iter (fun s -> Digraph.add_edge fp' s.sporadic s.user) servers;
    (match Digraph.topo_sort fp' with
    | None ->
      let cycle =
        match Digraph.find_cycle fp' with
        | Some vs -> List.map (fun v -> Process.name procs.(v)) vs
        | None -> []
      in
      Error (Transformed_priority_cycle cycle)
    | Some order ->
      let rank' = Array.make n 0 in
      List.iteri (fun i v -> rank'.(v) <- i) order;
      (* step 2: hyperperiod of PN' and the job sequence J *)
      let hyperperiod =
        Rat.lcm_list (Array.to_list (Array.map (fun g -> g.period') gens))
      in
      let jobs = ref [] in
      for p = n - 1 downto 0 do
        let g = gens.(p) in
        let periods = Rat.to_int_exn (Rat.div hyperperiod g.period') in
        let c = wcet (Process.name procs.(p)) in
        for k = g.burst' * periods downto 1 do
          let arrival = Rat.mul g.period' (Rat.of_int ((k - 1) / g.burst')) in
          let deadline = Rat.add arrival g.rel_deadline' in
          (* step 4 of the construction: truncate to the hyperperiod *)
          let deadline = Rat.min hyperperiod deadline in
          jobs :=
            {
              Job.id = 0 (* assigned after sorting *);
              proc = p;
              proc_name = Process.name procs.(p);
              k;
              arrival;
              deadline;
              wcet = c;
              is_server = g.is_server;
            }
            :: !jobs
        done
      done;
      let seq =
        List.stable_sort
          (fun (a : Job.t) (b : Job.t) ->
            let c = Rat.compare a.arrival b.arrival in
            if c <> 0 then c
            else
              let c = Int.compare rank'.(a.proc) rank'.(b.proc) in
              if c <> 0 then c else Int.compare a.k b.k)
          !jobs
      in
      let jobs_arr =
        Array.of_list (List.mapi (fun id j -> { j with Job.id }) seq)
      in
      let m = Array.length jobs_arr in
      (* step 3: precedence edges between <J-ordered related jobs.
         Instead of the all-pairs O(m^2) scan, walk each job's related
         process columns (per-process job-id lists, ascending) and merge
         their tails — same edges, same (a ascending, then b ascending)
         insertion order, at O(E + m * degree). *)
      let dag = Digraph.create m in
      let cols = Array.make n [] in
      for a = m - 1 downto 0 do
        let p = jobs_arr.(a).Job.proc in
        cols.(p) <- a :: cols.(p)
      done;
      let cols = Array.map Array.of_list cols in
      let nbrs =
        Array.init n (fun p ->
            p
            :: List.filter
                 (fun q -> q <> p)
                 (List.sort_uniq Int.compare
                    (Digraph.succs fp' p @ Digraph.preds fp' p)))
      in
      (* cur.(q): first position in cols.(q) holding a job id > a; each
         cursor only moves forward over the whole sweep *)
      let cur = Array.make n 0 in
      for a = 0 to m - 1 do
        let p = jobs_arr.(a).Job.proc in
        let qs = nbrs.(p) in
        List.iter
          (fun q ->
            let col = cols.(q) in
            let len = Array.length col in
            while cur.(q) < len && col.(cur.(q)) <= a do
              cur.(q) <- cur.(q) + 1
            done)
          qs;
        (* ascending merge of the related columns' tails *)
        let qs_arr = Array.of_list qs in
        let kcols = Array.length qs_arr in
        let pos = Array.init kcols (fun i -> cur.(qs_arr.(i))) in
        let continue = ref true in
        while !continue do
          let best = ref (-1) and best_b = ref max_int in
          for i = 0 to kcols - 1 do
            let col = cols.(qs_arr.(i)) in
            if pos.(i) < Array.length col && col.(pos.(i)) < !best_b then begin
              best := i;
              best_b := col.(pos.(i))
            end
          done;
          if !best < 0 then continue := false
          else begin
            Digraph.add_edge dag a !best_b;
            pos.(!best) <- pos.(!best) + 1
          end
        done
      done;
      let raw_edges = Digraph.n_edges dag in
      (* step 5: transitive reduction *)
      let dag = if reduce then Digraph.transitive_reduction dag else dag in
      Ok
        {
          graph = Graph.make jobs_arr dag;
          hyperperiod;
          servers;
          raw_edges;
          order = List.init m Fun.id;
        })

let derive_exn ?reduce ~wcet net =
  match derive ?reduce ~wcet net with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Derive.derive: %a" pp_error e)

let server_of t p = List.find_opt (fun s -> s.sporadic = p) t.servers
