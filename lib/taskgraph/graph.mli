(** The task graph [TG(J, E)] (Def. 3.1): a DAG whose nodes are jobs
    and whose edges constrain execution order. *)

type t

val make : Job.t array -> Rt_util.Digraph.t -> t
(** [make jobs dag] — [jobs.(i).id] must equal [i] and the digraph must
    be an acyclic graph over the same node count.
    @raise Invalid_argument otherwise. *)

val n_jobs : t -> int
val n_edges : t -> int
val job : t -> int -> Job.t
val jobs : t -> Job.t array
val dag : t -> Rt_util.Digraph.t
(** The underlying precedence DAG (shared, do not mutate). *)

val preds : t -> int -> int list
val succs : t -> int -> int list
val edges : t -> (int * int) list
val has_edge : t -> int -> int -> bool

val topo_order : t -> int list
(** Deterministic topological order, computed once. *)

val sources : t -> int list
val sinks : t -> int list

val jobs_of_process : t -> int -> int list
(** Job ids of one source process, ascending [k]. *)

val find_job : t -> proc:int -> k:int -> int
(** @raise Not_found *)

val total_wcet : t -> Rt_util.Rat.t

val induced : keep:(Job.t -> bool) -> t -> t * int array
(** [induced ~keep g] is the subgraph on the jobs satisfying [keep],
    with ids renumbered positionally; the returned array maps new ids
    back to the original ones.  Precedence is preserved through dropped
    jobs: two kept jobs are connected iff a path joined them in [g]
    (computed via the transitive closure, then reduced), so scheduling
    the restriction still respects the original ordering constraints.
    @raise Invalid_argument if no job is kept. *)

val disjoint_union : ?prefixes:string array -> t list -> t * (int * int) array
(** [disjoint_union gs] merges several task graphs into one: job ids are
    renumbered positionally (graphs in list order), process indices are
    offset per graph so [jobs_of_process] stays disjoint across members,
    and no cross-graph edges are added.  [prefixes.(i)], if given, is
    prepended to every process name of graph [i] (useful to keep Gantt
    and trace labels distinguishable when co-scheduling applications).
    The returned array maps each merged job id to
    [(graph index, original job id)].
    @raise Invalid_argument on an empty list, an empty member graph, or
    a prefix array of the wrong length. *)

val map_wcet : (Job.t -> Rt_util.Rat.t) -> t -> t
(** Same structure with per-job WCETs replaced (e.g. switching a
    mixed-criticality graph from optimistic to conservative budgets). *)

val to_dot : t -> string
(** Fig. 3-style rendering: nodes labelled [p\[k\] (A,D,C)]. *)

val to_json : t -> string
(** Machine-readable dump for external tools: a JSON object with a
    [jobs] array (id, process, k, arrival/deadline/wcet as exact strings
    and [*_ms] floats, server flag) and an [edges] array of id pairs. *)
