(** Process-wide metrics registry: counters, gauges and fixed-bucket
    histograms, with deterministic JSON snapshots.

    Registration is idempotent — asking for a name again returns the
    same instrument.  Counters are striped per domain and merged on
    read: an increment touches only the calling domain's stripe, so
    parallel workers never contend on a shared word, while totals stay
    exact and deterministic across worker counts as long as the
    {e set} of increments is (every fuzz verdict bumps exactly one
    counter no matter which domain ran the case).  Gauges and
    histograms remain single shared atomics.

    The {!enabled} flag is advisory: hot-path call sites check it
    before doing any bookkeeping; the instruments themselves always
    work so tests and cold paths need no setup. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered instrument (registrations are kept). *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val histogram : string -> buckets:float array -> histogram
(** [buckets] are strictly increasing upper bounds.  An observation
    [v] lands in the first bucket with [v <= bound], or in the
    implicit overflow bucket past the last bound.  Re-registering a
    name returns the existing histogram ([buckets] must agree in
    length). *)

val observe : histogram -> float -> unit

val bucket_counts : histogram -> int array
(** Per-bucket observation counts; length is [Array.length buckets + 1],
    the last cell being the overflow bucket. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val counters : unit -> (string * int) list
(** All registered counters with their values, sorted by name. *)

val snapshot : unit -> Rt_util.Json.t
(** [{"counters":{..},"gauges":{..},"histograms":{name:{"bounds":[..],
    "counts":[..],"count":n,"sum":s}}}] with names sorted, so equal
    registry states render byte-identically. *)
