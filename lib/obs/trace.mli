(** Low-overhead span and instant-event recorder.

    Each domain writes into its own fixed-capacity ring buffer of
    packed events (no locks, no allocation on the record path beyond
    first use), stamped with the monotonic clock.  When tracing is
    disabled every recording entry point is a single flag load and a
    branch — the PR 3 engine hot path stays untouched.

    Ring overflow drops the {e oldest} events (the latest
    [capacity] per domain are kept) but the hotspot aggregates in
    {!hotspots} are exact regardless of overflow: they are accumulated
    online as spans close, not reconstructed from the rings. *)

type id
(** A pre-interned event name.  Ids are {e domain-local}: an id is
    only meaningful in the domain whose {!intern} produced it.  Code
    that runs on pool workers must intern inside the task (interning
    an already-known name is a single hash lookup). *)

val set_enabled : bool -> unit
(** Turn recording on or off.  Off is the default; while off, every
    recording function is a no-op costing one flag check. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events, span stacks and hotspot aggregates in
    every domain's buffer.  Does not change the enabled flag. *)

val capacity : int
(** Ring capacity per domain (events). *)

val now_ns : unit -> int
(** Monotonic clock reading in nanoseconds (same timebase as event
    timestamps). *)

val intern : string -> id
(** Intern [name] in the calling domain's buffer. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span named [name]:
    recorded as one complete event (start timestamp + duration) when
    [f] returns {e or raises}.  Spans nest; the recorder maintains a
    per-domain stack so {!hotspots} can attribute self time. *)

val with_span_id : id -> (unit -> 'a) -> 'a
(** {!with_span} with a pre-interned name — no hash lookup on the
    record path. *)

val span_begin : id -> unit
(** Opens a span on the calling domain's stack without wrapping a
    closure — the zero-allocation form of {!with_span_id} for hot
    loops whose body would otherwise capture loop state.  Must be
    balanced by {!span_end}; an exception escaping between the two
    loses the open span. *)

val span_end : unit -> unit
(** Closes the innermost {!span_begin} span and records it. *)

val instant : string -> unit
(** Record a point event (e.g. a deadline miss, a bound update). *)

val instant_id : id -> unit

val counter : string -> int -> unit
(** Record a sampled counter value (e.g. queue depth); exported as a
    Chrome counter-track event. *)

val counter_id : id -> int -> unit

(** {1 Inspection} — call these at quiescence (no concurrent
    recorders), e.g. after a pool has drained or been shut down. *)

type kind =
  | Span of { dur_ns : int }
  | Instant
  | Counter of int

type event = { lane : int; name : string; ts_ns : int; kind : kind }
(** [lane] is the {!Rt_util.Pool.self_id} of the recording domain. *)

val events : unit -> event list
(** All retained events from every domain, sorted by timestamp. *)

val dropped : unit -> int
(** Total events lost to ring overflow since the last {!reset}. *)

type hotspot = {
  hname : string;
  calls : int;
  total_ns : int;  (** wall time inside the span, children included *)
  self_ns : int;  (** wall time minus time spent in child spans *)
}

val hotspots : unit -> hotspot list
(** Per-name aggregates merged across domains, sorted by self time,
    largest first.  Exact even when the rings overflowed. *)
