open Rt_util

let event ~ph ~pid ~tid ~name ~ts_us extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str ph);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Float ts_us);
     ]
    @ extra)

let complete ~pid ~tid ~name ~ts_us ~dur_us ?(args = []) () =
  event ~ph:"X" ~pid ~tid ~name ~ts_us
    (("dur", Json.Float dur_us)
    :: (if args = [] then [] else [ ("args", Json.Obj args) ]))

let instant ~pid ~tid ~name ~ts_us ?(args = []) () =
  event ~ph:"i" ~pid ~tid ~name ~ts_us
    (("s", Json.Str "t") :: (if args = [] then [] else [ ("args", Json.Obj args) ]))

let counter ~pid ~tid ~name ~ts_us ~value =
  event ~ph:"C" ~pid ~tid ~name ~ts_us
    [ ("args", Json.Obj [ ("value", Json.Float value) ]) ]

let process_name ~pid name =
  event ~ph:"M" ~pid ~tid:0 ~name:"process_name" ~ts_us:0.0
    [ ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let thread_name ~pid ~tid name =
  event ~ph:"M" ~pid ~tid ~name:"thread_name" ~ts_us:0.0
    [ ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let wrap events = Json.Obj [ ("traceEvents", Json.Arr events) ]
let to_string events = Json.to_string (wrap events)

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string events))

let of_trace ?(pid = 2) ?(lane_name = fun d -> "pool/" ^ string_of_int d) evs =
  let t0 =
    List.fold_left (fun acc (e : Trace.event) -> min acc e.ts_ns) max_int evs
  in
  let us ns = float_of_int (ns - t0) /. 1e3 in
  let lanes = List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.lane) evs) in
  let meta =
    process_name ~pid "runtime (wall clock)"
    :: List.map (fun l -> thread_name ~pid ~tid:l (lane_name l)) lanes
  in
  meta
  @ List.map
      (fun (e : Trace.event) ->
        match e.kind with
        | Trace.Span { dur_ns } ->
          complete ~pid ~tid:e.lane ~name:e.name ~ts_us:(us e.ts_ns)
            ~dur_us:(float_of_int dur_ns /. 1e3)
            ()
        | Trace.Instant -> instant ~pid ~tid:e.lane ~name:e.name ~ts_us:(us e.ts_ns) ()
        | Trace.Counter v ->
          counter ~pid ~tid:e.lane ~name:e.name ~ts_us:(us e.ts_ns)
            ~value:(float_of_int v))
      evs

let validate json =
  let ( let* ) = Result.bind in
  let err i msg = Error (Printf.sprintf "event %d: %s" i msg) in
  match Json.member "traceEvents" json with
  | None -> Error "top level is not an object with a traceEvents member"
  | Some evs -> (
    match Json.as_list evs with
    | None -> Error "traceEvents is not an array"
    | Some evs ->
      let check i ev =
        let field name = Json.member name ev in
        let* name =
          match Option.bind (field "name") Json.as_string with
          | Some n -> Ok n
          | None -> err i "missing string name"
        in
        let* ph =
          match Option.bind (field "ph") Json.as_string with
          | Some p -> Ok p
          | None -> err i "missing string ph"
        in
        let* () =
          match (Option.bind (field "pid") Json.as_int, Option.bind (field "tid") Json.as_int) with
          | Some _, Some _ -> Ok ()
          | _ -> err i "missing integer pid/tid"
        in
        let* () =
          match Option.bind (field "ts") Json.as_float with
          | Some _ -> Ok ()
          | None -> err i "missing numeric ts"
        in
        match ph with
        | "X" -> (
          match Option.bind (field "dur") Json.as_float with
          | Some d when d >= 0.0 -> Ok ()
          | Some _ -> err i "negative dur"
          | None -> err i "X event without numeric dur")
        | "i" | "C" -> Ok ()
        | "M" -> (
          if name <> "process_name" && name <> "thread_name" then
            err i ("unknown metadata event " ^ name)
          else
            match
              Option.bind (field "args") (fun a ->
                  Option.bind (Json.member "name" a) Json.as_string)
            with
            | Some _ -> Ok ()
            | None -> err i "metadata event without args.name")
        | ph -> err i ("unknown ph " ^ ph)
      in
      let rec go i = function
        | [] -> Ok ()
        | ev :: rest ->
          let* () = check i ev in
          go (i + 1) rest
      in
      go 0 evs)
