type id = int

let on = ref false
let set_enabled b = on := b
let enabled () = !on
let capacity = 65536
let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Event kinds in the packed ring: 0 = span, 1 = instant, 2 = counter.
   A span's [aux] field is its duration; a counter's is its value. *)

type agg = { mutable calls : int; mutable total : int; mutable self : int }

type buf = {
  lane : int;
  mutable names : string array;
  mutable n_names : int;
  tbl : (string, int) Hashtbl.t;
  kinds : Bytes.t;
  name_of : int array;
  ts_of : int array;
  aux_of : int array;
  mutable written : int;
  (* span stack: name id, start ns, accumulated child ns per open span *)
  mutable st_name : int array;
  mutable st_start : int array;
  mutable st_child : int array;
  mutable depth : int;
  agg : (int, agg) Hashtbl.t;
}

let registry : buf list ref = ref []
let reg_mu = Mutex.create ()

let make_buf lane =
  {
    lane;
    names = Array.make 64 "";
    n_names = 0;
    tbl = Hashtbl.create 64;
    kinds = Bytes.create capacity;
    name_of = Array.make capacity 0;
    ts_of = Array.make capacity 0;
    aux_of = Array.make capacity 0;
    written = 0;
    st_name = Array.make 64 0;
    st_start = Array.make 64 0;
    st_child = Array.make 64 0;
    depth = 0;
    agg = Hashtbl.create 64;
  }

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b = make_buf (Rt_util.Pool.self_id ()) in
      Mutex.lock reg_mu;
      registry := b :: !registry;
      Mutex.unlock reg_mu;
      b)

let my_buf () = Domain.DLS.get buf_key

let clear_buf b =
  b.written <- 0;
  b.depth <- 0;
  Hashtbl.reset b.agg

let reset () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  List.iter clear_buf bufs

let intern_in b name =
  match Hashtbl.find_opt b.tbl name with
  | Some i -> i
  | None ->
    let i = b.n_names in
    if i = Array.length b.names then begin
      let ns = Array.make (2 * i) "" in
      Array.blit b.names 0 ns 0 i;
      b.names <- ns
    end;
    b.names.(i) <- name;
    b.n_names <- i + 1;
    Hashtbl.add b.tbl name i;
    i

let intern name = intern_in (my_buf ()) name

let push b kind name_id ts aux =
  let i = b.written mod capacity in
  Bytes.unsafe_set b.kinds i (Char.unsafe_chr kind);
  b.name_of.(i) <- name_id;
  b.ts_of.(i) <- ts;
  b.aux_of.(i) <- aux;
  b.written <- b.written + 1

let begin_span b id =
  let d = b.depth in
  if d = Array.length b.st_name then begin
    let grow a =
      let a' = Array.make (2 * d) 0 in
      Array.blit a 0 a' 0 d;
      a'
    in
    b.st_name <- grow b.st_name;
    b.st_start <- grow b.st_start;
    b.st_child <- grow b.st_child
  end;
  b.st_name.(d) <- id;
  b.st_start.(d) <- now_ns ();
  b.st_child.(d) <- 0;
  b.depth <- d + 1

let agg_for b id =
  match Hashtbl.find_opt b.agg id with
  | Some a -> a
  | None ->
    let a = { calls = 0; total = 0; self = 0 } in
    Hashtbl.add b.agg id a;
    a

let end_span b =
  let d = b.depth - 1 in
  b.depth <- d;
  let total = now_ns () - b.st_start.(d) in
  let self = total - b.st_child.(d) in
  if d > 0 then b.st_child.(d - 1) <- b.st_child.(d - 1) + total;
  let id = b.st_name.(d) in
  push b 0 id b.st_start.(d) total;
  let a = agg_for b id in
  a.calls <- a.calls + 1;
  a.total <- a.total + total;
  a.self <- a.self + self

let with_span_id id f =
  if not !on then f ()
  else begin
    let b = my_buf () in
    begin_span b id;
    match f () with
    | v ->
      end_span b;
      v
    | exception e ->
      end_span b;
      raise e
  end

let with_span name f =
  if not !on then f ()
  else begin
    let b = my_buf () in
    begin_span b (intern_in b name);
    match f () with
    | v ->
      end_span b;
      v
    | exception e ->
      end_span b;
      raise e
  end

(* Closure-free span edges for hot loops: [with_span_id] allocates a
   closure per call site when its body captures loop state, which is
   exactly what the tick engine's per-job spans would do.  The caller
   must pair begin/end; an escaping exception between them loses the
   open span (tolerable — the run is crashing). *)
let span_begin id = if !on then begin_span (my_buf ()) id
let span_end () = if !on then end_span (my_buf ())

let instant_id id =
  if !on then
    let b = my_buf () in
    push b 1 id (now_ns ()) 0

let instant name =
  if !on then
    let b = my_buf () in
    push b 1 (intern_in b name) (now_ns ()) 0

let counter name v =
  if !on then
    let b = my_buf () in
    push b 2 (intern_in b name) (now_ns ()) v

let counter_id id v =
  if !on then
    let b = my_buf () in
    push b 2 id (now_ns ()) v

type kind =
  | Span of { dur_ns : int }
  | Instant
  | Counter of int

type event = { lane : int; name : string; ts_ns : int; kind : kind }

let buf_events b acc =
  let n = min b.written capacity in
  let first = if b.written <= capacity then 0 else b.written mod capacity in
  let acc = ref acc in
  for k = 0 to n - 1 do
    let i = (first + k) mod capacity in
    let id = b.name_of.(i) in
    let name = if id < b.n_names then b.names.(id) else "?" in
    let kind =
      match Bytes.unsafe_get b.kinds i with
      | '\000' -> Span { dur_ns = b.aux_of.(i) }
      | '\001' -> Instant
      | _ -> Counter b.aux_of.(i)
    in
    acc := { lane = b.lane; name; ts_ns = b.ts_of.(i); kind } :: !acc
  done;
  !acc

let events () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  let evs = List.fold_left (fun acc b -> buf_events b acc) [] bufs in
  List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns) evs

let dropped () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  List.fold_left (fun acc b -> acc + max 0 (b.written - capacity)) 0 bufs

type hotspot = { hname : string; calls : int; total_ns : int; self_ns : int }

let hotspots () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  let merged : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun id (a : agg) ->
          let name = if id < b.n_names then b.names.(id) else "?" in
          match Hashtbl.find_opt merged name with
          | Some m ->
            m.calls <- m.calls + a.calls;
            m.total <- m.total + a.total;
            m.self <- m.self + a.self
          | None ->
            Hashtbl.add merged name
              { calls = a.calls; total = a.total; self = a.self })
        b.agg)
    bufs;
  Hashtbl.fold
    (fun name (a : agg) acc ->
      { hname = name; calls = a.calls; total_ns = a.total; self_ns = a.self }
      :: acc)
    merged []
  |> List.sort (fun a b ->
         match compare b.self_ns a.self_ns with
         | 0 -> compare a.hname b.hname
         | c -> c)
