(** Chrome trace-event JSON (the format read by [chrome://tracing] and
    Perfetto): builders for the event kinds the repo emits, conversion
    of live {!Trace} events, and a structural validator pinning the
    schema the tools and tests rely on.

    Only the "JSON object format" is produced: a top-level object with
    a [traceEvents] array.  Timestamps and durations are microseconds
    (floats); [pid]/[tid] pairs name the lanes. *)

open Rt_util

val complete :
  pid:int ->
  tid:int ->
  name:string ->
  ts_us:float ->
  dur_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  Json.t
(** A ["ph":"X"] complete event (one span bar). *)

val instant :
  pid:int -> tid:int -> name:string -> ts_us:float -> ?args:(string * Json.t) list -> unit -> Json.t
(** A ["ph":"i"] thread-scoped instant event (one tick mark). *)

val counter : pid:int -> tid:int -> name:string -> ts_us:float -> value:float -> Json.t
(** A ["ph":"C"] counter sample (rendered as a filled track). *)

val process_name : pid:int -> string -> Json.t
(** ["ph":"M"] metadata naming a pid lane group. *)

val thread_name : pid:int -> tid:int -> string -> Json.t
(** ["ph":"M"] metadata naming one tid lane. *)

val wrap : Json.t list -> Json.t
(** [{"traceEvents":[...]}]. *)

val to_string : Json.t list -> string

val write_file : string -> Json.t list -> unit

val of_trace : ?pid:int -> ?lane_name:(int -> string) -> Trace.event list -> Json.t list
(** Convert live recorder output ({!Trace.events}) to Chrome events:
    one tid lane per recording domain (named by [lane_name], default
    ["pool/<id>"]), spans as complete events, instants and counters as
    their Chrome counterparts.  Timestamps are shifted so the earliest
    event is at 0 and include the pid's [process_name] metadata
    (["runtime (wall clock)"]).  Default [pid] is 2 (pid 1 is the
    model-time export of a finished [Exec_trace]). *)

val validate : Json.t -> (unit, string) result
(** Structural schema check, pinned by [test_obs]: top level must be
    an object whose [traceEvents] member is an array; every event must
    be an object with string [name], string [ph] one of
    [X]/[i]/[C]/[M], integer [pid] and [tid], numeric [ts]; [X] events
    additionally need a non-negative numeric [dur]; [M] events must be
    [process_name]/[thread_name] with a string [args.name].  The
    error names the first offending event. *)
