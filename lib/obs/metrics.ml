open Rt_util

let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* Counters are striped per domain and merged on read: an increment
   lands in the stripe indexed by the caller's domain id, so concurrent
   workers (fuzz cases, shard engines) never bounce one cache line or
   CAS word between domains on the hot path.  Totals are exact — every
   increment is in exactly one stripe — so counter values stay
   deterministic across worker counts as long as the set of increments
   is.  [stripes] is a power of two; distinct live domains may share a
   stripe (ids are masked), which costs contention, never counts. *)
let stripes = 16

type counter = int Atomic.t array (* length [stripes] *)
type gauge = float Atomic.t

let stripe () = (Domain.self () :> int) land (stripes - 1)

type histogram = {
  bounds : float array;
  counts : int Atomic.t array;  (* bounds + 1, last = overflow *)
  hcount : int Atomic.t;
  mu : Mutex.t;  (* guards [sum]: no atomic float add *)
  mutable sum : float;
}

let reg_mu = Mutex.create ()
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock reg_mu;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v
  in
  Mutex.unlock reg_mu;
  v

let counter name =
  registered counters_tbl name (fun () ->
      Array.init stripes (fun _ -> Atomic.make 0))

let incr c = ignore (Atomic.fetch_and_add (Array.unsafe_get c (stripe ())) 1)
let add c n = ignore (Atomic.fetch_and_add (Array.unsafe_get c (stripe ())) n)
let counter_value c = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 c

let gauge name = registered gauges_tbl name (fun () -> Atomic.make 0.0)
let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram name ~buckets =
  let h =
    registered histograms_tbl name (fun () ->
        {
          bounds = Array.copy buckets;
          counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          hcount = Atomic.make 0;
          mu = Mutex.create ();
          sum = 0.0;
        })
  in
  if Array.length h.bounds <> Array.length buckets then
    invalid_arg ("Metrics.histogram: bucket mismatch for " ^ name);
  h

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  ignore (Atomic.fetch_and_add h.counts.(bucket_index h.bounds v) 1);
  ignore (Atomic.fetch_and_add h.hcount 1);
  Mutex.lock h.mu;
  h.sum <- h.sum +. v;
  Mutex.unlock h.mu

let bucket_counts h = Array.map Atomic.get h.counts
let histogram_count h = Atomic.get h.hcount

let histogram_sum h =
  Mutex.lock h.mu;
  let s = h.sum in
  Mutex.unlock h.mu;
  s

let sorted_bindings tbl =
  Mutex.lock reg_mu;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Mutex.unlock reg_mu;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters () =
  List.map (fun (k, c) -> (k, counter_value c)) (sorted_bindings counters_tbl)

let reset () =
  Mutex.lock reg_mu;
  Hashtbl.iter (fun _ c -> Array.iter (fun s -> Atomic.set s 0) c) counters_tbl;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.0) gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun c -> Atomic.set c 0) h.counts;
      Atomic.set h.hcount 0;
      Mutex.lock h.mu;
      h.sum <- 0.0;
      Mutex.unlock h.mu)
    histograms_tbl;
  Mutex.unlock reg_mu

let snapshot () =
  let counters =
    List.map (fun (k, c) -> (k, Json.Int (counter_value c))) (sorted_bindings counters_tbl)
  in
  let gauges =
    List.map (fun (k, g) -> (k, Json.Float (Atomic.get g))) (sorted_bindings gauges_tbl)
  in
  let histograms =
    List.map
      (fun (k, h) ->
        ( k,
          Json.Obj
            [
              ("bounds", Json.Arr (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
              ( "counts",
                Json.Arr
                  (Array.to_list (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts)) );
              ("count", Json.Int (Atomic.get h.hcount));
              ("sum", Json.Float (histogram_sum h));
            ] ))
      (sorted_bindings histograms_tbl)
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges); ("histograms", Json.Obj histograms) ]
