(** The multi-tenant FPPN service: a registry of co-resident
    applications, MPR admission control at the door, an async event
    queue at the side, and an epoch loop that runs every tenant's
    deterministic engine plan over the shared worker pool.

    Determinism contract: co-residency must be unobservable.  Every
    tenant's epoch is an independent {!Runtime.Engine.run} on its own
    elaborated network — tenants share worker domains and nothing else
    — so each tenant's output signature must equal the signature of the
    same epoch run standalone.  {!verify} checks exactly that, and the
    [@service-gate] build alias runs it over 100+ tenants.

    Metrics (under [service.*]): [events_ingested], [events_dropped]
    (illegal or unaddressed), [events_backpressure] (queue-full
    rejects), [epochs], [jobs_executed], [deadline_misses], and the
    [service.tenants] gauge. *)

type t

type epoch_report = {
  epoch : int;  (** 1-based epoch number just completed *)
  events_drained : int;  (** pulled off the queue this epoch *)
  events_dropped : int;  (** unknown tenant/process, out of horizon, or thinned by the [(m,T)] rule *)
  events_consumed : int;  (** fed into tenant engines this epoch *)
  jobs_executed : int;
  deadline_misses : int;
  wall_s : float;
}

val create : ?queue_capacity:int -> procs:int -> frames:int -> unit -> t
(** A service hosting tenants on [procs] shared processors, running
    [frames] hyperperiod frames per tenant per epoch.  [queue_capacity]
    (default 1024) bounds the ingestion queue.
    @raise Invalid_argument if [procs <= 0] or [frames <= 0]. *)

val procs : t -> int
val frames : t -> int
val tenants : t -> Tenant.t list
(** In registration order. *)

val find : t -> string -> Tenant.t option
val resident_interfaces : t -> Mpr.t list

val register :
  ?pool:Rt_util.Pool.t ->
  ?inputs:Fppn.Netstate.input_feed ->
  t ->
  name:string ->
  wcet:Taskgraph.Derive.wcet_map ->
  Fppn.Network.t ->
  (Tenant.t, Admission.reason) result
(** Admission: name uniqueness, the Prop. 3.1 load bound, MPR interface
    generation, composition with the resident interfaces
    ({!Admission.decide}), then construction of a feasible static
    schedule ({!Tenant.build_plan}) — any failure is a machine-readable
    {!Admission.reason}.  On success the tenant is resident and will
    run from the next epoch on.
    @raise Taskgraph.Derive.Error when the network is outside the
    derivable subclass. *)

val retire : t -> string -> bool
(** Removes a tenant; its reserved bandwidth is freed for future
    admissions.  [false] if no tenant has that name.  Never affects the
    verdict that admitted the remaining residents (composition is
    antitone in the set). *)

val submit : t -> tenant:string -> process:string -> stamp:Rt_util.Rat.t -> bool
(** Queue a sporadic event for [tenant]'s process, stamped relative to
    the {e next} epoch's origin.  Lock-free, callable from any domain.
    [false] = queue full (counted as backpressure). *)

val queue_pending : t -> int
val backpressure : t -> int

val run_epoch : ?pool:Rt_util.Pool.t -> t -> epoch_report
(** Drains the queue, legalizes each tenant's batch
    ({!Ingest.legalize}), then runs every tenant's epoch, in parallel
    over [pool] when given (each tenant is touched by exactly one
    worker; results are published by the pool join).  Tenant order
    never affects any tenant's output — each epoch is an independent
    engine run. *)

val verify : ?pool:Rt_util.Pool.t -> t -> (string * bool) list
(** The determinism oracle: for every tenant that has run at least one
    epoch, replay its most recent epoch standalone
    ({!Tenant.standalone_signature}) and compare signatures.  All
    [true] iff co-residency was unobservable. *)

val epoch_report_to_json : epoch_report -> Rt_util.Json.t
val status_json : t -> Rt_util.Json.t
(** Service-level snapshot: platform, tenant table (with interfaces),
    composed bandwidth, queue and counter state. *)
