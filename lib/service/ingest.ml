module Rat = Rt_util.Rat
module Mpsc_ring = Rt_util.Mpsc_ring
module Event = Fppn.Event

type event = { ev_tenant : string; ev_process : string; ev_stamp : Rat.t }

type t = { ring : event Mpsc_ring.t; refused : int Atomic.t }

let create ~capacity = { ring = Mpsc_ring.create ~capacity; refused = Atomic.make 0 }
let capacity t = Mpsc_ring.capacity t.ring

let submit t ev =
  let ok = Mpsc_ring.try_push t.ring ev in
  if not ok then Atomic.incr t.refused;
  ok

let drain ?max t = Mpsc_ring.drain ?max t.ring
let pending t = Mpsc_ring.length t.ring
let submitted t = Mpsc_ring.pushed t.ring
let rejected t = Atomic.get t.refused

(* Greedy thinning of one ascending stamp list against the (m, T)
   sporadic constraint.  Keeping a stamp [s] is safe iff fewer than [m]
   already-kept stamps lie in [(s - T, s]]: any violating window of an
   ascending trace is contained in the window ending at its own latest
   stamp, so checking each stamp at append time covers all windows. *)
let thin (gen : Event.t) stamps =
  let m = gen.Event.burst and t = gen.Event.period in
  let kept_rev, dropped =
    List.fold_left
      (fun (kept, dropped) s ->
        let lo = Rat.sub s t in
        let in_window =
          (* kept is descending, so stop at the first stamp <= lo *)
          let rec count acc = function
            | x :: rest when Rat.( > ) x lo -> count (acc + 1) rest
            | _ -> acc
          in
          count 0 kept
        in
        if in_window < m then (s :: kept, dropped) else (kept, dropped + 1))
      ([], 0) stamps
  in
  (List.rev kept_rev, dropped)

let legalize ~generators ~horizon events =
  let by_process = Hashtbl.create 8 in
  let dropped = ref 0 in
  List.iter
    (fun ev ->
      match List.assoc_opt ev.ev_process generators with
      | None -> incr dropped
      | Some _ when Rat.sign ev.ev_stamp < 0 || Rat.( >= ) ev.ev_stamp horizon ->
        incr dropped
      | Some _ ->
        let prev =
          Option.value (Hashtbl.find_opt by_process ev.ev_process) ~default:[]
        in
        Hashtbl.replace by_process ev.ev_process (ev.ev_stamp :: prev))
    events;
  let traces =
    List.filter_map
      (fun (name, gen) ->
        match Hashtbl.find_opt by_process name with
        | None -> None
        | Some stamps ->
          let kept, d = thin gen (List.sort Rat.compare stamps) in
          dropped := !dropped + d;
          if kept = [] then None else Some (name, kept))
      generators
  in
  (traces, !dropped)
