module Rat = Rt_util.Rat
module Json = Rt_util.Json
module Network = Fppn.Network
module Process = Fppn.Process
module Derive = Taskgraph.Derive
module Engine = Runtime.Engine

type plan = {
  net : Network.t;
  wcet : Derive.wcet_map;
  inputs : Fppn.Netstate.input_feed;
  derive : Derive.t;
  schedule : Sched.Static_schedule.t;
  n_procs : int;
}

let build_plan ?pool ?(inputs = Fppn.Netstate.no_inputs) ?derive ~min_procs
    ~max_procs ~wcet net =
  if min_procs < 1 || max_procs < min_procs then
    invalid_arg "Tenant.build_plan: bad processor range";
  let derive =
    match derive with Some d -> d | None -> Derive.derive_exn ~wcet net
  in
  let rec search m =
    if m > max_procs then Error max_procs
    else
      let _, chosen = Sched.List_scheduler.auto ?pool ~n_procs:m derive.Derive.graph in
      match chosen with
      | Some a ->
        Ok { net; wcet; inputs; derive; schedule = a.Sched.List_scheduler.schedule; n_procs = m }
      | None -> search (m + 1)
  in
  search min_procs

type t = {
  name : string;
  plan : plan;
  interface : Mpr.t;
  taskset : Mpr.task list;
  load : Rat.t;
  lower_bound : int;
  mutable epochs_run : int;
  mutable events_consumed : int;
  mutable last_events : (string * Rat.t list) list;
  mutable last_signature : (string * Fppn.Value.t list) list option;
}

let make ~name ~plan ~interface ~taskset ~load ~lower_bound =
  {
    name;
    plan;
    interface;
    taskset;
    load;
    lower_bound;
    epochs_run = 0;
    events_consumed = 0;
    last_events = [];
    last_signature = None;
  }

let hyperperiod t = t.plan.derive.Derive.hyperperiod

let sporadic_events t =
  let net = t.plan.net in
  List.filter_map
    (fun i ->
      let p = Network.process net i in
      if Process.is_sporadic p then Some (Process.name p, Process.event p)
      else None)
    (List.init (Network.n_processes net) Fun.id)

let config t ~frames ~sporadic =
  {
    Engine.platform = Runtime.Platform.create ~n_procs:t.plan.n_procs ();
    exec = Runtime.Exec_time.constant;
    frames;
    sporadic;
    inputs = t.plan.inputs;
  }

type outcome = {
  signature : (string * Fppn.Value.t list) list;
  executed : int;
  misses : int;
}

let run_epoch t ~frames ~sporadic =
  let cfg = config t ~frames ~sporadic in
  let r = Engine.run t.plan.net t.plan.derive t.plan.schedule cfg in
  let signature = Engine.signature r in
  t.epochs_run <- t.epochs_run + 1;
  t.events_consumed <-
    t.events_consumed
    + List.fold_left (fun acc (_, stamps) -> acc + List.length stamps) 0 sporadic;
  t.last_events <- sporadic;
  t.last_signature <- Some signature;
  {
    signature;
    executed = r.Engine.stats.Runtime.Exec_trace.executed;
    misses = r.Engine.stats.Runtime.Exec_trace.misses;
  }

let standalone_signature t ~frames =
  let cfg = config t ~frames ~sporadic:t.last_events in
  Engine.signature (Engine.run t.plan.net t.plan.derive t.plan.schedule cfg)

let to_json t =
  Json.Obj
    [
      ("name", Json.Str t.name);
      ("processes", Json.Int (Network.n_processes t.plan.net));
      ("procs", Json.Int t.plan.n_procs);
      ("hyperperiod_ms", Json.Float (Rat.to_float (hyperperiod t)));
      ("load", Json.Float (Rat.to_float t.load));
      ("lower_bound", Json.Int t.lower_bound);
      ("interface", Mpr.to_json t.interface);
      ("epochs_run", Json.Int t.epochs_run);
      ("events_consumed", Json.Int t.events_consumed);
    ]
