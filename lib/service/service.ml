module Rat = Rt_util.Rat
module Json = Rt_util.Json
module Pool = Rt_util.Pool
module Metrics = Fppn_obs.Metrics

let m_ingested = Metrics.counter "service.events_ingested"
let m_dropped = Metrics.counter "service.events_dropped"
let m_backpressure = Metrics.counter "service.events_backpressure"
let m_epochs = Metrics.counter "service.epochs"
let m_jobs = Metrics.counter "service.jobs_executed"
let m_misses = Metrics.counter "service.deadline_misses"
let g_tenants = Metrics.gauge "service.tenants"

type t = {
  procs : int;
  frames : int;
  queue : Ingest.t;
  mutable residents : Tenant.t list;  (* registration order *)
  mutable epochs : int;
  mutable dropped_total : int;
  mutable backpressure_seen : int;  (* Ingest rejects already counted *)
}

type epoch_report = {
  epoch : int;
  events_drained : int;
  events_dropped : int;
  events_consumed : int;
  jobs_executed : int;
  deadline_misses : int;
  wall_s : float;
}

let create ?(queue_capacity = 1024) ~procs ~frames () =
  if procs <= 0 then invalid_arg "Service.create: procs <= 0";
  if frames <= 0 then invalid_arg "Service.create: frames <= 0";
  {
    procs;
    frames;
    queue = Ingest.create ~capacity:queue_capacity;
    residents = [];
    epochs = 0;
    dropped_total = 0;
    backpressure_seen = 0;
  }

let procs t = t.procs
let frames t = t.frames
let tenants t = t.residents
let find t name = List.find_opt (fun ten -> ten.Tenant.name = name) t.residents

let resident_interfaces t =
  List.map (fun ten -> ten.Tenant.interface) t.residents

let register ?pool ?inputs t ~name ~wcet net =
  if find t name <> None then Error (Admission.Duplicate_tenant name)
  else
    let derive = Taskgraph.Derive.derive_exn ~wcet net in
    let cand = Admission.candidate ~name ~wcet net derive in
    match Admission.decide ~procs:t.procs ~resident:(resident_interfaces t) cand with
    | Admission.Rejected r -> Error r
    | Admission.Accepted interface -> (
      let min_procs = max 1 cand.Admission.c_lower_bound in
      match
        Tenant.build_plan ?pool ?inputs ~derive ~min_procs ~max_procs:t.procs
          ~wcet net
      with
      | Error searched -> Error (Admission.No_schedule { procs = searched })
      | Ok plan ->
        let ten =
          Tenant.make ~name ~plan ~interface ~taskset:cand.Admission.c_taskset
            ~load:cand.Admission.c_load
            ~lower_bound:cand.Admission.c_lower_bound
        in
        t.residents <- t.residents @ [ ten ];
        Metrics.set_gauge g_tenants (float_of_int (List.length t.residents));
        Ok ten)

let retire t name =
  let before = List.length t.residents in
  t.residents <- List.filter (fun ten -> ten.Tenant.name <> name) t.residents;
  let removed = List.length t.residents < before in
  if removed then
    Metrics.set_gauge g_tenants (float_of_int (List.length t.residents));
  removed

let submit t ~tenant ~process ~stamp =
  let ok =
    Ingest.submit t.queue
      { Ingest.ev_tenant = tenant; ev_process = process; ev_stamp = stamp }
  in
  if ok then Metrics.incr m_ingested;
  ok

let queue_pending t = Ingest.pending t.queue
let backpressure t = Ingest.rejected t.queue

let run_epoch ?pool t =
  let t0 = Fppn_obs.Trace.now_ns () in
  (* account queue-full rejects that accumulated since last epoch *)
  let bp = Ingest.rejected t.queue in
  Metrics.add m_backpressure (bp - t.backpressure_seen);
  t.backpressure_seen <- bp;
  let events = Ingest.drain t.queue in
  let drained = List.length events in
  let by_tenant = Hashtbl.create 16 in
  let unaddressed = ref 0 in
  List.iter
    (fun (ev : Ingest.event) ->
      if find t ev.Ingest.ev_tenant = None then incr unaddressed
      else
        let prev =
          Option.value (Hashtbl.find_opt by_tenant ev.Ingest.ev_tenant)
            ~default:[]
        in
        Hashtbl.replace by_tenant ev.Ingest.ev_tenant (ev :: prev))
    events;
  let legalized_for ten =
    match Hashtbl.find_opt by_tenant ten.Tenant.name with
    | None -> ([], 0)
    | Some evs ->
      let horizon =
        Rat.mul (Rat.of_int t.frames) (Tenant.hyperperiod ten)
      in
      Ingest.legalize
        ~generators:(Tenant.sporadic_events ten)
        ~horizon (List.rev evs)
  in
  let work =
    Array.of_list
      (List.map (fun ten -> (ten, legalized_for ten)) t.residents)
  in
  let dropped =
    !unaddressed
    + Array.fold_left (fun acc (_, (_, d)) -> acc + d) 0 work
  in
  let run (ten, (sporadic, _)) =
    Tenant.run_epoch ten ~frames:t.frames ~sporadic
  in
  let outcomes =
    match pool with
    | Some pool -> Pool.parallel_map pool run work
    | None -> Array.map run work
  in
  let consumed =
    Array.fold_left
      (fun acc (_, (sporadic, _)) ->
        acc
        + List.fold_left (fun a (_, stamps) -> a + List.length stamps) 0 sporadic)
      0 work
  in
  let jobs =
    Array.fold_left (fun acc (o : Tenant.outcome) -> acc + o.executed) 0 outcomes
  in
  let misses =
    Array.fold_left (fun acc (o : Tenant.outcome) -> acc + o.misses) 0 outcomes
  in
  t.epochs <- t.epochs + 1;
  t.dropped_total <- t.dropped_total + dropped;
  Metrics.incr m_epochs;
  Metrics.add m_dropped dropped;
  Metrics.add m_jobs jobs;
  Metrics.add m_misses misses;
  let wall_s =
    float_of_int (Fppn_obs.Trace.now_ns () - t0) /. 1e9
  in
  {
    epoch = t.epochs;
    events_drained = drained;
    events_dropped = dropped;
    events_consumed = consumed;
    jobs_executed = jobs;
    deadline_misses = misses;
    wall_s;
  }

let verify ?pool t =
  let ran =
    Array.of_list
      (List.filter (fun ten -> ten.Tenant.last_signature <> None) t.residents)
  in
  let check ten =
    let standalone = Tenant.standalone_signature ten ~frames:t.frames in
    (ten.Tenant.name, ten.Tenant.last_signature = Some standalone)
  in
  let results =
    match pool with
    | Some pool -> Pool.parallel_map pool check ran
    | None -> Array.map check ran
  in
  Array.to_list results

let epoch_report_to_json r =
  Json.Obj
    [
      ("epoch", Json.Int r.epoch);
      ("events_drained", Json.Int r.events_drained);
      ("events_dropped", Json.Int r.events_dropped);
      ("events_consumed", Json.Int r.events_consumed);
      ("jobs_executed", Json.Int r.jobs_executed);
      ("deadline_misses", Json.Int r.deadline_misses);
      ("wall_s", Json.Float r.wall_s);
    ]

let status_json t =
  let total_bandwidth =
    List.fold_left
      (fun acc ten -> Rat.add acc (Mpr.bandwidth ten.Tenant.interface))
      Rat.zero t.residents
  in
  Json.Obj
    [
      ("procs", Json.Int t.procs);
      ("frames", Json.Int t.frames);
      ("epochs", Json.Int t.epochs);
      ("tenants", Json.Arr (List.map Tenant.to_json t.residents));
      ("total_bandwidth", Json.Float (Rat.to_float total_bandwidth));
      ("queue_capacity", Json.Int (Ingest.capacity t.queue));
      ("queue_pending", Json.Int (Ingest.pending t.queue));
      ("events_submitted", Json.Int (Ingest.submitted t.queue));
      ("events_backpressure", Json.Int (Ingest.rejected t.queue));
      ("events_dropped", Json.Int t.dropped_total);
    ]
