module Json = Rt_util.Json

type admission_row = { row_name : string; row_decision : Admission.decision }

let admission_table ppf rows =
  let width =
    List.fold_left (fun acc r -> max acc (String.length r.row_name)) 6 rows
  in
  Format.fprintf ppf "%-*s  %-8s  %s@." width "tenant" "verdict"
    "interface / reason";
  List.iter
    (fun r ->
      match r.row_decision with
      | Admission.Accepted iface ->
        Format.fprintf ppf "%-*s  %-8s  %a@." width r.row_name "admitted"
          Mpr.pp iface
      | Admission.Rejected reason ->
        Format.fprintf ppf "%-*s  %-8s  %a@." width r.row_name "rejected"
          Admission.pp_reason reason)
    rows

let admission_json rows =
  Json.Arr
    (List.map
       (fun r ->
         match Admission.decision_to_json r.row_decision with
         | Json.Obj fields -> Json.Obj (("name", Json.Str r.row_name) :: fields)
         | other -> other)
       rows)

let serve_json ~status ~admissions ~epochs ~oracle =
  let base =
    [
      ("status", status);
      ("admissions", admission_json admissions);
      ("epochs", Json.Arr (List.map Service.epoch_report_to_json epochs));
    ]
  in
  let oracle_fields =
    match oracle with
    | None -> []
    | Some results ->
      [
        ( "oracle",
          Json.Obj
            (List.map (fun (name, ok) -> (name, Json.Bool ok)) results) );
        ("oracle_ok", Json.Bool (List.for_all snd results));
      ]
  in
  Json.Obj (base @ oracle_fields)
