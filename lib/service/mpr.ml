module Rat = Rt_util.Rat
module Json = Rt_util.Json
module Network = Fppn.Network
module Process = Fppn.Process
module Derive = Taskgraph.Derive

type task = {
  t_name : string;
  wcet : Rat.t;
  period : Rat.t;
  deadline : Rat.t;
}

let taskset_of_network ~wcet net (d : Derive.t) =
  List.init (Network.n_processes net) (fun i ->
      let proc = Network.process net i in
      let name = Process.name proc in
      let c = wcet name in
      let burst = Rat.of_int (Process.burst proc) in
      match Derive.server_of d i with
      | Some s ->
        (* sporadic folded to its m-periodic server, exactly as the
           derivation does: period T' = T_u(p) (or footnote 3's
           fraction), deadline d - T', burst jobs per server period *)
        {
          t_name = name;
          wcet = Rat.mul burst c;
          period = s.Derive.server_period;
          deadline = s.Derive.server_relative_deadline;
        }
      | None ->
        let t = Process.period proc in
        {
          t_name = name;
          wcet = Rat.mul burst c;
          period = t;
          deadline = Rat.min (Process.deadline proc) t;
        })

let utilization ts =
  List.fold_left (fun acc t -> Rat.add acc (Rat.div t.wcet t.period)) Rat.zero ts

let dbf t len =
  if Rat.( < ) len t.deadline then Rat.zero
  else
    let k = Rat.fdiv (Rat.sub len t.deadline) t.period + 1 in
    if k <= 0 then Rat.zero else Rat.mul (Rat.of_int k) t.wcet

type t = { period : Rat.t; budget : Rat.t; concurrency : int }

let bandwidth m = Rat.div m.budget m.period

let sbf m len =
  let open Rat in
  let blackout =
    of_int 2 * (m.period - (m.budget / of_int m.concurrency))
  in
  let supplied = bandwidth m * (len - blackout) in
  if Stdlib.( < ) (sign supplied) 0 then zero else supplied

(* Absolute-deadline checkpoints in (0, hyperperiod]: the points where
   total EDF demand steps.  Demand and (linear) supply are both
   right-continuous piecewise-linear with demand flat between
   checkpoints, so checking at the steps plus the horizon is exact for
   the horizon, and the slope condition extends the verdict beyond. *)
let checkpoints ts =
  match ts with
  | [] -> []
  | _ ->
    let hp = Rat.lcm_list (List.map (fun (t : task) -> t.period) ts) in
    let pts =
      List.concat_map
        (fun (t : task) ->
          let rec go k acc =
            let p = Rat.add t.deadline (Rat.mul (Rat.of_int k) t.period) in
            if Rat.( > ) p hp then acc else go (k + 1) (p :: acc)
          in
          go 0 [])
        ts
    in
    List.sort_uniq Rat.compare (hp :: pts)

let is_schedulable_edf ts m =
  match ts with
  | [] -> true
  | _ ->
    let cmax =
      List.fold_left (fun acc t -> Rat.max acc t.wcet) Rat.zero ts
    in
    let carry = Rat.mul (Rat.of_int m.concurrency) cmax in
    Rat.( <= ) (utilization ts) (bandwidth m)
    && List.for_all
         (fun p ->
           let demand =
             List.fold_left (fun acc t -> Rat.add acc (dbf t p)) carry ts
           in
           Rat.( <= ) demand (sbf m p))
         (checkpoints ts)

let default_period ts =
  let tmin =
    List.fold_left
      (fun acc (t : task) -> Rat.min acc (Rat.min t.period t.deadline))
      (List.hd ts : task).period ts
  in
  let p = Rat.div tmin (Rat.of_int 10) in
  if Rat.sign p > 0 then p else Rat.one

let generate_interface ?period ?(step = 64) ?max_concurrency ts =
  match ts with
  | [] -> Some { period = Rat.one; budget = Rat.zero; concurrency = 1 }
  | _ ->
    if step <= 0 then invalid_arg "Mpr.generate_interface: step <= 0";
    let pi = match period with Some p -> p | None -> default_period ts in
    if Rat.sign pi <= 0 then
      invalid_arg "Mpr.generate_interface: period <= 0";
    let u = utilization ts in
    let lo_m = max 1 (Rat.ceil u) in
    let hi_m =
      match max_concurrency with
      | Some m -> max lo_m m
      | None -> max lo_m (List.length ts)
    in
    let budget_of k = Rat.div (Rat.mul (Rat.of_int k) pi) (Rat.of_int step) in
    let rec try_m m' =
      if m' > hi_m then None
      else begin
        (* sbf is monotone in the budget, so binary search the grid
           Θ = k·Π/step for the smallest schedulable k *)
        let ok k = is_schedulable_edf ts { period = pi; budget = budget_of k; concurrency = m' } in
        let hi = m' * step in
        if not (ok hi) then try_m (m' + 1)
        else begin
          let lo = ref 0 and hi = ref hi in
          while !hi - !lo > 1 do
            let mid = (!lo + !hi) / 2 in
            if ok mid then hi := mid else lo := mid
          done;
          let k = if ok !lo then !lo else !hi in
          Some { period = pi; budget = budget_of k; concurrency = m' }
        end
      end
    in
    try_m lo_m

type overflow =
  | Utilization of { total : Rat.t; procs : int }
  | Concurrency of { required : int; procs : int }

let compose interfaces ~procs =
  if procs <= 0 then invalid_arg "Mpr.compose: procs <= 0";
  let total =
    List.fold_left (fun acc m -> Rat.add acc (bandwidth m)) Rat.zero interfaces
  in
  let required =
    List.fold_left (fun acc m -> max acc m.concurrency) 0 interfaces
  in
  if required > procs then Error (Concurrency { required; procs })
  else if Rat.( > ) total (Rat.of_int procs) then
    Error (Utilization { total; procs })
  else Ok ()

let to_json m =
  Json.Obj
    [
      ("period", Json.Str (Rat.to_string m.period));
      ("period_ms", Json.Float (Rat.to_float m.period));
      ("budget", Json.Str (Rat.to_string m.budget));
      ("budget_ms", Json.Float (Rat.to_float m.budget));
      ("concurrency", Json.Int m.concurrency);
      ("bandwidth", Json.Float (Rat.to_float (bandwidth m)));
    ]

let pp ppf m =
  Format.fprintf ppf "(Pi=%a, Theta=%a, m'=%d)" Rat.pp m.period Rat.pp m.budget
    m.concurrency
