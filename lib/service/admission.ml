module Rat = Rt_util.Rat
module Json = Rt_util.Json

type candidate = {
  c_name : string;
  c_load : Rat.t;
  c_lower_bound : int;
  c_taskset : Mpr.task list;
}

let candidate ~name ~wcet net (d : Taskgraph.Derive.t) =
  let g = d.Taskgraph.Derive.graph in
  let load = (Taskgraph.Analysis.load g).Taskgraph.Analysis.value in
  {
    c_name = name;
    c_load = load;
    c_lower_bound = Sched.Dimension.lower_bound g;
    c_taskset = Mpr.taskset_of_network ~wcet net d;
  }

type reason =
  | Duplicate_tenant of string
  | Load_bound of { load : Rat.t; lower_bound : int; procs : int }
  | No_interface of { utilization : Rat.t }
  | Compose_utilization of { total : Rat.t; procs : int }
  | Compose_concurrency of { required : int; procs : int }
  | No_schedule of { procs : int }

type decision = Accepted of Mpr.t | Rejected of reason

let decide ~procs ~resident c =
  if procs <= 0 then invalid_arg "Admission.decide: procs <= 0";
  if c.c_lower_bound > procs then
    Rejected (Load_bound { load = c.c_load; lower_bound = c.c_lower_bound; procs })
  else
    match Mpr.generate_interface c.c_taskset with
    | None ->
      Rejected (No_interface { utilization = Mpr.utilization c.c_taskset })
    | Some iface -> (
      match Mpr.compose (iface :: resident) ~procs with
      | Ok () -> Accepted iface
      | Error (Mpr.Utilization { total; procs }) ->
        Rejected (Compose_utilization { total; procs })
      | Error (Mpr.Concurrency { required; procs }) ->
        Rejected (Compose_concurrency { required; procs }))

let reason_to_json = function
  | Duplicate_tenant name ->
    Json.Obj [ ("code", Json.Str "duplicate_tenant"); ("name", Json.Str name) ]
  | Load_bound { load; lower_bound; procs } ->
    Json.Obj
      [
        ("code", Json.Str "load_bound");
        ("load", Json.Float (Rat.to_float load));
        ("lower_bound", Json.Int lower_bound);
        ("procs", Json.Int procs);
      ]
  | No_interface { utilization } ->
    Json.Obj
      [
        ("code", Json.Str "no_interface");
        ("utilization", Json.Float (Rat.to_float utilization));
      ]
  | Compose_utilization { total; procs } ->
    Json.Obj
      [
        ("code", Json.Str "compose_utilization");
        ("total_bandwidth", Json.Float (Rat.to_float total));
        ("procs", Json.Int procs);
      ]
  | Compose_concurrency { required; procs } ->
    Json.Obj
      [
        ("code", Json.Str "compose_concurrency");
        ("required", Json.Int required);
        ("procs", Json.Int procs);
      ]
  | No_schedule { procs } ->
    Json.Obj [ ("code", Json.Str "no_schedule"); ("procs", Json.Int procs) ]

let decision_to_json = function
  | Accepted iface ->
    Json.Obj [ ("accepted", Json.Bool true); ("interface", Mpr.to_json iface) ]
  | Rejected r ->
    Json.Obj [ ("accepted", Json.Bool false); ("reason", reason_to_json r) ]

let pp_reason ppf = function
  | Duplicate_tenant name -> Format.fprintf ppf "duplicate tenant %s" name
  | Load_bound { load; lower_bound; procs } ->
    Format.fprintf ppf "Prop. 3.1 load bound: Load=%a, ceil=%d > M=%d" Rat.pp
      load lower_bound procs
  | No_interface { utilization } ->
    Format.fprintf ppf "no MPR interface covers the demand (U=%a)" Rat.pp
      utilization
  | Compose_utilization { total; procs } ->
    Format.fprintf ppf "interface composition overflows: sum Theta/Pi = %a > M=%d"
      Rat.pp total procs
  | Compose_concurrency { required; procs } ->
    Format.fprintf ppf "interface needs m'=%d > M=%d processors" required procs
  | No_schedule { procs } ->
    Format.fprintf ppf "no feasible static schedule up to M=%d" procs

let pp_decision ppf = function
  | Accepted iface -> Format.fprintf ppf "accepted %a" Mpr.pp iface
  | Rejected r -> Format.fprintf ppf "rejected: %a" pp_reason r
