(** Multiprocessor periodic resource (MPR) interfaces for tenant
    admission, after Easwaran/Shin/Lee and the EVA-rt-Engine analysis
    line: a component's processor demand is abstracted into the triple
    [Γ = (Π, Θ, m')] — every period [Π] the platform supplies [Θ]
    units of execution with concurrency at most [m'].

    All arithmetic is exact ({!Rt_util.Rat}), in milliseconds like the
    rest of the repo.  A tenant's interface is generated from the
    demand-bound functions of its server-transformed process set
    (sporadic processes folded exactly as {!Taskgraph.Derive} folds
    them), checked with a global-EDF demand test against the
    interface's linear supply bound, and composed with the other
    resident tenants' interfaces onto the [M] shared processors. *)

type task = {
  t_name : string;
  wcet : Rt_util.Rat.t;  (** [C > 0]; servers carry [burst * C] *)
  period : Rt_util.Rat.t;  (** [T > 0]; servers carry [T'] *)
  deadline : Rt_util.Rat.t;  (** relative, clamped to [min d T] *)
}

val taskset_of_network :
  wcet:Taskgraph.Derive.wcet_map ->
  Fppn.Network.t ->
  Taskgraph.Derive.t ->
  task list
(** One implicit- or constrained-deadline task per process.  Periodic
    processes keep their own [(C·burst, T, min d T)]; sporadic
    processes are folded to their Sec. III-A server
    ([T' = ]{!Taskgraph.Derive.server_info.server_period},
    [d' = d − T'], demand [burst·C]), exactly mirroring the derivation
    the engine executes. *)

val utilization : task list -> Rt_util.Rat.t
(** [Σ C_i / T_i]. *)

val dbf : task -> Rt_util.Rat.t -> Rt_util.Rat.t
(** EDF demand bound of one task over any interval of length [t]:
    [max 0 (⌊(t − d)/T⌋ + 1) · C]. *)

type t = {
  period : Rt_util.Rat.t;  (** [Π > 0] *)
  budget : Rt_util.Rat.t;  (** [Θ], with [0 <= Θ <= m'·Π] *)
  concurrency : int;  (** [m' >= 1] *)
}

val bandwidth : t -> Rt_util.Rat.t
(** [Θ / Π] — the long-run fraction of the platform this interface
    reserves. *)

val sbf : t -> Rt_util.Rat.t -> Rt_util.Rat.t
(** Linear supply bound of the interface over an interval of length
    [t]: [max 0 ((Θ/Π) · (t − 2·(Π − Θ/m')))] — the standard sound
    linearization of the MPR supply, monotone in [Θ]. *)

val is_schedulable_edf : task list -> t -> bool
(** Global-EDF demand test: at every absolute-deadline checkpoint [t]
    up to the task set's hyperperiod,
    [Σ_i dbf_i(t) + m'·C_max <= sbf(t)] (the [m'·C_max] term is the
    BCL-style carry-in envelope), and the long-run demand slope fits
    the supply slope ([Σ C_i/T_i <= Θ/Π]).  The empty task set is
    schedulable by anything. *)

val generate_interface :
  ?period:Rt_util.Rat.t ->
  ?step:int ->
  ?max_concurrency:int ->
  task list ->
  t option
(** Smallest interface (first in concurrency, then in budget) under
    which {!is_schedulable_edf} holds.  [period] defaults to a tenth
    of the task set's smallest timing parameter (so the supply
    blackout [2(Π − Θ/m')] stays well inside every deadline); budgets
    are searched on the grid [Θ = k·Π/step] (default [step = 64],
    binary search — sound because {!sbf} is monotone in [Θ]);
    concurrency ranges from [⌈utilization⌉] to [max_concurrency]
    (default: the task count).  [None] when no interface within those
    bounds passes — the machine-readable "this tenant fits no MPR
    contract" verdict.  The result is independent of the platform
    size, which is what makes admission monotone in [M]. *)

type overflow =
  | Utilization of { total : Rt_util.Rat.t; procs : int }
      (** [Σ Θ_i/Π_i > M] *)
  | Concurrency of { required : int; procs : int }
      (** [max m'_i > M] *)

val compose : t list -> procs:int -> (unit, overflow) result
(** Can this set of interfaces be hosted on [M] processors?  Each
    interface is viewed as its [m'] periodic supply tasks of
    utilization [Θ/(m'Π)] ([<= 1] by construction); the set fits iff
    the total bandwidth fits the platform ([Σ Θ_i/Π_i <= M]) and no
    interface needs more parallelism than the platform has
    ([max m'_i <= M]).  Monotone in [M] and antitone in the interface
    set — retiring a tenant can only help the rest. *)

val to_json : t -> Rt_util.Json.t
(** [{"period_ms":p,"budget_ms":b,"concurrency":m,"bandwidth":w}] with
    exact values rendered as strings and [*_ms] floats. *)

val pp : Format.formatter -> t -> unit
