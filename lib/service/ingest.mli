(** Asynchronous sporadic-event ingestion.

    Producers on any domain {!submit} events into a bounded MPSC queue
    ({!Rt_util.Mpsc_ring}); the service thread {!drain}s the queue once
    per epoch and {!legalize}s each tenant's batch into sporadic traces
    the engine accepts: stamps clamped to the epoch horizon
    [\[0, frames·H)] and thinned to the generator's [(m, T)] sporadic
    constraint (at most [m] events in any half-closed window of length
    [T] — the same rule {!Fppn.Event.is_valid_sporadic_trace} checks
    and Fig. 2's window mapping assumes).  Events that do not fit are
    {e dropped and counted}, never silently reordered: determinism of
    the run is the tenant engine's job, admission of the event stream
    is this module's. *)

type event = {
  ev_tenant : string;
  ev_process : string;  (** sporadic process name within the tenant *)
  ev_stamp : Rt_util.Rat.t;  (** epoch-relative, in ms *)
}

type t

val create : capacity:int -> t
(** Bounded queue; capacity rounds up to a power of two (min 2). *)

val capacity : t -> int

val submit : t -> event -> bool
(** Lock-free, safe from any domain.  [false] means the queue was full
    (backpressure): the event is dropped and counted in {!rejected} —
    the producer decides whether to retry. *)

val drain : ?max:int -> t -> event list
(** Consumer only (the service epoch loop).  FIFO order. *)

val pending : t -> int

val submitted : t -> int
(** Accepted by {!submit} so far. *)

val rejected : t -> int
(** Refused by {!submit} (queue full) so far. *)

val legalize :
  generators:(string * Fppn.Event.t) list ->
  horizon:Rt_util.Rat.t ->
  event list ->
  (string * Rt_util.Rat.t list) list * int
(** One tenant's drained batch to engine-legal sporadic traces.
    Per process: stamps sorted ascending, then greedily kept while the
    trace stays valid (a stamp survives iff fewer than [m] kept stamps
    lie in its window [(s − T, s]] — sufficient for validity of the
    whole ascending trace).  Stamps outside [\[0, horizon)] and events
    naming no sporadic generator are dropped.  Returns the kept traces
    (only processes with at least one stamp) and the dropped count.
    The result always satisfies {!Fppn.Event.is_valid_sporadic_trace}. *)
