(** Human- and machine-readable reporting for the serve driver: the
    admission table (who got in, on what MPR contract, who was turned
    away and why) and the combined serve document written by
    [fppn-tool serve --json]. *)

type admission_row = {
  row_name : string;
  row_decision : Admission.decision;
}

val admission_table : Format.formatter -> admission_row list -> unit
(** Aligned text table: name, verdict, interface or rejection reason. *)

val admission_json : admission_row list -> Rt_util.Json.t
(** [[{"name": ..., "accepted": ..., ...}, ...]] — each row is
    {!Admission.decision_to_json} plus the candidate name. *)

val serve_json :
  status:Rt_util.Json.t ->
  admissions:admission_row list ->
  epochs:Service.epoch_report list ->
  oracle:(string * bool) list option ->
  Rt_util.Json.t
(** The full serve document: service status, admission table, per-epoch
    reports, and (when --verify ran) the per-tenant determinism oracle
    with an [oracle_ok] conjunction. *)
