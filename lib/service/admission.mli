(** Admission control for the multi-tenant service.

    A candidate is admitted when (1) it passes the Prop. 3.1 necessary
    condition on its own ([⌈Load⌉ <= M]), (2) an MPR interface exists
    for its demand ({!Mpr.generate_interface}), and (3) the interface
    composes with every resident tenant's interface on the [M] shared
    processors ({!Mpr.compose}).  Rejections carry a machine-readable
    reason.

    Both checks behind the verdict are monotone in [M] and antitone in
    the resident set (the interface itself is platform-independent), so
    a tenant set admitted on [M] processors is admitted on [M + 1], and
    retiring a tenant never flips a resident's verdict — properties
    pinned by the QCheck suite. *)

type candidate = {
  c_name : string;
  c_load : Rt_util.Rat.t;  (** Prop. 3.1 precedence-aware load *)
  c_lower_bound : int;  (** [⌈Load⌉] (or [max_int] if a job is infeasible) *)
  c_taskset : Mpr.task list;
}

val candidate :
  name:string ->
  wcet:Taskgraph.Derive.wcet_map ->
  Fppn.Network.t ->
  Taskgraph.Derive.t ->
  candidate
(** Folds the derived graph's load and the network's server-transformed
    task set into an admission candidate. *)

type reason =
  | Duplicate_tenant of string
  | Load_bound of { load : Rt_util.Rat.t; lower_bound : int; procs : int }
      (** Prop. 3.1: [⌈Load⌉ > M] (or a job cannot fit its window) *)
  | No_interface of { utilization : Rt_util.Rat.t }
      (** no MPR contract within the search bounds covers the demand *)
  | Compose_utilization of { total : Rt_util.Rat.t; procs : int }
      (** [Σ Θ_i/Π_i > M] with the candidate included *)
  | Compose_concurrency of { required : int; procs : int }
      (** [max m'_i > M] with the candidate included *)
  | No_schedule of { procs : int }
      (** the list scheduler found no feasible static order up to [M] *)

type decision = Accepted of Mpr.t | Rejected of reason

val decide : procs:int -> resident:Mpr.t list -> candidate -> decision
(** The admission test described above.  [resident] are the interfaces
    of the currently hosted tenants; [procs] the platform size [M].
    @raise Invalid_argument if [procs <= 0]. *)

val reason_to_json : reason -> Rt_util.Json.t
(** [{"code": "...", ...}] — one stable [code] per constructor plus the
    constructor's numeric fields, so callers can match rejections
    without parsing prose. *)

val decision_to_json : decision -> Rt_util.Json.t
val pp_reason : Format.formatter -> reason -> unit
val pp_decision : Format.formatter -> decision -> unit
