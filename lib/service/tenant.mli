(** A resident application of the multi-tenant service: an elaborated
    FPPN together with everything the service needs to run it
    deterministically — the Sec. III-A derivation, a feasible static
    schedule, the engine configuration, and the MPR interface admission
    granted it ({!Mpr.t}).

    A tenant's execution is {e epoch}-based: each epoch the service
    hands it the legalized sporadic events collected since the last
    epoch and runs [frames] hyperperiod frames of its own engine plan.
    The tenant records the events and the resulting output signature so
    {!Service.verify} can replay the exact same epoch standalone and
    compare — the per-tenant determinism oracle of the paper's
    Prop. 4.1, lifted to a shared host. *)

type plan = {
  net : Fppn.Network.t;
  wcet : Taskgraph.Derive.wcet_map;
  inputs : Fppn.Netstate.input_feed;
  derive : Taskgraph.Derive.t;
  schedule : Sched.Static_schedule.t;
  n_procs : int;  (** processors the static schedule occupies *)
}

val build_plan :
  ?pool:Rt_util.Pool.t ->
  ?inputs:Fppn.Netstate.input_feed ->
  ?derive:Taskgraph.Derive.t ->
  min_procs:int ->
  max_procs:int ->
  wcet:Taskgraph.Derive.wcet_map ->
  Fppn.Network.t ->
  (plan, int) result
(** Derives the task graph (or reuses [derive] if the caller already
    has it) and searches [M = min_procs, …, max_procs]
    for the first processor count where {!Sched.List_scheduler.auto}
    finds a feasible schedule.  [Error searched_up_to] when none is —
    the raw material for a [No_schedule] admission rejection.
    @raise Taskgraph.Derive.Error when the network is outside the
    derivable subclass.
    @raise Invalid_argument when [min_procs < 1] or
    [max_procs < min_procs]. *)

type t = {
  name : string;
  plan : plan;
  interface : Mpr.t;  (** the admitted MPR contract *)
  taskset : Mpr.task list;
  load : Rt_util.Rat.t;  (** Prop. 3.1 precedence-aware load *)
  lower_bound : int;  (** [⌈Load⌉] *)
  mutable epochs_run : int;
  mutable events_consumed : int;  (** sporadic events fed so far *)
  mutable last_events : (string * Rt_util.Rat.t list) list;
      (** the sporadic traces of the most recent epoch *)
  mutable last_signature : (string * Fppn.Value.t list) list option;
      (** output signature of the most recent epoch *)
}

val make :
  name:string ->
  plan:plan ->
  interface:Mpr.t ->
  taskset:Mpr.task list ->
  load:Rt_util.Rat.t ->
  lower_bound:int ->
  t

val hyperperiod : t -> Rt_util.Rat.t

val sporadic_events : t -> (string * Fppn.Event.t) list
(** The sporadic processes of the tenant's network with their
    generators, for event legalization ([(m, T)] window constraint and
    horizon clamp). *)

val config :
  t -> frames:int -> sporadic:(string * Rt_util.Rat.t list) list ->
  Runtime.Engine.config
(** The engine configuration for one epoch: the tenant's own platform
    size [plan.n_procs], constant execution times at WCET, the given
    legalized sporadic traces. *)

type outcome = {
  signature : (string * Fppn.Value.t list) list;
  executed : int;  (** jobs the engine ran this epoch *)
  misses : int;  (** deadline misses this epoch *)
}

val run_epoch :
  t -> frames:int -> sporadic:(string * Rt_util.Rat.t list) list -> outcome
(** Runs one epoch on the tenant's plan ({!Runtime.Engine.run}),
    records [sporadic] and the resulting signature on the tenant, and
    returns the outcome.  Raises as {!Runtime.Engine.run} (in
    particular on an illegal sporadic trace — the service legalizes
    before calling). *)

val standalone_signature :
  t -> frames:int -> (string * Fppn.Value.t list) list
(** The determinism oracle: re-runs the tenant's {e last} epoch (same
    events, same frames) as a fresh standalone sequential
    {!Runtime.Engine.run} and returns its signature.  Equal to
    [last_signature] iff co-residency did not perturb the tenant. *)

val to_json : t -> Rt_util.Json.t
