(** Discrete-event multiprocessor runtime implementing the online
    static-order scheduling policy (Sec. IV).

    The static schedule's frame is repeated with period [H].  On each
    processor, independently, the runtime picks its jobs in static-order
    and executes a {e round} per job:

    - {e Synchronize invocation}: wait for the event invocation of the
      current job.  Periodic jobs are invoked at [frame·H + A_i].  A
      sporadic (server) job slot is matched against the real sporadic
      events that arrived in its window; if fewer real events arrived
      than the slot's position, the job is marked ['false'] and skipped.
      The window is right-closed, [(b−T', b]], when the sporadic process
      has functional priority over its user ([p → u(p)]), and
      left-closed otherwise (Fig. 2).
    - {e Synchronize precedence}: wait until all task-graph predecessors
      (running on any processor) have completed in this frame.
    - {e Execute} the job, unless marked ['false'].

    Job bodies run against the shared network state, so the simulation
    produces real output data; comparing its channel histories with the
    zero-delay interpreter's is the determinism check of Prop. 2.1 /
    Prop. 4.1.

    The frame-management overhead measured in Sec. V-A is modelled by
    delaying every job of frame [f] by [Platform.frame_overhead] and by
    inflating execution times per channel access. *)

type config = {
  platform : Platform.t;
  exec : Exec_time.t;
  frames : int;  (** number of hyperperiod frames to simulate *)
  sporadic : (string * Rt_util.Rat.t list) list;
      (** absolute real event stamps per sporadic process, over the
          whole simulation [\[0, frames·H)] *)
  inputs : Fppn.Netstate.input_feed;
}

val default_config : ?frames:int -> n_procs:int -> unit -> config

(** Traces, histories and overhead segments are lazy: the compiled tick
    core keeps its records as packed integer arrays and only
    materializes the rational view on demand — callers that consume
    just [stats] (benchmarks, gates) never pay for it.  Use the
    accessors below; forcing is not synchronized across domains. *)
type result = {
  trace : Exec_trace.t Lazy.t;
  channel_history : (string * Fppn.Value.t list) list Lazy.t;
      (** [Value] is [Fppn.Value] *)
  output_history : (string * Fppn.Value.t list) list Lazy.t;
  stats : Exec_trace.stats;
  unhandled_events : (string * Rt_util.Rat.t) list;
      (** sporadic events falling in the final, unsimulated window *)
  overhead_segments : (int * Rt_util.Rat.t * Rt_util.Rat.t) list Lazy.t;
      (** per-frame runtime-overhead activity, for Fig. 6-style charts *)
}

val trace : result -> Exec_trace.t
(** Forces and returns the trace, sorted by
    (start, processor, frame, job). *)

val channel_history : result -> (string * Fppn.Value.t list) list
val output_history : result -> (string * Fppn.Value.t list) list
val overhead_segments : result -> (int * Rt_util.Rat.t * Rt_util.Rat.t) list

val run :
  Fppn.Network.t -> Taskgraph.Derive.t -> Sched.Static_schedule.t -> config -> result
(** Runs on the compiled integer-tick core whenever every model time
    fits a common {!Rt_util.Timebase} grid, falling back to the exact
    rational interpreter otherwise; both produce bit-identical results.
    @raise Invalid_argument if the schedule does not cover the derived
    graph, if [frames <= 0], or if a sporadic trace violates its
    generator's [(m,T)] constraint. *)

val run_sharded :
  ?shards:int ->
  Fppn.Network.t -> Taskgraph.Derive.t -> Sched.Static_schedule.t -> config -> result
(** {!run} on [shards] cooperating domains (default: the host's
    {!Rt_util.Pool.recommended_domains}, clamped to the platform's
    processor count).  The scheduled processors are cut into shards by
    {!Partition.make}; each shard first solves the integer timing
    recurrence for its own processors, exchanging the finish ticks of
    shard-crossing precedence edges through single-writer mailboxes
    drained at frame barriers (sense-reversing, with a bounded spin
    before parking on a condvar, so oversubscribed hosts do not burn a
    core per waiting shard), then re-executes the job bodies in
    (frame, start, processor, job) order with the same cross-shard
    waits.  The result — trace, channel and output histories, stats —
    is bit-identical to {!run}'s.

    Sharding engages only when the compiled plan has fixed, strictly
    positive tick durations, no per-access cost, and the static
    shardability certificate ({!Fppn_lint.Certificate}) proves every
    pair of jobs sharing a channel ordered by a precedence path — a
    process-level quotient argument, so there is no job-count cap;
    certification is DLS-memoized per network and its (one-off) cost
    is the [engine.certify_ticks] metric.  Otherwise (and on frame
    spill, i.e. overload past a frame boundary, or an order-infeasible
    schedule) the run transparently falls back to the sequential core,
    counted by the [engine.shard_fallbacks] metric.  Raises as
    {!run}. *)

val closure_conflicts_ordered : Taskgraph.Graph.t -> Fppn.Network.t -> bool
(** The legacy job-level check: every pair of jobs of
    channel-conflicting processes is ordered by a precedence path,
    decided with per-job descendant bitsets — O(J^2) bits, kept as the
    ground-truth oracle for the certificate (tests, fuzzing,
    {!closure_cross_check}).  No longer gates {!run_sharded}. *)

val closure_cross_check : bool ref
(** Debug mode (default [false]): when set, every {!run_sharded}
    shardability decision is re-derived with
    {!closure_conflicts_ordered} (timed into the
    [engine.closure_check_ticks] metric), and a certificate that
    accepts a network the job-closure rejects raises
    [Invalid_argument].  The reverse — certificate abstains where the
    closure would accept, e.g. beyond the class-sweep budget — is a
    permitted conservative fallback. *)

val run_reference :
  Fppn.Network.t -> Taskgraph.Derive.t -> Sched.Static_schedule.t -> config -> result
(** {!run} forced onto the exact rational interpreter core — the
    semantic ground truth the compiled tick core is differentially
    tested against.  Raises as {!run}. *)

val sporadic_assignment :
  Fppn.Network.t ->
  Taskgraph.Derive.t ->
  frames:int ->
  (string * Rt_util.Rat.t list) list ->
  ((int * int, Rt_util.Rat.t) Hashtbl.t * (string * Rt_util.Rat.t) list)
(** The window mapping of Sec. IV / Fig. 2, exposed for the
    timed-automata backend and for tests: maps [(server job id, frame)]
    to the real event stamp that slot handles; the second component
    lists the events left for the window after the simulated horizon. *)

val signature : result -> (string * Fppn.Value.t list) list
(** Channel write sequences (internal + external outputs), sorted by
    name — directly comparable with [Fppn.Semantics.signature]. *)
