module Rat = Rt_util.Rat

type record = {
  job : int;
  label : string;
  frame : int;
  proc : int;
  invoked : Rat.t;
  start : Rat.t;
  finish : Rat.t;
  deadline : Rat.t;
  skipped : bool;
}

type t = record list

(* Materialize one block of records kept by the tick engine as packed
   parallel int arrays (times in grid ticks of denominator [den]).
   Replayed hyperperiod frames are the same block under a tick/frame
   shift, so the engine's lazy trace is a fold of [of_ticks] calls over
   decreasing shifts — rationals are only ever built here, on demand. *)
let of_ticks ~den ~labels ~procs ~count ~job ~frame ~invoked ~start ~finish
    ~deadline ~skipped ~tick_shift ~frame_shift acc =
  let rat k = if den = 1 then Rat.of_int k else Rat.make k den in
  let acc = ref acc in
  for i = count - 1 downto 0 do
    let j = job.(i) in
    acc :=
      {
        job = j;
        label = labels.(j);
        frame = frame.(i) + frame_shift;
        proc = procs.(j);
        invoked = rat (invoked.(i) + tick_shift);
        start = rat (start.(i) + tick_shift);
        finish = rat (finish.(i) + tick_shift);
        deadline = rat (deadline.(i) + tick_shift);
        skipped = Bytes.get skipped i <> '\000';
      }
      :: !acc
  done;
  !acc

let missed r = (not r.skipped) && Rat.(r.finish > r.deadline)
let response_time r = Rat.sub r.finish r.invoked

type stats = {
  executed : int;
  skipped : int;
  misses : int;
  max_response : Rat.t;
  frames : int;
}

let stats t =
  List.fold_left
    (fun (acc : stats) (r : record) ->
      if r.skipped then { acc with skipped = acc.skipped + 1 }
      else
        {
          acc with
          executed = acc.executed + 1;
          misses = (acc.misses + if missed r then 1 else 0);
          max_response = Rat.max acc.max_response (response_time r);
          frames = max acc.frames (r.frame + 1);
        })
    { executed = 0; skipped = 0; misses = 0; max_response = Rat.zero; frames = 0 }
    t

let misses_by_process t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if missed r then begin
        (* strip the [k] suffix to aggregate per process *)
        let name =
          match String.index_opt r.label '[' with
          | Some i -> String.sub r.label 0 i
          | None -> r.label
        in
        let prev = try Hashtbl.find tbl name with Not_found -> 0 in
        Hashtbl.replace tbl name (prev + 1)
      end)
    t;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

type process_stats = {
  process : string;
  p_executed : int;
  p_skipped : int;
  p_misses : int;
  p_max_response : Rat.t;
  p_mean_response_ms : float;
}

let by_process t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let name =
        match String.index_opt r.label '[' with
        | Some i -> String.sub r.label 0 i
        | None -> r.label
      in
      let executed, skipped, misses, max_r, sum_r =
        try Hashtbl.find tbl name with Not_found -> (0, 0, 0, Rat.zero, 0.0)
      in
      let entry =
        if r.skipped then (executed, skipped + 1, misses, max_r, sum_r)
        else
          let resp = response_time r in
          ( executed + 1,
            skipped,
            (misses + if missed r then 1 else 0),
            Rat.max max_r resp,
            sum_r +. Rat.to_float resp )
      in
      Hashtbl.replace tbl name entry)
    t;
  List.sort
    (fun a b -> String.compare a.process b.process)
    (Hashtbl.fold
       (fun process (p_executed, p_skipped, p_misses, p_max_response, sum) acc ->
         {
           process;
           p_executed;
           p_skipped;
           p_misses;
           p_max_response;
           p_mean_response_ms =
             (if p_executed = 0 then 0.0 else sum /. float_of_int p_executed);
         }
         :: acc)
       tbl [])

let pp_by_process ppf stats =
  Format.fprintf ppf "%-22s %8s %8s %7s %12s %12s@." "process" "executed"
    "skipped" "misses" "max resp ms" "mean resp ms";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-22s %8d %8d %7d %12.2f %12.2f@." s.process
        s.p_executed s.p_skipped s.p_misses
        (Rat.to_float s.p_max_response)
        s.p_mean_response_ms)
    stats

let utilization ~n_procs ~span t =
  if Rat.sign span <= 0 then
    invalid_arg "Exec_trace.utilization: span must be positive";
  let busy = Array.make n_procs Rat.zero in
  List.iter
    (fun (r : record) ->
      if (not r.skipped) && r.proc >= 0 && r.proc < n_procs then
        busy.(r.proc) <- Rat.add busy.(r.proc) (Rat.sub r.finish r.start))
    t;
  Array.map (fun b -> Rat.to_float b /. Rat.to_float span) busy

type violation =
  | Wcet_exceeded of record
  | Started_before_invocation of record
  | Precedence_violated of { pred : record; succ : record }
  | Processor_overlap of record * record

let pp_violation ppf = function
  | Wcet_exceeded r ->
    Format.fprintf ppf "%s (frame %d) ran for %a ms, beyond its WCET" r.label
      r.frame Rat.pp (Rat.sub r.finish r.start)
  | Started_before_invocation r ->
    Format.fprintf ppf "%s (frame %d) started at %a before its invocation %a"
      r.label r.frame Rat.pp r.start Rat.pp r.invoked
  | Precedence_violated { pred; succ } ->
    Format.fprintf ppf "%s started at %a before its predecessor %s finished at %a"
      succ.label Rat.pp succ.start pred.label Rat.pp pred.finish
  | Processor_overlap (a, b) ->
    Format.fprintf ppf "%s and %s overlap on processor %d" a.label b.label a.proc

let check g t =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let executed = List.filter (fun (r : record) -> not r.skipped) t in
  (* per-job-instance checks; note that skipped jobs discharge their
     precedence obligations at their (zero-length) skip instant *)
  List.iter
    (fun (r : record) ->
      let j = Taskgraph.Graph.job g r.job in
      if Rat.(Rat.sub r.finish r.start > j.Taskgraph.Job.wcet) then
        add (Wcet_exceeded r);
      if Rat.(r.start < r.invoked) then add (Started_before_invocation r))
    executed;
  (* precedence per frame, over all records (skips included as preds) *)
  let by_key = Hashtbl.create 64 in
  List.iter (fun (r : record) -> Hashtbl.replace by_key (r.job, r.frame) r) t;
  Hashtbl.iter
    (fun (job, frame) (succ : record) ->
      if not succ.skipped then
        List.iter
          (fun pred_id ->
            match Hashtbl.find_opt by_key (pred_id, frame) with
            | Some pred when Rat.(pred.finish > succ.start) ->
              add (Precedence_violated { pred; succ })
            | _ -> ())
          (Taskgraph.Graph.preds g job))
    by_key;
  (* mutual exclusion per processor *)
  let by_proc = Hashtbl.create 8 in
  List.iter
    (fun (r : record) ->
      Hashtbl.replace by_proc r.proc
        (r :: (try Hashtbl.find by_proc r.proc with Not_found -> [])))
    executed;
  Hashtbl.iter
    (fun _ records ->
      let sorted =
        List.sort (fun (a : record) b -> Rat.compare a.start b.start) records
      in
      let rec scan = function
        | a :: (b :: _ as rest) ->
          if Rat.(a.finish > b.start) then add (Processor_overlap (a, b));
          scan rest
        | [ _ ] | [] -> ()
      in
      scan sorted)
    by_proc;
  List.rev !violations

let to_gantt_rows ?(runtime_row = []) t =
  let n_procs =
    List.fold_left (fun acc r -> max acc (r.proc + 1)) 1 t
  in
  let proc_rows =
    List.init n_procs (fun p ->
        let segments =
          List.filter_map
            (fun r ->
              if r.proc = p && not r.skipped then
                Some
                  {
                    Rt_util.Gantt.start = Rat.to_float r.start;
                    finish = Rat.to_float r.finish;
                    label = r.label;
                  }
              else None)
            t
        in
        { Rt_util.Gantt.name = Printf.sprintf "M%d" (p + 1); segments })
  in
  if runtime_row = [] then proc_rows
  else
    proc_rows
    @ [
        {
          Rt_util.Gantt.name = "runtime";
          segments =
            List.map
              (fun (frame, from, till) ->
                {
                  Rt_util.Gantt.start = Rat.to_float from;
                  finish = Rat.to_float till;
                  label = Printf.sprintf "frame%d" frame;
                })
              runtime_row;
        };
      ]

let pp_stats ppf s =
  Format.fprintf ppf
    "executed %d jobs (%d skipped) over %d frame(s): %d deadline miss(es), max response %a ms"
    s.executed s.skipped s.frames s.misses Rat.pp s.max_response
