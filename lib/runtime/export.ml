module Rat = Rt_util.Rat
module Json = Rt_util.Json

let record_json (r : Exec_trace.record) =
  Json.Obj
    [
      ("job", Json.Int r.Exec_trace.job);
      ("label", Json.Str r.Exec_trace.label);
      ("frame", Json.Int r.Exec_trace.frame);
      ("proc", Json.Int r.Exec_trace.proc);
      ("invoked", Json.Str (Rat.to_string r.Exec_trace.invoked));
      ("start", Json.Str (Rat.to_string r.Exec_trace.start));
      ("finish", Json.Str (Rat.to_string r.Exec_trace.finish));
      ("deadline", Json.Str (Rat.to_string r.Exec_trace.deadline));
      ("invoked_ms", Json.Float (Rat.to_float r.Exec_trace.invoked));
      ("start_ms", Json.Float (Rat.to_float r.Exec_trace.start));
      ("finish_ms", Json.Float (Rat.to_float r.Exec_trace.finish));
      ("deadline_ms", Json.Float (Rat.to_float r.Exec_trace.deadline));
      ("skipped", Json.Bool r.Exec_trace.skipped);
      ("missed", Json.Bool (Exec_trace.missed r));
    ]

let record_to_json r = Json.to_string (record_json r)

let to_json trace =
  "[\n  " ^ String.concat ",\n  " (List.map record_to_json trace) ^ "\n]\n"

let csv_header = "job,label,frame,proc,invoked_ms,start_ms,finish_ms,deadline_ms,skipped,missed"

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let record_to_csv (r : Exec_trace.record) =
  Printf.sprintf "%d,%s,%d,%d,%g,%g,%g,%g,%b,%b" r.Exec_trace.job
    (escape_csv r.Exec_trace.label)
    r.Exec_trace.frame r.Exec_trace.proc
    (Rat.to_float r.Exec_trace.invoked)
    (Rat.to_float r.Exec_trace.start)
    (Rat.to_float r.Exec_trace.finish)
    (Rat.to_float r.Exec_trace.deadline)
    r.Exec_trace.skipped (Exec_trace.missed r)

let to_csv trace =
  String.concat "\n" (csv_header :: List.map record_to_csv trace) ^ "\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* --- Chrome trace-event export ----------------------------------------- *)

(* Model time is in milliseconds (rationals); Chrome timestamps are
   microseconds, so 1 model ms maps to 1000 ticks on the trace
   timeline.  One tid lane per processor, named like the Gantt rows. *)

let chrome_pid = 1

let to_chrome trace =
  let module Chrome = Fppn_obs.Chrome in
  let us r = Rat.to_float r *. 1000.0 in
  let n_procs =
    List.fold_left (fun m (r : Exec_trace.record) -> max m (r.Exec_trace.proc + 1)) 0 trace
  in
  let meta =
    Chrome.process_name ~pid:chrome_pid "engine (model time)"
    :: List.init n_procs (fun p ->
           Chrome.thread_name ~pid:chrome_pid ~tid:(p + 1) (Printf.sprintf "M%d" (p + 1)))
  in
  let events =
    List.concat_map
      (fun (r : Exec_trace.record) ->
        let tid = r.Exec_trace.proc + 1 in
        let args =
          [
            ("job", Json.Int r.Exec_trace.job);
            ("frame", Json.Int r.Exec_trace.frame);
            ("deadline_ms", Json.Float (Rat.to_float r.Exec_trace.deadline));
          ]
        in
        let body =
          if r.Exec_trace.skipped then
            [
              Chrome.instant ~pid:chrome_pid ~tid
                ~name:("skipped: " ^ r.Exec_trace.label)
                ~ts_us:(us r.Exec_trace.invoked) ~args ();
            ]
          else
            [
              Chrome.complete ~pid:chrome_pid ~tid ~name:r.Exec_trace.label
                ~ts_us:(us r.Exec_trace.start)
                ~dur_us:(us Rat.(sub r.Exec_trace.finish r.Exec_trace.start))
                ~args ();
            ]
        in
        if Exec_trace.missed r then
          body
          @ [
              Chrome.instant ~pid:chrome_pid ~tid
                ~name:("deadline miss: " ^ r.Exec_trace.label)
                ~ts_us:(us r.Exec_trace.deadline) ~args ();
            ]
        else body)
      trace
  in
  meta @ events
