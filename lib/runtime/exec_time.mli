(** Execution-time models.

    The static schedule is computed from WCETs; at run time jobs may
    finish earlier.  Prop. 4.1 states the static-order policy stays
    correct for {e any} execution times up to the WCET — the jittered
    model exercises exactly that robustness claim. *)

type t

val constant : t
(** Every job takes exactly its WCET. *)

val uniform : seed:int -> min_fraction:float -> t
(** Each job's duration is uniform in
    [\[min_fraction·C_i, C_i\]], drawn from a deterministic PRNG
    (quantized to 1/1000 of the WCET so durations remain small
    rationals).
    @raise Invalid_argument unless [0 <= min_fraction <= 1]. *)

val scaled : float -> t
(** Every job takes [fraction·C_i] (quantized to 1/1000); useful for
    granularity sweeps.  [fraction] may exceed 1 to model WCET
    under-estimation (measurement-based WCETs, Sec. V). *)

val profile : (string -> Rt_util.Rat.t) -> t
(** Fixed duration per process name.  The function must be pure: tick
    compilation samples it once per job at setup ({!durations}), and
    an impure profile would then diverge from the rational reference,
    which samples per execution. *)

val sample : t -> Taskgraph.Job.t -> Rt_util.Rat.t
(** Duration of one job instance.  Stateful for {!uniform}. *)

val is_constant : t -> bool
(** [true] iff {!sample} always returns the job's WCET ({!constant}) —
    lets compiled engines use a precomputed duration table. *)

(** How a compiled engine can obtain durations without sampling
    rationals in its hot loop. *)
type durations =
  | Fixed of Rt_util.Rat.t array
      (** deterministic per job: [durations.(job)] is the exact value
          {!sample} returns for that job on every invocation
          ({!constant}, {!scaled}, {!profile}) *)
  | Extras of Rt_util.Rat.t list
      (** durations must still be drawn per execution ({!uniform}),
          but every possible draw lands on a {!Rt_util.Timebase} grid
          that covers these extra rationals *)
  | Opaque
      (** not representable at setup (overflowing quantization, raising
          profile) — callers must stay on the exact rational path *)

val durations : t -> jobs:Taskgraph.Job.t array -> durations
(** Compiles the model against a concrete job set; [Fixed] durations
    also make whole-frame replay sound, since the schedule of a frame
    then depends only on the frame's sporadic stamps. *)
