(** Execution-time models.

    The static schedule is computed from WCETs; at run time jobs may
    finish earlier.  Prop. 4.1 states the static-order policy stays
    correct for {e any} execution times up to the WCET — the jittered
    model exercises exactly that robustness claim. *)

type t

val constant : t
(** Every job takes exactly its WCET. *)

val uniform : seed:int -> min_fraction:float -> t
(** Each job's duration is uniform in
    [\[min_fraction·C_i, C_i\]], drawn from a deterministic PRNG
    (quantized to 1/1000 of the WCET so durations remain small
    rationals).
    @raise Invalid_argument unless [0 <= min_fraction <= 1]. *)

val scaled : float -> t
(** Every job takes [fraction·C_i] (quantized to 1/1000); useful for
    granularity sweeps.  [fraction] may exceed 1 to model WCET
    under-estimation (measurement-based WCETs, Sec. V). *)

val profile : (string -> Rt_util.Rat.t) -> t
(** Fixed duration per process name. *)

val sample : t -> Taskgraph.Job.t -> Rt_util.Rat.t
(** Duration of one job instance.  Stateful for {!uniform}. *)

val is_constant : t -> bool
(** [true] iff {!sample} always returns the job's WCET ({!constant}) —
    lets compiled engines use a precomputed duration table. *)

val tick_extras : t -> wcets:Rt_util.Rat.t list -> Rt_util.Rat.t list option
(** Rationals whose denominators cover every duration {!sample} can
    return for jobs drawn from [wcets], for seeding a
    {!Rt_util.Timebase}.  [None] when durations are unpredictable at
    setup ({!profile}) — callers must then stay on the exact rational
    path. *)
