module Rat = Rt_util.Rat
module Prng = Rt_util.Prng

type t =
  | Constant
  | Uniform of { prng : Prng.t; min_fraction : float }
  | Scaled of float
  | Profile of (string -> Rat.t)

let constant = Constant

let uniform ~seed ~min_fraction =
  if min_fraction < 0.0 || min_fraction > 1.0 then
    invalid_arg "Exec_time.uniform: min_fraction must be in [0,1]";
  Uniform { prng = Prng.create seed; min_fraction }

let scaled fraction =
  if fraction < 0.0 then invalid_arg "Exec_time.scaled: negative fraction";
  Scaled fraction

let profile f = Profile f

let is_constant = function Constant -> true | _ -> false

let quantized_fraction wcet fraction =
  (* wcet * round(fraction * 1000) / 1000, keeping denominators small *)
  let milli = int_of_float (Float.round (fraction *. 1000.0)) in
  Rat.mul wcet (Rat.make milli 1000)

type durations =
  | Fixed of Rat.t array
  | Extras of Rat.t list
  | Opaque

let durations t ~jobs =
  match t with
  | Constant -> Fixed (Array.map (fun j -> j.Taskgraph.Job.wcet) jobs)
  | Scaled f -> (
    try
      Fixed (Array.map (fun j -> quantized_fraction j.Taskgraph.Job.wcet f) jobs)
    with Rat.Overflow -> Opaque)
  | Profile p -> (
    (* deterministic per process, so one setup-time sample per job
       covers the whole run; a raising profile degrades to [Opaque] *)
    try Fixed (Array.map (fun j -> p j.Taskgraph.Job.proc_name) jobs)
    with _ -> Opaque)
  (* [quantized_fraction] yields wcet·milli/1000, whose denominator
     always divides den(wcet)·1000 — covering that product per distinct
     WCET makes every possible runtime draw land on the tick grid *)
  | Uniform _ -> (
    try
      Extras
        (Array.to_list
           (Array.map
              (fun j ->
                let d = Rat.den j.Taskgraph.Job.wcet in
                if d > max_int / 1000 then raise Rat.Overflow
                else Rat.make 1 (d * 1000))
              jobs))
    with Rat.Overflow -> Opaque)

let sample t (job : Taskgraph.Job.t) =
  match t with
  | Constant -> job.Taskgraph.Job.wcet
  | Uniform { prng; min_fraction } ->
    let f = Prng.float_in prng min_fraction 1.0 in
    quantized_fraction job.Taskgraph.Job.wcet f
  | Scaled f -> quantized_fraction job.Taskgraph.Job.wcet f
  | Profile p -> p job.Taskgraph.Job.proc_name
