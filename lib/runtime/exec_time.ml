module Rat = Rt_util.Rat
module Prng = Rt_util.Prng

type t =
  | Constant
  | Uniform of { prng : Prng.t; min_fraction : float }
  | Scaled of float
  | Profile of (string -> Rat.t)

let constant = Constant

let uniform ~seed ~min_fraction =
  if min_fraction < 0.0 || min_fraction > 1.0 then
    invalid_arg "Exec_time.uniform: min_fraction must be in [0,1]";
  Uniform { prng = Prng.create seed; min_fraction }

let scaled fraction =
  if fraction < 0.0 then invalid_arg "Exec_time.scaled: negative fraction";
  Scaled fraction

let profile f = Profile f

let is_constant = function Constant -> true | _ -> false

let quantized_fraction wcet fraction =
  (* wcet * round(fraction * 1000) / 1000, keeping denominators small *)
  let milli = int_of_float (Float.round (fraction *. 1000.0)) in
  Rat.mul wcet (Rat.make milli 1000)

let tick_extras t ~wcets =
  match t with
  | Constant -> Some []
  (* [quantized_fraction] yields wcet·milli/1000, whose denominator
     always divides den(wcet)·1000 — covering that product per distinct
     WCET makes every possible sample land on the tick grid *)
  | Uniform _ | Scaled _ -> (
    try
      Some
        (List.map
           (fun w ->
             let d = Rat.den w in
             if d > max_int / 1000 then raise Rat.Overflow
             else Rat.make 1 (d * 1000))
           wcets)
    with Rat.Overflow -> None)
  (* arbitrary user function: durations are not predictable at setup *)
  | Profile _ -> None

let sample t (job : Taskgraph.Job.t) =
  match t with
  | Constant -> job.Taskgraph.Job.wcet
  | Uniform { prng; min_fraction } ->
    let f = Prng.float_in prng min_fraction 1.0 in
    quantized_fraction job.Taskgraph.Job.wcet f
  | Scaled f -> quantized_fraction job.Taskgraph.Job.wcet f
  | Profile p -> p job.Taskgraph.Job.proc_name
