(** K-way processor partitioning for the sharded engine.

    Cuts the scheduled processor set into [K] shards, trying to keep
    precedence-coupled processors co-sharded (few cross-shard task
    edges means few mailbox synchronisations per frame) while keeping
    the Prop. 3.1 per-shard load — the summed WCET demand of each
    shard's processors over one frame — balanced.  The placement is a
    deterministic greedy pass (MHEFT-flavoured: heaviest processor
    first, strongest-affinity shard under a 1.1x balance cap wins), so
    a given (graph, schedule, K) always yields the same partition. *)

type t = {
  shards : int;  (** effective shard count, clamped to [1 .. n_procs] *)
  shard_of_proc : int array;
  procs_of_shard : int array array;  (** ascending processor ids *)
  load : float array;  (** per-shard Prop. 3.1 load (WCET sum) *)
  cut_edges : int;  (** task-graph edges crossing shards *)
  total_edges : int;
}

val make : shards:int -> Taskgraph.Derive.t -> Sched.Static_schedule.t -> t
(** [make ~shards derived sched] partitions [sched]'s processors.
    [shards] is clamped to [1 .. n_procs]. *)

val shards : t -> int
val shard_of_proc : t -> int -> int
val procs_of_shard : t -> int -> int array
val cut_edges : t -> int
val total_edges : t -> int
val load : t -> float array
val pp : Format.formatter -> t -> unit
