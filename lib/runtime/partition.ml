module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Static_schedule = Sched.Static_schedule

type t = {
  shards : int;
  shard_of_proc : int array;
  procs_of_shard : int array array;
  load : float array;
  cut_edges : int;
  total_edges : int;
}

let shards t = t.shards
let shard_of_proc t p = t.shard_of_proc.(p)
let procs_of_shard t s = t.procs_of_shard.(s)
let cut_edges t = t.cut_edges
let total_edges t = t.total_edges
let load t = t.load

(* Greedy MHEFT-flavoured placement: processors in decreasing Prop. 3.1
   load order, each placed on the shard with the strongest precedence
   affinity among those still under the balance cap (average shard load
   plus ten percent); when every shard is over the cap, all of them are
   candidates again so the heaviest processors still spread.  Ties fall
   to the lighter shard, then the lower index, so the cut is a pure
   function of (graph, schedule, shards). *)
let make ~shards (derived : Derive.t) sched =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let n_procs = Static_schedule.n_procs sched in
  let k = max 1 (min shards (max 1 n_procs)) in
  let proc_of = Array.init n (Static_schedule.proc sched) in
  (* per-processor load: sum of scheduled jobs' WCETs (Prop. 3.1's
     per-resource demand over one frame) *)
  let jobs = Graph.jobs g in
  let proc_load = Array.make (max 1 n_procs) 0.0 in
  for j = 0 to n - 1 do
    proc_load.(proc_of.(j)) <-
      proc_load.(proc_of.(j)) +. Rat.to_float jobs.(j).Job.wcet
  done;
  (* inter-processor precedence weight, dense: processor counts are
     small (schedules name each resource explicitly) *)
  let edges = Graph.edges g in
  let weight = Array.make_matrix (max 1 n_procs) (max 1 n_procs) 0 in
  let total_edges = ref 0 in
  List.iter
    (fun (u, v) ->
      incr total_edges;
      let pu = proc_of.(u) and pv = proc_of.(v) in
      if pu <> pv then begin
        weight.(pu).(pv) <- weight.(pu).(pv) + 1;
        weight.(pv).(pu) <- weight.(pv).(pu) + 1
      end)
    edges;
  let order = Array.init n_procs Fun.id in
  Array.sort
    (fun a b ->
      let c = compare proc_load.(b) proc_load.(a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let total_load = Array.fold_left ( +. ) 0.0 proc_load in
  let cap = 1.1 *. total_load /. float_of_int k in
  let shard_of_proc = Array.make (max 1 n_procs) 0 in
  let shard_load = Array.make k 0.0 in
  let members = Array.make k [] in
  Array.iter
    (fun p ->
      let affinity s =
        List.fold_left (fun acc q -> acc + weight.(p).(q)) 0 members.(s)
      in
      let fits s = shard_load.(s) +. proc_load.(p) <= cap in
      let any_fits =
        let rec go s = s < k && (fits s || go (s + 1)) in
        go 0
      in
      let best = ref 0 and best_aff = ref min_int in
      for s = 0 to k - 1 do
        if (not any_fits) || fits s then begin
          let a = affinity s in
          if
            a > !best_aff
            || (a = !best_aff && shard_load.(s) < shard_load.(!best))
          then begin
            best := s;
            best_aff := a
          end
        end
      done;
      shard_of_proc.(p) <- !best;
      shard_load.(!best) <- shard_load.(!best) +. proc_load.(p);
      members.(!best) <- p :: members.(!best))
    order;
  let procs_of_shard =
    Array.map (fun l -> Array.of_list (List.sort Int.compare l)) members
  in
  let cut_edges =
    List.fold_left
      (fun acc (u, v) ->
        if shard_of_proc.(proc_of.(u)) <> shard_of_proc.(proc_of.(v)) then
          acc + 1
        else acc)
      0 edges
  in
  {
    shards = k;
    shard_of_proc;
    procs_of_shard;
    load = shard_load;
    cut_edges;
    total_edges = !total_edges;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d shard(s), cut %d/%d precedence edge(s)@," t.shards
    t.cut_edges t.total_edges;
  Array.iteri
    (fun s procs ->
      Format.fprintf ppf "  shard %d: procs [%s], load %.3f@," s
        (String.concat ";" (Array.to_list (Array.map string_of_int procs)))
        t.load.(s))
    t.procs_of_shard;
  Format.fprintf ppf "@]"
