(** Execution traces of the multiprocessor runtime and their statistics
    (the data behind a Fig. 6-style Gantt chart and the deadline-miss
    counts of Sec. V). *)

type record = {
  job : int;  (** task-graph job id *)
  label : string;  (** [p\[k\]] *)
  frame : int;
  proc : int;
  invoked : Rt_util.Rat.t;
      (** absolute invocation stamp (a sporadic job's real event time) *)
  start : Rt_util.Rat.t;  (** absolute *)
  finish : Rt_util.Rat.t;
  deadline : Rt_util.Rat.t;
      (** absolute deadline of the real event: invocation + d_p *)
  skipped : bool;  (** a server slot marked ['false'] (no real event) *)
}

type t = record list

val of_ticks :
  den:int ->
  labels:string array ->
  procs:int array ->
  count:int ->
  job:int array ->
  frame:int array ->
  invoked:int array ->
  start:int array ->
  finish:int array ->
  deadline:int array ->
  skipped:Bytes.t ->
  tick_shift:int ->
  frame_shift:int ->
  t ->
  t
(** Prepends [count] records held as packed parallel arrays of grid
    ticks (denominator [den]) onto an accumulator, adding [tick_shift]
    ticks to every time and [frame_shift] to every frame index —
    the materialization step of the tick engine's lazy traces, where a
    replayed hyperperiod frame is the recorded template block under a
    shift.  [labels] and [procs] are indexed by job id. *)

val missed : record -> bool
(** [finish > deadline], never true of skipped jobs. *)

val response_time : record -> Rt_util.Rat.t
(** [finish − invoked]. *)

type stats = {
  executed : int;
  skipped : int;
  misses : int;
  max_response : Rt_util.Rat.t;
  frames : int;
}

val stats : t -> stats

val misses_by_process : t -> (string * int) list
(** Processes with at least one miss, sorted by name. *)

type process_stats = {
  process : string;
  p_executed : int;
  p_skipped : int;
  p_misses : int;
  p_max_response : Rt_util.Rat.t;
  p_mean_response_ms : float;
}

val by_process : t -> process_stats list
(** Per-process response-time and miss statistics, sorted by name. *)

val pp_by_process : Format.formatter -> process_stats list -> unit
(** Tabular rendering. *)

val utilization : n_procs:int -> span:Rt_util.Rat.t -> t -> float array
(** Fraction of [span] each processor spent executing (skips excluded).
    @raise Invalid_argument on a non-positive span. *)

type violation =
  | Wcet_exceeded of record  (** ran longer than [C_i] *)
  | Started_before_invocation of record
  | Precedence_violated of { pred : record; succ : record }
      (** a task-graph edge, same frame, successor started too early *)
  | Processor_overlap of record * record

val pp_violation : Format.formatter -> violation -> unit

val check : Taskgraph.Graph.t -> t -> violation list
(** Validates that an execution trace complies with the real-time
    semantics of Sec. II (the conditions Prop. 4.1 promises): every job
    within its WCET, no start before invocation, task-graph precedence
    respected within each frame, and mutual exclusion per processor.
    Returns all violations (empty = compliant).  Used as a self-check on
    the engines in the test suite. *)

val to_gantt_rows : ?runtime_row:(int * Rt_util.Rat.t * Rt_util.Rat.t) list -> t -> Rt_util.Gantt.row list
(** One row per processor.  [runtime_row] optionally appends the
    per-frame runtime-overhead activity as an extra "runtime" row, as in
    Fig. 6 ([frame, busy-from, busy-to] triples). *)

val pp_stats : Format.formatter -> stats -> unit
