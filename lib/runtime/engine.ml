module Rat = Rt_util.Rat
module Timebase = Rt_util.Timebase
module Pqueue = Rt_util.Pqueue
module Iheap = Rt_util.Iheap
module Trace = Fppn_obs.Trace
module Metrics = Fppn_obs.Metrics
module Network = Fppn.Network
module Process = Fppn.Process
module Event = Fppn.Event
module Netstate = Fppn.Netstate
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Static_schedule = Sched.Static_schedule

type config = {
  platform : Platform.t;
  exec : Exec_time.t;
  frames : int;
  sporadic : (string * Rat.t list) list;
  inputs : Netstate.input_feed;
}

let default_config ?(frames = 1) ~n_procs () =
  {
    platform = Platform.create ~n_procs ();
    exec = Exec_time.constant;
    frames;
    sporadic = [];
    inputs = Netstate.no_inputs;
  }

(* Traces, histories and overhead segments are produced lazily: the
   compiled core keeps its records as packed int arrays and most
   consumers (benchmarks, statistics, gates) never look at the rational
   view, so materializing it per run would dominate both time and
   allocation of short simulations.  Forcing is not synchronized —
   a result is meant to be consumed by the domain that ran it. *)
type result = {
  trace : Exec_trace.t Lazy.t;
  channel_history : (string * Fppn.Value.t list) list Lazy.t;
  output_history : (string * Fppn.Value.t list) list Lazy.t;
  stats : Exec_trace.stats;
  unhandled_events : (string * Rat.t) list;
  overhead_segments : (int * Rat.t * Rat.t) list Lazy.t;
}

let trace r = Lazy.force r.trace
let channel_history r = Lazy.force r.channel_history
let output_history r = Lazy.force r.output_history
let overhead_segments r = Lazy.force r.overhead_segments

(* Map every (server job id, frame) to the real sporadic event it
   handles, applying the Fig. 2 boundary rule.  Returns the map plus the
   events that fall beyond the last simulated window. *)
let assign_sporadic_events net (derived : Derive.t) ~frames ~hyperperiod traces =
  let g = derived.Derive.graph in
  let assigned : (int * int, Rat.t) Hashtbl.t = Hashtbl.create 64 in
  let unhandled = ref [] in
  List.iter
    (fun (s : Derive.server_info) ->
      let p = s.Derive.sporadic in
      let name = Process.name (Network.process net p) in
      let stamps =
        match List.assoc_opt name traces with Some l -> l | None -> []
      in
      let ev = Process.event (Network.process net p) in
      if not (Event.is_valid_sporadic_trace ev stamps) then
        invalid_arg
          (Printf.sprintf "Engine.run: sporadic trace of %S violates (m,T)" name);
      let ts = s.Derive.server_period in
      let burst = Process.burst (Network.process net p) in
      let slots_per_frame = Rat.to_int_exn (Rat.div hyperperiod ts) in
      let in_window ~b stamp =
        let lo = Rat.sub b ts in
        if s.Derive.boundary_closed_right then Rat.(stamp > lo) && Rat.(stamp <= b)
        else Rat.(stamp >= lo) && Rat.(stamp < b)
      in
      let consumed = Hashtbl.create 16 in
      (* no real events: every slot of this server is 'false' and the
         whole window scan (frames · slots rational steps) is a no-op *)
      if stamps <> [] then
      for frame = 0 to frames - 1 do
        for slot = 1 to slots_per_frame do
          let rel = Rat.mul ts (Rat.of_int (slot - 1)) in
          let b = Rat.add (Rat.mul hyperperiod (Rat.of_int frame)) rel in
          (* positions within the subset, in stamp order *)
          let idx = ref 0 in
          List.iteri
            (fun i stamp ->
              if (not (Hashtbl.mem consumed i)) && in_window ~b stamp then begin
                incr idx;
                if !idx <= burst then begin
                  Hashtbl.replace consumed i ();
                  let k = ((slot - 1) * burst) + !idx in
                  let job_id = Graph.find_job g ~proc:p ~k in
                  Hashtbl.replace assigned (job_id, frame) stamp
                end
              end)
            stamps
        done
      done;
      List.iteri
        (fun i stamp ->
          if not (Hashtbl.mem consumed i) then
            unhandled := (name, stamp) :: !unhandled)
        stamps)
    derived.Derive.servers;
  (assigned, List.rev !unhandled)

let sporadic_assignment net derived ~frames traces =
  assign_sporadic_events net derived ~frames
    ~hyperperiod:derived.Derive.hyperperiod traces

type proc_state = {
  order : int array;
  mutable frame : int;
  mutable pos : int;
  mutable busy_until : Rat.t option;
  mutable running : (int * Exec_trace.record) option;
      (** job id + its record-in-progress while busy *)
}

(* Validation + sporadic-window assignment shared by both interpreter
   cores. *)
let prologue net (derived : Derive.t) sched config =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  if config.frames <= 0 then invalid_arg "Engine.run: frames must be positive";
  if Static_schedule.n_jobs sched <> n then
    invalid_arg "Engine.run: schedule does not cover the task graph";
  if Static_schedule.n_procs sched <> config.platform.Platform.n_procs then
    invalid_arg "Engine.run: schedule and platform processor counts differ";
  List.iter
    (fun (name, _) ->
      let p =
        try Network.find net name
        with Not_found ->
          invalid_arg (Printf.sprintf "Engine.run: unknown process %S" name)
      in
      if not (Process.is_sporadic (Network.process net p)) then
        invalid_arg
          (Printf.sprintf "Engine.run: %S is periodic, not sporadic" name))
    config.sporadic;
  assign_sporadic_events net derived ~frames:config.frames
    ~hyperperiod:derived.Derive.hyperperiod config.sporadic

let overhead_segments_of config ~frame_base ~overhead_end =
  List.filter_map
    (fun frame ->
      let from = frame_base frame and till = overhead_end frame in
      if Rat.(till > from) then Some (frame, from, till) else None)
    (List.init config.frames Fun.id)

(* ------------------------------------------------------------------ *)
(* Reference core: exact rational arithmetic, polling fixpoint.         *)
(*                                                                      *)
(* This is the seed interpreter, kept verbatim as the semantic ground   *)
(* truth the compiled tick core is differentially tested against.       *)
(* ------------------------------------------------------------------ *)

let exec_rat net (derived : Derive.t) sched config ~assigned ~unhandled_events =
  let g = derived.Derive.graph in
  let h = derived.Derive.hyperperiod in
  let state = Netstate.create net in
  let n_procs = config.platform.Platform.n_procs in
  let procs =
    Array.init n_procs (fun p ->
        {
          order = Static_schedule.order_on sched p;
          frame = 0;
          pos = 0;
          busy_until = None;
          running = None;
        })
  in
  (* completions.(job) = number of frames in which the job has completed
     (executed or skipped); job j of frame f is done iff > f *)
  let n = Graph.n_jobs g in
  let completions = Array.make n 0 in
  let records = ref [] in
  let events = Pqueue.create ~cmp:Rat.compare in
  let now = ref Rat.zero in
  let frame_base frame = Rat.mul h (Rat.of_int frame) in
  let overhead_end frame =
    Rat.add (frame_base frame)
      (Platform.frame_overhead config.platform ~frame)
  in
  let preds_done frame job =
    List.for_all (fun p -> completions.(p) > frame) (Graph.preds g job)
  in
  let relative_deadline job =
    Process.deadline (Network.process net (Graph.job g job).Job.proc)
  in
  (* one attempt to make progress on processor [p]; true if state changed *)
  let advance ps =
    match ps.busy_until with
    | Some t when Rat.(t <= !now) ->
      (* job completes *)
      let job, record = Option.get ps.running in
      completions.(job) <- completions.(job) + 1;
      records := { record with Exec_trace.finish = t } :: !records;
      ps.busy_until <- None;
      ps.running <- None;
      ps.pos <- ps.pos + 1;
      if ps.pos >= Array.length ps.order then begin
        ps.pos <- 0;
        ps.frame <- ps.frame + 1
      end;
      true
    | Some _ -> false
    | None ->
      if ps.frame >= config.frames || Array.length ps.order = 0 then false
      else begin
        let job = ps.order.(ps.pos) in
        let j = Graph.job g job in
        let base = frame_base ps.frame in
        (* For periodic jobs the invocation occurs at A_i.  For server
           slots the real event may arrive earlier, but only at the
           boundary b = A_i can a slot be declared 'false' (Sec. IV), so
           the round synchronizes on A_i in both cases — conservative
           and sufficient for Prop. 4.1. *)
        let invocation = Rat.add base j.Job.arrival in
        let earliest = Rat.max invocation (overhead_end ps.frame) in
        if Rat.(earliest > !now) then begin
          Pqueue.push events earliest;
          false
        end
        else if not (preds_done ps.frame job) then false
        else begin
          let stamp =
            if j.Job.is_server then Hashtbl.find_opt assigned (job, ps.frame)
            else Some (Rat.add base j.Job.arrival)
          in
          match stamp with
          | None ->
            (* 'false' job: skip without executing *)
            let b = Rat.add base j.Job.arrival in
            records :=
              {
                Exec_trace.job;
                label = Job.label j;
                frame = ps.frame;
                proc = Static_schedule.proc sched job;
                invoked = b;
                start = !now;
                finish = !now;
                deadline = Rat.add b (relative_deadline job);
                skipped = true;
              }
              :: !records;
            completions.(job) <- completions.(job) + 1;
            ps.pos <- ps.pos + 1;
            if ps.pos >= Array.length ps.order then begin
              ps.pos <- 0;
              ps.frame <- ps.frame + 1
            end;
            true
          | Some invoked ->
            (* execute the job body now; duration covers the WCET model
               plus per-access synchronisation overhead *)
            let accesses = ref 0 in
            let recorder = function
              | Fppn.Trace.Read _ | Fppn.Trace.Write _ -> incr accesses
              | _ -> ()
            in
            Netstate.run_job ~recorder ~inputs:config.inputs state
              ~proc:j.Job.proc ~now:invoked;
            let duration =
              Rat.add
                (Exec_time.sample config.exec j)
                (Rat.mul
                   config.platform.Platform.overhead.Platform.per_access
                   (Rat.of_int !accesses))
            in
            let finish = Rat.add !now duration in
            ps.busy_until <- Some finish;
            ps.running <-
              Some
                ( job,
                  {
                    Exec_trace.job;
                    label = Job.label j;
                    frame = ps.frame;
                    proc = Static_schedule.proc sched job;
                    invoked;
                    start = !now;
                    finish;
                    deadline = Rat.add invoked (relative_deadline job);
                    skipped = false;
                  } );
            Pqueue.push events finish;
            true
        end
      end
  in
  Pqueue.push events Rat.zero;
  let rec fixpoint () =
    let changed = Array.fold_left (fun acc ps -> advance ps || acc) false procs in
    if changed then fixpoint ()
  in
  let rec loop () =
    (* blocked processors re-push [earliest] on every poll; coalescing
       the duplicates here skips the no-op fixpoint per duplicate *)
    match Pqueue.pop_distinct events with
    | None -> ()
    | Some t ->
      if Rat.(t >= !now) then begin
        now := t;
        fixpoint ()
      end;
      loop ()
  in
  loop ();
  let trace =
    List.sort
      (fun (a : Exec_trace.record) b ->
        let c = Rat.compare a.start b.start in
        if c <> 0 then c
        else
          let c = Int.compare a.proc b.proc in
          if c <> 0 then c
          else
            let c = Int.compare a.frame b.frame in
            if c <> 0 then c else Int.compare a.job b.job)
      !records
  in
  {
    trace = Lazy.from_val trace;
    channel_history = lazy (Netstate.channel_history state);
    output_history = lazy (Netstate.output_history state);
    stats = Exec_trace.stats trace;
    unhandled_events;
    overhead_segments =
      lazy (overhead_segments_of config ~frame_base ~overhead_end);
  }

(* ------------------------------------------------------------------ *)
(* Compiled core: integer tick timeline, wake-list scheduling.          *)
(*                                                                      *)
(* Setup maps every model time onto the common-denominator tick grid    *)
(* of a [Timebase]; the event loop then runs on machine integers, and   *)
(* a completion re-examines only the processors registered on the       *)
(* completed job's wake list instead of polling all of them.  The       *)
(* transition order of the reference fixpoint (ascending processor      *)
(* index per sweep, sweeps repeated until quiescent) is replicated      *)
(* exactly, so execution-time PRNG draws, channel operations and trace  *)
(* records are bit-identical to [exec_rat]'s.                           *)
(* ------------------------------------------------------------------ *)

type tick_plan = {
  tb : Timebase.t;
  h_t : int;  (* hyperperiod *)
  first_t : int;  (* frame overheads *)
  steady_t : int;
  per_access_t : int;
  arr_t : int array;  (* per job: phase within the frame *)
  dl_rel_t : int array;  (* per job: relative deadline of its process *)
  is_server : bool array;
  proc_of : int array;  (* per job: scheduled processor *)
  body_proc : int array;  (* per job: network process index *)
  stamp_t : (int * int, int) Hashtbl.t;  (* (job, frame) -> event ticks *)
  dur_t : int array option;
      (* per job: fixed duration ticks; [None] = draw per execution *)
}

type tick_proc = {
  t_order : int array;
  mutable t_frame : int;
  mutable t_pos : int;
  mutable t_busy : bool;
  (* the record-in-progress while busy, final since start time *)
  mutable t_job : int;
  mutable t_invoked : int;
  mutable t_start : int;
  mutable t_finish : int;
  mutable t_deadline : int;
  mutable t_missing : int;  (* wake-list registrations outstanding *)
}

(* index of the only set bit of [b] *)
let bit_index b =
  let i = ref 0 and b = ref b in
  while !b land 1 = 0 do
    if !b land 0xffffffff = 0 then begin
      b := !b lsr 32;
      i := !i + 32
    end
    else if !b land 0xff = 0 then begin
      b := !b lsr 8;
      i := !i + 8
    end
    else begin
      b := !b lsr 1;
      incr i
    end
  done;
  !i

(* Compile the run onto a tick grid, or [None] when any time cannot be
   represented (unpredictable execution-time model, common-denominator
   overflow, horizon too large) — the caller then uses the exact
   rational core, so compilation failures degrade, never crash. *)
let tick_compile net (derived : Derive.t) sched config ~assigned =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let jobs = Graph.jobs g in
  match Exec_time.durations config.exec ~jobs with
  | Exec_time.Opaque -> None
  | (Exec_time.Fixed _ | Exec_time.Extras _) as durs -> (
    let dur_times =
      match durs with
      | Exec_time.Fixed a -> Array.to_list a
      | Exec_time.Extras l -> l
      | Exec_time.Opaque -> []
    in
    match
      let ov = config.platform.Platform.overhead in
      let times =
        derived.Derive.hyperperiod :: ov.Platform.first_frame
        :: ov.Platform.steady_frame :: ov.Platform.per_access
        :: Hashtbl.fold (fun _ stamp acc -> stamp :: acc) assigned []
        @ dur_times
        @ Array.to_list (Array.map (fun j -> j.Job.wcet) jobs)
        @ Array.to_list (Array.map (fun j -> j.Job.arrival) jobs)
        @ List.init (Network.n_processes net) (fun p ->
              Process.deadline (Network.process net p))
      in
      let horizon =
        Rat.mul derived.Derive.hyperperiod (Rat.of_int config.frames)
      in
      Timebase.create ~horizon times
    with
    | exception Rat.Overflow -> None
    | None -> None
    | Some tb -> (
      let ov = config.platform.Platform.overhead in
      match
        let tk = Timebase.ticks tb in
        let stamp_t = Hashtbl.create (Hashtbl.length assigned) in
        Hashtbl.iter (fun key s -> Hashtbl.replace stamp_t key (tk s)) assigned;
        {
          tb;
          h_t = tk derived.Derive.hyperperiod;
          first_t = tk ov.Platform.first_frame;
          steady_t = tk ov.Platform.steady_frame;
          per_access_t = tk ov.Platform.per_access;
          arr_t = Array.map (fun j -> tk j.Job.arrival) jobs;
          dl_rel_t =
            Array.map
              (fun j -> tk (Process.deadline (Network.process net j.Job.proc)))
              jobs;
          is_server = Array.map (fun j -> j.Job.is_server) jobs;
          proc_of = Array.init n (Static_schedule.proc sched);
          body_proc = Array.map (fun j -> j.Job.proc) jobs;
          stamp_t;
          dur_t =
            (match durs with
            | Exec_time.Fixed a -> Some (Array.map tk a)
            | Exec_time.Extras _ | Exec_time.Opaque -> None);
        }
      with
      | plan -> Some plan
      | exception (Timebase.Inexact | Rat.Overflow) -> None))

(* Pooled network state, one per domain: building instances, channel
   states, route tables and prepared job contexts costs microseconds,
   and repeated runs over the same network (benchmarks, fuzz campaigns,
   periodic re-simulation) reuse the previous run's state after a
   [reset].  Results stay valid across reuse because they capture
   history {e snapshots} (see {!Fppn.Channel.snapshot}), never the
   state itself. *)
let state_pool_key : (Network.t * Netstate.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let pooled_state net =
  let pool = Domain.DLS.get state_pool_key in
  match !pool with
  | Some (pn, st) when pn == net ->
    Netstate.reset st;
    st
  | _ ->
    let st = Netstate.create net in
    pool := Some (net, st);
    st

(* Per-plan engine scratch: every working array of [exec_ticks] whose
   shape depends only on the compiled plan and the schedule.  The plan
   memo hands back the same plan object across repeated identical runs,
   so keying on physical equality of (plan, schedule) makes reruns pay
   a handful of [Array.fill]s instead of rebuilding the dependence
   segments and reallocating a dozen arrays. *)
type tick_scratch = {
  sc_plan : tick_plan;
  sc_sched : Static_schedule.t;
  sc_procs : tick_proc array;
  sc_completions : int array;
  (* flat predecessor segments, and per-job waiter segments sized by
     out-degree: a processor registers on a job only while its current
     job has it as predecessor, and distinct registrants host distinct
     successors, so out-degree bounds each segment.  A completion then
     walks just its own segment — no list cell is ever consed. *)
  sc_pred_off : int array;
  sc_pred_job : int array;
  sc_succ_off : int array;
  sc_w_proc : int array;
  sc_w_frame : int array;
  sc_w_len : int array;
  (* completed records as packed parallel arrays (grown on demand) *)
  sc_s_job : int array ref;
  sc_s_frame : int array ref;
  sc_s_invoked : int array ref;
  sc_s_start : int array ref;
  sc_s_finish : int array ref;
  sc_s_deadline : int array ref;
  sc_s_skip : Bytes.t ref;
  (* replay template, captured in job start order *)
  sc_p_job : int array;
  sc_p_invoked : int array;
  sc_p_start : int array;
  sc_p_finish : int array;
  sc_p_deadline : int array;
  sc_p_skip : Bytes.t;
  sc_events : Iheap.t;
  sc_hot : int array;
  (* compacted replay program (executed bodies + deduped invocation
     instants) and its precomputed rationals.  The template is a pure
     function of (plan, sched, frames), so across runs on one scratch
     the program is rebuilt in place and the rationals are reused
     unless a tick actually changed — the steady-frame loop of a
     repeated run then allocates nothing at all. *)
  sc_r_proc : int array;
  sc_r_uidx : int array;
  sc_u_tick : int array;
  mutable sc_u_rat : Rat.t array;
  mutable sc_rep_m : int; (* -1 = no cached program *)
  mutable sc_rep_n_u : int;
  mutable sc_rep_frames : int;
}

let make_scratch (derived : Derive.t) sched plan ~n_procs ~cap0 =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let pred_off = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    pred_off.(j + 1) <- pred_off.(j) + List.length (Graph.preds g j)
  done;
  let m_edges = pred_off.(n) in
  let pred_job = Array.make (max 1 m_edges) 0 in
  let succ_off = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    let i = ref pred_off.(j) in
    List.iter
      (fun q ->
        pred_job.(!i) <- q;
        incr i;
        succ_off.(q + 1) <- succ_off.(q + 1) + 1)
      (Graph.preds g j)
  done;
  for q = 0 to n - 1 do
    succ_off.(q + 1) <- succ_off.(q + 1) + succ_off.(q)
  done;
  {
    sc_plan = plan;
    sc_sched = sched;
    sc_procs =
      Array.init n_procs (fun p ->
          {
            t_order = Static_schedule.order_on sched p;
            t_frame = 0;
            t_pos = 0;
            t_busy = false;
            t_job = -1;
            t_invoked = 0;
            t_start = 0;
            t_finish = 0;
            t_deadline = 0;
            t_missing = 0;
          });
    sc_completions = Array.make n 0;
    sc_pred_off = pred_off;
    sc_pred_job = pred_job;
    sc_succ_off = succ_off;
    sc_w_proc = Array.make (max 1 m_edges) 0;
    sc_w_frame = Array.make (max 1 m_edges) 0;
    sc_w_len = Array.make n 0;
    sc_s_job = ref (Array.make cap0 0);
    sc_s_frame = ref (Array.make cap0 0);
    sc_s_invoked = ref (Array.make cap0 0);
    sc_s_start = ref (Array.make cap0 0);
    sc_s_finish = ref (Array.make cap0 0);
    sc_s_deadline = ref (Array.make cap0 0);
    sc_s_skip = ref (Bytes.make cap0 '\000');
    sc_p_job = Array.make (max 1 n) 0;
    sc_p_invoked = Array.make (max 1 n) 0;
    sc_p_start = Array.make (max 1 n) 0;
    sc_p_finish = Array.make (max 1 n) 0;
    sc_p_deadline = Array.make (max 1 n) 0;
    sc_p_skip = Bytes.make (max 1 n) '\000';
    sc_events = Iheap.create ~capacity:(max 16 (2 * n_procs)) ();
    sc_hot = Array.make ((n_procs + 62) / 63) 0;
    sc_r_proc = Array.make (max 1 n) 0;
    sc_r_uidx = Array.make (max 1 n) 0;
    sc_u_tick = Array.make (max 1 n) 0;
    sc_u_rat = [||];
    sc_rep_m = -1;
    sc_rep_n_u = 0;
    sc_rep_frames = 0;
  }

let scratch_pool_key : tick_scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* A plan object is uniquely tied to its compile inputs (fresh compiles
   make fresh objects; the memo only returns a plan for an identical
   configuration), so physical equality on (plan, sched) guarantees the
   scratch shapes still fit. *)
let pooled_scratch derived sched plan ~n_procs ~cap0 =
  let pool = Domain.DLS.get scratch_pool_key in
  let sc =
    match !pool with
    | Some sc when sc.sc_plan == plan && sc.sc_sched == sched -> sc
    | _ ->
      let sc = make_scratch derived sched plan ~n_procs ~cap0 in
      pool := Some sc;
      sc
  in
  Array.fill sc.sc_completions 0 (Array.length sc.sc_completions) 0;
  Array.fill sc.sc_w_len 0 (Array.length sc.sc_w_len) 0;
  Array.fill sc.sc_hot 0 (Array.length sc.sc_hot) 0;
  Iheap.clear sc.sc_events;
  Array.iter
    (fun ps ->
      ps.t_frame <- 0;
      ps.t_pos <- 0;
      ps.t_busy <- false;
      ps.t_job <- -1;
      ps.t_invoked <- 0;
      ps.t_start <- 0;
      ps.t_finish <- 0;
      ps.t_deadline <- 0;
      ps.t_missing <- 0)
    sc.sc_procs;
  (* skip flags are only ever set, never cleared, on the hot path *)
  Bytes.fill !(sc.sc_s_skip) 0 (Bytes.length !(sc.sc_s_skip)) '\000';
  Bytes.fill sc.sc_p_skip 0 (Bytes.length sc.sc_p_skip) '\000';
  sc

let exec_ticks net (derived : Derive.t) sched config ~assigned:_
    ~unhandled_events plan =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let frames = config.frames in
  let n_procs = config.platform.Platform.n_procs in
  let state = pooled_state net in
  Netstate.set_inputs state config.inputs;
  Netstate.set_access_counting state (plan.per_access_t > 0);
  (* sporadic stamps in a flat (frame, job) table; absent = [min_int].
     Runs without real events skip the table entirely. *)
  let have_stamps = Hashtbl.length plan.stamp_t > 0 in
  let stamp_arr =
    if not have_stamps then [||]
    else begin
      let a = Array.make (n * frames) min_int in
      Hashtbl.iter
        (fun (j, f) s -> if f < frames then a.((f * n) + j) <- s)
        plan.stamp_t;
      a
    end
  in
  (* Steady-state replay: with per-job deterministic durations, no
     sporadic stamps and zero per-access cost, the schedule of any
     steady frame whose window is self-contained is the template
     frame's shifted by a hyperperiod multiple.  The template frame is
     frame 0 itself when the first-frame overhead equals the steady one
     (then every frame is alike), frame 1 otherwise.  Frames up to and
     including the template run through the event loop; if they all
     stay inside their windows, the remaining frames only re-run the
     template's job bodies in call order — their records are implied by
     the captured template and materialized on demand. *)
  let tpl_frame = if plan.first_t = plan.steady_t then 0 else 1 in
  let replay_candidate =
    plan.dur_t <> None && plan.per_access_t = 0 && (not have_stamps)
    && frames > tpl_frame + 1
  in
  (* completed records as packed parallel arrays; presized for the head
     frames when replay may make the rest implicit, grown once if not *)
  let cap0 =
    max 1 (if replay_candidate then (tpl_frame + 1) * n else n * frames)
  in
  let sc = pooled_scratch derived sched plan ~n_procs ~cap0 in
  let procs = sc.sc_procs in
  let completions = sc.sc_completions in
  let pred_off = sc.sc_pred_off in
  let pred_job = sc.sc_pred_job in
  let succ_off = sc.sc_succ_off in
  let w_proc = sc.sc_w_proc in
  let w_frame = sc.sc_w_frame in
  let w_len = sc.sc_w_len in
  let s_job = sc.sc_s_job in
  let s_frame = sc.sc_s_frame in
  let s_invoked = sc.sc_s_invoked in
  let s_start = sc.sc_s_start in
  let s_finish = sc.sc_s_finish in
  let s_deadline = sc.sc_s_deadline in
  let s_skip = sc.sc_s_skip in
  let s_n = ref 0 in
  let push_rec job frame invoked start finish deadline skipped =
    let i = !s_n in
    if i = Array.length !s_job then begin
      (* replay declined after frame 1: grow to the full horizon *)
      let cap = n * frames in
      let grow a =
        let na = Array.make cap 0 in
        Array.blit !a 0 na 0 i;
        a := na
      in
      grow s_job;
      grow s_frame;
      grow s_invoked;
      grow s_start;
      grow s_finish;
      grow s_deadline;
      let nb = Bytes.make cap '\000' in
      Bytes.blit !s_skip 0 nb 0 i;
      s_skip := nb
    end;
    !s_job.(i) <- job;
    !s_frame.(i) <- frame;
    !s_invoked.(i) <- invoked;
    !s_start.(i) <- start;
    !s_finish.(i) <- finish;
    !s_deadline.(i) <- deadline;
    if skipped then Bytes.set !s_skip i '\001';
    s_n := i + 1
  in
  (* template, captured in job start order — the order bodies must
     re-run in for channel histories to stay bit-identical *)
  let p_job = sc.sc_p_job in
  let p_invoked = sc.sc_p_invoked in
  let p_start = sc.sc_p_start in
  let p_finish = sc.sc_p_finish in
  let p_deadline = sc.sc_p_deadline in
  let p_skip = sc.sc_p_skip in
  let tpl_n = ref 0 in
  let capture frame job invoked start finish deadline skipped =
    if replay_candidate && frame = tpl_frame && !tpl_n < n then begin
      let i = !tpl_n in
      p_job.(i) <- job;
      p_invoked.(i) <- invoked;
      p_start.(i) <- start;
      p_finish.(i) <- finish;
      p_deadline.(i) <- deadline;
      if skipped then Bytes.set p_skip i '\001';
      incr tpl_n
    end
  in
  (* observability: [tracing] is captured once, so the hot loop pays a
     single immutable-bool branch per site when tracing is off; job
     labels are pre-interned so per-job spans never hash on dispatch,
     and spans open/close through the preallocated ring without any
     closure allocation *)
  let tracing = Trace.enabled () in
  let span_ids =
    if tracing then
      Array.init n (fun j -> Trace.intern (Job.label (Graph.job g j)))
    else [||]
  in
  let miss_id = Trace.intern "engine.deadline_miss" in
  let depth_id = Trace.intern "engine.queue_depth" in
  let q_pushes = ref 0 in
  (* events carry the tick as key and the processor as payload — two
     immediate ints, so any processor count fits (the previous packed
     encoding capped networks at 64 processors) *)
  let events = sc.sc_events in
  let push_event tick p =
    incr q_pushes;
    Iheap.push events ~key:tick ~pay:p
  in
  let now = ref 0 in
  (* hot set: one bit per processor, swept in ascending index *)
  let nw = (n_procs + 62) / 63 in
  let hot = sc.sc_hot in
  let set_hot p = hot.(p / 63) <- hot.(p / 63) lor (1 lsl (p mod 63)) in
  (* model-time rationals survive only inside job bodies ([ctx.now]);
     arrivals repeat across jobs, so a one-entry cache makes the
     conversion all but free *)
  let last_tick = ref min_int and last_rat = ref Rat.zero in
  let now_rat tick =
    if tick = !last_tick then !last_rat
    else begin
      let r = Timebase.of_ticks plan.tb tick in
      last_tick := tick;
      last_rat := r;
      r
    end
  in
  let wake job =
    if w_len.(job) > 0 then begin
      let c = completions.(job) in
      let base = succ_off.(job) in
      let i = ref 0 in
      while !i < w_len.(job) do
        let idx = base + !i in
        if c > w_frame.(idx) then begin
          let p = w_proc.(idx) in
          let ps = procs.(p) in
          ps.t_missing <- ps.t_missing - 1;
          if ps.t_missing = 0 then set_hot p;
          (* swap-remove; segment order is irrelevant *)
          let last = base + w_len.(job) - 1 in
          w_proc.(idx) <- w_proc.(last);
          w_frame.(idx) <- w_frame.(last);
          w_len.(job) <- w_len.(job) - 1
        end
        else incr i
      done
    end
  in
  let step_order ps =
    ps.t_pos <- ps.t_pos + 1;
    if ps.t_pos >= Array.length ps.t_order then begin
      ps.t_pos <- 0;
      ps.t_frame <- ps.t_frame + 1
    end
  in
  (* one attempt to make progress on processor [p]; true if state
     changed — mirrors [exec_rat]'s [advance] transition for transition *)
  let try_advance p ps =
    if ps.t_busy then
      if ps.t_finish <= !now then begin
        let job = ps.t_job in
        completions.(job) <- completions.(job) + 1;
        (* the record was final at start time *)
        push_rec job ps.t_frame ps.t_invoked ps.t_start ps.t_finish
          ps.t_deadline false;
        if tracing && ps.t_finish > ps.t_deadline then
          Trace.instant_id miss_id;
        ps.t_busy <- false;
        step_order ps;
        wake job;
        true
      end
      else false
    else if ps.t_frame >= frames || Array.length ps.t_order = 0 then false
    else begin
      let job = ps.t_order.(ps.t_pos) in
      let base = ps.t_frame * plan.h_t in
      let invocation = base + plan.arr_t.(job) in
      let oh_end =
        base + if ps.t_frame = 0 then plan.first_t else plan.steady_t
      in
      let earliest = if invocation > oh_end then invocation else oh_end in
      if earliest > !now then begin
        push_event earliest p;
        false
      end
      else if ps.t_missing > 0 then false
      else begin
        (* count unfinished predecessors and register on their waiter
           segments; nothing to poll until the last one completes *)
        let missing = ref 0 in
        for i = pred_off.(job) to pred_off.(job + 1) - 1 do
          let q = pred_job.(i) in
          if completions.(q) <= ps.t_frame then begin
            incr missing;
            let idx = succ_off.(q) + w_len.(q) in
            w_proc.(idx) <- p;
            w_frame.(idx) <- ps.t_frame;
            w_len.(q) <- w_len.(q) + 1
          end
        done;
        if !missing > 0 then begin
          ps.t_missing <- !missing;
          false
        end
        else begin
          let stamp =
            if plan.is_server.(job) then
              if have_stamps then stamp_arr.((ps.t_frame * n) + job)
              else min_int
            else invocation
          in
          if stamp = min_int then begin
            (* 'false' job: skip without executing *)
            let deadline = invocation + plan.dl_rel_t.(job) in
            push_rec job ps.t_frame invocation !now !now deadline true;
            capture ps.t_frame job invocation !now !now deadline true;
            completions.(job) <- completions.(job) + 1;
            step_order ps;
            wake job;
            true
          end
          else begin
            if tracing then Trace.span_begin span_ids.(job);
            let a0 =
              if plan.per_access_t = 0 then 0 else Netstate.access_count state
            in
            Netstate.run_job_fast state ~proc:plan.body_proc.(job)
              ~now:(now_rat stamp);
            if tracing then Trace.span_end ();
            let duration =
              (match plan.dur_t with
              | Some d -> Array.unsafe_get d job
              | None ->
                Timebase.ticks plan.tb
                  (Exec_time.sample config.exec (Graph.job g job)))
              +
              if plan.per_access_t = 0 then 0
              else plan.per_access_t * (Netstate.access_count state - a0)
            in
            let finish = !now + duration in
            let deadline = stamp + plan.dl_rel_t.(job) in
            ps.t_busy <- true;
            ps.t_job <- job;
            ps.t_invoked <- stamp;
            ps.t_start <- !now;
            ps.t_finish <- finish;
            ps.t_deadline <- deadline;
            capture ps.t_frame job stamp !now finish deadline false;
            push_event finish p;
            true
          end
        end
      end
    end
  in
  (* sweeps over the hot set in ascending processor index, repeated
     until quiescent — the reference fixpoint restricted to processors
     that can actually transition.  A processor set hot at an index at
     or below the sweep cursor waits for the next sweep, exactly like
     the reference's [for] loop. *)
  let rec rounds () =
    let changed = ref false in
    for wi = 0 to nw - 1 do
      let base = wi * 63 in
      let mask = ref (-1) in
      let continue = ref true in
      while !continue do
        let avail = hot.(wi) land !mask in
        if avail = 0 then continue := false
        else begin
          let b = avail land -avail in
          let p = base + bit_index b in
          (* bits strictly above [b]: lower re-arrivals wait a sweep *)
          mask := -(b lsl 1);
          hot.(wi) <- hot.(wi) land lnot b;
          if try_advance p procs.(p) then begin
            changed := true;
            hot.(wi) <- hot.(wi) lor b
          end
        end
      done
    done;
    if !changed then rounds ()
  in
  (* advance to instant [t], draining every event scheduled on it so
     one sweep sees them all *)
  let process_at t =
    now := t;
    if tracing then Trace.counter_id depth_id (Iheap.length events);
    while (not (Iheap.is_empty events)) && Iheap.top_key events = t do
      set_hot (Iheap.top_pay events);
      Iheap.drop events
    done;
    rounds ()
  in
  let rec run_all () =
    if not (Iheap.is_empty events) then begin
      process_at (Iheap.top_key events);
      run_all ()
    end
  in
  (* process events strictly before [limit] ticks, leaving the rest
     queued *)
  let rec run_until limit =
    if (not (Iheap.is_empty events)) && Iheap.top_key events < limit then begin
      process_at (Iheap.top_key events);
      run_until limit
    end
  in
  (* the head frames each ran wholly inside their own window, and every
     processor stands idle at the post-template boundary: the engine
     state there (and at every later boundary, inductively) matches the
     template boundary shifted by the hyperperiod, so each remaining
     frame is the template's captured sequence shifted in time. *)
  let steady_state_ok () =
    !tpl_n = n
    && !s_n = (tpl_frame + 1) * n
    && Array.for_all
         (fun ps ->
           Array.length ps.t_order = 0
           || ((not ps.t_busy)
              && ps.t_frame = tpl_frame + 1
              && ps.t_missing = 0))
         procs
    &&
    let ok = ref true in
    let sf = !s_finish and sfr = !s_frame in
    for i = 0 to !s_n - 1 do
      if sf.(i) >= (sfr.(i) + 1) * plan.h_t then ok := false
    done;
    !ok
  in
  let replayed = ref false in
  let replay () =
    (* compact the template to its executed entries and dedup their
       invocation instants: a frame has at most a handful of distinct
       arrival times, so each frame converts each tick to a rational
       once instead of once per job.  The program is built into the
       pooled scratch arrays, comparing against the previous run's
       contents on the way — when nothing changed (the common case:
       the template is a function of (plan, sched, frames)), the
       precomputed rationals are reused and the whole replay allocates
       nothing. *)
    let r_proc = sc.sc_r_proc in
    let r_uidx = sc.sc_r_uidx in
    let u_tick = sc.sc_u_tick in
    let changed = ref (sc.sc_rep_m < 0) in
    let n_u = ref 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get p_skip i = '\000' then begin
        let inv = p_invoked.(i) in
        let j = ref 0 in
        while !j < !n_u && u_tick.(!j) <> inv do
          incr j
        done;
        if !j = !n_u then begin
          if u_tick.(!n_u) <> inv then changed := true;
          u_tick.(!n_u) <- inv;
          incr n_u
        end;
        r_proc.(!k) <- plan.body_proc.(p_job.(i));
        r_uidx.(!k) <- !j;
        incr k
      end
    done;
    let m = !k in
    let n_u = !n_u in
    let k_frames = frames - 1 - tpl_frame in
    if
      !changed || m <> sc.sc_rep_m || n_u <> sc.sc_rep_n_u
      || k_frames <> sc.sc_rep_frames
    then begin
      (* all replay instants up front, so the steady-frame loop below
         allocates nothing at all — the allocation gate in the perf
         harness holds it to that *)
      let u_rat = Array.make (max 1 (k_frames * n_u)) Rat.zero in
      for f = 0 to k_frames - 1 do
        let shift = (f + 1) * plan.h_t in
        for j = 0 to n_u - 1 do
          u_rat.((f * n_u) + j) <-
            Timebase.of_ticks plan.tb (u_tick.(j) + shift)
        done
      done;
      sc.sc_u_rat <- u_rat;
      sc.sc_rep_m <- m;
      sc.sc_rep_n_u <- n_u;
      sc.sc_rep_frames <- k_frames
    end;
    let u_rat = sc.sc_u_rat in
    for f = 0 to k_frames - 1 do
      Netstate.run_jobs_fast state ~procs:r_proc ~now_idx:r_uidx ~nows:u_rat
        ~now_base:(f * n_u) ~count:m
    done;
    replayed := true
  in
  for p = 0 to n_procs - 1 do
    set_hot p
  done;
  rounds ();
  (if replay_candidate then begin
     run_until ((tpl_frame + 1) * plan.h_t);
     if steady_state_ok () then Trace.with_span "engine.replay" replay
     else Trace.with_span "engine.eventloop" run_all
   end
   else Trace.with_span "engine.eventloop" run_all);
  (* statistics over the packed records; replayed frames contribute the
     template's per-frame counts, whose miss and response figures are
     shift-invariant *)
  let executed = ref 0
  and skipped = ref 0
  and misses = ref 0
  and max_resp = ref 0
  and max_frame = ref (-1) in
  (let sj = !s_skip
   and sfin = !s_finish
   and sdl = !s_deadline
   and sin = !s_invoked
   and sfr = !s_frame in
   for i = 0 to !s_n - 1 do
     if Bytes.get sj i <> '\000' then incr skipped
     else begin
       incr executed;
       if sfin.(i) > sdl.(i) then incr misses;
       let resp = sfin.(i) - sin.(i) in
       if resp > !max_resp then max_resp := resp;
       if sfr.(i) > !max_frame then max_frame := sfr.(i)
     end
   done);
  if !replayed then begin
    let ex_t = ref 0 and sk_t = ref 0 and mi_t = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get p_skip i <> '\000' then incr sk_t
      else begin
        incr ex_t;
        if p_finish.(i) > p_deadline.(i) then incr mi_t
      end
    done;
    let k = frames - 1 - tpl_frame in
    executed := !executed + (k * !ex_t);
    skipped := !skipped + (k * !sk_t);
    misses := !misses + (k * !mi_t);
    if !ex_t > 0 then max_frame := frames - 1
  end;
  if Metrics.enabled () then begin
    Metrics.add (Metrics.counter "engine.jobs_executed") !executed;
    Metrics.add (Metrics.counter "engine.jobs_skipped") !skipped;
    Metrics.add (Metrics.counter "engine.deadline_misses") !misses;
    Metrics.add (Metrics.counter "engine.frames") frames;
    Metrics.add (Metrics.counter "engine.queue_pushes") !q_pushes;
    if !replayed then Metrics.incr (Metrics.counter "engine.replays")
  end;
  (* the scratch arrays belong to the pool and are overwritten by the
     next run, so the (lazily built) trace captures exact-length copies
     now — a few dozen entries when replay kept the records implicit *)
  let c_n = !s_n in
  let c_job = Array.sub !s_job 0 c_n
  and c_frame = Array.sub !s_frame 0 c_n
  and c_invoked = Array.sub !s_invoked 0 c_n
  and c_start = Array.sub !s_start 0 c_n
  and c_finish = Array.sub !s_finish 0 c_n
  and c_deadline = Array.sub !s_deadline 0 c_n
  and c_skip = Bytes.sub !s_skip 0 c_n in
  let cp_job = if !replayed then Array.copy p_job else [||]
  and cp_invoked = if !replayed then Array.copy p_invoked else [||]
  and cp_start = if !replayed then Array.copy p_start else [||]
  and cp_finish = if !replayed then Array.copy p_finish else [||]
  and cp_deadline = if !replayed then Array.copy p_deadline else [||]
  and cp_skip = if !replayed then Bytes.copy p_skip else Bytes.empty in
  let trace =
    lazy
      begin
        (* completed records sit in completion order; sort a permutation
           by (start, proc, frame, job) — the reference trace order —
           and materialize rationals only here.  With replay, frames
           0-1 all precede frame 2 and each template frame is disjoint
           from the next, so sorted blocks concatenate sorted. *)
        let m = c_n in
        let sj = c_job
        and sfr = c_frame
        and sin = c_invoked
        and sst = c_start
        and sfin = c_finish
        and sdl = c_deadline
        and ssk = c_skip in
        let cmp a b =
          let c = Int.compare sst.(a) sst.(b) in
          if c <> 0 then c
          else
            let c = Int.compare plan.proc_of.(sj.(a)) plan.proc_of.(sj.(b)) in
            if c <> 0 then c
            else
              let c = Int.compare sfr.(a) sfr.(b) in
              if c <> 0 then c else Int.compare sj.(a) sj.(b)
        in
        let perm = Array.init m Fun.id in
        Array.sort cmp perm;
        let pick a = Array.init m (fun i -> a.(perm.(i))) in
        let job = pick sj
        and frame = pick sfr
        and invoked = pick sin
        and start = pick sst
        and finish = pick sfin
        and deadline = pick sdl in
        let skipped = Bytes.init m (fun i -> Bytes.get ssk perm.(i)) in
        let labels =
          Array.init n (fun j -> Job.label (Graph.job g j))
        in
        let den = Timebase.den plan.tb in
        let acc = ref [] in
        if !replayed then begin
          let tcmp a b =
            let c = Int.compare cp_start.(a) cp_start.(b) in
            if c <> 0 then c
            else
              let c =
                Int.compare plan.proc_of.(cp_job.(a)) plan.proc_of.(cp_job.(b))
              in
              if c <> 0 then c else Int.compare cp_job.(a) cp_job.(b)
          in
          let tperm = Array.init n Fun.id in
          Array.sort tcmp tperm;
          let tpick a = Array.init n (fun i -> a.(tperm.(i))) in
          let tjob = tpick cp_job
          and tinv = tpick cp_invoked
          and tstart = tpick cp_start
          and tfin = tpick cp_finish
          and tdl = tpick cp_deadline in
          let tskip = Bytes.init n (fun i -> Bytes.get cp_skip tperm.(i)) in
          let tframe = Array.make n tpl_frame in
          for f = frames - 1 downto tpl_frame + 1 do
            acc :=
              Exec_trace.of_ticks ~den ~labels ~procs:plan.proc_of ~count:n
                ~job:tjob ~frame:tframe ~invoked:tinv ~start:tstart
                ~finish:tfin ~deadline:tdl ~skipped:tskip
                ~tick_shift:((f - tpl_frame) * plan.h_t)
                ~frame_shift:(f - tpl_frame) !acc
          done
        end;
        Exec_trace.of_ticks ~den ~labels ~procs:plan.proc_of ~count:m ~job
          ~frame ~invoked ~start ~finish ~deadline ~skipped ~tick_shift:0
          ~frame_shift:0 !acc
      end
  in
  let rat = Timebase.of_ticks plan.tb in
  let h = derived.Derive.hyperperiod in
  let frame_base frame = Rat.mul h (Rat.of_int frame) in
  let overhead_end frame =
    Rat.add (frame_base frame) (Platform.frame_overhead config.platform ~frame)
  in
  (* O(#channels) snapshots decouple the result from the pooled state:
     the next run may reset and reuse [state], and these keep reading
     the arrays this run wrote *)
  let chan_snap = Netstate.channel_snapshot state in
  let out_snap = Netstate.output_snapshot state in
  let materialize snaps =
    List.map (fun (c, s) -> (c, Fppn.Channel.snapshot_history s)) snaps
  in
  {
    trace;
    channel_history = lazy (materialize chan_snap);
    output_history = lazy (materialize out_snap);
    stats =
      {
        Exec_trace.executed = !executed;
        skipped = !skipped;
        misses = !misses;
        max_response = rat !max_resp;
        frames = !max_frame + 1;
      };
    unhandled_events;
    overhead_segments =
      lazy (overhead_segments_of config ~frame_base ~overhead_end);
  }

(* One-entry, domain-local memo of the compiled plan.  Benchmarks and
   periodic re-simulation call [run] repeatedly with identical
   arguments; compilation is pure for every compilable model ([Profile]
   callbacks are required to be pure), so the plan can be reused
   whenever all four ingredients are physically unchanged.  The memo is
   per-domain, so concurrent runs never share an entry. *)
(* Structural-enough config equality for the memo: scalars compare by
   value, closures and rational lists by identity (callers that rebuild
   [default_config] per run share the library-level defaults, so the
   common case still hits). *)
let same_config a b =
  a == b
  || (a.frames = b.frames && a.exec == b.exec && a.inputs == b.inputs
     && a.sporadic == b.sporadic
     && (a.platform == b.platform
        || (a.platform.Platform.n_procs = b.platform.Platform.n_procs
           && a.platform.Platform.overhead == b.platform.Platform.overhead)))

type plan_memo = {
  pm_net : Fppn.Network.t;
  pm_derived : Derive.t;
  pm_sched : Static_schedule.t;
  pm_config : config;
  pm_plan : tick_plan option;
}

let plan_memo_key : plan_memo option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let compiled_plan net derived sched config ~assigned =
  let memo = Domain.DLS.get plan_memo_key in
  match !memo with
  | Some m
    when m.pm_net == net && m.pm_derived == derived && m.pm_sched == sched
         && same_config m.pm_config config ->
    m.pm_plan
  | _ ->
    let plan =
      Trace.with_span "engine.compile" (fun () ->
          tick_compile net derived sched config ~assigned)
    in
    memo :=
      Some
        {
          pm_net = net;
          pm_derived = derived;
          pm_sched = sched;
          pm_config = config;
          pm_plan = plan;
        };
    plan

let run net derived sched config =
  Trace.with_span "engine.run" (fun () ->
      let assigned, unhandled_events = prologue net derived sched config in
      match compiled_plan net derived sched config ~assigned with
      | Some plan ->
        Trace.with_span "engine.exec.ticks" (fun () ->
            exec_ticks net derived sched config ~assigned ~unhandled_events plan)
      | None ->
        Trace.with_span "engine.exec.rat" (fun () ->
            exec_rat net derived sched config ~assigned ~unhandled_events))

let run_reference net derived sched config =
  Trace.with_span "engine.run_reference" (fun () ->
      let assigned, unhandled_events = prologue net derived sched config in
      Trace.with_span "engine.exec.rat" (fun () ->
          exec_rat net derived sched config ~assigned ~unhandled_events))

(* ------------------------------------------------------------------ *)
(* Sharded core: the tick engine cut into K communicating shards.      *)
(*                                                                     *)
(* When every duration is a fixed, strictly positive tick count and    *)
(* channel accesses cost nothing, the timing recurrence               *)
(*                                                                     *)
(*   start(j,f) = max(invocation, overhead end, previous job's finish  *)
(*                on j's processor, finish of every same-frame          *)
(*                predecessor)                                         *)
(*                                                                     *)
(* is independent of the job bodies.  The run then splits into two     *)
(* deterministic phases: phase 1 solves the recurrence shard-locally   *)
(* on machine integers, exchanging finish ticks of shard-crossing      *)
(* precedence edges through single-writer single-reader mailboxes;     *)
(* phase 2 re-executes the bodies against the shared network state,    *)
(* each shard walking its own records in (frame, start, processor,     *)
(* job) order and waiting on the same mailboxes for cross-shard        *)
(* predecessors' bodies.  Frame barriers separate the frames in both   *)
(* phases, so a mailbox is one word per edge, reused every frame.      *)
(*                                                                     *)
(* Bit-identity with the sequential engine holds because every pair of *)
(* jobs touching a common channel is ordered by a precedence path      *)
(* (checked once per plan via the graph's transitive closure) and      *)
(* durations are >= 1 tick, so the path separates the pair strictly in *)
(* time: the sequential engine runs the two bodies in path order, and  *)
(* so does every sharded interleaving — in-shard by the sorted walk,   *)
(* cross-shard by the mailbox waits.  Frames interleave identically    *)
(* because phase 1 verifies no job spills past its frame boundary.     *)
(* Whenever any precondition fails — rational-only plan, sampled or    *)
(* zero durations, per-access costs, unordered channel conflicts,      *)
(* frame spill, a stalled (order-infeasible) schedule — the run falls  *)
(* back to the sequential core, so [run_sharded] is total on exactly   *)
(* [run]'s domain and always returns [run]'s answer.                   *)
(* ------------------------------------------------------------------ *)

(* Every pair of jobs of channel-conflicting processes must be ordered
   by a precedence path, else two bodies touching one channel could
   race (or replay in the wrong order) across shards.  Networks whose
   channel accessors are directly priority-related always pass: the
   derivation orders every such job pair by construction (Def. 2.1),
   and transitive reduction preserves reachability.  Checked with a
   per-job descendant bitset built in one reverse-topological sweep —
   O(J^2) memory, so this is no longer how [run_sharded] gates itself
   (the static certificate below is); it survives as the debug
   cross-validation oracle and for tests. *)
let closure_conflicts_ordered (g : Graph.t) net =
  let n = Graph.n_jobs g in
  let pairs =
    List.filter_map
      (fun (c : Network.channel_decl) ->
        let w = Network.find net c.Network.writer
        and r = Network.find net c.Network.reader in
        if w = r then None else Some (w, r))
      (Network.channels net)
  in
  pairs = []
  || begin
          let wds = (n + 62) / 63 in
          let reach = Array.make (n * wds) 0 in
          List.iter
            (fun v ->
              let base = v * wds in
              reach.(base + (v / 63)) <-
                reach.(base + (v / 63)) lor (1 lsl (v mod 63));
              List.iter
                (fun s ->
                  let sb = s * wds in
                  for w = 0 to wds - 1 do
                    reach.(base + w) <- reach.(base + w) lor reach.(sb + w)
                  done)
                (Graph.succs g v))
            (List.rev (Graph.topo_order g));
          let ordered a b =
            reach.((a * wds) + (b / 63)) land (1 lsl (b mod 63)) <> 0
            || reach.((b * wds) + (a / 63)) land (1 lsl (a mod 63)) <> 0
          in
          List.for_all
            (fun (w, r) ->
              List.for_all
                (fun a ->
                  List.for_all
                    (fun b -> ordered a b)
                    (Graph.jobs_of_process g r))
                (Graph.jobs_of_process g w))
            pairs
        end

(* Shard-crossing routing, fixed per (plan, schedule, K): the flat
   predecessor segments annotated with a mailbox id per crossing edge,
   the per-job list of mailboxes to publish into, and the mailbox words
   themselves.  A mailbox belongs to exactly one edge, so it has one
   writing and one reading shard; [sp_mb_time] carries the producer's
   finish tick and is published before the phase tag, so a reader that
   observes tag [f+1] reads frame [f]'s value. *)
type shard_plan = {
  sp_plan : tick_plan;
  sp_sched : Static_schedule.t;
  sp_net : Network.t;
  sp_k : int;
  sp_part : Partition.t;
  sp_pred_off : int array;
  sp_pred_job : int array;
  sp_pred_mb : int array;  (* aligned with [sp_pred_job]; -1 = in-shard *)
  sp_out_off : int array;
  sp_out_mb : int array;
  sp_mb_time : int Atomic.t array;
  sp_mb_timing : int Atomic.t array;  (* phase-1 tag: frame + 1 *)
  sp_mb_body : int Atomic.t array;  (* phase-2 tag: frame + 1 *)
}

let build_shard_plan net (derived : Derive.t) sched plan ~k =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let part = Partition.make ~shards:k derived sched in
  let pred_off = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    pred_off.(j + 1) <- pred_off.(j) + List.length (Graph.preds g j)
  done;
  let m_edges = pred_off.(n) in
  let pred_job = Array.make (max 1 m_edges) 0 in
  for j = 0 to n - 1 do
    let i = ref pred_off.(j) in
    List.iter
      (fun q ->
        pred_job.(!i) <- q;
        incr i)
      (Graph.preds g j)
  done;
  let shard_of_job j = part.Partition.shard_of_proc.(plan.proc_of.(j)) in
  let pred_mb = Array.make (max 1 m_edges) (-1) in
  let out_off = Array.make (n + 1) 0 in
  let n_mb = ref 0 in
  for j = 0 to n - 1 do
    for i = pred_off.(j) to pred_off.(j + 1) - 1 do
      let q = pred_job.(i) in
      if shard_of_job q <> shard_of_job j then begin
        pred_mb.(i) <- !n_mb;
        incr n_mb;
        out_off.(q + 1) <- out_off.(q + 1) + 1
      end
    done
  done;
  for q = 0 to n - 1 do
    out_off.(q + 1) <- out_off.(q + 1) + out_off.(q)
  done;
  let out_mb = Array.make (max 1 !n_mb) 0 in
  let cursor = Array.make (max 1 n) 0 in
  for j = 0 to n - 1 do
    for i = pred_off.(j) to pred_off.(j + 1) - 1 do
      let mb = pred_mb.(i) in
      if mb >= 0 then begin
        let q = pred_job.(i) in
        out_mb.(out_off.(q) + cursor.(q)) <- mb;
        cursor.(q) <- cursor.(q) + 1
      end
    done
  done;
  let atoms () = Array.init (max 1 !n_mb) (fun _ -> Atomic.make 0) in
  {
    sp_plan = plan;
    sp_sched = sched;
    sp_net = net;
    sp_k = k;
    sp_part = part;
    sp_pred_off = pred_off;
    sp_pred_job = pred_job;
    sp_pred_mb = pred_mb;
    sp_out_off = out_off;
    sp_out_mb = out_mb;
    sp_mb_time = atoms ();
    sp_mb_timing = atoms ();
    sp_mb_body = atoms ();
  }

let shard_plan_key : shard_plan option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let pooled_shard_plan net derived sched plan ~k =
  let pool = Domain.DLS.get shard_plan_key in
  match !pool with
  | Some sp
    when sp.sp_plan == plan && sp.sp_sched == sched && sp.sp_net == net
         && sp.sp_k = k ->
    sp
  | _ ->
    let sp =
      Trace.with_span "engine.shard_plan" (fun () ->
          build_shard_plan net derived sched plan ~k)
    in
    pool := Some sp;
    sp

(* Shardability is decided by the static certificate (Fppn_lint):
   per-channel path-ordering proven on (process, hyperperiod-phase)
   classes, independent of the job count — this is what lifted the old
   16384-job closure cap.  The verdict depends only on the network, so
   it is DLS-memoized on physical equality like the plans above.  With
   [closure_cross_check] on, every decision is re-derived with the
   legacy job-bitset closure and a certificate that accepts what the
   closure rejects is a hard error (the reverse is a permitted
   conservative abstention, e.g. past the class-sweep budget). *)
let closure_cross_check = ref false

let certificate_key : (Network.t * bool) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let certified_shardable net (derived : Derive.t) =
  let pool = Domain.DLS.get certificate_key in
  let ok =
    match !pool with
    | Some (n, ok) when n == net -> ok
    | _ ->
      let t0 = Trace.now_ns () in
      let ok =
        Trace.with_span "engine.certify" (fun () ->
            Fppn_lint.Certificate.shardable
              (Fppn_lint.Certificate.of_network net))
      in
      if Metrics.enabled () then
        Metrics.add
          (Metrics.counter "engine.certify_ticks")
          (Trace.now_ns () - t0);
      pool := Some (net, ok);
      ok
  in
  if !closure_cross_check then begin
    let t0 = Trace.now_ns () in
    let legacy = closure_conflicts_ordered derived.Derive.graph net in
    if Metrics.enabled () then
      Metrics.add
        (Metrics.counter "engine.closure_check_ticks")
        (Trace.now_ns () - t0);
    if ok && not legacy then
      invalid_arg
        (Printf.sprintf
           "Engine: certificate accepts network %s but the job-closure check \
            finds an unordered channel pair"
           (Network.name net))
  end;
  ok

(* Sense-reversing frame barrier with a bounded spin followed by
   mutex/condvar parking.  A pure spin is fine when every shard owns a
   core, but oversubscribed hosts (more shards than cores — exactly the
   situation Pool.recommended_domains cannot rule out when the caller
   forces a shard count) would burn whole scheduler quanta busy-waiting
   while the shard that everyone waits for is descheduled.  Waiters
   therefore spin [barrier_spin_budget] iterations of Domain.cpu_relax
   (cheap when the barrier turns over quickly) and then park on the
   barrier's condvar; the last arriver flips the sense under the lock
   and broadcasts, so there is no lost-wakeup window.

   [bail] lets waiters leave when another shard aborted.  Spinners poll
   it; parked waiters re-check it on every wakeup, so abort setters
   must call [barrier_wake] after raising their flag (the abort paths
   in [exec_sharded] funnel through [abort_wake]). *)
type shard_barrier = {
  parties : int;
  arrived : int Atomic.t;
  sense : int Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
}

let make_barrier parties =
  {
    parties;
    arrived = Atomic.make 0;
    sense = Atomic.make 0;
    lock = Mutex.create ();
    cond = Condition.create ();
  }

let barrier_spin_budget = 4096

let barrier_wake b =
  Mutex.lock b.lock;
  Condition.broadcast b.cond;
  Mutex.unlock b.lock

let barrier_await b ~bail =
  let s = Atomic.get b.sense in
  if Atomic.fetch_and_add b.arrived 1 = b.parties - 1 then begin
    Atomic.set b.arrived 0;
    Mutex.lock b.lock;
    Atomic.set b.sense (s + 1);
    Condition.broadcast b.cond;
    Mutex.unlock b.lock
  end
  else begin
    let spins = ref 0 in
    while
      Atomic.get b.sense = s && not (bail ()) && !spins < barrier_spin_budget
    do
      incr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get b.sense = s && not (bail ()) then begin
      Mutex.lock b.lock;
      while Atomic.get b.sense = s && not (bail ()) do
        Condition.wait b.cond b.lock
      done;
      Mutex.unlock b.lock
    end
  end

type shard_recs = {
  sr_job : int array;
  sr_frame : int array;
  sr_invoked : int array;
  sr_start : int array;
  sr_finish : int array;
  sr_deadline : int array;
  sr_skip : Bytes.t;
  mutable sr_n : int;
  mutable sr_msgs : int;
}

(* spins with no global progress before declaring the run stalled; only
   order-infeasible schedules (whose sequential run silently strands
   the stuck processors) ever trip it, and they merely fall back *)
let shard_stall_limit = 1 lsl 28

let exec_sharded net (derived : Derive.t) sched config ~unhandled_events plan
    sp ~durs =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let frames = config.frames in
  let k = sp.sp_k in
  let part = sp.sp_part in
  let n_procs = config.platform.Platform.n_procs in
  let state = pooled_state net in
  Netstate.set_inputs state config.inputs;
  Netstate.set_access_counting state false;
  let have_stamps = Hashtbl.length plan.stamp_t > 0 in
  let stamp_arr =
    if not have_stamps then [||]
    else begin
      let a = Array.make (n * frames) min_int in
      Hashtbl.iter
        (fun (j, f) s -> if f < frames then a.((f * n) + j) <- s)
        plan.stamp_t;
      a
    end
  in
  Array.iter (fun a -> Atomic.set a 0) sp.sp_mb_timing;
  Array.iter (fun a -> Atomic.set a 0) sp.sp_mb_body;
  let orders = Array.init n_procs (Static_schedule.order_on sched) in
  let error : exn option Atomic.t = Atomic.make None in
  let stalled = Atomic.make false in
  let spilled = Atomic.make false in
  let bail () =
    Atomic.get stalled || Atomic.get spilled || Atomic.get error <> None
  in
  (* bumped on every completion in either phase; a spinner that sees it
     move knows the system is alive and resets its stall count *)
  let epoch = Atomic.make 0 in
  let b_timing = make_barrier k and b_body = make_barrier k in
  (* every abort-flag raise must wake parked barrier waiters, or they
     would sleep on a condvar nobody signals again *)
  let abort_wake () =
    barrier_wake b_timing;
    barrier_wake b_body
  in
  let set_stalled () =
    Atomic.set stalled true;
    abort_wake ()
  in
  let recs =
    Array.init k (fun s ->
        let cap =
          Array.fold_left
            (fun acc p -> acc + (frames * Array.length orders.(p)))
            0
            part.Partition.procs_of_shard.(s)
        in
        let cap = max 1 cap in
        {
          sr_job = Array.make cap 0;
          sr_frame = Array.make cap 0;
          sr_invoked = Array.make cap 0;
          sr_start = Array.make cap 0;
          sr_finish = Array.make cap 0;
          sr_deadline = Array.make cap 0;
          sr_skip = Bytes.make cap '\000';
          sr_n = 0;
          sr_msgs = 0;
        })
  in
  let pred_off = sp.sp_pred_off
  and pred_job = sp.sp_pred_job
  and pred_mb = sp.sp_pred_mb
  and out_off = sp.sp_out_off
  and out_mb = sp.sp_out_mb
  and mb_time = sp.sp_mb_time
  and mb_timing = sp.sp_mb_timing
  and mb_body = sp.sp_mb_body in
  let run_shard s =
    let procs = part.Partition.procs_of_shard.(s) in
    let np = Array.length procs in
    let r = recs.(s) in
    let pos = Array.make (max 1 np) 0 in
    let prevf = Array.make (max 1 np) 0 in
    let donef = Array.make (max 1 np) false in
    let completions = Array.make (max 1 n) 0 in
    let fin = Array.make (max 1 n) 0 in
    (* phase 1: shard-local timing recurrence, frame by frame *)
    for f = 0 to frames - 1 do
      if not (bail ()) then begin
        let base = f * plan.h_t in
        let frame_end = base + plan.h_t in
        let oh_end = base + if f = 0 then plan.first_t else plan.steady_t in
        let remaining = ref 0 in
        for i = 0 to np - 1 do
          if Array.length orders.(procs.(i)) = 0 then donef.(i) <- true
          else begin
            donef.(i) <- false;
            incr remaining
          end
        done;
        let guard = ref 0 in
        let last_epoch = ref (Atomic.get epoch) in
        while !remaining > 0 && not (bail ()) do
          let progress = ref false in
          for i = 0 to np - 1 do
            if not donef.(i) then begin
              let order = orders.(procs.(i)) in
              let len = Array.length order in
              let advancing = ref true in
              while !advancing do
                let job = order.(pos.(i)) in
                let invocation = base + plan.arr_t.(job) in
                let t = ref (if invocation > oh_end then invocation else oh_end) in
                if prevf.(i) > !t then t := prevf.(i);
                let blocked = ref false in
                let ei = ref pred_off.(job) in
                let hi = pred_off.(job + 1) in
                while (not !blocked) && !ei < hi do
                  let q = pred_job.(!ei) in
                  let mb = pred_mb.(!ei) in
                  (if mb < 0 then begin
                     if completions.(q) <= f then blocked := true
                     else if fin.(q) > !t then t := fin.(q)
                   end
                   else if Atomic.get mb_timing.(mb) <= f then blocked := true
                   else begin
                     let v = Atomic.get mb_time.(mb) in
                     if v > !t then t := v
                   end);
                  incr ei
                done;
                if !blocked then advancing := false
                else begin
                  let stamp =
                    if plan.is_server.(job) then
                      if have_stamps then stamp_arr.((f * n) + job)
                      else min_int
                    else invocation
                  in
                  let ri = r.sr_n in
                  let finish =
                    if stamp = min_int then begin
                      r.sr_invoked.(ri) <- invocation;
                      r.sr_deadline.(ri) <- invocation + plan.dl_rel_t.(job);
                      Bytes.set r.sr_skip ri '\001';
                      !t
                    end
                    else begin
                      r.sr_invoked.(ri) <- stamp;
                      r.sr_deadline.(ri) <- stamp + plan.dl_rel_t.(job);
                      !t + durs.(job)
                    end
                  in
                  r.sr_job.(ri) <- job;
                  r.sr_frame.(ri) <- f;
                  r.sr_start.(ri) <- !t;
                  r.sr_finish.(ri) <- finish;
                  r.sr_n <- ri + 1;
                  if finish > frame_end then begin
                    Atomic.set spilled true;
                    abort_wake ()
                  end;
                  completions.(job) <- completions.(job) + 1;
                  fin.(job) <- finish;
                  prevf.(i) <- finish;
                  for o = out_off.(job) to out_off.(job + 1) - 1 do
                    let mb = out_mb.(o) in
                    Atomic.set mb_time.(mb) finish;
                    Atomic.set mb_timing.(mb) (f + 1);
                    r.sr_msgs <- r.sr_msgs + 1
                  done;
                  Atomic.incr epoch;
                  progress := true;
                  pos.(i) <- pos.(i) + 1;
                  if pos.(i) >= len then begin
                    pos.(i) <- 0;
                    donef.(i) <- true;
                    decr remaining;
                    advancing := false
                  end
                end
              done
            end
          done;
          if !progress then guard := 0
          else begin
            let e = Atomic.get epoch in
            if e <> !last_epoch then begin
              last_epoch := e;
              guard := 0
            end
            else begin
              incr guard;
              if !guard > shard_stall_limit then set_stalled ()
            end;
            Domain.cpu_relax ()
          end
        done
      end;
      barrier_await b_timing ~bail
    done;
    (* phase 2: bodies in (frame, start, processor, job) order.  The
       final phase-1 barrier makes any abort flag globally visible
       before anyone enters, so either all shards run this phase and
       its barriers, or none do. *)
    if not (bail ()) then begin
      let m = r.sr_n in
      let sj = r.sr_job and sfr = r.sr_frame and sst = r.sr_start in
      let perm = Array.init m Fun.id in
      Array.sort
        (fun a b ->
          let c = Int.compare sfr.(a) sfr.(b) in
          if c <> 0 then c
          else
            let c = Int.compare sst.(a) sst.(b) in
            if c <> 0 then c
            else
              let c =
                Int.compare plan.proc_of.(sj.(a)) plan.proc_of.(sj.(b))
              in
              if c <> 0 then c else Int.compare sj.(a) sj.(b))
        perm;
      let last_tick = ref min_int and last_rat = ref Rat.zero in
      let now_rat tick =
        if tick = !last_tick then !last_rat
        else begin
          let rt = Timebase.of_ticks plan.tb tick in
          last_tick := tick;
          last_rat := rt;
          rt
        end
      in
      let idx = ref 0 in
      for f = 0 to frames - 1 do
        let advancing = ref true in
        while !advancing && !idx < m && not (bail ()) do
          let ri = perm.(!idx) in
          if sfr.(ri) <> f then advancing := false
          else begin
            let job = sj.(ri) in
            let guard = ref 0 in
            let last_epoch = ref (Atomic.get epoch) in
            let ei = ref pred_off.(job) in
            let hi = pred_off.(job + 1) in
            while !ei < hi && not (bail ()) do
              let mb = pred_mb.(!ei) in
              if mb >= 0 && Atomic.get mb_body.(mb) <= f then begin
                let e = Atomic.get epoch in
                if e <> !last_epoch then begin
                  last_epoch := e;
                  guard := 0
                end
                else begin
                  incr guard;
                  if !guard > shard_stall_limit then set_stalled ()
                end;
                Domain.cpu_relax ()
              end
              else incr ei
            done;
            if not (bail ()) then begin
              if Bytes.get r.sr_skip ri = '\000' then
                Netstate.run_job_fast state ~proc:plan.body_proc.(job)
                  ~now:(now_rat r.sr_invoked.(ri));
              for o = out_off.(job) to out_off.(job + 1) - 1 do
                Atomic.set mb_body.(out_mb.(o)) (f + 1);
                r.sr_msgs <- r.sr_msgs + 1
              done;
              Atomic.incr epoch;
              incr idx
            end
          end
        done;
        barrier_await b_body ~bail
      done
    end
  in
  let guarded s () =
    try run_shard s
    with e ->
      ignore (Atomic.compare_and_set error None (Some e));
      abort_wake ()
  in
  let domains =
    Array.init (k - 1) (fun i ->
        let s = i + 1 in
        Domain.spawn (fun () -> Rt_util.Pool.with_self_id s (guarded s)))
  in
  guarded 0 ();
  Array.iter Domain.join domains;
  if bail () then None
  else begin
    let total = Array.fold_left (fun acc r -> acc + r.sr_n) 0 recs in
    let c_job = Array.make (max 1 total) 0
    and c_frame = Array.make (max 1 total) 0
    and c_invoked = Array.make (max 1 total) 0
    and c_start = Array.make (max 1 total) 0
    and c_finish = Array.make (max 1 total) 0
    and c_deadline = Array.make (max 1 total) 0
    and c_skip = Bytes.make (max 1 total) '\000' in
    let off = ref 0 in
    Array.iter
      (fun r ->
        Array.blit r.sr_job 0 c_job !off r.sr_n;
        Array.blit r.sr_frame 0 c_frame !off r.sr_n;
        Array.blit r.sr_invoked 0 c_invoked !off r.sr_n;
        Array.blit r.sr_start 0 c_start !off r.sr_n;
        Array.blit r.sr_finish 0 c_finish !off r.sr_n;
        Array.blit r.sr_deadline 0 c_deadline !off r.sr_n;
        Bytes.blit r.sr_skip 0 c_skip !off r.sr_n;
        off := !off + r.sr_n)
      recs;
    let executed = ref 0
    and skipped = ref 0
    and misses = ref 0
    and max_resp = ref 0
    and max_frame = ref (-1) in
    for i = 0 to total - 1 do
      if Bytes.get c_skip i <> '\000' then incr skipped
      else begin
        incr executed;
        if c_finish.(i) > c_deadline.(i) then incr misses;
        let resp = c_finish.(i) - c_invoked.(i) in
        if resp > !max_resp then max_resp := resp;
        if c_frame.(i) > !max_frame then max_frame := c_frame.(i)
      end
    done;
    if Metrics.enabled () then begin
      Metrics.add (Metrics.counter "engine.jobs_executed") !executed;
      Metrics.add (Metrics.counter "engine.jobs_skipped") !skipped;
      Metrics.add (Metrics.counter "engine.deadline_misses") !misses;
      Metrics.add (Metrics.counter "engine.frames") frames;
      Metrics.incr (Metrics.counter "engine.sharded_runs");
      Metrics.set_gauge (Metrics.gauge "engine.shards") (float_of_int k);
      Metrics.add
        (Metrics.counter "engine.xshard_messages")
        (Array.fold_left (fun acc r -> acc + r.sr_msgs) 0 recs);
      Metrics.set_gauge
        (Metrics.gauge "engine.shard_cut_edges")
        (float_of_int part.Partition.cut_edges)
    end;
    let trace =
      lazy
        begin
          let cmp a b =
            let c = Int.compare c_start.(a) c_start.(b) in
            if c <> 0 then c
            else
              let c =
                Int.compare plan.proc_of.(c_job.(a)) plan.proc_of.(c_job.(b))
              in
              if c <> 0 then c
              else
                let c = Int.compare c_frame.(a) c_frame.(b) in
                if c <> 0 then c else Int.compare c_job.(a) c_job.(b)
          in
          let perm = Array.init total Fun.id in
          Array.sort cmp perm;
          let pick a = Array.init total (fun i -> a.(perm.(i))) in
          let job = pick c_job
          and frame = pick c_frame
          and invoked = pick c_invoked
          and start = pick c_start
          and finish = pick c_finish
          and deadline = pick c_deadline in
          let skipped = Bytes.init total (fun i -> Bytes.get c_skip perm.(i)) in
          let labels = Array.init n (fun j -> Job.label (Graph.job g j)) in
          Exec_trace.of_ticks ~den:(Timebase.den plan.tb) ~labels
            ~procs:plan.proc_of ~count:total ~job ~frame ~invoked ~start
            ~finish ~deadline ~skipped ~tick_shift:0 ~frame_shift:0 []
        end
    in
    let rat = Timebase.of_ticks plan.tb in
    let h = derived.Derive.hyperperiod in
    let frame_base frame = Rat.mul h (Rat.of_int frame) in
    let overhead_end frame =
      Rat.add (frame_base frame)
        (Platform.frame_overhead config.platform ~frame)
    in
    let chan_snap = Netstate.channel_snapshot state in
    let out_snap = Netstate.output_snapshot state in
    let materialize snaps =
      List.map (fun (c, s) -> (c, Fppn.Channel.snapshot_history s)) snaps
    in
    Some
      {
        trace;
        channel_history = lazy (materialize chan_snap);
        output_history = lazy (materialize out_snap);
        stats =
          {
            Exec_trace.executed = !executed;
            skipped = !skipped;
            misses = !misses;
            max_response = rat !max_resp;
            frames = !max_frame + 1;
          };
        unhandled_events;
        overhead_segments =
          lazy (overhead_segments_of config ~frame_base ~overhead_end);
      }
  end

let run_sharded ?shards net derived sched config =
  Trace.with_span "engine.run_sharded" (fun () ->
      let requested =
        match shards with
        | Some s when s >= 1 -> s
        | _ -> Rt_util.Pool.recommended_domains ()
      in
      let k = max 1 (min requested config.platform.Platform.n_procs) in
      if k <= 1 then run net derived sched config
      else begin
        let assigned, unhandled_events = prologue net derived sched config in
        let fallback () =
          if Metrics.enabled () then
            Metrics.incr (Metrics.counter "engine.shard_fallbacks");
          run net derived sched config
        in
        match compiled_plan net derived sched config ~assigned with
        | None -> fallback ()
        | Some plan -> (
          match plan.dur_t with
          | None -> fallback ()
          | Some durs ->
            if
              plan.per_access_t > 0
              || not (Array.for_all (fun d -> d >= 1) durs)
            then fallback ()
            else if not (certified_shardable net derived) then fallback ()
            else begin
              let sp = pooled_shard_plan net derived sched plan ~k in
                match
                  Trace.with_span "engine.exec.sharded" (fun () ->
                      exec_sharded net derived sched config ~unhandled_events
                        plan sp ~durs)
                with
                | Some result -> result
                | None -> fallback ()
            end)
      end)

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Lazy.force r.channel_history @ Lazy.force r.output_history)
