module Rat = Rt_util.Rat
module Timebase = Rt_util.Timebase
module Pqueue = Rt_util.Pqueue
module Trace = Fppn_obs.Trace
module Metrics = Fppn_obs.Metrics
module Network = Fppn.Network
module Process = Fppn.Process
module Event = Fppn.Event
module Netstate = Fppn.Netstate
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Static_schedule = Sched.Static_schedule

type config = {
  platform : Platform.t;
  exec : Exec_time.t;
  frames : int;
  sporadic : (string * Rat.t list) list;
  inputs : Netstate.input_feed;
}

let default_config ?(frames = 1) ~n_procs () =
  {
    platform = Platform.create ~n_procs ();
    exec = Exec_time.constant;
    frames;
    sporadic = [];
    inputs = Netstate.no_inputs;
  }

type result = {
  trace : Exec_trace.t;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  stats : Exec_trace.stats;
  unhandled_events : (string * Rat.t) list;
  overhead_segments : (int * Rat.t * Rat.t) list;
}

(* Map every (server job id, frame) to the real sporadic event it
   handles, applying the Fig. 2 boundary rule.  Returns the map plus the
   events that fall beyond the last simulated window. *)
let assign_sporadic_events net (derived : Derive.t) ~frames ~hyperperiod traces =
  let g = derived.Derive.graph in
  let assigned : (int * int, Rat.t) Hashtbl.t = Hashtbl.create 64 in
  let unhandled = ref [] in
  List.iter
    (fun (s : Derive.server_info) ->
      let p = s.Derive.sporadic in
      let name = Process.name (Network.process net p) in
      let stamps =
        match List.assoc_opt name traces with Some l -> l | None -> []
      in
      let ev = Process.event (Network.process net p) in
      if not (Event.is_valid_sporadic_trace ev stamps) then
        invalid_arg
          (Printf.sprintf "Engine.run: sporadic trace of %S violates (m,T)" name);
      let ts = s.Derive.server_period in
      let burst = Process.burst (Network.process net p) in
      let slots_per_frame = Rat.to_int_exn (Rat.div hyperperiod ts) in
      let in_window ~b stamp =
        let lo = Rat.sub b ts in
        if s.Derive.boundary_closed_right then Rat.(stamp > lo) && Rat.(stamp <= b)
        else Rat.(stamp >= lo) && Rat.(stamp < b)
      in
      let consumed = Hashtbl.create 16 in
      for frame = 0 to frames - 1 do
        for slot = 1 to slots_per_frame do
          let rel = Rat.mul ts (Rat.of_int (slot - 1)) in
          let b = Rat.add (Rat.mul hyperperiod (Rat.of_int frame)) rel in
          (* positions within the subset, in stamp order *)
          let idx = ref 0 in
          List.iteri
            (fun i stamp ->
              if (not (Hashtbl.mem consumed i)) && in_window ~b stamp then begin
                incr idx;
                if !idx <= burst then begin
                  Hashtbl.replace consumed i ();
                  let k = ((slot - 1) * burst) + !idx in
                  let job_id = Graph.find_job g ~proc:p ~k in
                  Hashtbl.replace assigned (job_id, frame) stamp
                end
              end)
            stamps
        done
      done;
      List.iteri
        (fun i stamp ->
          if not (Hashtbl.mem consumed i) then
            unhandled := (name, stamp) :: !unhandled)
        stamps)
    derived.Derive.servers;
  (assigned, List.rev !unhandled)

let sporadic_assignment net derived ~frames traces =
  assign_sporadic_events net derived ~frames
    ~hyperperiod:derived.Derive.hyperperiod traces

type proc_state = {
  order : int array;
  mutable frame : int;
  mutable pos : int;
  mutable busy_until : Rat.t option;
  mutable running : (int * Exec_trace.record) option;
      (** job id + its record-in-progress while busy *)
}

(* Validation + sporadic-window assignment shared by both interpreter
   cores. *)
let prologue net (derived : Derive.t) sched config =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  if config.frames <= 0 then invalid_arg "Engine.run: frames must be positive";
  if Static_schedule.n_jobs sched <> n then
    invalid_arg "Engine.run: schedule does not cover the task graph";
  if Static_schedule.n_procs sched <> config.platform.Platform.n_procs then
    invalid_arg "Engine.run: schedule and platform processor counts differ";
  List.iter
    (fun (name, _) ->
      let p =
        try Network.find net name
        with Not_found ->
          invalid_arg (Printf.sprintf "Engine.run: unknown process %S" name)
      in
      if not (Process.is_sporadic (Network.process net p)) then
        invalid_arg
          (Printf.sprintf "Engine.run: %S is periodic, not sporadic" name))
    config.sporadic;
  assign_sporadic_events net derived ~frames:config.frames
    ~hyperperiod:derived.Derive.hyperperiod config.sporadic

let overhead_segments_of config ~frame_base ~overhead_end =
  List.filter_map
    (fun frame ->
      let from = frame_base frame and till = overhead_end frame in
      if Rat.(till > from) then Some (frame, from, till) else None)
    (List.init config.frames Fun.id)

(* ------------------------------------------------------------------ *)
(* Reference core: exact rational arithmetic, polling fixpoint.         *)
(*                                                                      *)
(* This is the seed interpreter, kept verbatim as the semantic ground   *)
(* truth the compiled tick core is differentially tested against.       *)
(* ------------------------------------------------------------------ *)

let exec_rat net (derived : Derive.t) sched config ~assigned ~unhandled_events =
  let g = derived.Derive.graph in
  let h = derived.Derive.hyperperiod in
  let state = Netstate.create net in
  let n_procs = config.platform.Platform.n_procs in
  let procs =
    Array.init n_procs (fun p ->
        {
          order = Static_schedule.order_on sched p;
          frame = 0;
          pos = 0;
          busy_until = None;
          running = None;
        })
  in
  (* completions.(job) = number of frames in which the job has completed
     (executed or skipped); job j of frame f is done iff > f *)
  let n = Graph.n_jobs g in
  let completions = Array.make n 0 in
  let records = ref [] in
  let events = Pqueue.create ~cmp:Rat.compare in
  let now = ref Rat.zero in
  let frame_base frame = Rat.mul h (Rat.of_int frame) in
  let overhead_end frame =
    Rat.add (frame_base frame)
      (Platform.frame_overhead config.platform ~frame)
  in
  let preds_done frame job =
    List.for_all (fun p -> completions.(p) > frame) (Graph.preds g job)
  in
  let relative_deadline job =
    Process.deadline (Network.process net (Graph.job g job).Job.proc)
  in
  (* one attempt to make progress on processor [p]; true if state changed *)
  let advance ps =
    match ps.busy_until with
    | Some t when Rat.(t <= !now) ->
      (* job completes *)
      let job, record = Option.get ps.running in
      completions.(job) <- completions.(job) + 1;
      records := { record with Exec_trace.finish = t } :: !records;
      ps.busy_until <- None;
      ps.running <- None;
      ps.pos <- ps.pos + 1;
      if ps.pos >= Array.length ps.order then begin
        ps.pos <- 0;
        ps.frame <- ps.frame + 1
      end;
      true
    | Some _ -> false
    | None ->
      if ps.frame >= config.frames || Array.length ps.order = 0 then false
      else begin
        let job = ps.order.(ps.pos) in
        let j = Graph.job g job in
        let base = frame_base ps.frame in
        (* For periodic jobs the invocation occurs at A_i.  For server
           slots the real event may arrive earlier, but only at the
           boundary b = A_i can a slot be declared 'false' (Sec. IV), so
           the round synchronizes on A_i in both cases — conservative
           and sufficient for Prop. 4.1. *)
        let invocation = Rat.add base j.Job.arrival in
        let earliest = Rat.max invocation (overhead_end ps.frame) in
        if Rat.(earliest > !now) then begin
          Pqueue.push events earliest;
          false
        end
        else if not (preds_done ps.frame job) then false
        else begin
          let stamp =
            if j.Job.is_server then Hashtbl.find_opt assigned (job, ps.frame)
            else Some (Rat.add base j.Job.arrival)
          in
          match stamp with
          | None ->
            (* 'false' job: skip without executing *)
            let b = Rat.add base j.Job.arrival in
            records :=
              {
                Exec_trace.job;
                label = Job.label j;
                frame = ps.frame;
                proc = Static_schedule.proc sched job;
                invoked = b;
                start = !now;
                finish = !now;
                deadline = Rat.add b (relative_deadline job);
                skipped = true;
              }
              :: !records;
            completions.(job) <- completions.(job) + 1;
            ps.pos <- ps.pos + 1;
            if ps.pos >= Array.length ps.order then begin
              ps.pos <- 0;
              ps.frame <- ps.frame + 1
            end;
            true
          | Some invoked ->
            (* execute the job body now; duration covers the WCET model
               plus per-access synchronisation overhead *)
            let accesses = ref 0 in
            let recorder = function
              | Fppn.Trace.Read _ | Fppn.Trace.Write _ -> incr accesses
              | _ -> ()
            in
            Netstate.run_job ~recorder ~inputs:config.inputs state
              ~proc:j.Job.proc ~now:invoked;
            let duration =
              Rat.add
                (Exec_time.sample config.exec j)
                (Rat.mul
                   config.platform.Platform.overhead.Platform.per_access
                   (Rat.of_int !accesses))
            in
            let finish = Rat.add !now duration in
            ps.busy_until <- Some finish;
            ps.running <-
              Some
                ( job,
                  {
                    Exec_trace.job;
                    label = Job.label j;
                    frame = ps.frame;
                    proc = Static_schedule.proc sched job;
                    invoked;
                    start = !now;
                    finish;
                    deadline = Rat.add invoked (relative_deadline job);
                    skipped = false;
                  } );
            Pqueue.push events finish;
            true
        end
      end
  in
  Pqueue.push events Rat.zero;
  let rec fixpoint () =
    let changed = Array.fold_left (fun acc ps -> advance ps || acc) false procs in
    if changed then fixpoint ()
  in
  let rec loop () =
    (* blocked processors re-push [earliest] on every poll; coalescing
       the duplicates here skips the no-op fixpoint per duplicate *)
    match Pqueue.pop_distinct events with
    | None -> ()
    | Some t ->
      if Rat.(t >= !now) then begin
        now := t;
        fixpoint ()
      end;
      loop ()
  in
  loop ();
  let trace =
    List.sort
      (fun (a : Exec_trace.record) b ->
        let c = Rat.compare a.start b.start in
        if c <> 0 then c
        else
          let c = Int.compare a.proc b.proc in
          if c <> 0 then c
          else
            let c = Int.compare a.frame b.frame in
            if c <> 0 then c else Int.compare a.job b.job)
      !records
  in
  {
    trace;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    stats = Exec_trace.stats trace;
    unhandled_events;
    overhead_segments = overhead_segments_of config ~frame_base ~overhead_end;
  }

(* ------------------------------------------------------------------ *)
(* Compiled core: integer tick timeline, wake-list scheduling.          *)
(*                                                                      *)
(* Setup maps every model time onto the common-denominator tick grid    *)
(* of a [Timebase]; the event loop then runs on machine integers, and   *)
(* a completion re-examines only the processors registered on the       *)
(* completed job's wake list instead of polling all of them.  The       *)
(* transition order of the reference fixpoint (ascending processor      *)
(* index per sweep, sweeps repeated until quiescent) is replicated      *)
(* exactly, so execution-time PRNG draws, channel operations and trace  *)
(* records are bit-identical to [exec_rat]'s.                           *)
(* ------------------------------------------------------------------ *)

type tick_plan = {
  tb : Timebase.t;
  h_t : int;  (* hyperperiod *)
  first_t : int;  (* frame overheads *)
  steady_t : int;
  per_access_t : int;
  arr_t : int array;  (* per job: phase within the frame *)
  dl_rel_t : int array;  (* per job: relative deadline of its process *)
  wcet_t : int array;  (* per job: WCET, the whole duration under Constant *)
  is_server : bool array;
  proc_of : int array;  (* per job: scheduled processor *)
  stamp_t : (int * int, int) Hashtbl.t;  (* (job, frame) -> event ticks *)
  const_exec : bool;  (* durations come from [wcet_t], never sampled *)
  pbits : int;  (* event encoding: (tick lsl pbits) lor proc *)
}

(* Ticks stay below 2^55 ([Timebase]'s magnitude cap) and a finish time
   adds at most one more bit, so a processor index up to 6 bits packs
   with the tick into one immediate int — the event queue then never
   allocates. *)
let max_pbits = 6

type tick_record = {
  tr_job : int;
  tr_frame : int;
  tr_invoked : int;
  tr_start : int;
  tr_finish : int;
  tr_deadline : int;
  tr_skipped : bool;
}

type tick_proc = {
  t_order : int array;
  mutable t_frame : int;
  mutable t_pos : int;
  mutable t_busy : bool;
  mutable t_finish : int;  (* valid while [t_busy] *)
  mutable t_run : tick_record;  (* record-in-progress while busy *)
  mutable t_missing : int;  (* wake-list registrations outstanding *)
}

let dummy_record =
  {
    tr_job = -1;
    tr_frame = 0;
    tr_invoked = 0;
    tr_start = 0;
    tr_finish = 0;
    tr_deadline = 0;
    tr_skipped = false;
  }

(* Compile the run onto a tick grid, or [None] when any time cannot be
   represented (unpredictable execution-time model, common-denominator
   overflow, horizon too large) — the caller then uses the exact
   rational core, so compilation failures degrade, never crash. *)
let tick_compile net (derived : Derive.t) sched config ~assigned =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let jobs = Graph.jobs g in
  let n_procs = config.platform.Platform.n_procs in
  let rec bits_for k acc = if k <= 1 then acc else bits_for (k lsr 1) (acc + 1) in
  let pbits = bits_for n_procs 0 + if n_procs land (n_procs - 1) = 0 then 0 else 1 in
  if pbits > max_pbits then None
  else
  let wcets = Array.to_list (Array.map (fun j -> j.Job.wcet) jobs) in
  match Exec_time.tick_extras config.exec ~wcets with
  | None -> None
  | Some extras -> (
    match
      let ov = config.platform.Platform.overhead in
      let times =
        derived.Derive.hyperperiod :: ov.Platform.first_frame
        :: ov.Platform.steady_frame :: ov.Platform.per_access
        :: Hashtbl.fold (fun _ stamp acc -> stamp :: acc) assigned []
        @ extras @ wcets
        @ Array.to_list (Array.map (fun j -> j.Job.arrival) jobs)
        @ List.init (Network.n_processes net) (fun p ->
              Process.deadline (Network.process net p))
      in
      let horizon =
        Rat.mul derived.Derive.hyperperiod (Rat.of_int config.frames)
      in
      Timebase.create ~horizon times
    with
    | exception Rat.Overflow -> None
    | None -> None
    | Some tb -> (
      let ov = config.platform.Platform.overhead in
      match
        let tk = Timebase.ticks tb in
        let stamp_t = Hashtbl.create (Hashtbl.length assigned) in
        Hashtbl.iter (fun key s -> Hashtbl.replace stamp_t key (tk s)) assigned;
        {
          tb;
          h_t = tk derived.Derive.hyperperiod;
          first_t = tk ov.Platform.first_frame;
          steady_t = tk ov.Platform.steady_frame;
          per_access_t = tk ov.Platform.per_access;
          arr_t = Array.map (fun j -> tk j.Job.arrival) jobs;
          dl_rel_t =
            Array.map
              (fun j -> tk (Process.deadline (Network.process net j.Job.proc)))
              jobs;
          wcet_t = Array.map (fun j -> tk j.Job.wcet) jobs;
          is_server = Array.map (fun j -> j.Job.is_server) jobs;
          proc_of = Array.init n (Static_schedule.proc sched);
          stamp_t;
          const_exec = Exec_time.is_constant config.exec;
          pbits;
        }
      with
      | plan -> Some plan
      | exception (Timebase.Inexact | Rat.Overflow) -> None))

let exec_ticks net (derived : Derive.t) sched config ~assigned:_
    ~unhandled_events plan =
  let g = derived.Derive.graph in
  let n = Graph.n_jobs g in
  let frames = config.frames in
  let n_procs = config.platform.Platform.n_procs in
  let state = Netstate.create net in
  let procs =
    Array.init n_procs (fun p ->
        {
          t_order = Static_schedule.order_on sched p;
          t_frame = 0;
          t_pos = 0;
          t_busy = false;
          t_finish = 0;
          t_run = dummy_record;
          t_missing = 0;
        })
  in
  let completions = Array.make n 0 in
  (* per job: compiled predecessor array and registered waiters
     [(proc, frame-needed)]; a completion walks only its own waiters *)
  let preds = Array.init n (fun j -> Array.of_list (Graph.preds g j)) in
  let waiters = Array.make n [] in
  (* every job yields exactly one record per frame, so the buffer size
     is known up front — no list cells, and the final sort is in-place *)
  let recs = Array.make (n * frames) dummy_record in
  let nrecs = ref 0 in
  let push_record r =
    recs.(!nrecs) <- r;
    incr nrecs
  in
  (* events are (tick lsl pbits) lor proc — immediate ints, so pushes
     never allocate; unpacking is a shift and a mask *)
  (* observability: [tracing] is captured once, so the hot loop pays a
     single immutable-bool branch per site when tracing is off; job
     labels are pre-interned so per-job spans never hash on dispatch *)
  let tracing = Trace.enabled () in
  let span_ids =
    if tracing then
      Array.init n (fun j -> Trace.intern (Job.label (Graph.job g j)))
    else [||]
  in
  let miss_id = Trace.intern "engine.deadline_miss" in
  let depth_id = Trace.intern "engine.queue_depth" in
  let q_pushes = ref 0 in
  let events = Pqueue.create ~cmp:Int.compare in
  let pbits = plan.pbits in
  let pmask = (1 lsl pbits) - 1 in
  let push_event tick p =
    incr q_pushes;
    Pqueue.push events ((tick lsl pbits) lor p)
  in
  let now = ref 0 in
  let hot = Array.make n_procs false in
  (* Steady-state replay: with constant durations, no sporadic stamps
     and zero per-access cost, the schedule of any frame >= 1 whose
     window is self-contained is frame 1's shifted by a hyperperiod
     multiple.  Frames 0-1 run through the event loop; if both stay
     inside their windows the remaining frames replay frame 1's
     captured call sequence with no queue, fixpoint or sort at all. *)
  let replay_candidate =
    plan.const_exec && plan.per_access_t = 0
    && Hashtbl.length plan.stamp_t = 0
    && frames > 2
  in
  let tpl = Array.make (if replay_candidate then n else 0) dummy_record in
  let tpl_n = ref 0 in
  let capture ps r =
    if replay_candidate && ps.t_frame = 1 && !tpl_n < n then begin
      tpl.(!tpl_n) <- r;
      incr tpl_n
    end
  in
  let wake job =
    match waiters.(job) with
    | [] -> ()
    | ws ->
      let c = completions.(job) in
      waiters.(job) <-
        List.filter
          (fun (p, frame) ->
            if c > frame then begin
              let ps = procs.(p) in
              ps.t_missing <- ps.t_missing - 1;
              if ps.t_missing = 0 then hot.(p) <- true;
              false
            end
            else true)
          ws
  in
  let step_order ps =
    ps.t_pos <- ps.t_pos + 1;
    if ps.t_pos >= Array.length ps.t_order then begin
      ps.t_pos <- 0;
      ps.t_frame <- ps.t_frame + 1
    end
  in
  let run_body j stamp accesses =
    if plan.per_access_t = 0 then
      (* accesses don't cost time: the unrecorded path skips every
         trace allocation inside [run_job] *)
      Netstate.run_job ~inputs:config.inputs state ~proc:j.Job.proc
        ~now:(Timebase.of_ticks plan.tb stamp)
    else begin
      let recorder = function
        | Fppn.Trace.Read _ | Fppn.Trace.Write _ -> incr accesses
        | _ -> ()
      in
      Netstate.run_job ~recorder ~inputs:config.inputs state ~proc:j.Job.proc
        ~now:(Timebase.of_ticks plan.tb stamp)
    end
  in
  (* one attempt to make progress on processor [p]; true if state
     changed — mirrors [exec_rat]'s [advance] transition for transition *)
  let try_advance p ps =
    if ps.t_busy then
      if ps.t_finish <= !now then begin
        let job = ps.t_run.tr_job in
        completions.(job) <- completions.(job) + 1;
        (* t_run.tr_finish was already final at start time *)
        push_record ps.t_run;
        if tracing && ps.t_run.tr_finish > ps.t_run.tr_deadline then
          Trace.instant_id miss_id;
        ps.t_busy <- false;
        ps.t_run <- dummy_record;
        step_order ps;
        wake job;
        true
      end
      else false
    else if ps.t_frame >= frames || Array.length ps.t_order = 0 then false
    else begin
      let job = ps.t_order.(ps.t_pos) in
      let base = ps.t_frame * plan.h_t in
      let invocation = base + plan.arr_t.(job) in
      let oh_end =
        base + if ps.t_frame = 0 then plan.first_t else plan.steady_t
      in
      let earliest = if invocation > oh_end then invocation else oh_end in
      if earliest > !now then begin
        push_event earliest p;
        false
      end
      else if ps.t_missing > 0 then false
      else begin
        (* count unfinished predecessors and register on their wake
           lists; nothing to poll until the last one completes *)
        let missing = ref 0 in
        let pr = preds.(job) in
        for i = 0 to Array.length pr - 1 do
          let q = pr.(i) in
          if completions.(q) <= ps.t_frame then begin
            incr missing;
            waiters.(q) <- (p, ps.t_frame) :: waiters.(q)
          end
        done;
        if !missing > 0 then begin
          ps.t_missing <- !missing;
          false
        end
        else begin
          let stamp =
            if plan.is_server.(job) then (
              match Hashtbl.find_opt plan.stamp_t (job, ps.t_frame) with
              | Some s -> s
              | None -> min_int)
            else invocation
          in
          if stamp = min_int then begin
            (* 'false' job: skip without executing *)
            let r =
              {
                tr_job = job;
                tr_frame = ps.t_frame;
                tr_invoked = invocation;
                tr_start = !now;
                tr_finish = !now;
                tr_deadline = invocation + plan.dl_rel_t.(job);
                tr_skipped = true;
              }
            in
            push_record r;
            capture ps r;
            completions.(job) <- completions.(job) + 1;
            step_order ps;
            wake job;
            true
          end
          else begin
            let j = Graph.job g job in
            let accesses = ref 0 in
            (if tracing then
               Trace.with_span_id span_ids.(job) (fun () ->
                   run_body j stamp accesses)
             else run_body j stamp accesses);
            let duration =
              (if plan.const_exec then plan.wcet_t.(job)
               else Timebase.ticks plan.tb (Exec_time.sample config.exec j))
              + (plan.per_access_t * !accesses)
            in
            let finish = !now + duration in
            ps.t_busy <- true;
            ps.t_finish <- finish;
            ps.t_run <-
              {
                tr_job = job;
                tr_frame = ps.t_frame;
                tr_invoked = stamp;
                tr_start = !now;
                tr_finish = finish;
                tr_deadline = stamp + plan.dl_rel_t.(job);
                tr_skipped = false;
              };
            capture ps ps.t_run;
            push_event finish p;
            true
          end
        end
      end
    end
  in
  (* sweeps over the hot set in ascending processor index, repeated
     until quiescent — the reference fixpoint restricted to processors
     that can actually transition *)
  let rec rounds () =
    let changed = ref false in
    for p = 0 to n_procs - 1 do
      if hot.(p) then begin
        hot.(p) <- false;
        if try_advance p procs.(p) then begin
          changed := true;
          hot.(p) <- true
        end
      end
    done;
    if !changed then rounds ()
  in
  let process ev =
    let t = ev lsr pbits in
    if t >= !now then begin
      now := t;
      if tracing then Trace.counter_id depth_id (Pqueue.length events);
      hot.(ev land pmask) <- true;
      (* drain every event of this instant so one sweep sees them all *)
      let rec batch () =
        match Pqueue.peek events with
        | Some ev' when ev' lsr pbits = t ->
          ignore (Pqueue.pop events);
          hot.(ev' land pmask) <- true;
          batch ()
        | _ -> ()
      in
      batch ();
      rounds ()
    end
  in
  let rec run_all () =
    match Pqueue.pop events with
    | None -> ()
    | Some ev ->
      process ev;
      run_all ()
  in
  (* process events strictly before [limit] ticks, leaving the rest
     queued *)
  let rec run_until limit =
    match Pqueue.peek events with
    | Some ev when ev lsr pbits < limit ->
      ignore (Pqueue.pop events);
      process ev;
      run_until limit
    | _ -> ()
  in
  let cmp_rec a b =
    let c = Int.compare a.tr_start b.tr_start in
    if c <> 0 then c
    else
      let c = Int.compare plan.proc_of.(a.tr_job) plan.proc_of.(b.tr_job) in
      if c <> 0 then c
      else
        let c = Int.compare a.tr_frame b.tr_frame in
        if c <> 0 then c else Int.compare a.tr_job b.tr_job
  in
  let presorted = ref false in
  (* frames 0 and 1 each ran wholly inside their own window, and every
     processor stands idle at the frame-2 boundary: the engine state
     there (and at every later boundary, inductively) matches the
     frame-1 boundary shifted by the hyperperiod, so each remaining
     frame is frame 1's captured sequence shifted in time. *)
  let steady_state_ok () =
    !tpl_n = n
    && !nrecs = 2 * n
    && Array.for_all
         (fun ps ->
           Array.length ps.t_order = 0
           || ((not ps.t_busy) && ps.t_frame = 2 && ps.t_missing = 0))
         procs
    &&
    let ok = ref true in
    for i = 0 to !nrecs - 1 do
      let r = recs.(i) in
      let bound = (r.tr_frame + 1) * plan.h_t in
      if r.tr_finish >= bound then ok := false
    done;
    !ok
  in
  let replay () =
    (* frames 0-1 sit in completion order; their starts all precede
       frame 2's, so sorting just this prefix keeps [recs] globally
       sorted as replay appends pre-sorted frames after it *)
    let head = Array.sub recs 0 !nrecs in
    Array.sort cmp_rec head;
    Array.blit head 0 recs 0 !nrecs;
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> cmp_rec tpl.(a) tpl.(b)) order;
    let body_proc =
      Array.map
        (fun e -> if e.tr_skipped then -1 else (Graph.job g e.tr_job).Job.proc)
        tpl
    in
    for f = 2 to frames - 1 do
      let shift = (f - 1) * plan.h_t in
      (* job bodies first, in frame 1's call order — the channel
         read/write sequence is what makes results bit-identical *)
      for i = 0 to n - 1 do
        if body_proc.(i) >= 0 then
          Netstate.run_job ~inputs:config.inputs state ~proc:body_proc.(i)
            ~now:(Timebase.of_ticks plan.tb (tpl.(i).tr_invoked + shift))
      done;
      for k = 0 to n - 1 do
        let e = tpl.(order.(k)) in
        push_record
          {
            e with
            tr_frame = f;
            tr_invoked = e.tr_invoked + shift;
            tr_start = e.tr_start + shift;
            tr_finish = e.tr_finish + shift;
            tr_deadline = e.tr_deadline + shift;
          }
      done
    done;
    presorted := true
  in
  Array.fill hot 0 n_procs true;
  rounds ();
  (if replay_candidate then begin
     run_until (2 * plan.h_t);
     if steady_state_ok () then Trace.with_span "engine.replay" replay
     else Trace.with_span "engine.eventloop" run_all
   end
   else Trace.with_span "engine.eventloop" run_all);
  let m = !nrecs in
  let sorted = if m = Array.length recs then recs else Array.sub recs 0 m in
  if not !presorted then Array.sort cmp_rec sorted;
  (* stats over the integer records, and job labels formatted once per
     job id — not once per record, which made [Printf.sprintf] the
     single hottest call of short simulations *)
  let labels = Array.init (Graph.n_jobs g) (fun j -> Job.label (Graph.job g j)) in
  let executed = ref 0
  and skipped = ref 0
  and misses = ref 0
  and max_resp = ref 0
  and max_frame = ref (-1) in
  for i = 0 to m - 1 do
    let r = sorted.(i) in
    if r.tr_skipped then incr skipped
    else begin
      incr executed;
      if r.tr_finish > r.tr_deadline then incr misses;
      let resp = r.tr_finish - r.tr_invoked in
      if resp > !max_resp then max_resp := resp;
      if r.tr_frame > !max_frame then max_frame := r.tr_frame
    end
  done;
  if Metrics.enabled () then begin
    Metrics.add (Metrics.counter "engine.jobs_executed") !executed;
    Metrics.add (Metrics.counter "engine.jobs_skipped") !skipped;
    Metrics.add (Metrics.counter "engine.deadline_misses") !misses;
    Metrics.add (Metrics.counter "engine.frames") frames;
    Metrics.add (Metrics.counter "engine.queue_pushes") !q_pushes;
    if !presorted then Metrics.incr (Metrics.counter "engine.replays")
  end;
  let rat = Timebase.of_ticks plan.tb in
  let trace = ref [] in
  for i = m - 1 downto 0 do
    let r = sorted.(i) in
    trace :=
      {
        Exec_trace.job = r.tr_job;
        label = labels.(r.tr_job);
        frame = r.tr_frame;
        proc = plan.proc_of.(r.tr_job);
        invoked = rat r.tr_invoked;
        start = rat r.tr_start;
        finish = rat r.tr_finish;
        deadline = rat r.tr_deadline;
        skipped = r.tr_skipped;
      }
      :: !trace
  done;
  let trace = !trace in
  let h = derived.Derive.hyperperiod in
  let frame_base frame = Rat.mul h (Rat.of_int frame) in
  let overhead_end frame =
    Rat.add (frame_base frame) (Platform.frame_overhead config.platform ~frame)
  in
  {
    trace;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    stats =
      {
        Exec_trace.executed = !executed;
        skipped = !skipped;
        misses = !misses;
        max_response = rat !max_resp;
        frames = !max_frame + 1;
      };
    unhandled_events;
    overhead_segments = overhead_segments_of config ~frame_base ~overhead_end;
  }

let run net derived sched config =
  Trace.with_span "engine.run" (fun () ->
      let assigned, unhandled_events = prologue net derived sched config in
      match
        Trace.with_span "engine.compile" (fun () ->
            tick_compile net derived sched config ~assigned)
      with
      | Some plan ->
        Trace.with_span "engine.exec.ticks" (fun () ->
            exec_ticks net derived sched config ~assigned ~unhandled_events plan)
      | None ->
        Trace.with_span "engine.exec.rat" (fun () ->
            exec_rat net derived sched config ~assigned ~unhandled_events))

let run_reference net derived sched config =
  Trace.with_span "engine.run_reference" (fun () ->
      let assigned, unhandled_events = prologue net derived sched config in
      Trace.with_span "engine.exec.rat" (fun () ->
          exec_rat net derived sched config ~assigned ~unhandled_events))

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)
