(** Machine-readable export of execution traces (JSON and CSV) for
    external Gantt viewers and post-processing. *)

val record_to_json : Exec_trace.record -> string
(** One JSON object; times as exact strings (e.g. ["133/10"]) plus
    float fields ([*_ms]) for plotting. *)

val to_json : Exec_trace.t -> string
(** A JSON array of records. *)

val csv_header : string

val record_to_csv : Exec_trace.record -> string

val to_csv : Exec_trace.t -> string
(** Header line + one line per record. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val chrome_pid : int
(** The pid lane group used for the model-time export (the live
    wall-clock recorder uses a different pid). *)

val to_chrome : Exec_trace.t -> Rt_util.Json.t list
(** Chrome trace events for a finished trace: one tid lane per
    processor (named [M1..Mm] under process ["engine (model time)"]),
    executed jobs as complete events (1 model ms = 1000 trace µs),
    skipped jobs and deadline misses as instant events.  Combine with
    {!Fppn_obs.Chrome.wrap}/[write_file] — and with
    {!Fppn_obs.Chrome.of_trace} output for the live-span lanes. *)
