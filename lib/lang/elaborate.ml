module A = Fppn.Automaton
module Process = Fppn.Process
module Event = Fppn.Event
module Network = Fppn.Network

exception Error of string * Ast.pos

let rec expr_to_automaton : Ast.expr -> A.expr = function
  | Ast.Lit l -> A.Const (Ast.value_of_literal l)
  | Ast.Var x -> A.Var x
  | Ast.Avail x -> A.Avail x
  | Ast.Unop (Ast.Neg, e) -> A.Neg (expr_to_automaton e)
  | Ast.Unop (Ast.Not, e) -> A.Not (expr_to_automaton e)
  | Ast.Binop (op, a, b) ->
    let a = expr_to_automaton a and b = expr_to_automaton b in
    (match op with
    | Ast.Add -> A.Add (a, b)
    | Ast.Sub -> A.Sub (a, b)
    | Ast.Mul -> A.Mul (a, b)
    | Ast.Div -> A.Div (a, b)
    | Ast.Mod -> A.Mod (a, b)
    | Ast.Eq -> A.Eq (a, b)
    | Ast.Ne -> A.Not (A.Eq (a, b))
    | Ast.Lt -> A.Lt (a, b)
    | Ast.Le -> A.Le (a, b)
    | Ast.Gt -> A.Lt (b, a)
    | Ast.Ge -> A.Le (b, a)
    | Ast.And -> A.And (a, b)
    | Ast.Or -> A.Or (a, b))

let action_to_automaton : Ast.action -> A.action = function
  | Ast.Assign (x, e) -> A.Assign (x, expr_to_automaton e)
  | Ast.Read (x, c) -> A.Read (x, c)
  | Ast.Write (e, c) -> A.Write (c, expr_to_automaton e)

let behavior_of_machine (m : Ast.machine) =
  let initial =
    match m.Ast.locations with
    | l :: _ -> l.Ast.loc_name
    | [] -> invalid_arg "machine has no locations"
  in
  let declared = List.map (fun l -> l.Ast.loc_name) m.Ast.locations in
  let transitions =
    List.concat_map
      (fun (l : Ast.location) ->
        List.map
          (fun (t : Ast.transition) ->
            if not (List.mem t.Ast.goto declared) then
              raise
                (Error
                   ( Printf.sprintf "goto %S targets an undeclared location" t.Ast.goto,
                     t.Ast.t_pos ));
            {
              A.src = l.Ast.loc_name;
              guard = expr_to_automaton t.Ast.guard;
              actions = List.map action_to_automaton t.Ast.actions;
              dst = t.Ast.goto;
            })
          l.Ast.transitions)
      m.Ast.locations
  in
  let vars = List.map (fun (x, l) -> (x, Ast.value_of_literal l)) m.Ast.vars in
  Process.Automaton (A.make ~initial ~vars ~transitions)

let event_of = function
  | Ast.Periodic { burst; period; deadline } ->
    Event.periodic ~burst ~period ~deadline ()
  | Ast.Sporadic { burst; period; deadline } ->
    Event.sporadic ~burst ~min_period:period ~deadline ()

(* Map each network-level validation error back to the declaration that
   caused it, so elaboration failures carry a real source position. *)
let pos_of_network_error (n : Ast.network) err =
  let default = { Ast.line = 1; col = 1 } in
  let chan_pos pred =
    match List.find_opt pred n.Ast.channels with
    | Some c -> Some c.Ast.c_pos
    | None -> None
  in
  let mentions name =
    List.filter_map
      (fun opt -> opt)
      [
        chan_pos (fun c -> c.Ast.writer = name || c.Ast.reader = name);
        (match
           List.find_opt (fun (hi, lo, _) -> hi = name || lo = name) n.Ast.priorities
         with
        | Some (_, _, p) -> Some p
        | None -> None);
        (match List.find_opt (fun io -> io.Ast.io_owner = name) n.Ast.ios with
        | Some io -> Some io.Ast.io_pos
        | None -> None);
      ]
  in
  let pos =
    match err with
    | Network.Duplicate_process name -> (
      (* anchor at the last (re-)declaration *)
      match
        List.filter (fun (p : Ast.process_decl) -> p.Ast.p_name = name) n.Ast.processes
      with
      | _ :: _ as ps -> Some (List.nth ps (List.length ps - 1)).Ast.p_pos
      | [] -> None)
    | Network.Unknown_process name -> (
      match mentions name with p :: _ -> Some p | [] -> None)
    | Network.Duplicate_channel name | Network.Self_channel name ->
      chan_pos (fun c -> c.Ast.c_name = name)
    | Network.Missing_priority { channel; _ } ->
      chan_pos (fun c -> c.Ast.c_name = channel)
    | Network.Priority_cycle names -> (
      match
        List.find_opt
          (fun (hi, lo, _) -> List.mem hi names && List.mem lo names)
          n.Ast.priorities
      with
      | Some (_, _, p) -> Some p
      | None -> None)
    | Network.Duplicate_io name -> (
      match List.find_opt (fun io -> io.Ast.io_name = name) n.Ast.ios with
      | Some io -> Some io.Ast.io_pos
      | None -> None)
    | Network.Empty_network -> None
  in
  Option.value pos ~default

let to_network ?(externs = []) (n : Ast.network) =
  let b = Network.Builder.create n.Ast.n_name in
  List.iter
    (fun (p : Ast.process_decl) ->
      let behavior =
        match p.Ast.behavior with
        | Ast.Machine m -> (
          try behavior_of_machine m
          with Invalid_argument msg -> raise (Error (msg, p.Ast.p_pos)))
        | Ast.Extern -> (
          match List.assoc_opt p.Ast.p_name externs with
          | Some bhv -> bhv
          | None ->
            raise
              (Error
                 ( Printf.sprintf
                     "process %S is extern but no host behavior was supplied"
                     p.Ast.p_name,
                   p.Ast.p_pos )))
      in
      let proc =
        try Process.make ~name:p.Ast.p_name ~event:(event_of p.Ast.event) behavior
        with Invalid_argument msg -> raise (Error (msg, p.Ast.p_pos))
      in
      Network.Builder.add_process b proc)
    n.Ast.processes;
  List.iter
    (fun (c : Ast.channel_decl) ->
      Network.Builder.add_channel b
        ?init:(Option.map Ast.value_of_literal c.Ast.init)
        ~kind:c.Ast.kind ~writer:c.Ast.writer ~reader:c.Ast.reader c.Ast.c_name)
    n.Ast.channels;
  List.iter
    (fun (hi, lo, _) -> Network.Builder.add_priority b hi lo)
    n.Ast.priorities;
  List.iter
    (fun (io : Ast.io_decl) ->
      match io.Ast.dir with
      | Ast.In -> Network.Builder.add_input b ~owner:io.Ast.io_owner io.Ast.io_name
      | Ast.Out -> Network.Builder.add_output b ~owner:io.Ast.io_owner io.Ast.io_name)
    n.Ast.ios;
  match Network.Builder.finish b with
  | Ok net -> net
  | Error errs ->
    let pos =
      match errs with
      | e :: _ -> pos_of_network_error n e
      | [] -> { Ast.line = 1; col = 1 }
    in
    raise
      (Error
         ( Format.asprintf "invalid network: %a"
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
                Network.pp_error)
             errs,
           pos ))

let wcet_map ~default (n : Ast.network) name =
  match
    List.find_opt (fun (p : Ast.process_decl) -> p.Ast.p_name = name) n.Ast.processes
  with
  | Some { Ast.wcet = Some w; _ } -> w
  | _ -> default
