(** Elaboration: FPPN description AST → executable [Fppn.Network.t].

    Inline machine behaviors become Def. 2.2 automata; [extern]
    behaviors are resolved against a host-supplied table (so data-heavy
    bodies like the FFT butterflies can stay in OCaml while the network
    structure lives in a [.fppn] file). *)

exception Error of string * Ast.pos

val to_network :
  ?externs:(string * Fppn.Process.behavior) list ->
  Ast.network ->
  Fppn.Network.t
(** @raise Error on elaboration problems carrying a source position:
    an [extern] process without a host binding, duplicate machine
    variables, a [goto] to an undeclared location, or any
    [Fppn.Network] validation error (anchored at the declaration that
    caused it — e.g. a [Missing_priority] points at the uncovered
    channel's declaration). *)

val wcet_map :
  default:Rt_util.Rat.t -> Ast.network -> string -> Rt_util.Rat.t
(** Per-process [wcet] annotations, with [default] for unannotated
    processes. *)

val behavior_of_machine : Ast.machine -> Fppn.Process.behavior
(** Expose the machine→automaton translation (used by tests). *)
