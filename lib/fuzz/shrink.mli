(** Greedy counterexample minimisation.

    Given a failing {!Oracle.case}, repeatedly tries size-reducing
    moves — collapse the temporal dimensions (frames, jitter seeds,
    processor counts), drop sporadic processes, drop channels, drop
    periodic processes — keeping a move only when the shrunk case still
    {e fails} the oracle (a {!Oracle.Skip} rejects the move).  Moves
    that would remove or orphan the sabotage target are never proposed,
    so an injected bug stays reproducible throughout.

    The result is a local minimum: no single remaining move preserves
    the failure.  Deterministic in the input case. *)

type result = {
  shrunk : Oracle.case;
  attempts : int;  (** oracle invocations spent *)
  accepted : int;  (** moves that kept the failure *)
}

val minimise : ?budget:int -> Oracle.case -> result
(** [budget] (default 200) caps oracle invocations.  The input should
    already fail; otherwise the input is returned unchanged. *)
