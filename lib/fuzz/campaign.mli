(** Budgeted fuzzing loop: draw random workloads, run each through the
    differential {!Oracle}, shrink any failure with {!Shrink}, collect a
    {!Report}.  Fully deterministic in [config.seed].

    Injection mode ([inject <> No_injection]) sabotages every case's
    system-under-test copy with a flipped functional-priority edge — a
    self-test that the oracle actually has teeth: a healthy oracle
    catches most observable flips.  Flips that would close an FP cycle
    are skipped at selection time. *)

type inject = No_injection | Inject_channel_flip | Inject_sporadic_flip

type config = {
  seed : int;
  budget : int;  (** number of cases to generate *)
  proc_counts : int list;
  jitter_seeds : int list;
  frames : int;
  permutations : int;
  boundary_snap : bool;
  max_periodic : int;  (** drawn from [2..max_periodic] *)
  max_sporadic : int;  (** drawn from [0..max_sporadic] *)
  shrink : bool;
  shrink_budget : int;
  inject : inject;
}

val default_config : config
(** seed 42, budget 50, M ∈ {1,2}, jitter seeds {1,2}, 2 frames,
    2 permutations, boundary snapping on, up to 6 periodic + 2 sporadic,
    shrinking on with budget 200, no injection. *)

val draw_spec :
  Rt_util.Prng.t ->
  max_periodic:int ->
  max_sporadic:int ->
  Fppn_apps.Randgen.spec
(** One random workload drawn exactly as the campaign loop draws it
    (same PRNG consumption), so other consumers — e.g. the
    {!Static_diff} lint-vs-oracle sweep — sample the identical
    distribution. *)

val choose_sabotage :
  inject -> Rt_util.Prng.t -> Fppn_apps.Randgen.spec -> Oracle.sabotage
(** A buildable sabotage for the spec under the given injection mode;
    {!Oracle.No_sabotage} when no target is applicable. *)

val run :
  ?log:(string -> unit) -> ?jobs:int -> ?jobs_requested:int -> config -> Report.t
(** [log] receives one progress line per divergence and per 10 cases.

    [jobs] (default 1) runs the oracle cases on a {!Rt_util.Pool} of
    that many domains.  Cases are drawn up front in campaign order and
    results are merged in that order, so the report is identical to the
    sequential one apart from its wall-clock fields
    ({!Report.normalize_timing}); shrinking of failing cases stays
    sequential.

    [jobs_requested] (default [jobs]) is recorded in the report for
    provenance when a CLI clamped the user's request with
    {!Rt_util.Pool.clamp_jobs}; the campaign itself never clamps. *)
