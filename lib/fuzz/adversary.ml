module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module Semantics = Fppn.Semantics
module Event = Fppn.Event
module Network = Fppn.Network
module Process = Fppn.Process
module Derive = Taskgraph.Derive

let permute_simultaneous prng trace =
  let rec split_group t acc = function
    | (inv : Semantics.invocation) :: rest when Rat.equal inv.Semantics.time t ->
      split_group t (inv :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | (inv : Semantics.invocation) :: rest ->
      let group, rest = split_group inv.Semantics.time [ inv ] rest in
      let arr = Array.of_list group in
      Prng.shuffle prng arr;
      loop (List.rev_append (Array.to_list arr) acc) rest
  in
  loop [] trace

(* Greedily extend [acc] with ascending stamps, keeping only those that
   leave the trace valid for [ev].  Quadratic, but traces are short. *)
let greedy_valid ev stamps =
  List.fold_left
    (fun acc t ->
      let ext = acc @ [ t ] in
      if Event.is_valid_sporadic_trace ev ext then ext else acc)
    [] stamps

let boundary_traces net (d : Derive.t) ~frames ~seed =
  let h = d.Derive.hyperperiod in
  let horizon = Rat.mul h (Rat.of_int frames) in
  let prng = Prng.create seed in
  let eps = Rat.make 1 1000 in
  List.map
    (fun (s : Derive.server_info) ->
      let proc = Network.process net s.Derive.sporadic in
      let name = Process.name proc in
      let ev = Process.event proc in
      let ts = s.Derive.server_period in
      let slots = Rat.to_int_exn (Rat.div h ts) in
      let candidates = ref [] in
      for frame = 0 to frames - 1 do
        for slot = 1 to slots do
          let b =
            Rat.add
              (Rat.mul h (Rat.of_int frame))
              (Rat.mul ts (Rat.of_int (slot - 1)))
          in
          List.iter
            (fun c -> candidates := c :: !candidates)
            [ b; Rat.add b eps; Rat.sub b eps ]
        done
      done;
      let candidates =
        List.sort_uniq Rat.compare !candidates
        |> List.filter (fun t -> Rat.sign t >= 0 && Rat.(t < horizon))
      in
      (* a random subset keeps successive cases from probing the same
         boundaries; greedy filtering keeps the trace (m,T)-valid *)
      let kept = List.filter (fun _ -> Prng.float prng 1.0 < 0.6) candidates in
      (name, greedy_valid ev kept))
    d.Derive.servers

let merge_traces net a b =
  let names =
    List.sort_uniq String.compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun name ->
      let ev = Process.event (Network.process net (Network.find net name)) in
      let stamps l = match List.assoc_opt name l with Some s -> s | None -> [] in
      (* plain sort (not uniq): equal stamps are burst events *)
      let all = List.sort Rat.compare (stamps a @ stamps b) in
      (name, greedy_valid ev all))
    names
