(** Adversarial stimulus generation for the determinism oracle.

    Prop. 2.1 claims channel histories depend only on input data and
    event time stamps.  The two classic ways to break a buggy
    implementation of that claim are (a) reordering {e simultaneous}
    invocations — the semantics must re-sort them by functional
    priority, so any order-sensitivity is a race — and (b) placing
    sporadic events {e exactly on} sporadic-server window boundaries,
    where the right-closed [(a,b]] vs left-closed [[a,b)] rule of
    Fig. 2 decides which frame handles them.  This module produces both
    stimuli deterministically from a seed. *)

val permute_simultaneous :
  Rt_util.Prng.t -> Fppn.Semantics.event_trace -> Fppn.Semantics.event_trace
(** Randomly shuffles every group of equal-time invocations, leaving
    the groups themselves in ascending time order.  A correct zero-delay
    interpreter must produce identical channel histories for any such
    permutation. *)

val boundary_traces :
  Fppn.Network.t ->
  Taskgraph.Derive.t ->
  frames:int ->
  seed:int ->
  (string * Rt_util.Rat.t list) list
(** For every sporadic server, a valid event trace whose stamps sit on
    (or within 1/1000 ms of) the server's window boundaries
    [frame·H + (slot−1)·T'] over [\[0, frames·H)] — the stamps that
    discriminate the Fig. 2 boundary rule.  Stamps violating the
    sporadic [(m,T)] constraint are greedily dropped, so the result is
    always a valid trace. *)

val merge_traces :
  Fppn.Network.t ->
  (string * Rt_util.Rat.t list) list ->
  (string * Rt_util.Rat.t list) list ->
  (string * Rt_util.Rat.t list) list
(** Per-process union of two trace sets, greedily dropping stamps that
    would violate the process' sporadic constraint.  Burst duplicates
    are preserved. *)
