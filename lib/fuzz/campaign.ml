module Prng = Rt_util.Prng
module Pool = Rt_util.Pool
module Randgen = Fppn_apps.Randgen
module Trace = Fppn_obs.Trace
module Metrics = Fppn_obs.Metrics

type inject = No_injection | Inject_channel_flip | Inject_sporadic_flip

type config = {
  seed : int;
  budget : int;
  proc_counts : int list;
  jitter_seeds : int list;
  frames : int;
  permutations : int;
  boundary_snap : bool;
  max_periodic : int;
  max_sporadic : int;
  shrink : bool;
  shrink_budget : int;
  inject : inject;
}

let default_config =
  {
    seed = 42;
    budget = 50;
    proc_counts = [ 1; 2 ];
    jitter_seeds = [ 1; 2 ];
    frames = 2;
    permutations = 2;
    boundary_snap = true;
    max_periodic = 6;
    max_sporadic = 2;
    shrink = true;
    shrink_budget = 200;
    inject = No_injection;
  }

let draw_spec prng ~max_periodic ~max_sporadic =
  let params =
    {
      Randgen.default_params with
      Randgen.seed = Prng.int prng 1_000_000;
      n_periodic = Prng.int_in prng 2 (max 2 max_periodic);
      n_sporadic = Prng.int_in prng 0 (max 0 max_sporadic);
      channel_density = Prng.float_in prng 0.2 0.8;
    }
  in
  Randgen.spec_of_params params

let choose_sabotage inject prng spec =
  match inject with
  | No_injection -> Oracle.No_sabotage
  | Inject_channel_flip -> (
    let arr = Array.of_list spec.Randgen.chans in
    Prng.shuffle prng arr;
    let rec pick i =
      if i >= Array.length arr then Oracle.No_sabotage
      else
        let c = arr.(i) in
        match
          Randgen.flip_channel_fp spec ~writer:c.Randgen.cw ~reader:c.Randgen.cr
        with
        | Some s' when Result.is_ok (Randgen.build s') ->
          Oracle.Flip_channel_fp { writer = c.Randgen.cw; reader = c.Randgen.cr }
        | _ -> pick (i + 1)
    in
    pick 0)
  | Inject_sporadic_flip -> (
    match spec.Randgen.sporadics with
    | [] -> Oracle.No_sabotage
    | sps ->
      Oracle.Flip_sporadic_fp
        (Prng.pick prng (List.map (fun s -> s.Randgen.sp_name) sps)))

let run ?(log = fun _ -> ()) ?(jobs = 1) ?jobs_requested config =
  Trace.with_span "fuzz.campaign" @@ fun () ->
  let jobs_requested = Option.value jobs_requested ~default:jobs in
  let t_start = Unix.gettimeofday () in
  let prng = Prng.create config.seed in
  (* Phase 1: draw every case sequentially, in campaign order — the
     PRNG stream is exactly the one the sequential loop consumed, since
     the oracle never touches the campaign PRNG. *)
  let draw_case () =
    let spec =
      draw_spec prng ~max_periodic:config.max_periodic
        ~max_sporadic:config.max_sporadic
    in
    let sabotage = choose_sabotage config.inject prng spec in
    {
      Oracle.spec;
      sabotage;
      trace_seed = Prng.int prng 1_000_000;
      jitter_seeds = config.jitter_seeds;
      proc_counts = config.proc_counts;
      frames = config.frames;
      permutations = config.permutations;
      boundary_snap = config.boundary_snap;
    }
  in
  let rec draw i acc =
    if i >= config.budget then Array.of_list (List.rev acc)
    else draw (i + 1) (draw_case () :: acc)
  in
  let cases = draw 0 [] in
  (* Phase 2: run the oracle on every case, on the pool.  Each case is
     self-contained (own seeds), so parallel verdicts are identical to
     sequential ones; results are merged in case order by the pool. *)
  (* the span is opened inside the task, so it lands in the ring of the
     worker domain that ran the case — lanes attribute work correctly *)
  let timed_check case =
    Trace.with_span "fuzz.case" @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let verdict = Oracle.check case in
    (verdict, Unix.gettimeofday () -. t0)
  in
  let verdicts =
    if jobs <= 1 then Array.map timed_check cases
    else
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_map pool
            (fun case ->
              if Trace.enabled () then
                Trace.counter "pool.pending" (Pool.pending pool);
              timed_check case)
            cases)
  in
  (* Phase 3: fold the verdicts in case order; shrinking a failing case
     stays sequential (its oracle re-runs are search, not sweep). *)
  let cases_run = ref 0 and skipped = ref 0 and comparisons = ref 0 in
  let counterexamples = ref [] in
  (* verdict counters fold in case order, so their totals are
     independent of how many domains ran phase 2 *)
  let m_cases = Metrics.counter "fuzz.cases"
  and m_pass = Metrics.counter "fuzz.pass"
  and m_skip = Metrics.counter "fuzz.skip"
  and m_fail = Metrics.counter "fuzz.fail"
  and m_cmp = Metrics.counter "fuzz.comparisons" in
  Array.iteri
    (fun idx (verdict, _) ->
      let i = idx + 1 in
      let case = cases.(idx) in
      incr cases_run;
      Metrics.incr m_cases;
      (match verdict with
      | Oracle.Pass { comparisons = c } ->
        comparisons := !comparisons + c;
        Metrics.incr m_pass;
        Metrics.add m_cmp c
      | Oracle.Skip _ ->
        incr skipped;
        Metrics.incr m_skip
      | Oracle.Fail divergence ->
        Metrics.incr m_fail;
        let shrunk, divergence, attempts, accepted =
          if config.shrink then begin
            let r = Shrink.minimise ~budget:config.shrink_budget case in
            (* re-check to report the divergence of the minimal case *)
            let d =
              match Oracle.check r.Shrink.shrunk with
              | Oracle.Fail d -> d
              | _ -> divergence
            in
            (r.Shrink.shrunk, d, r.Shrink.attempts, r.Shrink.accepted)
          end
          else (case, divergence, 0, 0)
        in
        log
          (Format.asprintf "case %d: %a (shrunk to %d processes)" i
             Oracle.pp_divergence divergence
             (Oracle.case_processes shrunk));
        counterexamples :=
          {
            Report.original = case;
            shrunk;
            divergence;
            shrink_attempts = attempts;
            shrink_accepted = accepted;
          }
          :: !counterexamples);
      if i mod 10 = 0 then
        log
          (Printf.sprintf "progress: %d/%d cases, %d divergence(s)" i
             config.budget
             (List.length !counterexamples)))
    verdicts;
  {
    Report.seed = config.seed;
    budget = config.budget;
    cases_run = !cases_run;
    skipped = !skipped;
    comparisons = !comparisons;
    injected = config.inject <> No_injection;
    jobs = max 1 jobs;
    jobs_requested = max 1 jobs_requested;
    case_times_s = Array.map snd verdicts;
    wall_time_s = Unix.gettimeofday () -. t_start;
    counterexamples = List.rev !counterexamples;
  }
