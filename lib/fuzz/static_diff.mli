(** Lint-vs-oracle differential: are the fuzzer's sabotage injections
    visible {e statically}, without running any engine?

    For a sabotaged case the base spec and the system-under-test spec
    are both linted and their {!Fppn_lint.Diagnostic.fingerprint}s are
    compared {e on the sabotaged channel's subject only}.  A flipped
    functional-priority edge changes whether that edge runs with or
    against the channel's data flow, so the FPPN022 entry for that
    channel toggles — a non-empty symmetric difference means the
    injection is statically distinguishable.  Clean (uninjected) specs
    must lint without error-severity findings. *)

type outcome =
  | Caught of string  (** a diagnostic code that distinguishes the SUT *)
  | Missed
  | Not_applicable  (** no sabotage, or its target does not exist *)

val check :
  base:Fppn_apps.Randgen.spec -> Oracle.sabotage -> outcome

val check_case : Oracle.case -> outcome
(** {!check} on the case's spec and sabotage. *)

type summary = {
  cases : int;
  injected : int;  (** cases whose sabotage had a target *)
  caught : int;
  missed : int;
  not_applicable : int;
  clean_errors : int;
      (** base (unsabotaged) specs with error-severity lint findings —
          must be 0: randgen output is well-formed by construction *)
  codes : (string * int) list;  (** catching diagnostic codes, counted *)
  wall_time_s : float;
}

val run :
  ?log:(string -> unit) ->
  ?max_periodic:int ->
  ?max_sporadic:int ->
  seed:int ->
  budget:int ->
  inject:Campaign.inject ->
  unit ->
  summary
(** Draws [budget] workloads with {!Campaign.draw_spec} and sabotages
    them with {!Campaign.choose_sabotage} (defaults 6 periodic /
    2 sporadic as in {!Campaign.default_config}), then runs {!check} on
    each — no engine, no traces. *)

val passed : inject:Campaign.inject -> summary -> bool
(** Injection modes: some injections landed and none were missed.
    [No_injection]: no clean spec linted with errors. *)

val pp : Format.formatter -> summary -> unit

(** {1 Certificate differential}

    Closes the loop on static shardability certification
    ({!Fppn_lint.Certificate}): a certificate-accept must run
    [Engine.run_sharded] bit-identically to [Engine.run], a
    certificate-reject must fall back (never engage the sharded path)
    or be provably order-violating — unbuildable, since
    [Randgen.build] refuses exactly the Def. 2.1 violations
    {!Fppn_apps.Randgen.seed_race} plants.  Every buildable case also
    cross-checks the certificate against the legacy job-level closure
    ([Engine.closure_conflicts_ordered]), both directly and via
    [Engine.closure_cross_check], which stays enabled for the whole
    campaign. *)

type certify_summary = {
  cc_cases : int;
  cc_accepts : int;  (** certificate says shardable *)
  cc_rejects : int;  (** certificate refuses (every other case is raced) *)
  cc_unbuildable_rejects : int;
      (** rejected specs the builder also refuses: provably order-violating *)
  cc_engaged : int;  (** runs where the sharded path actually engaged *)
  cc_fallbacks : int;  (** buildable runs that fell back to the core *)
  cc_mismatches : int;  (** sharded-vs-sequential signature diffs — must be 0 *)
  cc_disagreements : int;
      (** certificate-vs-closure or certificate-vs-builder conflicts —
          must be 0 *)
  cc_wall_time_s : float;
}

val certify :
  ?log:(string -> unit) ->
  ?max_periodic:int ->
  ?max_sporadic:int ->
  seed:int ->
  budget:int ->
  unit ->
  certify_summary
(** Runs [budget] cases on 2 processors / 2 shards / 2 frames with
    metrics and {!Runtime.Engine.closure_cross_check} enabled
    (restored afterwards). *)

val certify_passed : certify_summary -> bool
(** No mismatches, no disagreements, at least one engaged accept and
    at least one reject. *)

val pp_certify : Format.formatter -> certify_summary -> unit
