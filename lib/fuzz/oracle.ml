module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module Value = Fppn.Value
module Network = Fppn.Network
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module List_scheduler = Sched.List_scheduler
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Translate = Timedauto.Translate
module Randgen = Fppn_apps.Randgen

type sabotage =
  | No_sabotage
  | Flip_channel_fp of { writer : int; reader : int }
  | Flip_sporadic_fp of string

type case = {
  spec : Randgen.spec;
  sabotage : sabotage;
  trace_seed : int;
  jitter_seeds : int list;
  proc_counts : int list;
  frames : int;
  permutations : int;
  boundary_snap : bool;
}

let case_processes case = Randgen.spec_processes case.spec

let sut_spec case =
  match case.sabotage with
  | No_sabotage -> Some case.spec
  | Flip_channel_fp { writer; reader } ->
    Randgen.flip_channel_fp case.spec ~writer ~reader
  | Flip_sporadic_fp name -> Randgen.flip_sporadic_fp case.spec name

type divergence = {
  executor : string;
  channel : string option;
  detail : string;
}

type verdict =
  | Pass of { comparisons : int }
  | Skip of string
  | Fail of divergence

let pp_divergence ppf d =
  Format.fprintf ppf "%s diverges%a: %s" d.executor
    (fun ppf -> function
      | None -> ()
      | Some c -> Format.fprintf ppf " on channel %s" c)
    d.channel d.detail

(* First point where two sorted channel-history signatures disagree. *)
let first_diff ref_sig sut_sig =
  let hist_diff n h1 h2 =
    let rec at i = function
      | [], [] -> None
      | v :: _, [] ->
        Some
          (Printf.sprintf "write %d: reference has %s, SUT history ends" i
             (Value.to_string v))
      | [], v :: _ ->
        Some
          (Printf.sprintf "write %d: reference ends, SUT has %s" i
             (Value.to_string v))
      | v1 :: r1, v2 :: r2 ->
        if Value.equal v1 v2 then at (i + 1) (r1, r2)
        else
          Some
            (Printf.sprintf "write %d: %s vs %s" i (Value.to_string v1)
               (Value.to_string v2))
    in
    Option.map (fun d -> (Some n, d)) (at 1 (h1, h2))
  in
  let rec loop = function
    | [], [] -> None
    | (n, _) :: _, [] -> Some (Some n, "channel missing from the SUT run")
    | [], (n, _) :: _ -> Some (Some n, "extra channel in the SUT run")
    | (n1, h1) :: r1, (n2, h2) :: r2 ->
      let c = String.compare n1 n2 in
      if c < 0 then Some (Some n1, "channel missing from the SUT run")
      else if c > 0 then Some (Some n2, "extra channel in the SUT run")
      else (
        match hist_diff n1 h1 h2 with
        | Some d -> Some d
        | None -> loop (r1, r2))
  in
  loop (ref_sig, sut_sig)

let scale = Rat.make 1 25

let check case =
  match sut_spec case with
  | None -> Skip "sabotage target does not exist"
  | Some sut -> (
    match (Randgen.build case.spec, Randgen.build sut) with
    | Error e, _ -> Skip ("reference build: " ^ e)
    | _, Error e -> Skip ("SUT build: " ^ e)
    | Ok net_ref, Ok net_sut -> (
      let wcet net = Randgen.wcet ~scale (Derive.const_wcet Rat.one) net in
      match
        (Derive.derive ~wcet:(wcet net_ref) net_ref,
         Derive.derive ~wcet:(wcet net_sut) net_sut)
      with
      | Error e, _ | _, Error e ->
        Skip (Format.asprintf "derivation: %a" Derive.pp_error e)
      | Ok d_ref, Ok d_sut ->
        let horizon =
          Rat.mul d_ref.Derive.hyperperiod (Rat.of_int case.frames)
        in
        let traces =
          let random =
            Randgen.random_traces ~seed:case.trace_seed ~horizon ~density:0.5
              net_ref
          in
          if case.boundary_snap then
            Adversary.merge_traces net_ref random
              (Adversary.boundary_traces net_ref d_ref ~frames:case.frames
                 ~seed:case.trace_seed)
          else random
        in
        (* Drop events beyond the reference's simulated windows so every
           executor sees the same event set.  The SUT's own windows may
           legitimately differ under sabotage — that is the bug being
           hunted, and it shows up as a history divergence. *)
        let traces =
          let _, unhandled =
            Engine.sporadic_assignment net_ref d_ref ~frames:case.frames traces
          in
          List.map
            (fun (n, stamps) ->
              ( n,
                List.filter
                  (fun s ->
                    not
                      (List.exists
                         (fun (n', u) -> n' = n && Rat.equal u s)
                         unhandled))
                  stamps ))
            traces
        in
        let zd =
          Semantics.run net_ref
            (Semantics.invocations ~sporadic:traces ~horizon net_ref)
        in
        let ref_sig = Semantics.signature zd in
        let comparisons = ref 0 in
        let fail = ref None in
        let running = fun () -> !fail = None in
        let record executor channel detail =
          fail := Some { executor; channel; detail }
        in
        let compare_sig executor sut_sig =
          incr comparisons;
          match first_diff ref_sig sut_sig with
          | None -> ()
          | Some (channel, detail) -> record executor channel detail
        in
        let guarded executor f =
          if running () then
            try f ()
            with e ->
              record executor None ("executor crashed: " ^ Printexc.to_string e)
        in
        (* adversarially permuted zero-delay runs on the SUT network *)
        let base_invs =
          try Semantics.invocations ~sporadic:traces ~horizon net_sut
          with Invalid_argument m ->
            record "zero-delay invocations" None m;
            []
        in
        for k = 1 to case.permutations do
          let label = Printf.sprintf "zero-delay permutation %d" k in
          guarded label (fun () ->
              let prng = Prng.create (case.trace_seed + (7919 * k)) in
              let permuted = Adversary.permute_simultaneous prng base_invs in
              compare_sig label (Semantics.signature (Semantics.run net_sut permuted)))
        done;
        (* engine across processor counts × jitter seeds, + TA backend *)
        let feasible = ref 0 in
        List.iter
          (fun m ->
            if running () then
              match snd (List_scheduler.auto ~n_procs:m d_sut.Derive.graph) with
              | None -> ()
              | Some a ->
                incr feasible;
                let sched = a.List_scheduler.schedule in
                let config exec =
                  { (Engine.default_config ~frames:case.frames ~n_procs:m ()) with
                    Engine.sporadic = traces;
                    exec }
                in
                List.iter
                  (fun js ->
                    let label = Printf.sprintf "engine M=%d jitter-seed=%d" m js in
                    guarded label (fun () ->
                        let rt =
                          Engine.run net_sut d_sut sched
                            (config (Exec_time.uniform ~seed:js ~min_fraction:0.25))
                        in
                        compare_sig label (Engine.signature rt);
                        if running () then begin
                          incr comparisons;
                          match Exec_trace.check d_sut.Derive.graph (Engine.trace rt) with
                          | [] -> ()
                          | vs ->
                            record
                              (Printf.sprintf "trace compliance M=%d jitter-seed=%d"
                                 m js)
                              None
                              (Format.asprintf "%d violation(s), first: %a"
                                 (List.length vs) Exec_trace.pp_violation
                                 (List.hd vs))
                        end))
                  case.jitter_seeds;
                let label = Printf.sprintf "timed-automata M=%d" m in
                guarded label (fun () ->
                    let ta =
                      Translate.execute
                        (Translate.build net_sut d_sut sched
                           (config
                              (Exec_time.uniform ~seed:case.trace_seed
                                 ~min_fraction:0.25)))
                    in
                    compare_sig label (Translate.signature ta)))
          case.proc_counts;
        (match !fail with
        | Some d -> Fail d
        | None ->
          if !feasible = 0 && case.proc_counts <> [] then
            Skip "no feasible schedule on any requested processor count"
          else Pass { comparisons = !comparisons })))
