module Randgen = Fppn_apps.Randgen

type counterexample = {
  original : Oracle.case;
  shrunk : Oracle.case;
  divergence : Oracle.divergence;
  shrink_attempts : int;
  shrink_accepted : int;
}

type t = {
  seed : int;
  budget : int;
  cases_run : int;
  skipped : int;
  comparisons : int;
  injected : bool;
  jobs : int;
  jobs_requested : int;
  case_times_s : float array;
  wall_time_s : float;
  counterexamples : counterexample list;
}

let passed t = t.counterexamples = []

let cases_per_s t =
  if t.wall_time_s > 0.0 then float_of_int t.cases_run /. t.wall_time_s else 0.0

let normalize_timing t =
  {
    t with
    jobs = 1;
    jobs_requested = 1;
    case_times_s = Array.map (fun _ -> 0.0) t.case_times_s;
    wall_time_s = 0.0;
  }

(* --- JSON (shared Rt_util.Json writer) --------------------------------- *)

open Rt_util.Json

let jstr s = Str s
let jlist f l = Arr (List.map f l)
let jint i = Int i
let jbool b = Bool b
let jfloat f = Float f
let jobj fields = Obj fields

let spec_to_json (s : Randgen.spec) =
  jobj
    [
      ("label", jstr s.Randgen.label);
      ("periods", jlist jint (Array.to_list s.Randgen.periods));
      ( "channels",
        jlist
          (fun (c : Randgen.chan_spec) ->
            jobj
              [
                ("writer", jint c.Randgen.cw);
                ("reader", jint c.Randgen.cr);
                ("fifo", jbool c.Randgen.fifo);
                ("rev_fp", jbool c.Randgen.rev_fp);
                ("no_fp", jbool c.Randgen.no_fp);
              ])
          s.Randgen.chans );
      ( "sporadics",
        jlist
          (fun (sp : Randgen.sporadic_spec) ->
            jobj
              [
                ("name", jstr sp.Randgen.sp_name);
                ("user", jint sp.Randgen.sp_user);
                ("burst", jint sp.Randgen.sp_burst);
                ("min_period", jint sp.Randgen.sp_min_period);
                ("higher", jbool sp.Randgen.sp_higher);
              ])
          s.Randgen.sporadics );
    ]

let sabotage_to_json = function
  | Oracle.No_sabotage -> jobj [ ("kind", jstr "none") ]
  | Oracle.Flip_channel_fp { writer; reader } ->
    jobj
      [
        ("kind", jstr "flip-channel-fp");
        ("writer", jint writer);
        ("reader", jint reader);
      ]
  | Oracle.Flip_sporadic_fp name ->
    jobj [ ("kind", jstr "flip-sporadic-fp"); ("name", jstr name) ]

let case_json (c : Oracle.case) =
  jobj
    [
      ("spec", spec_to_json c.Oracle.spec);
      ("sabotage", sabotage_to_json c.Oracle.sabotage);
      ("trace_seed", jint c.Oracle.trace_seed);
      ("jitter_seeds", jlist jint c.Oracle.jitter_seeds);
      ("proc_counts", jlist jint c.Oracle.proc_counts);
      ("frames", jint c.Oracle.frames);
      ("permutations", jint c.Oracle.permutations);
      ("boundary_snap", jbool c.Oracle.boundary_snap);
    ]

let divergence_to_json (d : Oracle.divergence) =
  jobj
    [
      ("executor", jstr d.Oracle.executor);
      ( "channel",
        match d.Oracle.channel with None -> Null | Some c -> jstr c );
      ("detail", jstr d.Oracle.detail);
    ]

let case_to_json c = to_string (case_json c)

let report_json t =
  jobj
    [
      ("seed", jint t.seed);
      ("budget", jint t.budget);
      ("cases_run", jint t.cases_run);
      ("skipped", jint t.skipped);
      ("comparisons", jint t.comparisons);
      ("injected", jbool t.injected);
      ("passed", jbool (passed t));
      ("jobs", jint t.jobs);
      ("jobs_requested", jint t.jobs_requested);
      ("wall_time_ms", jfloat (t.wall_time_s *. 1000.0));
      ("cases_per_s", jfloat (cases_per_s t));
      ( "case_times_ms",
        jlist jfloat (List.map (fun s -> s *. 1000.0) (Array.to_list t.case_times_s)) );
      ( "counterexamples",
        jlist
          (fun cx ->
            jobj
              [
                ("divergence", divergence_to_json cx.divergence);
                ("shrunk", case_json cx.shrunk);
                ("original", case_json cx.original);
                ("shrink_attempts", jint cx.shrink_attempts);
                ("shrink_accepted", jint cx.shrink_accepted);
              ])
          t.counterexamples );
    ]

let to_json t = to_string (report_json t)

(* --- pretty printing ---------------------------------------------------- *)

let pp_case ppf (c : Oracle.case) =
  let s = c.Oracle.spec in
  Format.fprintf ppf
    "%d periodic + %d sporadic, %d channel(s), trace seed %d, frames %d, M in {%s}"
    (Array.length s.Randgen.periods)
    (List.length s.Randgen.sporadics)
    (List.length s.Randgen.chans)
    c.Oracle.trace_seed c.Oracle.frames
    (String.concat "," (List.map string_of_int c.Oracle.proc_counts))

let pp ppf t =
  Format.fprintf ppf
    "fuzz campaign: seed %d, %d/%d case(s) run (%d skipped), %d executor comparison(s)%s@."
    t.seed t.cases_run t.budget t.skipped t.comparisons
    (if t.injected then ", sabotage injection ON" else "");
  if t.wall_time_s > 0.0 then
    Format.fprintf ppf "throughput: %.1f cases/s (%d job(s)%s, %.2f s wall)@."
      (cases_per_s t) t.jobs
      (if t.jobs_requested <> t.jobs then
         Printf.sprintf " of %d requested" t.jobs_requested
       else "")
      t.wall_time_s;
  (match t.counterexamples with
  | [] -> Format.fprintf ppf "no divergence found@."
  | cxs ->
    Format.fprintf ppf "%d divergence(s):@." (List.length cxs);
    List.iteri
      (fun i cx ->
        Format.fprintf ppf "  #%d %a@." (i + 1) Oracle.pp_divergence
          cx.divergence;
        Format.fprintf ppf "     shrunk to: %a (%d processes; %d/%d shrink moves accepted)@."
          pp_case cx.shrunk
          (Oracle.case_processes cx.shrunk)
          cx.shrink_accepted cx.shrink_attempts;
        Format.fprintf ppf "     original:  %a@." pp_case cx.original)
      cxs);
  Format.fprintf ppf "verdict: %s@."
    (if passed t then "deterministic (no counterexample)"
     else "DETERMINISM VIOLATION(S) FOUND")
