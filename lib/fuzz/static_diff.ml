module Prng = Rt_util.Prng
module Randgen = Fppn_apps.Randgen
module D = Fppn_lint.Diagnostic
module Lint = Fppn_lint.Lint

type outcome = Caught of string | Missed | Not_applicable

let sabotaged_channel base = function
  | Oracle.No_sabotage -> None
  | Oracle.Flip_channel_fp { writer; reader } ->
    Some
      (Randgen.channel_name
         (Randgen.periodic_name writer)
         (Randgen.periodic_name reader))
  | Oracle.Flip_sporadic_fp name -> (
    match
      List.find_opt
        (fun s -> s.Randgen.sp_name = name)
        base.Randgen.sporadics
    with
    | Some s ->
      Some (Randgen.channel_name name (Randgen.periodic_name s.Randgen.sp_user))
    | None -> None)

let apply base = function
  | Oracle.No_sabotage -> None
  | Oracle.Flip_channel_fp { writer; reader } ->
    Randgen.flip_channel_fp base ~writer ~reader
  | Oracle.Flip_sporadic_fp name -> Randgen.flip_sporadic_fp base name

let check ~base sabotage =
  match (sabotaged_channel base sabotage, apply base sabotage) with
  | None, _ | _, None -> Not_applicable
  | Some ch, Some sut -> (
    let subject = "channel " ^ ch in
    let shape spec =
      List.filter (fun (_, s) -> s = subject) (D.fingerprint (Lint.lint_spec spec))
    in
    let fb = shape base and fs = shape sut in
    let diff =
      List.filter (fun e -> not (List.mem e fs)) fb
      @ List.filter (fun e -> not (List.mem e fb)) fs
    in
    match diff with [] -> Missed | (code, _) :: _ -> Caught code)

let check_case (case : Oracle.case) =
  check ~base:case.Oracle.spec case.Oracle.sabotage

type summary = {
  cases : int;
  injected : int;
  caught : int;
  missed : int;
  not_applicable : int;
  clean_errors : int;
  codes : (string * int) list;
  wall_time_s : float;
}

let run ?(log = fun _ -> ()) ?(max_periodic = 6) ?(max_sporadic = 2) ~seed
    ~budget ~inject () =
  let t0 = Unix.gettimeofday () in
  let prng = Prng.create seed in
  let caught = ref 0
  and missed = ref 0
  and not_applicable = ref 0
  and clean_errors = ref 0 in
  let codes = Hashtbl.create 8 in
  for i = 1 to budget do
    let base = Campaign.draw_spec prng ~max_periodic ~max_sporadic in
    if D.has_errors (Lint.lint_spec base) then begin
      incr clean_errors;
      log (Printf.sprintf "case %d: clean spec %s lints with errors" i base.Randgen.label)
    end;
    let sabotage = Campaign.choose_sabotage inject prng base in
    (match check ~base sabotage with
    | Not_applicable -> incr not_applicable
    | Caught code ->
      incr caught;
      Hashtbl.replace codes code
        (1 + try Hashtbl.find codes code with Not_found -> 0)
    | Missed ->
      incr missed;
      log (Printf.sprintf "case %d: injection into %s not visible statically" i base.Randgen.label));
    if i mod 50 = 0 then
      log (Printf.sprintf "progress: %d/%d cases, %d caught, %d missed" i budget !caught !missed)
  done;
  {
    cases = budget;
    injected = !caught + !missed;
    caught = !caught;
    missed = !missed;
    not_applicable = !not_applicable;
    clean_errors = !clean_errors;
    codes =
      List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) codes []);
    wall_time_s = Unix.gettimeofday () -. t0;
  }

let passed ~inject s =
  match inject with
  | Campaign.No_injection -> s.clean_errors = 0
  | Campaign.Inject_channel_flip | Campaign.Inject_sporadic_flip ->
    s.injected > 0 && s.missed = 0 && s.clean_errors = 0

let pp ppf s =
  Format.fprintf ppf
    "static diff: %d case(s), %d injected, %d caught, %d missed, %d \
     inapplicable, %d clean-spec error(s) in %.3fs"
    s.cases s.injected s.caught s.missed s.not_applicable s.clean_errors
    s.wall_time_s;
  List.iter (fun (c, n) -> Format.fprintf ppf "@.  %s: %d" c n) s.codes

(* --- certificate differential ------------------------------------------ *)

module Rat = Rt_util.Rat
module List_scheduler = Sched.List_scheduler
module Certificate = Fppn_lint.Certificate
module Model = Fppn_lint.Model
module Engine = Runtime.Engine
module Derive = Taskgraph.Derive
module Metrics = Fppn_obs.Metrics

type certify_summary = {
  cc_cases : int;
  cc_accepts : int;
  cc_rejects : int;
  cc_unbuildable_rejects : int;
  cc_engaged : int;
  cc_fallbacks : int;
  cc_mismatches : int;
  cc_disagreements : int;
  cc_wall_time_s : float;
}

let certify ?(log = fun _ -> ()) ?(max_periodic = 6) ?(max_sporadic = 2) ~seed
    ~budget () =
  let t0 = Unix.gettimeofday () in
  let prng = Prng.create seed in
  let accepts = ref 0
  and rejects = ref 0
  and unbuildable = ref 0
  and engaged = ref 0
  and fallbacks = ref 0
  and mismatches = ref 0
  and disagreements = ref 0 in
  let metrics_were = Metrics.enabled () in
  let cross_check_was = !Engine.closure_cross_check in
  Metrics.set_enabled true;
  Engine.closure_cross_check := true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled metrics_were;
      Engine.closure_cross_check := cross_check_was)
    (fun () ->
      for i = 1 to budget do
        let base = Campaign.draw_spec prng ~max_periodic ~max_sporadic in
        (* every other case seeds a known determinism race so the
           certificate's rejecting side is exercised too *)
        let spec =
          if i mod 2 = 0 then
            match Randgen.seed_race prng base with
            | Some (raced, _) -> raced
            | None -> base
          else base
        in
        let cert = Certificate.of_model (Model.of_spec spec) in
        let ok = Certificate.shardable cert in
        if ok then incr accepts else incr rejects;
        match Randgen.build spec with
        | Error e ->
          (* the builder refuses exactly the Def. 2.1 violations, so an
             unbuildable spec is provably order-violating: the
             certificate must not accept it *)
          incr unbuildable;
          if ok then begin
            incr disagreements;
            log
              (Printf.sprintf
                 "case %d: certificate accepts unbuildable spec %s (%s)" i
                 spec.Randgen.label e)
          end
        | Ok net -> (
          let wcet =
            Randgen.wcet ~scale:(Rat.make 1 1000) (Derive.const_wcet Rat.one)
              net
          in
          match Derive.derive ~wcet net with
          | Error _ -> ()
          | Ok d ->
            let g = d.Derive.graph in
            let legacy = Engine.closure_conflicts_ordered g net in
            (* the class sweep and the job-level closure must agree on
               every buildable spec (randgen never produces a
               fold-hazard, so there is no abstention to excuse) *)
            if ok <> legacy then begin
              incr disagreements;
              log
                (Printf.sprintf
                   "case %d: certificate %b vs job closure %b on %s" i ok
                   legacy spec.Randgen.label)
            end;
            let sched =
              List_scheduler.schedule_with
                ~heuristic:Sched.Priority.Alap_edf ~n_procs:2 g
            in
            let config = Engine.default_config ~frames:2 ~n_procs:2 () in
            let runs0 = Metrics.counter_value (Metrics.counter "engine.sharded_runs") in
            let sharded = Engine.run_sharded ~shards:2 net d sched config in
            let sequential = Engine.run net d sched config in
            let runs1 = Metrics.counter_value (Metrics.counter "engine.sharded_runs") in
            if runs1 > runs0 then begin
              incr engaged;
              if not ok then begin
                (* a certificate-reject must never run sharded *)
                incr disagreements;
                log
                  (Printf.sprintf "case %d: reject %s ran sharded" i
                     spec.Randgen.label)
              end
            end
            else incr fallbacks;
            if Engine.signature sharded <> Engine.signature sequential then begin
              incr mismatches;
              log
                (Printf.sprintf "case %d: sharded signature differs on %s" i
                   spec.Randgen.label)
            end)
      done;
      {
        cc_cases = budget;
        cc_accepts = !accepts;
        cc_rejects = !rejects;
        cc_unbuildable_rejects = !unbuildable;
        cc_engaged = !engaged;
        cc_fallbacks = !fallbacks;
        cc_mismatches = !mismatches;
        cc_disagreements = !disagreements;
        cc_wall_time_s = Unix.gettimeofday () -. t0;
      })

let certify_passed s =
  s.cc_mismatches = 0 && s.cc_disagreements = 0 && s.cc_engaged > 0
  && s.cc_rejects > 0

let pp_certify ppf s =
  Format.fprintf ppf
    "certify diff: %d case(s), %d accept(s), %d reject(s) (%d unbuildable), \
     %d engaged, %d fallback(s), %d mismatch(es), %d disagreement(s) in %.3fs"
    s.cc_cases s.cc_accepts s.cc_rejects s.cc_unbuildable_rejects s.cc_engaged
    s.cc_fallbacks s.cc_mismatches s.cc_disagreements s.cc_wall_time_s
