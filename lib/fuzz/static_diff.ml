module Prng = Rt_util.Prng
module Randgen = Fppn_apps.Randgen
module D = Fppn_lint.Diagnostic
module Lint = Fppn_lint.Lint

type outcome = Caught of string | Missed | Not_applicable

let sabotaged_channel base = function
  | Oracle.No_sabotage -> None
  | Oracle.Flip_channel_fp { writer; reader } ->
    Some
      (Randgen.channel_name
         (Randgen.periodic_name writer)
         (Randgen.periodic_name reader))
  | Oracle.Flip_sporadic_fp name -> (
    match
      List.find_opt
        (fun s -> s.Randgen.sp_name = name)
        base.Randgen.sporadics
    with
    | Some s ->
      Some (Randgen.channel_name name (Randgen.periodic_name s.Randgen.sp_user))
    | None -> None)

let apply base = function
  | Oracle.No_sabotage -> None
  | Oracle.Flip_channel_fp { writer; reader } ->
    Randgen.flip_channel_fp base ~writer ~reader
  | Oracle.Flip_sporadic_fp name -> Randgen.flip_sporadic_fp base name

let check ~base sabotage =
  match (sabotaged_channel base sabotage, apply base sabotage) with
  | None, _ | _, None -> Not_applicable
  | Some ch, Some sut -> (
    let subject = "channel " ^ ch in
    let shape spec =
      List.filter (fun (_, s) -> s = subject) (D.fingerprint (Lint.lint_spec spec))
    in
    let fb = shape base and fs = shape sut in
    let diff =
      List.filter (fun e -> not (List.mem e fs)) fb
      @ List.filter (fun e -> not (List.mem e fb)) fs
    in
    match diff with [] -> Missed | (code, _) :: _ -> Caught code)

let check_case (case : Oracle.case) =
  check ~base:case.Oracle.spec case.Oracle.sabotage

type summary = {
  cases : int;
  injected : int;
  caught : int;
  missed : int;
  not_applicable : int;
  clean_errors : int;
  codes : (string * int) list;
  wall_time_s : float;
}

let run ?(log = fun _ -> ()) ?(max_periodic = 6) ?(max_sporadic = 2) ~seed
    ~budget ~inject () =
  let t0 = Unix.gettimeofday () in
  let prng = Prng.create seed in
  let caught = ref 0
  and missed = ref 0
  and not_applicable = ref 0
  and clean_errors = ref 0 in
  let codes = Hashtbl.create 8 in
  for i = 1 to budget do
    let base = Campaign.draw_spec prng ~max_periodic ~max_sporadic in
    if D.has_errors (Lint.lint_spec base) then begin
      incr clean_errors;
      log (Printf.sprintf "case %d: clean spec %s lints with errors" i base.Randgen.label)
    end;
    let sabotage = Campaign.choose_sabotage inject prng base in
    (match check ~base sabotage with
    | Not_applicable -> incr not_applicable
    | Caught code ->
      incr caught;
      Hashtbl.replace codes code
        (1 + try Hashtbl.find codes code with Not_found -> 0)
    | Missed ->
      incr missed;
      log (Printf.sprintf "case %d: injection into %s not visible statically" i base.Randgen.label));
    if i mod 50 = 0 then
      log (Printf.sprintf "progress: %d/%d cases, %d caught, %d missed" i budget !caught !missed)
  done;
  {
    cases = budget;
    injected = !caught + !missed;
    caught = !caught;
    missed = !missed;
    not_applicable = !not_applicable;
    clean_errors = !clean_errors;
    codes =
      List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) codes []);
    wall_time_s = Unix.gettimeofday () -. t0;
  }

let passed ~inject s =
  match inject with
  | Campaign.No_injection -> s.clean_errors = 0
  | Campaign.Inject_channel_flip | Campaign.Inject_sporadic_flip ->
    s.injected > 0 && s.missed = 0 && s.clean_errors = 0

let pp ppf s =
  Format.fprintf ppf
    "static diff: %d case(s), %d injected, %d caught, %d missed, %d \
     inapplicable, %d clean-spec error(s) in %.3fs"
    s.cases s.injected s.caught s.missed s.not_applicable s.clean_errors
    s.wall_time_s;
  List.iter (fun (c, n) -> Format.fprintf ppf "@.  %s: %d" c n) s.codes
