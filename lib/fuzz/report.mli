(** Campaign results, human- and machine-readable.

    The JSON form serialises each counterexample's full shrunk spec
    (periods, channels with FP direction, sporadics) plus every oracle
    knob, so a failure can be replayed exactly without re-rolling any
    PRNG — shrunk specs are generally not reachable from a [params]
    seed. *)

type counterexample = {
  original : Oracle.case;
  shrunk : Oracle.case;
  divergence : Oracle.divergence;  (** observed on the shrunk case *)
  shrink_attempts : int;
  shrink_accepted : int;
}

type t = {
  seed : int;
  budget : int;
  cases_run : int;
  skipped : int;
  comparisons : int;  (** executor runs diffed across all passing cases *)
  injected : bool;  (** campaign ran with sabotage injection *)
  counterexamples : counterexample list;
}

val passed : t -> bool
(** No divergences found. *)

val pp : Format.formatter -> t -> unit

val case_to_json : Oracle.case -> string
val to_json : t -> string
