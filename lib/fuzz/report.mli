(** Campaign results, human- and machine-readable.

    The JSON form serialises each counterexample's full shrunk spec
    (periods, channels with FP direction, sporadics) plus every oracle
    knob, so a failure can be replayed exactly without re-rolling any
    PRNG — shrunk specs are generally not reachable from a [params]
    seed. *)

type counterexample = {
  original : Oracle.case;
  shrunk : Oracle.case;
  divergence : Oracle.divergence;  (** observed on the shrunk case *)
  shrink_attempts : int;
  shrink_accepted : int;
}

type t = {
  seed : int;
  budget : int;
  cases_run : int;
  skipped : int;
  comparisons : int;  (** executor runs diffed across all passing cases *)
  injected : bool;  (** campaign ran with sabotage injection *)
  jobs : int;  (** parallelism the campaign ran with *)
  jobs_requested : int;
      (** parallelism asked for before any CLI clamping — equals [jobs]
          unless the requested count exceeded
          {!Rt_util.Pool.recommended_domains} *)
  case_times_s : float array;
      (** per-case oracle wall time, indexed by case order — the single
          timing source shared with the bench harness *)
  wall_time_s : float;  (** campaign wall time (generation + oracle runs) *)
  counterexamples : counterexample list;
}

val passed : t -> bool
(** No divergences found. *)

val cases_per_s : t -> float
(** Campaign throughput; [0.] when no time was recorded. *)

val normalize_timing : t -> t
(** The report with all wall-clock fields zeroed and [jobs] /
    [jobs_requested] reset to 1 — everything that may legitimately
    differ between two runs of the same campaign config.  Two campaigns
    with the same config must produce equal normalized reports
    regardless of [jobs]. *)

val pp : Format.formatter -> t -> unit

val case_to_json : Oracle.case -> string
val to_json : t -> string
