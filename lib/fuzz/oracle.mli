(** The differential determinism oracle.

    A {!case} packages one randomly drawn workload plus every knob that
    could legally vary without changing observable behavior: processor
    count, execution-time jitter seed, order of simultaneous
    invocations, timed-automata vs discrete-event execution.  {!check}
    executes the zero-delay reference ([Fppn.Semantics]) on the base
    workload and diffs its channel-history signature (Prop. 2.1)
    against every other executor:

    - adversarially permuted zero-delay runs ({!Adversary});
    - [Runtime.Engine] on each processor count × jitter seed, with
      real-time trace compliance re-checked as a secondary oracle;
    - the [Timedauto.Translate] backend, once per processor count.

    A {!sabotage} value injects a structural bug — a flipped
    functional-priority edge — into the system-under-test copy only,
    turning the oracle into a self-test: a healthy oracle must report a
    divergence for observable flips.  Sabotage preserves process and
    channel names, so signatures stay comparable. *)

type sabotage =
  | No_sabotage
  | Flip_channel_fp of { writer : int; reader : int }
      (** reverse the FP edge of the periodic channel [writer → reader]
          in the SUT copy *)
  | Flip_sporadic_fp of string
      (** flip the named sporadic's priority relative to its user —
          this also flips the Fig. 2 window-boundary rule *)

type case = {
  spec : Fppn_apps.Randgen.spec;  (** the workload under test *)
  sabotage : sabotage;
  trace_seed : int;  (** sporadic traces + permutation orders *)
  jitter_seeds : int list;
  proc_counts : int list;
  frames : int;
  permutations : int;  (** adversarially permuted zero-delay runs *)
  boundary_snap : bool;
      (** merge window-boundary stamps into the sporadic traces *)
}

val case_processes : case -> int
(** Process count of the workload (shrinking metric). *)

val sut_spec : case -> Fppn_apps.Randgen.spec option
(** The system-under-test spec: [spec] with [sabotage] applied.
    [None] when the sabotage target does not exist. *)

type divergence = {
  executor : string;  (** which executor disagreed with the reference *)
  channel : string option;  (** first differing channel, if any *)
  detail : string;
}

type verdict =
  | Pass of { comparisons : int }  (** executor runs diffed, all equal *)
  | Skip of string  (** case inapplicable (infeasible schedule, …) *)
  | Fail of divergence

val check : case -> verdict
(** Deterministic in the case. Executor crashes (unexpected exceptions)
    are reported as {!Fail}, not propagated. *)

val pp_divergence : Format.formatter -> divergence -> unit
