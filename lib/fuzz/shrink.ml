module Randgen = Fppn_apps.Randgen

type result = {
  shrunk : Oracle.case;
  attempts : int;
  accepted : int;
}

(* Candidate moves, biggest expected reduction first.  Every move keeps
   the sabotage reference valid: moves touching the sabotaged element
   are not proposed, and dropping a periodic process renumbers the
   sabotage endpoints along with the spec. *)
let moves (case : Oracle.case) =
  let spec = case.spec in
  let temporal =
    (match case.proc_counts with
    | _ :: _ :: _ -> [ { case with proc_counts = [ List.hd case.proc_counts ] } ]
    | _ -> [])
    @ (match case.jitter_seeds with
      | _ :: _ :: _ -> [ { case with jitter_seeds = [ List.hd case.jitter_seeds ] } ]
      | _ -> [])
    @ (if case.frames > 1 then [ { case with frames = 1 } ] else [])
    @
    if case.permutations > 1 then [ { case with permutations = 1 } ] else []
  in
  let drop_sporadics =
    List.filter_map
      (fun (s : Randgen.sporadic_spec) ->
        match case.sabotage with
        | Oracle.Flip_sporadic_fp n when n = s.Randgen.sp_name -> None
        | _ ->
          Option.map
            (fun spec' -> { case with spec = spec' })
            (Randgen.drop_sporadic spec s.Randgen.sp_name))
      spec.Randgen.sporadics
  in
  let drop_periodics =
    List.filter_map
      (fun i ->
        let sabotage =
          match case.sabotage with
          | Oracle.Flip_channel_fp { writer; reader } ->
            if writer = i || reader = i then None
            else
              Some
                (Oracle.Flip_channel_fp
                   {
                     writer = (if writer > i then writer - 1 else writer);
                     reader = (if reader > i then reader - 1 else reader);
                   })
          | s -> Some s
        in
        match sabotage with
        | None -> None
        | Some sabotage ->
          Option.map
            (fun spec' -> { case with spec = spec'; sabotage })
            (Randgen.drop_periodic spec i))
      (List.rev (List.init (Array.length spec.Randgen.periods) Fun.id))
  in
  let drop_channels =
    List.filter_map
      (fun (c : Randgen.chan_spec) ->
        match case.sabotage with
        | Oracle.Flip_channel_fp { writer; reader }
          when writer = c.Randgen.cw && reader = c.Randgen.cr -> None
        | _ ->
          Option.map
            (fun spec' -> { case with spec = spec' })
            (Randgen.drop_channel spec ~writer:c.Randgen.cw ~reader:c.Randgen.cr))
      spec.Randgen.chans
  in
  temporal @ drop_sporadics @ drop_periodics @ drop_channels

let minimise ?(budget = 200) case0 =
  let attempts = ref 0 and accepted = ref 0 in
  let try_move m =
    incr attempts;
    match Oracle.check m with Oracle.Fail _ -> true | _ -> false
  in
  let rec improve case =
    if !attempts >= budget then case
    else
      let rec first = function
        | [] -> None
        | m :: rest ->
          if !attempts >= budget then None
          else if try_move m then Some m
          else first rest
      in
      match first (moves case) with
      | Some better ->
        incr accepted;
        improve better
      | None -> case
  in
  let shrunk = improve case0 in
  { shrunk; attempts = !attempts; accepted = !accepted }
