(** FPPN processes.

    A process couples an event generator with a behavior.  The paper
    defines behaviors as deterministic automata (Def. 2.2); for writing
    realistic applications this library additionally accepts plain OCaml
    closures ([Native]) operating through a {!job_ctx} — the two forms
    are interchangeable from the semantics' point of view, both perform
    one {e job execution run} per invocation. *)

(** Capabilities handed to a native job body at invocation [k].
    Channel names are resolved against the process' attached inputs and
    outputs by the enclosing network.  The index and time stamp are
    mutable so interpreters can rebind one preallocated context per
    invocation instead of allocating a context per job; bodies must not
    retain the record across invocations. *)
type job_ctx = {
  mutable job_index : int;
      (** 1-based invocation count [k] of this process *)
  mutable now : Rt_util.Rat.t;  (** invocation time stamp *)
  read : string -> Value.t;  (** [read c] — {!Value.Absent} if no data *)
  write : string -> Value.t -> unit;
  get : string -> Value.t;  (** local variable (persists across jobs) *)
  set : string -> Value.t -> unit;
}

type behavior =
  | Native of (job_ctx -> unit)
  | Automaton of Automaton.t

type t = private {
  name : string;
  event : Event.t;
  behavior : behavior;
  locals : (string * Value.t) list;
      (** initial variable valuation [X_p0]; for [Automaton] behaviors
          this is the automaton's own variable list *)
}

val make :
  ?locals:(string * Value.t) list -> name:string -> event:Event.t -> behavior -> t
(** @raise Invalid_argument on an empty name, or if [locals] is given
    alongside an [Automaton] behavior (the automaton declares its own). *)

val name : t -> string
val event : t -> Event.t
val period : t -> Rt_util.Rat.t
val deadline : t -> Rt_util.Rat.t
val burst : t -> int
val is_sporadic : t -> bool
val pp : Format.formatter -> t -> unit
