type input_feed = string -> int -> Value.t

let no_inputs _ _ = Value.Absent

(* compile each feed list to an array once; looking up sample [k] is
   then O(1) instead of an O(k) [List.nth] per access *)
let feed_of_list feeds =
  let compiled =
    List.map (fun (c, samples) -> (c, Array.of_list samples)) feeds
  in
  fun channel k ->
    match List.assoc_opt channel compiled with
    | None -> Value.Absent
    | Some samples ->
      if k >= 1 && k <= Array.length samples then samples.(k - 1)
      else Value.Absent

type route =
  | Internal of Channel.t
  | Ext_input
  | Ext_output of Channel.t

(* A process touches a handful of channels, so per-process parallel
   name/route arrays resolved once at [create] beat hashing a
   (proc, name) pair on every access: routing in [run_job] becomes a
   short scan over strings that usually differ in the first character. *)
type t = {
  net : Network.t;
  instances : Instance.t array;
  chan_states : (string * Channel.t) list; (* internal, sorted by name *)
  out_states : (string * Channel.t) list; (* external outputs, sorted *)
  read_names : string array array; (* per process *)
  read_targets : route array array;
  write_names : string array array;
  write_targets : route array array;
}

let create net =
  let instances =
    Array.map Instance.create (Network.processes net)
  in
  let chan_states =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun c ->
           ( c.Network.ch_name,
             Channel.create ?init:c.Network.init c.Network.ch_kind ))
         (Network.channels net))
  in
  let out_states =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun io -> (io.Network.io_name, Channel.create Channel.Fifo))
         (Network.outputs net))
  in
  let n = Network.n_processes net in
  let reads = Array.make n [] and writes = Array.make n [] in
  List.iter
    (fun c ->
      let state = List.assoc c.Network.ch_name chan_states in
      let r = Network.find net c.Network.reader
      and w = Network.find net c.Network.writer in
      reads.(r) <- (c.Network.ch_name, Internal state) :: reads.(r);
      writes.(w) <- (c.Network.ch_name, Internal state) :: writes.(w))
    (Network.channels net);
  List.iter
    (fun io ->
      let owner = Network.find net io.Network.owner in
      match io.Network.dir with
      | Network.In ->
        reads.(owner) <- (io.Network.io_name, Ext_input) :: reads.(owner)
      | Network.Out ->
        let state = List.assoc io.Network.io_name out_states in
        writes.(owner) <-
          (io.Network.io_name, Ext_output state) :: writes.(owner))
    (Network.inputs net @ Network.outputs net);
  let names table = Array.map (fun l -> Array.of_list (List.map fst l)) table in
  let targets table =
    Array.map (fun l -> Array.of_list (List.map snd l)) table
  in
  {
    net;
    instances;
    chan_states;
    out_states;
    read_names = names reads;
    read_targets = targets reads;
    write_names = names writes;
    write_targets = targets writes;
  }

let find_route names targets c =
  let n = Array.length names in
  let rec scan i =
    if i >= n then None
    else if String.equal (Array.unsafe_get names i) c then
      Some (Array.unsafe_get targets i)
    else scan (i + 1)
  in
  scan 0

let network t = t.net
let instance t i = t.instances.(i)

(* [recorder] stays optional all the way down so the unrecorded path
   never even allocates the [Trace.action] values — each construction is
   guarded by the option match, which matters in simulation hot loops *)
let run_job ?recorder ?(inputs = no_inputs) t ~proc ~now =
  let inst = t.instances.(proc) in
  let pname = Process.name (Instance.process inst) in
  let k = Instance.job_count inst + 1 in
  let unknown dir c =
    invalid_arg
      (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
  in
  let read c =
    let v =
      match find_route t.read_names.(proc) t.read_targets.(proc) c with
      | Some (Internal state) -> Channel.read state
      | Some Ext_input -> inputs c k
      | Some (Ext_output _) | None -> unknown "read" c
    in
    (match recorder with
    | Some r -> r (Trace.Read { process = pname; k; channel = c; value = v })
    | None -> ());
    v
  in
  let write c v =
    (match find_route t.write_names.(proc) t.write_targets.(proc) c with
    | Some (Internal state) | Some (Ext_output state) -> Channel.write state v
    | Some Ext_input | None -> unknown "write" c);
    match recorder with
    | Some r -> r (Trace.Write { process = pname; k; channel = c; value = v })
    | None -> ()
  in
  (match recorder with
  | Some r -> r (Trace.Job_start { process = pname; k })
  | None -> ());
  Instance.run_job inst ~now ~read ~write;
  match recorder with
  | Some r -> r (Trace.Job_end { process = pname; k })
  | None -> ()

let skip_job t ~proc = Instance.skip_job t.instances.(proc)

let run_job_deferred ?(recorder = fun _ -> ()) ?(inputs = no_inputs) t ~proc ~now =
  let inst = t.instances.(proc) in
  let pname = Process.name (Instance.process inst) in
  let k = Instance.job_count inst + 1 in
  let unknown dir c =
    invalid_arg
      (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
  in
  let read c =
    let v =
      match find_route t.read_names.(proc) t.read_targets.(proc) c with
      | Some (Internal state) -> Channel.read state
      | Some Ext_input -> inputs c k
      | Some (Ext_output _) | None -> unknown "read" c
    in
    recorder (Trace.Read { process = pname; k; channel = c; value = v });
    v
  in
  let buffered = ref [] in
  let write c v =
    (match find_route t.write_names.(proc) t.write_targets.(proc) c with
    | Some (Internal state) | Some (Ext_output state) ->
      buffered := (state, c, v) :: !buffered
    | Some Ext_input | None -> unknown "write" c);
    recorder (Trace.Write { process = pname; k; channel = c; value = v })
  in
  recorder (Trace.Job_start { process = pname; k });
  Instance.run_job inst ~now ~read ~write;
  let to_flush = List.rev !buffered in
  fun () ->
    List.iter (fun (state, _, v) -> Channel.write state v) to_flush;
    recorder (Trace.Job_end { process = pname; k })

let histories states = List.map (fun (n, st) -> (n, Channel.history st)) states
let channel_history t = histories t.chan_states
let output_history t = histories t.out_states

let channel_state t name =
  match List.assoc_opt name t.chan_states with
  | Some st -> st
  | None -> (
    match List.assoc_opt name t.out_states with
    | Some st -> st
    | None -> raise Not_found)

let reset t =
  Array.iter Instance.reset t.instances;
  List.iter (fun (_, st) -> Channel.reset st) t.chan_states;
  List.iter (fun (_, st) -> Channel.reset st) t.out_states
