type input_feed = string -> int -> Value.t

let no_inputs _ _ = Value.Absent

(* compile each feed list to an array once; looking up sample [k] is
   then O(1) instead of an O(k) [List.nth] per access *)
let feed_of_list feeds =
  let compiled =
    List.map (fun (c, samples) -> (c, Array.of_list samples)) feeds
  in
  fun channel k ->
    match List.assoc_opt channel compiled with
    | None -> Value.Absent
    | Some samples ->
      if k >= 1 && k <= Array.length samples then samples.(k - 1)
      else Value.Absent

type route =
  | Internal of Channel.t
  | Ext_input
  | Ext_output of Channel.t

(* A process touches a handful of channels, so per-process parallel
   name/route arrays resolved once at [create] beat hashing a
   (proc, name) pair on every access: routing in [run_job] becomes a
   short scan over strings that usually differ in the first character. *)
type t = {
  net : Network.t;
  instances : Instance.t array;
  chan_states : (string * Channel.t) list; (* internal, sorted by name *)
  out_states : (string * Channel.t) list; (* external outputs, sorted *)
  read_names : string array array; (* per process *)
  read_targets : route array array;
  write_names : string array array;
  write_targets : route array array;
  (* the zero-allocation job path: one prepared context per process,
     whose closures route against [cur_inputs] instead of taking a feed
     and a recorder per call.  Two variants are prepared: one bumps
     [access_count] per channel access (needed only when the platform
     charges a per-access overhead), the other doesn't pay the store.
     [fast] aliases whichever {!set_access_counting} selected. *)
  mutable fast : Instance.prepared array;
  mutable fast_count : Instance.prepared array;
  mutable fast_plain : Instance.prepared array;
  mutable cur_inputs : input_feed;
  mutable access_count : int;
}

let make_state net =
  let instances =
    Array.map Instance.create (Network.processes net)
  in
  let chan_states =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun c ->
           ( c.Network.ch_name,
             Channel.create ?init:c.Network.init c.Network.ch_kind ))
         (Network.channels net))
  in
  let out_states =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun io -> (io.Network.io_name, Channel.create Channel.Fifo))
         (Network.outputs net))
  in
  let n = Network.n_processes net in
  let reads = Array.make n [] and writes = Array.make n [] in
  List.iter
    (fun c ->
      let state = List.assoc c.Network.ch_name chan_states in
      let r = Network.find net c.Network.reader
      and w = Network.find net c.Network.writer in
      reads.(r) <- (c.Network.ch_name, Internal state) :: reads.(r);
      writes.(w) <- (c.Network.ch_name, Internal state) :: writes.(w))
    (Network.channels net);
  List.iter
    (fun io ->
      let owner = Network.find net io.Network.owner in
      match io.Network.dir with
      | Network.In ->
        reads.(owner) <- (io.Network.io_name, Ext_input) :: reads.(owner)
      | Network.Out ->
        let state = List.assoc io.Network.io_name out_states in
        writes.(owner) <-
          (io.Network.io_name, Ext_output state) :: writes.(owner))
    (Network.inputs net @ Network.outputs net);
  let names table = Array.map (fun l -> Array.of_list (List.map fst l)) table in
  let targets table =
    Array.map (fun l -> Array.of_list (List.map snd l)) table
  in
  {
    net;
    instances;
    chan_states;
    out_states;
    read_names = names reads;
    read_targets = targets reads;
    write_names = names writes;
    write_targets = targets writes;
    fast = [||];
    fast_count = [||];
    fast_plain = [||];
    cur_inputs = no_inputs;
    access_count = 0;
  }

(* top-level tail recursion: the fast-path closures call this on every
   channel access, so it must allocate nothing — no inner closure, no
   option; [-1] = not found *)
let rec route_scan names c i n =
  if i >= n then -1
  else if String.equal (Array.unsafe_get names i) c then i
  else route_scan names c (i + 1) n

(* Call-site cache scan: process bodies name channels with string
   literals, so the very same string *object* recurs at each call site.
   A physical-equality probe over the few objects seen so far resolves
   the route without touching the string bytes; [-1] = not cached. *)
let rec cache_scan cache_names cache_idx c i n =
  if i >= n then -1
  else if Array.unsafe_get cache_names i == c then Array.unsafe_get cache_idx i
  else cache_scan cache_names cache_idx c (i + 1) n

let find_route names targets c =
  let i = route_scan names c 0 (Array.length names) in
  if i < 0 then None else Some targets.(i)

let create net =
  let t = make_state net in
  let n = Array.length t.instances in
  let prepare_variant ~counting p =
    let inst = t.instances.(p) in
    let pname = Process.name (Instance.process inst) in
    let unknown dir c =
      invalid_arg
        (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
    in
    let rnames = t.read_names.(p) and rtargets = t.read_targets.(p) in
    let wnames = t.write_names.(p) and wtargets = t.write_targets.(p) in
    (* per-direction call-site caches (see [cache_scan]); capped so
       dynamically-built names degrade to [route_scan], never grow.
       Slot 0/1 probes are hand-inlined in the closures below: almost
       every process touches at most two channels per direction, so the
       common access resolves in one or two pointer compares without a
       single out-of-line call.  The [""] filler can never alias a
       caller's string, so unused slots never match. *)
    let rc_names = Array.make 8 "" and rc_idx = Array.make 8 0 in
    let rc_n = ref 0 in
    let wc_names = Array.make 8 "" and wc_idx = Array.make 8 0 in
    let wc_n = ref 0 in
    let resolve names cn ci cnt c =
      let i = cache_scan cn ci c 2 !cnt in
      if i >= 0 then i
      else begin
        let i = route_scan names c 0 (Array.length names) in
        (if i >= 0 && !cnt < Array.length cn then begin
           Array.unsafe_set cn !cnt c;
           Array.unsafe_set ci !cnt i;
           incr cnt
         end);
        i
      end
    in
    let do_read c i =
      if i < 0 then unknown "read" c
      else
        match Array.unsafe_get rtargets i with
        | Internal state -> Channel.read state
        | Ext_input -> t.cur_inputs c (Instance.job_count inst + 1)
        | Ext_output _ -> unknown "read" c
    in
    let do_write c v i =
      if i < 0 then unknown "write" c
      else
        match Array.unsafe_get wtargets i with
        | Internal state | Ext_output state -> Channel.write state v
        | Ext_input -> unknown "write" c
    in
    let read =
      if counting then fun c ->
        t.access_count <- t.access_count + 1;
        if Array.unsafe_get rc_names 0 == c then
          do_read c (Array.unsafe_get rc_idx 0)
        else if Array.unsafe_get rc_names 1 == c then
          do_read c (Array.unsafe_get rc_idx 1)
        else do_read c (resolve rnames rc_names rc_idx rc_n c)
      else fun c ->
        if Array.unsafe_get rc_names 0 == c then
          match Array.unsafe_get rtargets (Array.unsafe_get rc_idx 0) with
          | Internal state -> Channel.read state
          | Ext_input -> t.cur_inputs c (Instance.job_count inst + 1)
          | Ext_output _ -> unknown "read" c
        else if Array.unsafe_get rc_names 1 == c then
          match Array.unsafe_get rtargets (Array.unsafe_get rc_idx 1) with
          | Internal state -> Channel.read state
          | Ext_input -> t.cur_inputs c (Instance.job_count inst + 1)
          | Ext_output _ -> unknown "read" c
        else do_read c (resolve rnames rc_names rc_idx rc_n c)
    in
    let write =
      if counting then fun c v ->
        t.access_count <- t.access_count + 1;
        if Array.unsafe_get wc_names 0 == c then
          do_write c v (Array.unsafe_get wc_idx 0)
        else if Array.unsafe_get wc_names 1 == c then
          do_write c v (Array.unsafe_get wc_idx 1)
        else do_write c v (resolve wnames wc_names wc_idx wc_n c)
      else fun c v ->
        if Array.unsafe_get wc_names 0 == c then
          match Array.unsafe_get wtargets (Array.unsafe_get wc_idx 0) with
          | Internal state | Ext_output state -> Channel.write state v
          | Ext_input -> unknown "write" c
        else if Array.unsafe_get wc_names 1 == c then
          match Array.unsafe_get wtargets (Array.unsafe_get wc_idx 1) with
          | Internal state | Ext_output state -> Channel.write state v
          | Ext_input -> unknown "write" c
        else do_write c v (resolve wnames wc_names wc_idx wc_n c)
    in
    Instance.prepare inst ~read ~write
  in
  t.fast_count <- Array.init n (prepare_variant ~counting:true);
  t.fast_plain <- Array.init n (prepare_variant ~counting:false);
  t.fast <- t.fast_plain;
  t

let set_inputs t inputs = t.cur_inputs <- inputs

let set_access_counting t b =
  t.fast <- (if b then t.fast_count else t.fast_plain)

let access_count t = t.access_count

let run_job_fast t ~proc ~now =
  Instance.run_prepared t.instances.(proc) t.fast.(proc) ~now

(* the replay inner loop of the tick engine: job [i] runs process
   [procs.(i)] at instant [nows.(now_base + now_idx.(i))].  Hosting the
   loop here keeps the per-job work to two unchecked loads and one call
   — the callers guarantee indices in range ([procs]/[now_idx] come
   from the captured template, [now_base + now_idx] indexes [nows]). *)
let run_jobs_fast t ~procs ~now_idx ~nows ~now_base ~count =
  let instances = t.instances and fast = t.fast in
  for i = 0 to count - 1 do
    let p = Array.unsafe_get procs i in
    Instance.run_prepared
      (Array.unsafe_get instances p)
      (Array.unsafe_get fast p)
      ~now:(Array.unsafe_get nows (now_base + Array.unsafe_get now_idx i))
  done

let network t = t.net
let instance t i = t.instances.(i)

(* [recorder] stays optional all the way down so the unrecorded path
   never even allocates the [Trace.action] values — each construction is
   guarded by the option match, which matters in simulation hot loops *)
let run_job ?recorder ?(inputs = no_inputs) t ~proc ~now =
  let inst = t.instances.(proc) in
  let pname = Process.name (Instance.process inst) in
  let k = Instance.job_count inst + 1 in
  let unknown dir c =
    invalid_arg
      (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
  in
  let read c =
    let v =
      match find_route t.read_names.(proc) t.read_targets.(proc) c with
      | Some (Internal state) -> Channel.read state
      | Some Ext_input -> inputs c k
      | Some (Ext_output _) | None -> unknown "read" c
    in
    (match recorder with
    | Some r -> r (Trace.Read { process = pname; k; channel = c; value = v })
    | None -> ());
    v
  in
  let write c v =
    (match find_route t.write_names.(proc) t.write_targets.(proc) c with
    | Some (Internal state) | Some (Ext_output state) -> Channel.write state v
    | Some Ext_input | None -> unknown "write" c);
    match recorder with
    | Some r -> r (Trace.Write { process = pname; k; channel = c; value = v })
    | None -> ()
  in
  (match recorder with
  | Some r -> r (Trace.Job_start { process = pname; k })
  | None -> ());
  Instance.run_job inst ~now ~read ~write;
  match recorder with
  | Some r -> r (Trace.Job_end { process = pname; k })
  | None -> ()

let skip_job t ~proc = Instance.skip_job t.instances.(proc)

let run_job_deferred ?(recorder = fun _ -> ()) ?(inputs = no_inputs) t ~proc ~now =
  let inst = t.instances.(proc) in
  let pname = Process.name (Instance.process inst) in
  let k = Instance.job_count inst + 1 in
  let unknown dir c =
    invalid_arg
      (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
  in
  let read c =
    let v =
      match find_route t.read_names.(proc) t.read_targets.(proc) c with
      | Some (Internal state) -> Channel.read state
      | Some Ext_input -> inputs c k
      | Some (Ext_output _) | None -> unknown "read" c
    in
    recorder (Trace.Read { process = pname; k; channel = c; value = v });
    v
  in
  let buffered = ref [] in
  let write c v =
    (match find_route t.write_names.(proc) t.write_targets.(proc) c with
    | Some (Internal state) | Some (Ext_output state) ->
      buffered := (state, c, v) :: !buffered
    | Some Ext_input | None -> unknown "write" c);
    recorder (Trace.Write { process = pname; k; channel = c; value = v })
  in
  recorder (Trace.Job_start { process = pname; k });
  Instance.run_job inst ~now ~read ~write;
  let to_flush = List.rev !buffered in
  fun () ->
    List.iter (fun (state, _, v) -> Channel.write state v) to_flush;
    recorder (Trace.Job_end { process = pname; k })

let histories states = List.map (fun (n, st) -> (n, Channel.history st)) states
let channel_history t = histories t.chan_states
let output_history t = histories t.out_states

(* O(#channels) capture decoupled from the state's lifetime: the engine
   snapshots at run end, so the state can be reset and reused for the
   next run while earlier results still materialize their histories *)
let snapshots states = List.map (fun (n, st) -> (n, Channel.snapshot st)) states
let channel_snapshot t = snapshots t.chan_states
let output_snapshot t = snapshots t.out_states

let channel_state t name =
  match List.assoc_opt name t.chan_states with
  | Some st -> st
  | None -> (
    match List.assoc_opt name t.out_states with
    | Some st -> st
    | None -> raise Not_found)

let reset t =
  Array.iter Instance.reset t.instances;
  List.iter (fun (_, st) -> Channel.reset st) t.chan_states;
  List.iter (fun (_, st) -> Channel.reset st) t.out_states;
  t.cur_inputs <- no_inputs;
  t.access_count <- 0
