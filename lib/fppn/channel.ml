type kind = Fifo | Blackboard

let kind_to_string = function Fifo -> "fifo" | Blackboard -> "blackboard"
let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

(* One growable array of every value ever written doubles as the
   channel state: a FIFO's unread contents are the suffix [rd..n_hist)
   (preceded by the initial value while unconsumed), and a blackboard's
   current value is the last write.  A write is then a bounds check and
   a store — no list cell, no queue node — and [history] only
   materializes its list when asked. *)
type t = {
  ch_kind : kind;
  init : Value.t option;
  mutable hist : Value.t array;
  mutable n_hist : int;
  mutable rd : int;  (* FIFO: next unread index into [hist] *)
  mutable init_pending : bool;  (* FIFO: [init] not yet consumed *)
}

let create ?init ch_kind =
  {
    ch_kind;
    init;
    hist = [||];
    n_hist = 0;
    rd = 0;
    init_pending = (ch_kind = Fifo && init <> None);
  }

let kind t = t.ch_kind

let write t v =
  let n = t.n_hist in
  if n = Array.length t.hist then begin
    let nh = Array.make (if n = 0 then 8 else 2 * n) Value.Absent in
    Array.blit t.hist 0 nh 0 n;
    t.hist <- nh
  end;
  Array.unsafe_set t.hist n v;
  t.n_hist <- n + 1

let last_or_init t =
  if t.n_hist > 0 then t.hist.(t.n_hist - 1)
  else match t.init with Some v -> v | None -> Value.Absent

let read t =
  match t.ch_kind with
  | Blackboard -> last_or_init t
  | Fifo ->
    if t.init_pending then begin
      t.init_pending <- false;
      match t.init with Some v -> v | None -> Value.Absent
    end
    else if t.rd < t.n_hist then begin
      let v = t.hist.(t.rd) in
      t.rd <- t.rd + 1;
      v
    end
    else Value.Absent

let peek t =
  match t.ch_kind with
  | Blackboard -> last_or_init t
  | Fifo ->
    if t.init_pending then
      match t.init with Some v -> v | None -> Value.Absent
    else if t.rd < t.n_hist then t.hist.(t.rd)
    else Value.Absent

let occupancy t =
  match t.ch_kind with
  | Blackboard ->
    if t.n_hist > 0 || t.init <> None then 1 else 0
  | Fifo -> (if t.init_pending then 1 else 0) + t.n_hist - t.rd

let history t = Array.to_list (Array.sub t.hist 0 t.n_hist)

type snapshot = { s_hist : Value.t array; s_n : int }

(* O(1): captures the current backing array and write count.  Later
   appends only write at indices >= [s_n] (growth swaps in a new
   array), so the snapshot stays valid as long as the channel is not
   {!reset} — and [reset] drops the backing array for exactly that
   reason. *)
let snapshot t = { s_hist = t.hist; s_n = t.n_hist }
let snapshot_history s = Array.to_list (Array.sub s.s_hist 0 s.s_n)

let reset t =
  (* drop, don't rewind: an outstanding {!snapshot} may still alias the
     old array, so the reused channel must start on a fresh one *)
  t.hist <- [||];
  t.n_hist <- 0;
  t.rd <- 0;
  t.init_pending <- t.ch_kind = Fifo && t.init <> None
