module Rat = Rt_util.Rat

type channel_report = {
  channel : string;
  kind : Channel.kind;
  max_occupancy : int;
  final_occupancy : int;
  writes_per_h : Rat.t;
  reads_per_h : Rat.t;
  drift_exact : Rat.t;
  writes_per_hyperperiod : float;
  reads_per_hyperperiod : float;
  drift : float;
}

type t = {
  horizon : Rat.t;
  hyperperiods : int;
  channels : channel_report list;
}

(* Maximal-rate synthetic trace: a burst of m events at every multiple
   of the minimal period — the densest pattern the (m,T) constraint
   allows with aligned bursts, hence a conservative default for sizing. *)
let max_rate_trace ev ~horizon =
  let stamps = ref [] in
  let t = ref Rat.zero in
  while Rat.(!t < horizon) do
    for _ = 1 to ev.Event.burst do
      stamps := !t :: !stamps
    done;
    t := Rat.add !t ev.Event.period
  done;
  List.rev !stamps

let analyse ?(hyperperiods = 4) ?sporadic ?(inputs = Netstate.no_inputs) net =
  if hyperperiods < 1 then
    invalid_arg "Buffer_analysis.analyse: hyperperiods must be >= 1";
  let h = Network.hyperperiod net in
  let horizon = Rat.mul h (Rat.of_int hyperperiods) in
  let sporadic =
    match sporadic with
    | Some traces -> traces
    | None ->
      List.filter_map
        (fun p ->
          let proc = Network.process net p in
          if Process.is_sporadic proc then
            Some
              ( Process.name proc,
                max_rate_trace (Process.event proc) ~horizon )
          else None)
        (List.init (Network.n_processes net) Fun.id)
  in
  let res = Semantics.run ~inputs net (Semantics.invocations ~sporadic ~horizon net) in
  (* replay the trace, tracking occupancy per internal channel; a
     snapshot at the first hyperperiod boundary separates the startup
     transient (FIFO priming) from steady-state growth *)
  let decls = Network.channels net in
  let state = Hashtbl.create 16 in
  List.iter
    (fun (c : Network.channel_decl) ->
      let init_occ = match c.Network.init with Some _ -> 1 | None -> 0 in
      Hashtbl.replace state c.Network.ch_name
        (c.Network.ch_kind, ref init_occ, ref init_occ, ref 0, ref 0, ref None))
    decls;
  let snapshot_taken = ref false in
  List.iter
    (fun action ->
      match action with
      | Trace.Write { channel; _ } -> (
        match Hashtbl.find_opt state channel with
        | Some (kind, occ, peak, writes, _, _) ->
          incr writes;
          (match kind with
          | Channel.Fifo -> incr occ
          | Channel.Blackboard -> occ := 1);
          if !occ > !peak then peak := !occ
        | None -> () (* external output *))
      | Trace.Read { channel; value; _ } -> (
        match Hashtbl.find_opt state channel with
        | Some (kind, occ, _, _, reads, _) ->
          if kind = Channel.Fifo && not (Value.is_absent value) then begin
            incr reads;
            decr occ
          end
        | None -> () (* external input *))
      | Trace.Wait t when (not !snapshot_taken) && Rat.(t >= h) ->
        snapshot_taken := true;
        Hashtbl.iter
          (fun _ (_, occ, _, _, _, warm) -> warm := Some !occ)
          state
      | Trace.Wait _ | Trace.Job_start _ | Trace.Job_end _ -> ())
    res.Semantics.trace;
  (* exact per-hyperperiod rates: counts are integers divided by the
     integer hyperperiod count, so every rate is rational — floats are
     derived views only and never feed a decision *)
  let per_h n = Rat.make n hyperperiods in
  let channels =
    List.sort
      (fun a b -> String.compare a.channel b.channel)
      (List.map
         (fun (c : Network.channel_decl) ->
           let kind, occ, peak, writes, reads, warm =
             Hashtbl.find state c.Network.ch_name
           in
           let drift_exact =
             (* steady-state growth per hyperperiod, past the transient *)
             match (kind, !warm) with
             | Channel.Blackboard, _ -> Rat.zero
             | Channel.Fifo, Some w when hyperperiods > 1 ->
               Rat.make (!occ - w) (hyperperiods - 1)
             | Channel.Fifo, _ -> Rat.sub (per_h !writes) (per_h !reads)
           in
           let writes_per_h = per_h !writes and reads_per_h = per_h !reads in
           {
             channel = c.Network.ch_name;
             kind;
             max_occupancy = !peak;
             final_occupancy = !occ;
             writes_per_h;
             reads_per_h;
             drift_exact;
             writes_per_hyperperiod = Rat.to_float writes_per_h;
             reads_per_hyperperiod = Rat.to_float reads_per_h;
             drift = Rat.to_float drift_exact;
           })
         decls)
  in
  { horizon; hyperperiods; channels }

let unbounded_channels t =
  List.filter
    (fun r -> r.kind = Channel.Fifo && Rat.sign r.drift_exact > 0)
    t.channels

let bound_of t name =
  Option.map (fun r -> r.max_occupancy)
    (List.find_opt (fun r -> r.channel = name) t.channels)

let pp ppf t =
  Format.fprintf ppf
    "buffer analysis over %d hyperperiod(s) (horizon %a ms):@." t.hyperperiods
    Rat.pp t.horizon;
  Format.fprintf ppf "  %-20s %-10s %6s %6s %8s %8s %7s@." "channel" "kind"
    "max" "final" "wr/H" "rd/H" "drift";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-20s %-10s %6d %6d %8.2f %8.2f %7.2f%s@."
        r.channel
        (Channel.kind_to_string r.kind)
        r.max_occupancy r.final_occupancy r.writes_per_hyperperiod
        r.reads_per_hyperperiod r.drift
        (if r.kind = Channel.Fifo && Rat.sign r.drift_exact > 0 then
           "  << UNBOUNDED"
         else ""))
    t.channels
