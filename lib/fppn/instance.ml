(* Locals live in two parallel arrays scanned linearly: processes
   declare a handful of variables at most, and the scan beats hashing
   the name on every [get]/[set] of the job hot path. *)
type t = {
  proc : Process.t;
  l_names : string array;
  l_vals : Value.t array;
  mutable count : int;
}

let rec local_scan names x i n =
  if i >= n then -1
  else if String.equal (Array.unsafe_get names i) x then i
  else local_scan names x (i + 1) n

(* duplicate declarations collapse to one slot, last value winning —
   the same observable behaviour as the hash table this replaces *)
let distinct_names decls =
  List.fold_left
    (fun acc (x, _) -> if List.mem x acc then acc else x :: acc)
    [] decls
  |> List.rev |> Array.of_list

let load_locals t =
  List.iter
    (fun (x, v) ->
      let i = local_scan t.l_names x 0 (Array.length t.l_names) in
      t.l_vals.(i) <- v)
    t.proc.Process.locals

let create proc =
  let names = distinct_names proc.Process.locals in
  let t =
    { proc; l_names = names; l_vals = Array.make (Array.length names) Value.Absent;
      count = 0 }
  in
  load_locals t;
  t

let process t = t.proc
let job_count t = t.count

let get t x =
  let i = local_scan t.l_names x 0 (Array.length t.l_names) in
  if i < 0 then raise Not_found else t.l_vals.(i)

let undeclared proc x =
  invalid_arg
    (Printf.sprintf "process %s: undeclared variable %S" (Process.name proc) x)

let run_job t ~now ~read ~write =
  let k = t.count + 1 in
  let lookup x =
    let i = local_scan t.l_names x 0 (Array.length t.l_names) in
    if i < 0 then undeclared t.proc x else t.l_vals.(i)
  in
  let assign x v =
    let i = local_scan t.l_names x 0 (Array.length t.l_names) in
    if i < 0 then undeclared t.proc x else t.l_vals.(i) <- v
  in
  (match t.proc.Process.behavior with
  | Process.Native body ->
    body
      {
        Process.job_index = k;
        now;
        read;
        write;
        get = lookup;
        set = assign;
      }
  | Process.Automaton a ->
    let env =
      { Automaton.lookup; assign; read_channel = read; write_channel = write }
    in
    ignore (Automaton.run_job a env));
  t.count <- k

(* Hot interpreters rebind one preallocated context per invocation
   instead of rebuilding the closures and the context record above on
   every job — [prepare] pays the construction once per (instance,
   router) pair, [run_prepared] touches only mutable fields. *)
type prepared =
  | Pnative of Process.job_ctx * (Process.job_ctx -> unit)
  | Pauto of Automaton.t * Automaton.env

let prepare t ~read ~write =
  let lookup x =
    let i = local_scan t.l_names x 0 (Array.length t.l_names) in
    if i < 0 then undeclared t.proc x else Array.unsafe_get t.l_vals i
  in
  let assign x v =
    let i = local_scan t.l_names x 0 (Array.length t.l_names) in
    if i < 0 then undeclared t.proc x else Array.unsafe_set t.l_vals i v
  in
  match t.proc.Process.behavior with
  | Process.Native body ->
    Pnative
      ( {
          Process.job_index = 0;
          now = Rt_util.Rat.zero;
          read;
          write;
          get = lookup;
          set = assign;
        },
        body )
  | Process.Automaton a ->
    Pauto
      (a, { Automaton.lookup; assign; read_channel = read; write_channel = write })

let run_prepared t p ~now =
  let k = t.count + 1 in
  (match p with
  | Pnative (ctx, body) ->
    ctx.Process.job_index <- k;
    ctx.Process.now <- now;
    body ctx
  | Pauto (a, env) -> ignore (Automaton.run_job a env));
  t.count <- k

let skip_job t = t.count <- t.count + 1

let reset t =
  load_locals t;
  t.count <- 0
