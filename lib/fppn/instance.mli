(** Runtime instance of a process: its persistent local-variable store
    and invocation counter.

    Shared by the zero-delay interpreter, the multiprocessor runtime and
    the uniprocessor baseline, so that all three execute process
    behaviors through exactly the same code path. *)

type t

val create : Process.t -> t
val process : t -> Process.t

val job_count : t -> int
(** Jobs completed so far; the next job has index [job_count + 1]. *)

val get : t -> string -> Value.t
(** Current value of a local variable.  @raise Not_found *)

val run_job :
  t ->
  now:Rt_util.Rat.t ->
  read:(string -> Value.t) ->
  write:(string -> Value.t -> unit) ->
  unit
(** Executes one job run of the behavior.  [read]/[write] resolve
    channel names (the caller adds trace recording and internal/external
    routing).  Increments the job counter. *)

type prepared
(** A behavior pre-bound to a channel router: the job context (or
    automaton environment) is allocated once and rebound per
    invocation. *)

val prepare :
  t ->
  read:(string -> Value.t) ->
  write:(string -> Value.t -> unit) ->
  prepared
(** Builds the reusable execution context over [read]/[write].  The
    closures are captured for the lifetime of the result, so they must
    route against live state (e.g. read a mutable input-feed field
    rather than capture a feed value). *)

val run_prepared : t -> prepared -> now:Rt_util.Rat.t -> unit
(** Executes one job run through a {!prepare}d context without
    allocating.  Equivalent to {!run_job} with the same router;
    increments the job counter. *)

val skip_job : t -> unit
(** Advances the counter without running the behavior — used when the
    semantics consumes an invocation whose job was marked ['false']
    (sporadic server slot with no real event, Sec. IV). *)

val reset : t -> unit
(** Restores initial variable values and a zero counter. *)
