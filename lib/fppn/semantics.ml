module Rat = Rt_util.Rat

type invocation = { time : Rat.t; process : int }
type event_trace = invocation list

let invocations ?(sporadic = []) ~horizon net =
  let n = Network.n_processes net in
  let per_process = Array.make n [] in
  for p = 0 to n - 1 do
    let proc = Network.process net p in
    if not (Process.is_sporadic proc) then
      per_process.(p) <-
        Event.periodic_invocations (Process.event proc) ~horizon
  done;
  List.iter
    (fun (name, stamps) ->
      let p =
        try Network.find net name
        with Not_found ->
          invalid_arg
            (Printf.sprintf "Semantics.invocations: unknown process %S" name)
      in
      let proc = Network.process net p in
      if not (Process.is_sporadic proc) then
        invalid_arg
          (Printf.sprintf
             "Semantics.invocations: %S is periodic; it generates its own events"
             name);
      if not (Event.is_valid_sporadic_trace (Process.event proc) stamps) then
        invalid_arg
          (Printf.sprintf
             "Semantics.invocations: trace of %S violates its sporadic constraint"
             name);
      List.iter
        (fun s ->
          if Rat.(s >= horizon) || Rat.sign s < 0 then
            invalid_arg
              (Printf.sprintf
                 "Semantics.invocations: stamp %s of %S outside [0, horizon)"
                 (Rat.to_string s) name))
        stamps;
      per_process.(p) <- stamps)
    sporadic;
  (* merge in one array: concatenate per-process runs (ascending
     process index), then one stable sort by time — stability keeps
     per-process job order within equal stamps *)
  let total =
    Array.fold_left (fun acc l -> acc + List.length l) 0 per_process
  in
  let all = Array.make total { time = Rat.zero; process = 0 } in
  let i = ref 0 in
  for p = 0 to n - 1 do
    List.iter
      (fun time ->
        all.(!i) <- { time; process = p };
        incr i)
      per_process.(p)
  done;
  Array.stable_sort (fun a b -> Rat.compare a.time b.time) all;
  Array.to_list all

type input_feed = Netstate.input_feed

let no_inputs = Netstate.no_inputs
let feed_of_list = Netstate.feed_of_list

type result = {
  trace : Trace.t;
  channel_history : (string * Value.t list) list;
  output_history : (string * Value.t list) list;
  job_counts : (string * int) list;
}

(* Group an ascending event trace into (time, processes) buckets. *)
let group_by_time trace =
  let rec loop acc current = function
    | [] -> List.rev (match current with None -> acc | Some g -> g :: acc)
    | inv :: rest -> (
      match current with
      | Some (t, ps) when Rat.equal t inv.time ->
        loop acc (Some (t, inv.process :: ps)) rest
      | Some g -> loop (g :: acc) (Some (inv.time, [ inv.process ])) rest
      | None -> loop acc (Some (inv.time, [ inv.process ])) rest)
  in
  List.map (fun (t, ps) -> (t, List.rev ps)) (loop [] None trace)

let run ?(inputs = no_inputs) net event_trace =
  let state = Netstate.create net in
  let trace = ref [] in
  let recorder a = trace := a :: !trace in
  (* order simultaneous jobs by functional priority.  Ranks are a
     permutation of [0, n), so a counting sort over reusable buckets
     replaces the per-bucket comparison sort; dropping each process
     into its rank's bucket and sweeping ranks ascending is stable, so
     same-process burst jobs keep invocation order *)
  let n = Network.n_processes net in
  let rank = Array.init n (Network.fp_rank net) in
  let buckets = Array.make n [] in
  let by_priority procs =
    List.iter (fun p -> buckets.(rank.(p)) <- p :: buckets.(rank.(p))) procs;
    let out = ref [] in
    for r = n - 1 downto 0 do
      match buckets.(r) with
      | [] -> ()
      | ps ->
        out := List.rev_append ps !out;
        buckets.(r) <- []
    done;
    !out
  in
  List.iter
    (fun (time, procs) ->
      recorder (Trace.Wait time);
      let ordered = by_priority procs in
      List.iter (fun p -> Netstate.run_job ~recorder ~inputs state ~proc:p ~now:time) ordered)
    (group_by_time event_trace);
  let job_counts =
    Array.to_list
      (Array.mapi
         (fun p proc ->
           (Process.name proc, Instance.job_count (Netstate.instance state p)))
         (Network.processes net))
  in
  {
    trace = List.rev !trace;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    job_counts;
  }

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)

let equal_signature a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal Value.equal h1 h2)
    (signature a) (signature b)
