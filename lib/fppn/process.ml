type job_ctx = {
  mutable job_index : int;
  mutable now : Rt_util.Rat.t;
  read : string -> Value.t;
  write : string -> Value.t -> unit;
  get : string -> Value.t;
  set : string -> Value.t -> unit;
}

type behavior =
  | Native of (job_ctx -> unit)
  | Automaton of Automaton.t

type t = {
  name : string;
  event : Event.t;
  behavior : behavior;
  locals : (string * Value.t) list;
}

let make ?(locals = []) ~name ~event behavior =
  if String.length name = 0 then invalid_arg "Process.make: empty name";
  let locals =
    match behavior with
    | Native _ -> locals
    | Automaton a ->
      if locals <> [] then
        invalid_arg "Process.make: automaton behaviors declare their own locals";
      Automaton.variables a
  in
  { name; event; behavior; locals }

let name t = t.name
let event t = t.event
let period t = t.event.Event.period
let deadline t = t.event.Event.deadline
let burst t = t.event.Event.burst
let is_sporadic t = Event.is_sporadic t.event
let pp ppf t = Format.fprintf ppf "%s (%a)" t.name Event.pp t.event
