(** FIFO buffer sizing and balance analysis.

    The paper's future work includes "support [for] buffering"; real
    deployments must bound every FIFO.  Because FPPN execution is
    deterministic (Prop. 2.1), the zero-delay reference run gives exact
    occupancy envelopes: any semantics-respecting execution performs the
    same channel operations in an order consistent with it, so the
    per-channel maximum observed under zero-delay semantics, measured at
    job boundaries, is the buffer bound the static schedule needs.

    The analysis also classifies each FIFO's long-run balance by
    comparing per-hyperperiod write and read counts: a positive drift
    means the channel grows without bound (a rate mismatch bug in the
    application). *)

type channel_report = {
  channel : string;
  kind : Channel.kind;
  max_occupancy : int;
      (** peak item count observed over the analysed horizon *)
  final_occupancy : int;
  writes_per_h : Rt_util.Rat.t;
      (** exact write count averaged over the analysed hyperperiods *)
  reads_per_h : Rt_util.Rat.t;
      (** consuming reads only (blackboard reads never consume) *)
  drift_exact : Rt_util.Rat.t;
      (** exact [writes − reads] per hyperperiod past the startup
          transient; sign [> 0] on FIFOs ⇒ unbounded.  This is the
          field every decision in this module uses — a drift of 1/3
          per hyperperiod is caught exactly instead of hinging on
          float rounding. *)
  writes_per_hyperperiod : float;  (** [Rat.to_float writes_per_h] *)
  reads_per_hyperperiod : float;  (** [Rat.to_float reads_per_h] *)
  drift : float;
      (** [Rat.to_float drift_exact] — derived display view only *)
}

type t = {
  horizon : Rt_util.Rat.t;
  hyperperiods : int;
  channels : channel_report list;  (** sorted by channel name *)
}

val analyse :
  ?hyperperiods:int ->
  ?sporadic:(string * Rt_util.Rat.t list) list ->
  ?inputs:Netstate.input_feed ->
  Network.t ->
  t
(** Runs the zero-delay semantics over [hyperperiods] (default 4)
    hyperperiods and reports every internal channel.  Sporadic traces
    default to maximal-rate synthetic traces (events at every window
    boundary) so the bounds are conservative for sporadic writers.
    @raise Invalid_argument like [Semantics.invocations]. *)

val unbounded_channels : t -> channel_report list
(** FIFOs whose exact drift ({!channel_report.drift_exact}) is
    positive: their occupancy grows every hyperperiod. *)

val bound_of : t -> string -> int option
(** Max occupancy of a channel by name. *)

val pp : Format.formatter -> t -> unit
(** Tabular report. *)
