(** Mutable execution state of a network: channel contents, external
    output recorders and per-process instances.

    All interpreters (zero-delay, multiprocessor runtime, uniprocessor
    baseline, timed-automata) drive their jobs through {!run_job}, which
    routes channel names to internal channel state, external input
    feeds, or external output recorders, and optionally records the
    accesses in a {!Trace.t}. *)

type input_feed = string -> int -> Value.t
(** [feed channel k] is sample [k] (1-based) of an external input. *)

val no_inputs : input_feed
val feed_of_list : (string * Value.t list) list -> input_feed

type t

val create : Network.t -> t
val network : t -> Network.t
val instance : t -> int -> Instance.t

val run_job :
  ?recorder:(Trace.action -> unit) ->
  ?inputs:input_feed ->
  t ->
  proc:int ->
  now:Rt_util.Rat.t ->
  unit
(** Runs the next job of process [proc].  Reads and writes are recorded
    through [recorder] (wrapped in [Job_start]/[Job_end]).
    @raise Invalid_argument if the process accesses a channel that is
    not attached to it. *)

val skip_job : t -> proc:int -> unit
(** Consume an invocation without executing (a ['false'] job). *)

val set_inputs : t -> input_feed -> unit
(** Binds the external input feed consulted by {!run_job_fast}. *)

val run_job_fast : t -> proc:int -> now:Rt_util.Rat.t -> unit
(** {!run_job} through a per-process context prepared once at
    {!create}: no recorder, inputs from {!set_inputs}, and no per-call
    allocation.  When access counting is enabled (see
    {!set_access_counting}), every channel access (read or write,
    internal or external) increments the counter reported by
    {!access_count}; callers that price accesses read the counter
    around the call. *)

val run_jobs_fast :
  t ->
  procs:int array ->
  now_idx:int array ->
  nows:Rt_util.Rat.t array ->
  now_base:int ->
  count:int ->
  unit
(** [run_jobs_fast t ~procs ~now_idx ~nows ~now_base ~count] runs
    {!run_job_fast} for [i < count] with [proc = procs.(i)] and
    [now = nows.(now_base + now_idx.(i))] — the tick engine's replay
    inner loop, hosted here so each job costs two loads and a call.
    Indices are {e unchecked}: callers must keep them in range. *)

val set_access_counting : t -> bool -> unit
(** Selects whether {!run_job_fast} counts channel accesses.  Off by
    default: the counting variant pays a store per access, so callers
    enable it only when the platform actually charges per access. *)

val access_count : t -> int
(** Total channel accesses performed through {!run_job_fast} with
    counting enabled, since {!create}/{!reset}. *)

val run_job_deferred :
  ?recorder:(Trace.action -> unit) ->
  ?inputs:input_feed ->
  t ->
  proc:int ->
  now:Rt_util.Rat.t ->
  unit ->
  unit
(** Like {!run_job}, but channel writes are buffered: the body runs
    immediately (reads observe the pre-job state), and the returned
    thunk publishes the writes in program order.  This is the
    read-at-start / write-at-completion access model of preemptive
    fixed-priority implementations ([Runtime.Uniproc_fp]). *)

val channel_history : t -> (string * Value.t list) list
(** Internal channels, sorted by name. *)

val output_history : t -> (string * Value.t list) list
(** External outputs, sorted by name. *)

val channel_snapshot : t -> (string * Channel.snapshot) list
val output_snapshot : t -> (string * Channel.snapshot) list
(** O(#channels) history captures that stay valid after the state is
    {!reset} and reused — see {!Channel.snapshot}. *)

val channel_state : t -> string -> Channel.t
(** Internal channel or external output recorder by name.
    @raise Not_found *)

val reset : t -> unit
