(** Channel state: the two default channel types of Sec. II-A.

    A [Fifo] behaves as a queue; a [Blackboard] remembers the last
    written value and can be read many times.  Reading an empty FIFO or
    an uninitialized blackboard yields {!Value.Absent}.

    Every write is also appended to an immutable history — the "sequence
    of values written at the channel" that Prop. 2.1 (deterministic
    execution) quantifies over.  Determinism tests compare histories
    across runs. *)

type kind = Fifo | Blackboard

val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string

type t

val create : ?init:Value.t -> kind -> t
(** [init], if given, pre-loads the channel (initialized blackboard or
    one-element FIFO) without appearing in the write history. *)

val kind : t -> kind

val write : t -> Value.t -> unit
(** Appends to a FIFO / overwrites a blackboard, and records the value
    in the history.  Writing [Absent] is allowed and behaves as any
    other value. *)

val read : t -> Value.t
(** Consumes the FIFO head; a blackboard is left unchanged.  Returns
    {!Value.Absent} when no data is available. *)

val peek : t -> Value.t
(** Like {!read} but never consumes. *)

val occupancy : t -> int
(** Readable items: FIFO length, or 0/1 for a blackboard. *)

val history : t -> Value.t list
(** All values ever written, oldest first. *)

type snapshot
(** An O(1) capture of the write history at a point in time.  Stays
    valid across later {!write}s; invalidated only by nothing — a
    {!reset} channel moves to a fresh backing store precisely so that
    outstanding snapshots keep reading the old one. *)

val snapshot : t -> snapshot
val snapshot_history : snapshot -> Value.t list
(** The values captured by {!snapshot}, oldest first. *)

val reset : t -> unit
(** Restores the freshly-created state (including [init]) and clears
    the history. *)
