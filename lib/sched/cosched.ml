(* Multi-application co-scheduling (Sec. III-B generalized to N task
   graphs sharing M processors, after the F-MHEFT family).  Both
   variants bottom out in List_scheduler.schedule so a single
   application co-schedules bit-identically to the plain scheduler. *)

module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Analysis = Taskgraph.Analysis
module Trace = Fppn_obs.Trace
module Metrics = Fppn_obs.Metrics

type app = { app_name : string; app_priority : int; graph : Graph.t }

type variant = Fair | Slots

let variant_to_string = function Fair -> "fair" | Slots -> "slots"

let variant_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fair" -> Some Fair
  | "slots" | "slot" -> Some Slots
  | _ -> None

type app_report = {
  name : string;
  priority : int;
  schedule : Static_schedule.t;
  makespan : Rat.t;
  feasible : bool;
  utilization : Rat.t;
  lower_bound : int;
  slots : int list;
}

type t = {
  variant : variant;
  heuristic : Priority.heuristic;
  n_procs : int;
  union : Graph.t;
  owner : (int * int) array;
  combined : Static_schedule.t;
  reports : app_report list;
  feasible : bool;
  makespan : Rat.t;
}

let check_apps ~variant ~n_procs apps =
  if apps = [] then invalid_arg "Sched.Cosched: no applications";
  if n_procs <= 0 then invalid_arg "Sched.Cosched: n_procs must be positive";
  List.iter
    (fun a ->
      if Graph.n_jobs a.graph = 0 then
        invalid_arg
          (Printf.sprintf "Sched.Cosched: application %S has no jobs" a.app_name))
    apps;
  if variant = Slots && List.length apps > n_procs then
    invalid_arg
      (Printf.sprintf
         "Sched.Cosched: slots variant needs one processor per application \
          (%d applications, %d processors)"
         (List.length apps) n_procs)

let union_of apps =
  let prefixes = Array.of_list (List.map (fun a -> a.app_name ^ "/") apps) in
  Graph.disjoint_union ~prefixes (List.map (fun a -> a.graph) apps)

(* Application indices from most to least important: ascending priority
   value, ties broken by input position. *)
let priority_order apps =
  let arr = Array.of_list apps in
  let idx = Array.init (Array.length arr) Fun.id in
  Array.sort
    (fun a b ->
      let c = Int.compare arr.(a).app_priority arr.(b).app_priority in
      if c <> 0 then c else Int.compare a b)
    idx;
  idx

(* The fair variant's common ready queue: a global rank over the union
   graph ordered by (app priority, per-app heuristic rank, union id).
   For a single application the positions collapse to Priority.rank. *)
let fair_rank ~heuristic apps union owner =
  let arr = Array.of_list apps in
  let local_rank = Array.map (fun a -> Priority.rank a.graph heuristic) arr in
  let n = Graph.n_jobs union in
  let ids = Array.init n Fun.id in
  Array.sort
    (fun x y ->
      let ax, lx = owner.(x) and ay, ly = owner.(y) in
      let c = Int.compare arr.(ax).app_priority arr.(ay).app_priority in
      if c <> 0 then c
      else
        let c = Int.compare local_rank.(ax).(lx) local_rank.(ay).(ly) in
        if c <> 0 then c else Int.compare x y)
    ids;
  let rank = Array.make n 0 in
  Array.iteri (fun pos id -> rank.(id) <- pos) ids;
  rank

(* Per-app view of a union schedule: local job ids, global processors. *)
let slice apps union_sched owner =
  let arr = Array.of_list apps in
  let per =
    Array.map
      (fun a ->
        Array.make (Graph.n_jobs a.graph)
          { Static_schedule.proc = 0; start = Rat.zero })
      arr
  in
  Array.iteri
    (fun gid (ai, li) -> per.(ai).(li) <- Static_schedule.entry union_sched gid)
    owner;
  Array.to_list
    (Array.map
       (Static_schedule.make ~n_procs:(Static_schedule.n_procs union_sched))
       per)

(* Slot budgets: everyone gets one processor (capacity permitting —
   check_apps enforced that), then spare capacity goes to applications
   in priority order up to their Prop. 3.1 lower bound; any processors
   still left over are dealt out round-robin in the same order, so the
   allocation is work-conserving (no processor sits idle by
   construction, and a single application receives all of them —
   keeping the single-app case bit-identical to List_scheduler).
   Concrete processor ids are contiguous blocks, in priority order. *)
let allocate_slots ~n_procs apps requests =
  let order = priority_order apps in
  let n_apps = Array.length order in
  let alloc = Array.make n_apps 1 in
  let remaining = ref (n_procs - n_apps) in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    Array.iter
      (fun i ->
        if !remaining > 0 && alloc.(i) < requests.(i) then begin
          alloc.(i) <- alloc.(i) + 1;
          decr remaining;
          progress := true
        end)
      order
  done;
  while !remaining > 0 do
    Array.iter
      (fun i ->
        if !remaining > 0 then begin
          alloc.(i) <- alloc.(i) + 1;
          decr remaining
        end)
      order
  done;
  let slots = Array.make n_apps [] in
  let next = ref 0 in
  Array.iter
    (fun i ->
      slots.(i) <- List.init alloc.(i) (fun k -> !next + k);
      next := !next + alloc.(i))
    order;
  slots

let report_of ~name ~priority ~slots app sched =
  {
    name;
    priority;
    schedule = sched;
    makespan = Static_schedule.makespan app.graph sched;
    feasible = Static_schedule.is_feasible app.graph sched;
    utilization = (Analysis.load app.graph).Analysis.value;
    lower_bound = Dimension.lower_bound app.graph;
    slots;
  }

let schedule_with ?(heuristic = Priority.Alap_edf) ~variant ~n_procs apps =
  check_apps ~variant ~n_procs apps;
  Trace.with_span ("sched.cosched." ^ variant_to_string variant) @@ fun () ->
  let union, owner = union_of apps in
  let result =
    match variant with
    | Fair ->
      let rank = fair_rank ~heuristic apps union owner in
      let combined = List_scheduler.schedule ~rank ~n_procs union in
      let slices = slice apps combined owner in
      let reports =
        List.map2
          (fun app sched ->
            Trace.with_span ("sched.cosched.app." ^ app.app_name) @@ fun () ->
            report_of ~name:app.app_name ~priority:app.app_priority ~slots:[]
              app sched)
          apps slices
      in
      {
        variant;
        heuristic;
        n_procs;
        union;
        owner;
        combined;
        reports;
        feasible = List.for_all (fun (r : app_report) -> r.feasible) reports;
        makespan = Static_schedule.makespan union combined;
      }
    | Slots ->
      let arr = Array.of_list apps in
      let requests =
        Array.map
          (fun a ->
            let lb = Dimension.lower_bound a.graph in
            if lb = max_int then n_procs else max 1 (min n_procs lb))
          arr
      in
      let slots = allocate_slots ~n_procs apps requests in
      let reports =
        Array.to_list
          (Array.mapi
             (fun ai app ->
               Trace.with_span ("sched.cosched.app." ^ app.app_name)
               @@ fun () ->
               let my_slots = Array.of_list slots.(ai) in
               let rank = Priority.rank app.graph heuristic in
               let local =
                 List_scheduler.schedule ~rank
                   ~n_procs:(Array.length my_slots) app.graph
               in
               let entries =
                 Array.init (Graph.n_jobs app.graph) (fun i ->
                     let e = Static_schedule.entry local i in
                     { e with Static_schedule.proc = my_slots.(e.proc) })
               in
               let sched = Static_schedule.make ~n_procs entries in
               report_of ~name:app.app_name ~priority:app.app_priority
                 ~slots:slots.(ai) app sched)
             arr)
      in
      let per = Array.of_list reports in
      let combined =
        Static_schedule.make ~n_procs
          (Array.map
             (fun (ai, li) -> Static_schedule.entry per.(ai).schedule li)
             owner)
      in
      {
        variant;
        heuristic;
        n_procs;
        union;
        owner;
        combined;
        reports;
        feasible = List.for_all (fun (r : app_report) -> r.feasible) reports;
        makespan = Static_schedule.makespan union combined;
      }
  in
  if Metrics.enabled () then begin
    Metrics.incr (Metrics.counter "cosched.schedules");
    Metrics.add (Metrics.counter "cosched.apps") (List.length apps);
    Metrics.add
      (Metrics.counter "cosched.infeasible_apps")
      (List.length (List.filter (fun (r : app_report) -> not r.feasible) result.reports))
  end;
  result

type attempt = { heuristic : Priority.heuristic; result : t }

let auto ?pool ?(heuristics = Priority.all) ~variant ~n_procs apps =
  check_apps ~variant ~n_procs apps;
  Trace.with_span "sched.cosched.auto" @@ fun () ->
  let attempt h =
    { heuristic = h; result = schedule_with ~heuristic:h ~variant ~n_procs apps }
  in
  let attempts =
    match pool with
    | None -> List.map attempt heuristics
    | Some pool -> Rt_util.Pool.map_list ~chunk:1 pool attempt heuristics
  in
  (attempts, List.find_opt (fun a -> a.result.feasible) attempts)

type admission =
  | Admitted of t
  | Rejected of { app : string; reason : string }

let admit ?pool ?heuristics ?(variant = Fair) ~n_procs ~admitted candidate =
  Trace.with_span "sched.cosched.admit" @@ fun () ->
  let apps = admitted @ [ candidate ] in
  let result =
    if variant = Slots && List.length apps > n_procs then
      Rejected
        {
          app = candidate.app_name;
          reason =
            Printf.sprintf
              "no free processor slot (%d applications on %d processors)"
              (List.length apps) n_procs;
        }
    else begin
      (* Prop. 3.1 on the union: a cheap necessary condition before the
         constructive search. *)
      let union, _ = union_of apps in
      let lb = Dimension.lower_bound union in
      if lb > n_procs then
        Rejected
          {
            app = candidate.app_name;
            reason =
              (if lb = max_int then
                 "some job cannot fit its ASAP/ALAP window (Prop. 3.1)"
               else
                 Printf.sprintf
                   "Prop. 3.1 load bound needs %d processor(s), platform has %d"
                   lb n_procs);
          }
      else
        match snd (auto ?pool ?heuristics ~variant ~n_procs apps) with
        | Some a -> Admitted a.result
        | None ->
          Rejected
            {
              app = candidate.app_name;
              reason =
                "no schedule-priority heuristic yields a deadline-feasible \
                 co-schedule";
            }
    end
  in
  if Metrics.enabled () then
    Metrics.incr
      (Metrics.counter
         (match result with
         | Admitted _ -> "cosched.admit.accepted"
         | Rejected _ -> "cosched.admit.rejected"));
  result

let sections t =
  List.map
    (fun r ->
      {
        Schedule_io.sec_name = r.name;
        sec_priority = r.priority;
        sec_slots = r.slots;
        sec_schedule = r.schedule;
      })
    t.reports

let to_json t =
  Schedule_io.sections_to_json
    ~variant:(variant_to_string t.variant)
    ~n_procs:t.n_procs (sections t)

let save path t =
  Schedule_io.save_sections
    ~variant:(variant_to_string t.variant)
    ~n_procs:t.n_procs path (sections t)

let pp ppf t =
  Format.fprintf ppf "@[<v>co-schedule (%s, %a, %d processors)@,"
    (variant_to_string t.variant) Priority.pp t.heuristic t.n_procs;
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-16s prio %d  load %a  lb %s  makespan %a ms  %s%s@,"
        r.name r.priority Rat.pp r.utilization
        (if r.lower_bound = max_int then "inf" else string_of_int r.lower_bound)
        Rat.pp r.makespan
        (if r.feasible then "feasible" else "INFEASIBLE")
        (match r.slots with
        | [] -> ""
        | s ->
          Printf.sprintf "  slots [%s]"
            (String.concat "," (List.map string_of_int s))))
    t.reports;
  Format.fprintf ppf "  combined makespan %a ms, %s@]" Rat.pp t.makespan
    (if t.feasible then "all applications feasible"
     else "some application misses a deadline")
