module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

let to_string ?graph s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "fppn-schedule v1\n";
  Buffer.add_string buf (Printf.sprintf "procs %d\n" (Static_schedule.n_procs s));
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" (Static_schedule.n_jobs s));
  for i = 0 to Static_schedule.n_jobs s - 1 do
    let label =
      match graph with
      | Some g -> Printf.sprintf "  # %s" (Job.label (Graph.job g i))
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%d %d %s%s\n" i (Static_schedule.proc s i)
         (Rat.to_string (Static_schedule.start s i))
         label)
  done;
  Buffer.contents buf

let of_string text =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let lines =
    List.filteri (fun _ l -> String.trim l <> "")
      (List.map strip_comment (String.split_on_char '\n' text))
    |> List.map String.trim
  in
  match lines with
  | header :: rest when String.trim header = "fppn-schedule v1" -> (
    let parse_kv key line =
      match String.split_on_char ' ' line with
      | [ k; v ] when k = key -> int_of_string_opt v
      | _ -> None
    in
    match rest with
    | procs_line :: jobs_line :: entries -> (
      match (parse_kv "procs" procs_line, parse_kv "jobs" jobs_line) with
      | Some n_procs, Some n_jobs -> (
        if List.length entries <> n_jobs then
          Error
            (Printf.sprintf "expected %d entries, found %d" n_jobs
               (List.length entries))
        else
          let table =
            Array.make n_jobs { Static_schedule.proc = 0; start = Rat.zero }
          in
          let seen = Array.make n_jobs false in
          let parse_entry line =
            match
              List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
            with
            | [ id; proc; start ] -> (
              match (int_of_string_opt id, int_of_string_opt proc) with
              | Some id, Some proc when id >= 0 && id < n_jobs -> (
                try
                  table.(id) <-
                    { Static_schedule.proc; start = Rat.of_string start };
                  seen.(id) <- true;
                  Ok ()
                with Invalid_argument msg -> Error msg)
              | _ -> Error (Printf.sprintf "bad entry %S" line))
            | _ -> Error (Printf.sprintf "bad entry %S" line)
          in
          let rec parse_all = function
            | [] -> Ok ()
            | l :: rest -> (
              match parse_entry l with Ok () -> parse_all rest | Error e -> Error e)
          in
          match parse_all entries with
          | Error e -> Error e
          | Ok () ->
            if Array.for_all Fun.id seen then
              try Ok (Static_schedule.make ~n_procs table)
              with Invalid_argument msg -> Error msg
            else Error "some job ids are missing")
      | _ -> Error "malformed procs/jobs header")
    | _ -> Error "truncated header")
  | _ -> Error "not an fppn-schedule v1 file"

let save ?graph path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?graph s))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let matches g s = Static_schedule.n_jobs s = Graph.n_jobs g

(* Multi-application co-schedules: JSON sections. *)

module Json = Rt_util.Json

type section = {
  sec_name : string;
  sec_priority : int;
  sec_slots : int list;
  sec_schedule : Static_schedule.t;
}

let cosched_schema = "fppn-cosched/1"

let section_to_json s =
  let n = Static_schedule.n_jobs s.sec_schedule in
  Json.Obj
    [
      ("name", Json.Str s.sec_name);
      ("priority", Json.Int s.sec_priority);
      ("slots", Json.Arr (List.map (fun p -> Json.Int p) s.sec_slots));
      ("jobs", Json.Int n);
      ( "entries",
        Json.Arr
          (List.init n (fun i ->
               let start = Static_schedule.start s.sec_schedule i in
               Json.Obj
                 [
                   ("id", Json.Int i);
                   ("proc", Json.Int (Static_schedule.proc s.sec_schedule i));
                   ("start", Json.Str (Rat.to_string start));
                   ("start_ms", Json.Float (Rat.to_float start));
                 ])) );
    ]

let sections_to_json ~variant ~n_procs sections =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str cosched_schema);
         ("variant", Json.Str variant);
         ("procs", Json.Int n_procs);
         ("apps", Json.Arr (List.map section_to_json sections));
       ])

exception Bad of string

let sections_of_json text =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let str field j =
    match Option.bind (Json.member field j) Json.as_string with
    | Some s -> s
    | None -> fail "missing string field %S" field
  in
  let int field j =
    match Option.bind (Json.member field j) Json.as_int with
    | Some i -> i
    | None -> fail "missing integer field %S" field
  in
  let list field j =
    match Option.bind (Json.member field j) Json.as_list with
    | Some l -> l
    | None -> fail "missing array field %S" field
  in
  let section_of ~n_procs j =
    let n_jobs = int "jobs" j in
    let entries = list "entries" j in
    if List.length entries <> n_jobs then
      fail "app %S: expected %d entries, found %d" (str "name" j) n_jobs
        (List.length entries);
    let table =
      Array.make (max n_jobs 1) { Static_schedule.proc = 0; start = Rat.zero }
    in
    let seen = Array.make (max n_jobs 1) false in
    List.iter
      (fun e ->
        let id = int "id" e in
        if id < 0 || id >= n_jobs then fail "entry id %d out of range" id;
        let start =
          try Rat.of_string (str "start" e)
          with Invalid_argument m -> fail "entry %d: %s" id m
        in
        table.(id) <- { Static_schedule.proc = int "proc" e; start };
        seen.(id) <- true)
      entries;
    if n_jobs = 0 || not (Array.for_all Fun.id seen) then
      fail "app %S: some job ids are missing" (str "name" j);
    let sec_schedule =
      try Static_schedule.make ~n_procs table
      with Invalid_argument m -> fail "app %S: %s" (str "name" j) m
    in
    {
      sec_name = str "name" j;
      sec_priority = int "priority" j;
      sec_slots =
        List.map
          (fun s ->
            match Json.as_int s with
            | Some p -> p
            | None -> fail "non-integer slot")
          (list "slots" j);
      sec_schedule;
    }
  in
  match Json.parse text with
  | exception Json.Malformed m -> Error m
  | json -> (
    try
      if str "schema" json <> cosched_schema then
        fail "not a %s document" cosched_schema;
      let n_procs = int "procs" json in
      let sections = List.map (section_of ~n_procs) (list "apps" json) in
      Ok (str "variant" json, n_procs, sections)
    with Bad m -> Error m)

let save_sections ~variant ~n_procs path sections =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (sections_to_json ~variant ~n_procs sections))

let load_sections path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> sections_of_json (really_input_string ic (in_channel_length ic)))
