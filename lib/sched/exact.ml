module Rat = Rt_util.Rat
module Pool = Rt_util.Pool
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

type result = {
  schedule : Static_schedule.t option;
  makespan : Rat.t option;
  optimal : bool;
  nodes : int;
}

(* Search state, mutated along a DFS and restored on backtrack.  The
   parallel fan-out gives every top-level branch its own copy. *)
type state = {
  entries : Static_schedule.entry array;
  finish : Rat.t array;
  scheduled : bool array;
  missing : int array;
  proc_free : Rat.t array;
}

let copy_state st =
  {
    entries = Array.copy st.entries;
    finish = Array.copy st.finish;
    scheduled = Array.copy st.scheduled;
    missing = Array.copy st.missing;
    proc_free = Array.copy st.proc_free;
  }

let solve ?pool ?(node_budget = 2_000_000) ~n_procs g =
  let n = Graph.n_jobs g in
  if n_procs <= 0 then invalid_arg "Exact.solve: no processors";
  Fppn_obs.Trace.with_span "sched.exact" @@ fun () ->
  let jobs = Graph.jobs g in
  (* remaining critical-path length from each job (b-level): lower bound *)
  let b_level = Taskgraph.Analysis.b_level g in
  let total_work = Graph.total_wcet g in
  (* [bound] is the shared incumbent makespan used for pruning: safe to
     share across domains because it only ever decreases, and pruning
     against a stale (larger) value is merely less effective, never
     wrong.  Each branch additionally records its best schedule in a
     local ref, so the final winner is selected deterministically by
     branch order. *)
  let bound = Atomic.make None in
  let nodes = Atomic.make 0 in
  let exhausted = Atomic.make true in
  let beats_bound candidate =
    match Atomic.get bound with None -> true | Some b -> Rat.(candidate < b)
  in
  let rec lower_bound_to m =
    let cur = Atomic.get bound in
    match cur with
    | Some b when not Rat.(m < b) -> ()
    | _ ->
      if Atomic.compare_and_set bound cur (Some m) then
        Fppn_obs.Trace.instant "sched.exact.bound_update"
      else lower_bound_to m
  in
  let rec dfs st local n_done current_makespan remaining_work =
    if Atomic.get nodes >= node_budget then Atomic.set exhausted false
    else begin
      Atomic.incr nodes;
      if n_done = n then begin
        if beats_bound current_makespan then begin
          lower_bound_to current_makespan;
          let better =
            match !local with
            | None -> true
            | Some (b, _) -> Rat.(current_makespan < b)
          in
          if better then local := Some (current_makespan, Array.copy st.entries)
        end
      end
      else begin
        (* lower bounds: remaining work spread over all machines, and the
           deepest remaining chain from any ready-or-future job *)
        let earliest_free =
          Array.fold_left Rat.min st.proc_free.(0) st.proc_free
        in
        let work_bound =
          Rat.add earliest_free (Rat.div remaining_work (Rat.of_int n_procs))
        in
        let path_bound =
          let bound = ref Rat.zero in
          for i = 0 to n - 1 do
            if not st.scheduled.(i) then
              bound := Rat.max !bound (Rat.add jobs.(i).Job.arrival b_level.(i))
          done;
          !bound
        in
        let lower = Rat.max current_makespan (Rat.max work_bound path_bound) in
        if beats_bound lower then begin
          (* branch over every ready job × distinct processor free times *)
          for i = 0 to n - 1 do
            if (not st.scheduled.(i)) && st.missing.(i) = 0 then begin
              let ready_data =
                List.fold_left
                  (fun acc p -> Rat.max acc st.finish.(p))
                  jobs.(i).Job.arrival (Graph.preds g i)
              in
              (* symmetry breaking: among identical machines only distinct
                 free times matter; pick the first processor per time *)
              let seen_times = ref [] in
              for p = 0 to n_procs - 1 do
                if not (List.exists (Rat.equal st.proc_free.(p)) !seen_times)
                then begin
                  seen_times := st.proc_free.(p) :: !seen_times;
                  let start = Rat.max ready_data st.proc_free.(p) in
                  let e = Rat.add start jobs.(i).Job.wcet in
                  (* prune deadline misses immediately *)
                  if Rat.(e <= jobs.(i).Job.deadline) then begin
                    let saved_free = st.proc_free.(p) in
                    st.entries.(i) <- { Static_schedule.proc = p; start };
                    st.finish.(i) <- e;
                    st.scheduled.(i) <- true;
                    st.proc_free.(p) <- e;
                    List.iter
                      (fun s -> st.missing.(s) <- st.missing.(s) - 1)
                      (Graph.succs g i);
                    dfs st local (n_done + 1) (Rat.max current_makespan e)
                      (Rat.sub remaining_work jobs.(i).Job.wcet);
                    List.iter
                      (fun s -> st.missing.(s) <- st.missing.(s) + 1)
                      (Graph.succs g i);
                    st.proc_free.(p) <- saved_free;
                    st.scheduled.(i) <- false
                  end
                end
              done
            end
          done
        end
      end
    end
  in
  let init_state () =
    {
      entries = Array.make n { Static_schedule.proc = 0; start = Rat.zero };
      finish = Array.make n Rat.zero;
      scheduled = Array.make n false;
      missing = Array.init n (fun i -> List.length (Graph.preds g i));
      proc_free = Array.make n_procs Rat.zero;
    }
  in
  let best =
    if n = 0 then None
    else
      match pool with
      | Some pool when Pool.jobs pool > 1 ->
        (* fan the root's branches out over the pool: every child gets a
           private state with its first move applied, then searches its
           subtree sequentially against the shared bound *)
        let st0 = init_state () in
        if Atomic.get nodes >= node_budget then Atomic.set exhausted false
        else begin Atomic.incr nodes end;
        let moves = ref [] in
        for i = 0 to n - 1 do
          if st0.missing.(i) = 0 then begin
            let ready_data =
              List.fold_left
                (fun acc p -> Rat.max acc st0.finish.(p))
                jobs.(i).Job.arrival (Graph.preds g i)
            in
            let seen_times = ref [] in
            for p = 0 to n_procs - 1 do
              if not (List.exists (Rat.equal st0.proc_free.(p)) !seen_times)
              then begin
                seen_times := st0.proc_free.(p) :: !seen_times;
                let start = Rat.max ready_data st0.proc_free.(p) in
                let e = Rat.add start jobs.(i).Job.wcet in
                if Rat.(e <= jobs.(i).Job.deadline) then
                  moves := (i, p, start, e) :: !moves
              end
            done
          end
        done;
        let locals =
          Pool.map_list ~chunk:1 pool
            (fun (i, p, start, e) ->
              let st = copy_state st0 in
              st.entries.(i) <- { Static_schedule.proc = p; start };
              st.finish.(i) <- e;
              st.scheduled.(i) <- true;
              st.proc_free.(p) <- e;
              List.iter
                (fun s -> st.missing.(s) <- st.missing.(s) - 1)
                (Graph.succs g i);
              let local = ref None in
              dfs st local 1 e (Rat.sub total_work jobs.(i).Job.wcet);
              !local)
            (List.rev !moves)
        in
        List.fold_left
          (fun acc local ->
            match (acc, local) with
            | None, l -> l
            | acc, None -> acc
            | Some (b, _), Some (m, _) when Rat.(m < b) -> local
            | acc, _ -> acc)
          None locals
      | _ ->
        let st = init_state () in
        let local = ref None in
        dfs st local 0 Rat.zero total_work;
        !local
  in
  if Fppn_obs.Metrics.enabled () then
    Fppn_obs.Metrics.add
      (Fppn_obs.Metrics.counter "sched.exact.nodes")
      (Atomic.get nodes);
  {
    schedule =
      Option.map (fun (_, e) -> Static_schedule.make ~n_procs e) best;
    makespan = Option.map fst best;
    optimal = Atomic.get exhausted;
    nodes = Atomic.get nodes;
  }

let optimality_gap ?node_budget ~n_procs ~heuristic_makespan g =
  let r = solve ?node_budget ~n_procs g in
  match (r.makespan, r.optimal) with
  | Some opt, true ->
    Some
      ((Rat.to_float heuristic_makespan -. Rat.to_float opt)
      /. Rat.to_float opt)
  | _ -> None
