(** Persistence of static schedules.

    The paper's compile-time algorithm "prepares a configuration for
    the online policy"; this module is that handoff: a schedule computed
    once can be saved, inspected and later fed to the runtime without
    re-running the scheduler.

    Format (line-oriented text, stable across versions of this library):
    {v
    fppn-schedule v1
    procs 2
    jobs 10
    0 0 0        # <job-id> <processor> <start-time as rational>
    1 1 25
    ...
    v}
    Lines starting with [#] and blank lines are ignored; an inline [#]
    starts a comment. *)

val to_string : ?graph:Taskgraph.Graph.t -> Static_schedule.t -> string
(** [graph], if given, adds job labels as comments. *)

val of_string : string -> (Static_schedule.t, string) result
(** Parses {!to_string} output; the error describes the offending line. *)

val save : ?graph:Taskgraph.Graph.t -> string -> Static_schedule.t -> unit
(** [save path sched]. *)

val load : string -> (Static_schedule.t, string) result

val matches : Taskgraph.Graph.t -> Static_schedule.t -> bool
(** Sanity check before running a loaded schedule: covers exactly the
    graph's jobs. *)

(** {1 Multi-application co-schedules}

    A co-schedule ({!Cosched}) carries one schedule per application plus
    shared-platform metadata, which the line format above cannot express;
    it persists as a JSON document instead (schema [fppn-cosched/1]):
    {v
    {"schema":"fppn-cosched/1","variant":"fair","procs":4,
     "apps":[{"name":"fig1","priority":0,"slots":[],"jobs":10,
              "entries":[{"id":0,"proc":0,"start":"0","start_ms":0},...]},
             ...]}
    v}
    Start times are exact rational strings; [start_ms] floats are
    informational only and ignored on load. *)

type section = {
  sec_name : string;
  sec_priority : int;
  sec_slots : int list;  (** reserved processors; empty for fair *)
  sec_schedule : Static_schedule.t;
}

val sections_to_json : variant:string -> n_procs:int -> section list -> string

val sections_of_json : string -> (string * int * section list, string) result
(** Parses {!sections_to_json} output back into
    [(variant, n_procs, sections)]. *)

val save_sections : variant:string -> n_procs:int -> string -> section list -> unit
(** [save_sections ~variant ~n_procs path sections]. *)

val load_sections : string -> (string * int * section list, string) result
