module Analysis = Taskgraph.Analysis

type verdict = {
  lower_bound : int;
  found : (int * List_scheduler.attempt) option;
  searched_up_to : int;
}

let lower_bound ?times g =
  let times = match times with Some t -> t | None -> Analysis.asap_alap g in
  let job_fit =
    match Analysis.necessary_condition ~times g ~processors:max_int with
    | Ok () -> true
    | Error vs ->
      (* only per-job violations are processor-independent *)
      not
        (List.exists
           (function Analysis.Job_infeasible _ -> true | _ -> false)
           vs)
  in
  if not job_fit then max_int
  else
    let load = (Analysis.load ~times g).Analysis.value in
    max 1 (Rt_util.Rat.ceil load)

let min_processors ?heuristics ?(max_procs = 16) g =
  let times = Analysis.asap_alap g in
  let lb = lower_bound ~times g in
  if lb = max_int then
    { lower_bound = max_int; found = None; searched_up_to = max_procs }
  else begin
    let lower_bound = lb in
    let rec search m =
      if m > max_procs then None
      else
        match snd (List_scheduler.auto ?heuristics ~n_procs:m g) with
        | Some attempt -> Some (m, attempt)
        | None -> search (m + 1)
    in
    { lower_bound; found = search lower_bound; searched_up_to = max_procs }
  end

let pp ppf v =
  if v.lower_bound = max_int then
    Format.fprintf ppf
      "infeasible: some job cannot fit its ASAP/ALAP window on any processor count"
  else
    match v.found with
    | Some (m, a) ->
      Format.fprintf ppf
        "needs %d processor(s) (lower bound %d, heuristic %a, makespan %a ms)" m
        v.lower_bound Priority.pp a.List_scheduler.heuristic Rt_util.Rat.pp
        a.List_scheduler.makespan
    | None ->
      Format.fprintf ppf
        "no feasible schedule found up to %d processors (lower bound %d)"
        v.searched_up_to v.lower_bound
