(** Static schedules (Def. 3.2): a processor mapping [µ_i] and a start
    time [s_i] for every job, repeated each hyperperiod as the paper's
    {e periodic frame}. *)

type entry = { proc : int; start : Rt_util.Rat.t }

type t

val make : n_procs:int -> entry array -> t
(** [entry.(job_id)] for every job of the graph.
    @raise Invalid_argument on an empty array, negative starts, or a
    processor out of range. *)

val n_procs : t -> int
val n_jobs : t -> int
val entry : t -> int -> entry
val start : t -> int -> Rt_util.Rat.t
val proc : t -> int -> int

val finish : Taskgraph.Graph.t -> t -> int -> Rt_util.Rat.t
(** [e_i = s_i + C_i]. *)

val makespan : Taskgraph.Graph.t -> t -> Rt_util.Rat.t

val jobs_on : t -> int -> int list
(** Job ids mapped to one processor, ascending start time (ties by id)
    — the {e static order} executed by the online policy. *)

val order_on : t -> int -> int array
(** {!jobs_on} as a fresh array, from the order table compiled once at
    {!make} — the form the runtime engine consumes. *)

val starts_in_ticks : t -> Rt_util.Timebase.t -> int array option
(** Every job's start time on the given tick grid, or [None] if any
    start is not representable. *)

val makespan_ticks :
  Taskgraph.Graph.t -> t -> Rt_util.Timebase.t -> int option
(** {!makespan} computed entirely in ticks ([None] on any
    unrepresentable start or WCET); equals [ticks tb (makespan g t)]
    whenever defined. *)

type violation =
  | Arrival of int  (** [s_i < A_i] *)
  | Deadline of int  (** [e_i > D_i] *)
  | Precedence of int * int  (** edge [(i,j)] with [e_i > s_j] *)
  | Overlap of int * int  (** same processor, overlapping execution *)

val pp_violation : Taskgraph.Graph.t -> Format.formatter -> violation -> unit

val check : Taskgraph.Graph.t -> t -> violation list
(** All feasibility violations of Def. 3.2 (empty = feasible). *)

val is_feasible : Taskgraph.Graph.t -> t -> bool

val to_gantt_rows : Taskgraph.Graph.t -> t -> Rt_util.Gantt.row list
(** One row per processor, one bar per job — Fig. 4-style. *)

val pp : Taskgraph.Graph.t -> Format.formatter -> t -> unit
(** Tabular dump: job, processor, start, finish, deadline. *)
