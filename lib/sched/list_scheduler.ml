module Rat = Rt_util.Rat
module Pqueue = Rt_util.Pqueue
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

let schedule ~rank ~n_procs g =
  Fppn_obs.Trace.with_span "sched.list" @@ fun () ->
  let n = Graph.n_jobs g in
  if Array.length rank <> n then
    invalid_arg "List_scheduler.schedule: rank array size mismatch";
  if n_procs <= 0 then invalid_arg "List_scheduler.schedule: no processors";
  let entries =
    Array.make n { Static_schedule.proc = 0; start = Rat.zero }
  in
  let started = Array.make n false in
  let finish_time = Array.make n Rat.zero in
  let missing_preds = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let proc_free = Array.make n_procs Rat.zero in
  (* ready queue ordered by schedule priority *)
  let ready = Pqueue.create ~cmp:(fun a b -> Int.compare rank.(a) rank.(b)) in
  (* future wake-up times: arrivals of jobs whose predecessors are done,
     and completions that release successors or processors *)
  let events = Pqueue.create ~cmp:Rat.compare in
  let pending_arrival = Array.make n false in
  let release now i =
    (* all predecessors done; becomes ready at max(now, A_i) *)
    let j = Graph.job g i in
    if Rat.(j.Job.arrival <= now) then Pqueue.push ready i
    else if not pending_arrival.(i) then begin
      pending_arrival.(i) <- true;
      Pqueue.push events j.Job.arrival
    end
  in
  Array.iteri
    (fun i _ -> if missing_preds.(i) = 0 then release Rat.zero i)
    entries;
  (* also re-check arrival-released jobs at each event time *)
  let scheduled_count = ref 0 in
  let rec dispatch now =
    (* move arrival-pending jobs whose time has come *)
    for i = 0 to n - 1 do
      if
        pending_arrival.(i)
        && Rat.((Graph.job g i).Job.arrival <= now)
      then begin
        pending_arrival.(i) <- false;
        Pqueue.push ready i
      end
    done;
    (* find a free processor: smallest free time <= now, lowest index *)
    let free = ref (-1) in
    for p = n_procs - 1 downto 0 do
      if Rat.(proc_free.(p) <= now) then free := p
    done;
    if !free >= 0 then
      match Pqueue.pop ready with
      | None -> ()
      | Some i ->
        let p = !free in
        entries.(i) <- { Static_schedule.proc = p; start = now };
        started.(i) <- true;
        incr scheduled_count;
        let e = Rat.add now (Graph.job g i).Job.wcet in
        finish_time.(i) <- e;
        proc_free.(p) <- e;
        Pqueue.push events e;
        dispatch now
  in
  dispatch Rat.zero;
  let completed_up_to = ref Rat.zero in
  let complete_jobs now =
    (* successors of jobs finishing at or before [now] become eligible *)
    for i = 0 to n - 1 do
      if
        started.(i)
        && Rat.(finish_time.(i) <= now)
        && Rat.(finish_time.(i) > !completed_up_to)
      then
        List.iter
          (fun s ->
            missing_preds.(s) <- missing_preds.(s) - 1;
            if missing_preds.(s) = 0 then release now s)
          (Graph.succs g i)
    done;
    completed_up_to := Rat.max !completed_up_to now
  in
  let rec run () =
    match Pqueue.pop events with
    | None -> ()
    | Some t ->
      complete_jobs t;
      dispatch t;
      run ()
  in
  run ();
  assert (!scheduled_count = n || n = 0);
  Static_schedule.make ~n_procs entries

let schedule_with ~heuristic ~n_procs g =
  schedule ~rank:(Priority.rank g heuristic) ~n_procs g

type attempt = {
  heuristic : Priority.heuristic;
  schedule : Static_schedule.t;
  feasible : bool;
  makespan : Rat.t;
}

let auto ?pool ?(heuristics = Priority.all) ~n_procs g =
  let attempt heuristic =
    Fppn_obs.Trace.with_span ("sched.auto." ^ Priority.to_string heuristic)
    @@ fun () ->
    let s = schedule_with ~heuristic ~n_procs g in
    {
      heuristic;
      schedule = s;
      feasible = Static_schedule.is_feasible g s;
      makespan = Static_schedule.makespan g s;
    }
  in
  let attempts =
    match pool with
    | None -> List.map attempt heuristics
    | Some pool -> Rt_util.Pool.map_list ~chunk:1 pool attempt heuristics
  in
  (attempts, List.find_opt (fun a -> a.feasible) attempts)
