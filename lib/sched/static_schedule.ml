module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

type entry = { proc : int; start : Rat.t }

type t = {
  n_procs : int;
  entries : entry array;
  orders : int array array; (* per processor: job ids by (start, id) *)
}

let make ~n_procs entries =
  if Array.length entries = 0 then
    invalid_arg "Static_schedule.make: empty schedule";
  if n_procs <= 0 then invalid_arg "Static_schedule.make: no processors";
  Array.iter
    (fun e ->
      if e.proc < 0 || e.proc >= n_procs then
        invalid_arg "Static_schedule.make: processor out of range";
      if Rat.sign e.start < 0 then
        invalid_arg "Static_schedule.make: negative start time")
    entries;
  let orders =
    Array.init n_procs (fun p ->
        let ids = ref [] in
        for i = Array.length entries - 1 downto 0 do
          if entries.(i).proc = p then ids := i :: !ids
        done;
        let arr = Array.of_list !ids in
        (* ids are ascending already, so sorting by start stays stable *)
        Array.sort
          (fun a b ->
            let c = Rat.compare entries.(a).start entries.(b).start in
            if c <> 0 then c else Int.compare a b)
          arr;
        arr)
  in
  { n_procs; entries; orders }

let n_procs t = t.n_procs
let n_jobs t = Array.length t.entries
let entry t i = t.entries.(i)
let start t i = t.entries.(i).start
let proc t i = t.entries.(i).proc

let finish g t i = Rat.add t.entries.(i).start (Graph.job g i).Job.wcet

let makespan g t =
  let best = ref Rat.zero in
  for i = 0 to n_jobs t - 1 do
    best := Rat.max !best (finish g t i)
  done;
  !best

let jobs_on t p = Array.to_list t.orders.(p)

let order_on t p = Array.copy t.orders.(p)

let starts_in_ticks t tb =
  let n = n_jobs t in
  let out = Array.make n 0 in
  let rec fill i =
    if i >= n then Some out
    else
      match Rt_util.Timebase.ticks_opt tb t.entries.(i).start with
      | Some k ->
        out.(i) <- k;
        fill (i + 1)
      | None -> None
  in
  fill 0

let makespan_ticks g t tb =
  match starts_in_ticks t tb with
  | None -> None
  | Some starts ->
    let best = ref 0 in
    let rec scan i =
      if i >= n_jobs t then Some !best
      else
        match Rt_util.Timebase.ticks_opt tb (Graph.job g i).Job.wcet with
        | None -> None
        | Some w ->
          if starts.(i) + w > !best then best := starts.(i) + w;
          scan (i + 1)
    in
    scan 0

type violation =
  | Arrival of int
  | Deadline of int
  | Precedence of int * int
  | Overlap of int * int

let pp_violation g ppf =
  let lbl i = Job.label (Graph.job g i) in
  function
  | Arrival i -> Format.fprintf ppf "%s starts before its arrival" (lbl i)
  | Deadline i -> Format.fprintf ppf "%s finishes after its deadline" (lbl i)
  | Precedence (i, j) ->
    Format.fprintf ppf "%s must complete before %s starts" (lbl i) (lbl j)
  | Overlap (i, j) ->
    Format.fprintf ppf "%s and %s overlap on their shared processor" (lbl i)
      (lbl j)

let check g t =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  for i = 0 to n_jobs t - 1 do
    let j = Graph.job g i in
    if Rat.(start t i < j.Job.arrival) then add (Arrival i);
    if Rat.(finish g t i > j.Job.deadline) then add (Deadline i)
  done;
  List.iter
    (fun (i, j) -> if Rat.(finish g t i > start t j) then add (Precedence (i, j)))
    (Graph.edges g);
  for p = 0 to t.n_procs - 1 do
    let rec scan = function
      | a :: (b :: _ as rest) ->
        if Rat.(finish g t a > start t b) then add (Overlap (a, b));
        scan rest
      | [ _ ] | [] -> ()
    in
    scan (jobs_on t p)
  done;
  List.rev !violations

let is_feasible g t = check g t = []

let to_gantt_rows g t =
  List.init t.n_procs (fun p ->
      let segments =
        List.map
          (fun i ->
            {
              Rt_util.Gantt.start = Rat.to_float (start t i);
              finish = Rat.to_float (finish g t i);
              label = Job.label (Graph.job g i);
            })
          (jobs_on t p)
      in
      { Rt_util.Gantt.name = Printf.sprintf "M%d" (p + 1); segments })

let pp g ppf t =
  Format.fprintf ppf "%-24s %-5s %10s %10s %10s@." "job" "proc" "start"
    "finish" "deadline";
  List.iter
    (fun p ->
      List.iter
        (fun i ->
          let j = Graph.job g i in
          Format.fprintf ppf "%-24s M%-4d %10s %10s %10s@." (Job.label j)
            (p + 1)
            (Rat.to_string (start t i))
            (Rat.to_string (finish g t i))
            (Rat.to_string j.Job.deadline))
        (jobs_on t p))
    (List.init t.n_procs Fun.id)
