(** Multi-application co-scheduling on [M] shared processors.

    The paper compiles one FPPN at a time; real platforms (and ROADMAP
    item 2) run several applications side by side.  This module
    generalizes the list scheduler's data model from a single task graph
    to an indexed application set, following the F-MHEFT family of
    multi-application HEFT schedulers:

    - {e fair} — one common ready queue over the disjoint union of all
      task graphs, ordered by (application priority, per-application
      schedule rank).  Applications interleave on all [M] processors;
      a higher-priority application's ready jobs always dispatch first,
      equal-priority applications interleave by rank.
    - {e slots} — each application is granted a preallocated processor
      budget (its Prop. 3.1 lower bound, subject to capacity, at least
      one; spare processors are dealt out round-robin in priority order
      so the allocation is work-conserving), scheduled alone on its
      slots, and never shares a processor with another application.
      Stronger isolation, potentially longer makespans.

    Both variants reuse {!List_scheduler.schedule} as the underlying
    machinery, so co-scheduling a {e single} application is bit-identical
    to scheduling it directly — the differential property
    [test/test_cosched.ml] locks in. *)

type app = {
  app_name : string;
  app_priority : int;  (** smaller = more important; ties break by position *)
  graph : Taskgraph.Graph.t;
}

type variant = Fair | Slots

val variant_to_string : variant -> string
val variant_of_string : string -> variant option

type app_report = {
  name : string;
  priority : int;
  schedule : Static_schedule.t;
      (** this application's jobs (local ids) on global processor ids *)
  makespan : Rt_util.Rat.t;
  feasible : bool;  (** no deadline violation for this application *)
  utilization : Rt_util.Rat.t;
      (** precedence-aware load of Prop. 3.1, [Analysis.load] *)
  lower_bound : int;
      (** {!Dimension.lower_bound}: [⌈Load⌉], or [max_int] if a job
          cannot fit its ASAP/ALAP window *)
  slots : int list;
      (** processors reserved for this application ({!Slots} variant;
          empty under {!Fair}) *)
}

type t = {
  variant : variant;
  heuristic : Priority.heuristic;
  n_procs : int;
  union : Taskgraph.Graph.t;
      (** disjoint union of all task graphs, process names prefixed with
          ["<app>/"] *)
  owner : (int * int) array;
      (** union job id -> (application index, local job id) *)
  combined : Static_schedule.t;  (** all applications on the union graph *)
  reports : app_report list;  (** one per application, in input order *)
  feasible : bool;  (** every application meets its deadlines *)
  makespan : Rt_util.Rat.t;  (** of the combined schedule *)
}

val schedule_with :
  ?heuristic:Priority.heuristic ->
  variant:variant ->
  n_procs:int ->
  app list ->
  t
(** Co-schedules the applications with one schedule-priority heuristic
    (default {!Priority.Alap_edf}).  Arrival, precedence and mutual
    exclusion hold by construction; only deadlines can be violated
    (reported per application).  Under {!Slots}, applications
    additionally never share a processor.
    @raise Invalid_argument on an empty application list, an empty task
    graph, [n_procs <= 0], or (under {!Slots}) more applications than
    processors. *)

type attempt = { heuristic : Priority.heuristic; result : t }

val auto :
  ?pool:Rt_util.Pool.t ->
  ?heuristics:Priority.heuristic list ->
  variant:variant ->
  n_procs:int ->
  app list ->
  attempt list * attempt option
(** Mirror of {!List_scheduler.auto}: tries every heuristic (default
    {!Priority.all}) and chooses the first whose co-schedule is feasible
    for {e every} application.  [pool] evaluates heuristics concurrently;
    attempts keep heuristic order, so the result is identical to the
    sequential one. *)

type admission =
  | Admitted of t  (** co-schedule including the candidate *)
  | Rejected of { app : string; reason : string }

val admit :
  ?pool:Rt_util.Pool.t ->
  ?heuristics:Priority.heuristic list ->
  ?variant:variant ->
  n_procs:int ->
  admitted:app list ->
  app ->
  admission
(** Admission control for a multi-tenant platform: can [candidate] join
    the already-admitted set without breaking anyone?  Checks, in order:
    a free slot exists ({!Slots} only), the union's Prop. 3.1 load bound
    fits in [n_procs] ({!Dimension.lower_bound}), and some heuristic
    yields a co-schedule in which every application — old and new — meets
    its deadlines.  Default variant is {!Fair}. *)

val sections : t -> Schedule_io.section list
(** Per-application sections (name, priority, slots, schedule) for
    {!Schedule_io.sections_to_json}. *)

val to_json : t -> string
(** The co-schedule as a [fppn-cosched/1] JSON document (see
    {!Schedule_io.sections_to_json}). *)

val save : string -> t -> unit
(** [save path t] writes {!to_json}. *)

val pp : Format.formatter -> t -> unit
(** Per-application accounting table plus combined verdict. *)
