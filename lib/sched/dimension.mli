(** Processor dimensioning: how many cores does a task graph need?

    Combines the necessary condition of Prop. 3.1 (a lower bound) with
    the list scheduler (a constructive upper bound).  Used by the FFT
    experiment, where the paper's answer is "one is not enough, two
    suffice". *)

type verdict = {
  lower_bound : int;
      (** [⌈Load⌉], or [max_int] if some job cannot fit its ASAP/ALAP
          window (no processor count can help) *)
  found : (int * List_scheduler.attempt) option;
      (** smallest processor count (within the searched range) for which
          some heuristic produced a feasible schedule *)
  searched_up_to : int;
}

val lower_bound : ?times:Taskgraph.Analysis.times -> Taskgraph.Graph.t -> int
(** [⌈Load⌉] of Prop. 3.1 (at least 1), or [max_int] if some job cannot
    fit its ASAP/ALAP window on any processor count.  This is the value
    {!min_processors} starts its search from; exposed separately so
    co-scheduling admission ({!Cosched.admit}) can apply the necessary
    condition without paying for the constructive search. *)

val min_processors :
  ?heuristics:Priority.heuristic list ->
  ?max_procs:int ->
  Taskgraph.Graph.t ->
  verdict
(** Searches [M = lower_bound, …, max_procs] (default 16).  List
    scheduling is not optimal, so [found = None] does not prove
    infeasibility, and the gap between [lower_bound] and the found [M]
    measures the heuristic's quality. *)

val pp : Format.formatter -> verdict -> unit
