(** Exact scheduling for small task graphs, by branch and bound.

    Footnote 5 of the paper contrasts scalable list scheduling with
    "less-scalable methods based on constraint solving and model
    checking".  This module is that alternative, sized for ablations:
    it enumerates semi-active schedules (every job starts at its
    arrival, at a predecessor's completion, or at its processor's
    previous completion — a dominant set for makespan) with
    lower-bound pruning and identical-machine symmetry breaking.

    Intended for graphs of ~a dozen jobs; the [node_budget] caps the
    search so the call always terminates, reporting whether optimality
    was proved. *)

type result = {
  schedule : Static_schedule.t option;
      (** a makespan-minimal feasible schedule, if any deadline-feasible
          schedule was found *)
  makespan : Rt_util.Rat.t option;
  optimal : bool;
      (** true iff the search space was exhausted within the budget *)
  nodes : int;  (** search nodes explored *)
}

val solve :
  ?pool:Rt_util.Pool.t ->
  ?node_budget:int ->
  n_procs:int ->
  Taskgraph.Graph.t ->
  result
(** Default budget: 2_000_000 nodes.  Deadline-infeasible branches are
    pruned, so [schedule = None && optimal = true] proves that no
    feasible schedule exists on [n_procs] processors.

    [pool] (when it has more than one domain) fans the root's branches
    out over the pool: each top-level child searches its subtree with a
    private state, pruning against a shared atomic incumbent makespan.
    When the search exhausts, the reported [makespan] and [optimal] flag
    equal the sequential ones; the witness [schedule] and the [nodes]
    count may differ (ties and budget cut-offs depend on the
    interleaving).  Without a pool, or with a 1-domain pool, the search
    is exactly the sequential algorithm. *)

val optimality_gap :
  ?node_budget:int ->
  n_procs:int ->
  heuristic_makespan:Rt_util.Rat.t ->
  Taskgraph.Graph.t ->
  float option
(** [(heuristic − optimal) / optimal], when the optimum was proved. *)
