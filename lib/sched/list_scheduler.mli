(** Non-preemptive list scheduling on [M] identical processors
    (Sec. III-B).

    A job is {e ready} at time [t] when it has arrived ([A_i <= t]) and
    all task-graph predecessors have completed ([∀j ∈ Pred(i), e_j <= t]).
    The scheduler simulates fixed-priority dispatch under the given
    schedule priority [SP]: whenever a processor is idle, the
    highest-priority ready job starts on it. *)

val schedule :
  rank:int array -> n_procs:int -> Taskgraph.Graph.t -> Static_schedule.t
(** [rank] from {!Priority.rank} (lower = higher priority).
    The result maps and starts every job; it satisfies arrival,
    precedence and mutual exclusion by construction — only deadlines can
    be violated, which {!Static_schedule.check} reports.
    @raise Invalid_argument on a rank array of the wrong length or
    [n_procs <= 0]. *)

val schedule_with :
  heuristic:Priority.heuristic ->
  n_procs:int ->
  Taskgraph.Graph.t ->
  Static_schedule.t
(** Convenience composition of {!Priority.rank} and {!schedule}. *)

type attempt = {
  heuristic : Priority.heuristic;
  schedule : Static_schedule.t;
  feasible : bool;
  makespan : Rt_util.Rat.t;
}

val auto :
  ?pool:Rt_util.Pool.t ->
  ?heuristics:Priority.heuristic list ->
  n_procs:int ->
  Taskgraph.Graph.t ->
  attempt list * attempt option
(** Tries every heuristic (default {!Priority.all}) and returns all
    attempts plus the chosen one: the first feasible schedule, by
    heuristic order; [None] if none is feasible.

    [pool] evaluates the heuristics concurrently; each heuristic is
    independent and the attempt list keeps heuristic order, so the
    result is identical to the sequential one. *)
