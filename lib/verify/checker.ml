module Rat = Rt_util.Rat
module Network = Fppn.Network
module Process = Fppn.Process
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module Analysis = Taskgraph.Analysis
module List_scheduler = Sched.List_scheduler
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Translate = Timedauto.Translate

type check = { name : string; passed : bool; detail : string }
type report = { checks : check list; passed : bool }

type latency_spec = {
  l_source : string;
  l_sink : string;
  max_reaction : Rat.t;
}

type config = {
  processor_counts : int list;
  frames : int;
  jitter_seeds : int list;
  sporadic_density : float;
  seed : int;
  inputs : Fppn.Netstate.input_feed;
  latency_specs : latency_spec list;
}

let default_config =
  {
    processor_counts = [ 1; 2; 4 ];
    frames = 2;
    jitter_seeds = [ 1; 2; 3 ];
    sporadic_density = 0.5;
    seed = 42;
    inputs = Fppn.Netstate.no_inputs;
    latency_specs = [];
  }

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) ->
      String.equal n1 n2 && List.equal Fppn.Value.equal h1 h2)
    a b

let sporadic_traces net d ~frames ~seed ~density =
  let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int frames) in
  let prng = Rt_util.Prng.create seed in
  let raw =
    List.filter_map
      (fun p ->
        let proc = Network.process net p in
        if Process.is_sporadic proc then
          Some
            ( Process.name proc,
              Fppn.Event.random_sporadic_trace (Process.event proc)
                (Rt_util.Prng.split prng) ~horizon ~density )
        else None)
      (List.init (Network.n_processes net) Fun.id)
  in
  let _, unhandled = Engine.sporadic_assignment net d ~frames raw in
  List.map
    (fun (n, stamps) ->
      (n, List.filter (fun s -> not (List.mem (n, s) unhandled)) stamps))
    raw

let run ?(config = default_config) ~wcet net =
  let checks = ref [] in
  let add name passed detail = checks := { name; passed; detail } :: !checks in
  (* static lint first: statically detectable problems fail fast, before
     any task graph is derived or a single job is simulated *)
  let lint =
    Fppn_lint.Lint.lint_network ~wcet:(fun name -> Some (wcet name)) net
  in
  let lint_errors = Fppn_lint.Diagnostic.has_errors lint in
  add "static lint" (not lint_errors)
    (if lint_errors then
       Format.asprintf "%a"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
            Fppn_lint.Diagnostic.pp)
         (List.filter Fppn_lint.Diagnostic.is_error lint)
     else
       let _, w, i = Fppn_lint.Diagnostic.counts lint in
       Printf.sprintf "no errors, %d warning(s), %d info(s)" w i);
  if lint_errors then
    let checks = List.rev !checks in
    { checks; passed = false }
  else begin
  (* subclass + derivation *)
  (match Derive.derive ~wcet net with
  | Error e ->
    add "task-graph derivation (Sec. III-A)" false
      (Format.asprintf "%a" Derive.pp_error e)
  | Ok d ->
    let g = d.Derive.graph in
    add "task-graph derivation (Sec. III-A)" true
      (Printf.sprintf "H = %s ms, %d jobs, %d edges"
         (Rat.to_string d.Derive.hyperperiod)
         (Taskgraph.Graph.n_jobs g) (Taskgraph.Graph.n_edges g));
    (* static shardability certification: every channel's accessor jobs
       proven precedence-ordered at the quotient level — the gate
       Engine.run_sharded consults.  Hazards/hotspots surface in the
       detail either way. *)
    (let cert =
       Fppn_lint.Certificate.of_network ~wcet:(fun n -> Some (wcet n)) net
     in
     let diags = Fppn_lint.Certificate.diagnostics cert in
     (* hazards (abstentions) and hotspots are not failures — only a
        proven unordered pair (FPPN060, error severity) is *)
     add "static certification (shardability)"
       (not (Fppn_lint.Diagnostic.has_errors diags))
       (if diags = [] then
          Printf.sprintf "all %d channel(s) ordered, %d classes"
            (List.length cert.Fppn_lint.Certificate.channels)
            cert.Fppn_lint.Certificate.classes
        else
          Format.asprintf "%a"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
               Fppn_lint.Diagnostic.pp)
            diags));
    let load = (Analysis.load g).Analysis.value in
    let traces =
      sporadic_traces net d ~frames:config.frames ~seed:config.seed
        ~density:config.sporadic_density
    in
    let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int config.frames) in
    let zd =
      Semantics.run ~inputs:config.inputs net
        (Semantics.invocations ~sporadic:traces ~horizon net)
    in
    let zd_sig = Semantics.signature zd in
    (* processor counts below the Prop. 3.1 lower bound cannot work by
       the paper's own necessary condition: report them as informational
       and only demand feasibility above the bound *)
    let lower_bound = max 1 (Rat.ceil load) in
    (* service admission: the MPR contract the multi-tenant service
       would grant this network on an otherwise-empty platform of the
       largest checked size.  Acceptance must be consistent with the
       Prop. 3.1 lower bound (the admission test checks it first); a
       rejection is a legitimate verdict, surfaced in the detail. *)
    (let m = List.fold_left max 1 config.processor_counts in
     let cand =
       Fppn_service.Admission.candidate ~name:(Network.name net) ~wcet net d
     in
     let decision = Fppn_service.Admission.decide ~procs:m ~resident:[] cand in
     let passed =
       match decision with
       | Fppn_service.Admission.Accepted _ -> lower_bound <= m
       | Fppn_service.Admission.Rejected _ -> true
     in
     add
       (Printf.sprintf "service admission (MPR), M=%d" m)
       passed
       (Format.asprintf "%a" Fppn_service.Admission.pp_decision decision));
    List.iter
      (fun m ->
        if m < lower_bound then
          add
            (Printf.sprintf "capacity, M=%d" m)
            true
            (Printf.sprintf
               "below the Prop. 3.1 lower bound (ceil(load %.3f) = %d) — skipped"
               (Rat.to_float load) lower_bound)
        else begin
        add
          (Printf.sprintf "necessary condition (Prop. 3.1), M=%d" m)
          (Analysis.necessary_condition g ~processors:m = Ok ())
          (Printf.sprintf "load %.3f" (Rat.to_float load));
        match snd (List_scheduler.auto ~n_procs:m g) with
        | None ->
          add (Printf.sprintf "static schedule, M=%d" m) false
            "no heuristic produced a feasible schedule"
        | Some a ->
          let sched = a.List_scheduler.schedule in
          add (Printf.sprintf "static schedule, M=%d" m) true
            (Printf.sprintf "heuristic %s, makespan %s ms"
               (Sched.Priority.to_string a.List_scheduler.heuristic)
               (Rat.to_string a.List_scheduler.makespan));
          (* determinism + compliance under jitter *)
          List.iter
            (fun jitter_seed ->
              let cfg =
                { (Engine.default_config ~frames:config.frames ~n_procs:m ()) with
                  Engine.sporadic = traces;
                  inputs = config.inputs;
                  exec = Exec_time.uniform ~seed:jitter_seed ~min_fraction:0.25 }
              in
              let rt = Engine.run net d sched cfg in
              add
                (Printf.sprintf "determinism (Prop. 2.1), M=%d, jitter seed %d" m
                   jitter_seed)
                (eq_sig zd_sig (Engine.signature rt))
                "channel histories vs zero-delay reference";
              add
                (Printf.sprintf "deadlines (Prop. 4.1), M=%d, jitter seed %d" m
                   jitter_seed)
                (rt.Engine.stats.Exec_trace.misses = 0)
                (Printf.sprintf "%d miss(es)" rt.Engine.stats.Exec_trace.misses);
              let violations = Exec_trace.check g (Engine.trace rt) in
              add
                (Printf.sprintf "trace compliance, M=%d, jitter seed %d" m
                   jitter_seed)
                (violations = [])
                (Printf.sprintf "%d violation(s)" (List.length violations)))
            config.jitter_seeds;
          (* timed-automata backend, one seed per M *)
          let ta_cfg =
            { (Engine.default_config ~frames:config.frames ~n_procs:m ()) with
              Engine.sporadic = traces;
              inputs = config.inputs;
              exec = Exec_time.uniform ~seed:config.seed ~min_fraction:0.25 }
          in
          let ta = Translate.execute (Translate.build net d sched ta_cfg) in
          add
            (Printf.sprintf "timed-automata backend, M=%d" m)
            (eq_sig zd_sig (Translate.signature ta))
            "generated TA network vs zero-delay reference";
          (* declared end-to-end constraints, on the WCET execution *)
          if config.latency_specs <> [] then begin
            let wcet_run =
              Engine.run net d sched
                { (Engine.default_config ~frames:config.frames ~n_procs:m ()) with
                  Engine.sporadic = traces;
                  inputs = config.inputs }
            in
            List.iter
              (fun spec ->
                match
                  Runtime.Latency.analyse g ~source:spec.l_source
                    ~sink:spec.l_sink (Engine.trace wcet_run)
                with
                | l ->
                  add
                    (Printf.sprintf "end-to-end %s -> %s <= %s ms, M=%d"
                       spec.l_source spec.l_sink
                       (Rat.to_string spec.max_reaction)
                       m)
                    Rat.(l.Runtime.Latency.max_reaction <= spec.max_reaction)
                    (Printf.sprintf "max reaction %s ms"
                       (Rat.to_string l.Runtime.Latency.max_reaction))
                | exception Invalid_argument msg ->
                  add
                    (Printf.sprintf "end-to-end %s -> %s, M=%d" spec.l_source
                       spec.l_sink m)
                    false msg)
              config.latency_specs
          end
        end)
      config.processor_counts;
    (* buffers *)
    let buf = Fppn.Buffer_analysis.analyse ~hyperperiods:(max 2 config.frames) ~inputs:config.inputs net in
    let unbounded = Fppn.Buffer_analysis.unbounded_channels buf in
    add "FIFO buffer bounds" (unbounded = [])
      (if unbounded = [] then
         Printf.sprintf "max occupancy %d"
           (List.fold_left
              (fun acc r -> max acc r.Fppn.Buffer_analysis.max_occupancy)
              0 buf.Fppn.Buffer_analysis.channels)
       else
         "unbounded: "
         ^ String.concat ", "
             (List.map (fun r -> r.Fppn.Buffer_analysis.channel) unbounded)));
  let checks = List.rev !checks in
  { checks; passed = List.for_all (fun (c : check) -> c.passed) checks }
  end

let pp ppf r =
  List.iter
    (fun (c : check) ->
      Format.fprintf ppf "  [%s] %-55s %s@."
        (if c.passed then "ok" else "FAIL")
        c.name c.detail)
    r.checks;
  Format.fprintf ppf "verdict: %s@."
    (if r.passed then "all checks passed" else "SOME CHECKS FAILED")
