(** One-stop verification of an FPPN application.

    Packages the checks a designer wants before trusting a network
    (everything the paper promises, executed as tests):

    + a leading {e static lint} check ([Fppn_lint], with the WCET map
      supplied): error-severity findings fail the report {e fast} — the
      returned report then contains only the lint check, no task graph
      is derived and no job is simulated;
    + static validation is implied by construction; the {e scheduling
      subclass} of Sec. III-A is re-checked and reported;
    + the necessary schedulability condition (Prop. 3.1) and an actual
      static schedule for the requested processor count;
    + {e determinism} (Props. 2.1/4.1): channel histories compared
      across the zero-delay reference, the static-order runtime on
      every requested processor count with several execution-time jitter
      seeds, and the timed-automata backend;
    + {e trace compliance}: every runtime trace re-checked against the
      real-time semantics (WCET, invocation, precedence, mutual
      exclusion);
    + {e buffer bounds}: FIFO occupancy and rate-mismatch detection.

    Sporadic stimulation uses random traces derived from the seed, with
    horizon-edge events excluded (they would only be handled beyond the
    simulated window). *)

type check = {
  name : string;
  passed : bool;
  detail : string;
}

type report = {
  checks : check list;
  passed : bool;  (** conjunction *)
}

type latency_spec = {
  l_source : string;
  l_sink : string;
  max_reaction : Rt_util.Rat.t;
      (** required bound on finish(sink) − invocation(freshest source
          ancestor) — the "end-to-end timing constraint" of Sec. I *)
}

type config = {
  processor_counts : int list;  (** default [\[1; 2; 4\]] *)
  frames : int;  (** default 2 *)
  jitter_seeds : int list;  (** default [\[1; 2; 3\]] *)
  sporadic_density : float;  (** default 0.5 *)
  seed : int;
  inputs : Fppn.Netstate.input_feed;
  latency_specs : latency_spec list;
      (** verified on the WCET execution of every processor count *)
}

val default_config : config

val run :
  ?config:config ->
  wcet:Taskgraph.Derive.wcet_map ->
  Fppn.Network.t ->
  report

val pp : Format.formatter -> report -> unit
