(* fppn-tool: command-line front end to the FPPN tool flow.

   Subcommands mirror the paper's pipeline:
     info      network summary (processes, channels, priorities)
     derive    task-graph derivation (Sec. III-A)
     schedule  static schedule by list scheduling (Sec. III-B)
     simulate  online static-order execution (Sec. IV)
     dot       Graphviz export of the network or the task graph *)

module Rat = Rt_util.Rat
module Network = Fppn.Network
module Process = Fppn.Process
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Analysis = Taskgraph.Analysis
module Priority = Sched.Priority
module List_scheduler = Sched.List_scheduler
module Static_schedule = Sched.Static_schedule
module Engine = Runtime.Engine
module Platform = Runtime.Platform
module Exec_time = Runtime.Exec_time
module Json = Rt_util.Json
module Obs_trace = Fppn_obs.Trace
module Obs_metrics = Fppn_obs.Metrics
module Chrome = Fppn_obs.Chrome

open Cmdliner

let ms = Rat.of_int

(* --- application selection ------------------------------------------- *)

type app = {
  net : Network.t;
  wcet : Derive.wcet_map;
  inputs : Fppn.Netstate.input_feed;
  default_sporadic_density : float;
}

let load_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

(* Every source-level failure (lexing, parsing, elaboration) is rendered
   as an FPPN000 diagnostic — one uniform file:line:col format — and
   exits 2, distinguishing "bad input" from "checks failed" (exit 1). *)
let source_error path msg pos =
  Format.eprintf "%a@." Fppn_lint.Diagnostic.pp
    (Fppn_lint.Diagnostic.make ~file:path ~pos Fppn_lint.Diagnostic.Source_error
       ~subject:("file " ^ Filename.basename path)
       msg);
  exit 2

let resolve_file path =
  let src = load_file path in
  try
    let ast = Fppn_lang.Parser.parse src in
    let net = Fppn_lang.Elaborate.to_network ast in
    {
      net;
      wcet = Fppn_lang.Elaborate.wcet_map ~default:(ms 10) ast;
      inputs = Fppn.Netstate.no_inputs;
      default_sporadic_density = 0.5;
    }
  with
  | Fppn_lang.Lexer.Error (msg, pos) | Fppn_lang.Parser.Error (msg, pos)
  | Fppn_lang.Elaborate.Error (msg, pos) ->
    source_error path msg pos

let resolve_app name seed =
  if Filename.check_suffix name ".fppn" then resolve_file name
  else
  match String.lowercase_ascii name with
  | "fig1" ->
    {
      net = Fppn_apps.Fig1.network ();
      wcet = Fppn_apps.Fig1.wcet;
      inputs = Fppn_apps.Fig1.input_feed ~samples:256;
      default_sporadic_density = 0.5;
    }
  | "fft" | "fft8" ->
    let p = Fppn_apps.Fft.default_params in
    {
      net = Fppn_apps.Fft.network p;
      wcet = Fppn_apps.Fft.wcet_map p;
      inputs = Fppn_apps.Fft.input_feed p ~frames:256;
      default_sporadic_density = 0.0;
    }
  | "fft-overhead" ->
    let p = Fppn_apps.Fft.default_params in
    {
      net = Fppn_apps.Fft.network_with_overhead_job p;
      wcet = Fppn_apps.Fft.wcet_map_with_overhead p ~overhead:(ms 41);
      inputs = Fppn_apps.Fft.input_feed p ~frames:256;
      default_sporadic_density = 0.0;
    }
  | "automotive" | "engine" ->
    {
      net = Fppn_apps.Automotive.network ();
      wcet = Fppn_apps.Automotive.wcet;
      inputs = Fppn_apps.Automotive.input_feed;
      default_sporadic_density = 0.5;
    }
  | "fms" ->
    {
      net = Fppn_apps.Fms.reduced ();
      wcet = Fppn_apps.Fms.wcet;
      inputs = Fppn.Netstate.no_inputs;
      default_sporadic_density = 0.5;
    }
  | "fms-original" ->
    {
      net = Fppn_apps.Fms.original ();
      wcet = Fppn_apps.Fms.wcet;
      inputs = Fppn.Netstate.no_inputs;
      default_sporadic_density = 0.5;
    }
  | "random" ->
    let params = { Fppn_apps.Randgen.default_params with seed } in
    let net = Fppn_apps.Randgen.network params in
    {
      net;
      wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 10)
          (Derive.const_wcet Rat.one) net;
      inputs = Fppn.Netstate.no_inputs;
      default_sporadic_density = 0.5;
    }
  | "random-wide" ->
    (* >16384-job, one-job-per-process stress shape for the sharded
       engine's static certification path *)
    let net = Fppn_apps.Randgen.build_exn (Fppn_apps.Randgen.wide_spec ()) in
    {
      net;
      (* tiny fixed durations so thousands of one-job processes fit one
         hyperperiod frame on a few processors *)
      wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 100_000)
          (Derive.const_wcet Rat.one) net;
      inputs = Fppn.Netstate.no_inputs;
      default_sporadic_density = 0.0;
    }
  | other ->
    Printf.eprintf
      "unknown application %S (expected fig1, fft, fft-overhead, fms, fms-original, automotive, random, random-wide)\n"
      other;
    exit 2

let app_arg =
  let doc =
    "Application: fig1 (the paper's running example), fft / fft-overhead \
     (Sec. V-A), fms / fms-original (Sec. V-B), automotive (engine \
     management), random (synthetic workload), or a path to a .fppn source \
     file (also via --file)."
  in
  let app_opt =
    Arg.(value & opt string "fig1" & info [ "a"; "app" ] ~docv:"APP" ~doc)
  in
  let file_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"FPPN source file (overrides --app).")
  in
  Term.(
    const (fun name file -> match file with Some f -> f | None -> name)
    $ app_opt $ file_opt)

let seed_arg =
  let doc = "Random seed (random workload generation, sporadic traces, jitter)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let procs_arg =
  let doc = "Number of identical processors." in
  Arg.(value & opt int 2 & info [ "m"; "procs" ] ~docv:"M" ~doc)

let frames_arg =
  let doc = "Number of hyperperiod frames to simulate." in
  Arg.(value & opt int 4 & info [ "frames" ] ~docv:"N" ~doc)

let heuristic_arg =
  let doc =
    Printf.sprintf "Schedule-priority heuristic (%s) or 'auto'."
      (String.concat ", " (List.map Priority.to_string Priority.all))
  in
  Arg.(value & opt string "auto" & info [ "heuristic" ] ~docv:"H" ~doc)

(* --- shared helpers ---------------------------------------------------- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record live spans, counters and metrics while running and write \
           them as Chrome trace-event JSON (open in chrome://tracing or \
           Perfetto).")

(* Recording stays off unless asked for: the engine hot path then pays
   only a flag check per instrumentation site. *)
let obs_begin trace_out =
  if trace_out <> None then begin
    Obs_trace.set_enabled true;
    Obs_metrics.set_enabled true
  end

let obs_finish ?(model = []) trace_out =
  Option.iter
    (fun path ->
      let live = Chrome.of_trace (Obs_trace.events ()) in
      let events = model @ live in
      Chrome.write_file path events;
      Printf.printf "chrome trace written to %s (%d events)\n" path
        (List.length events);
      let dropped = Obs_trace.dropped () in
      if dropped > 0 then
        Printf.printf "note: %d oldest trace events dropped (ring overflow)\n"
          dropped)
    trace_out

let derive_app app = Derive.derive_exn ~wcet:app.wcet app.net

(* 'auto' fans the heuristic attempts out over a domain pool (1 worker
   per available core), which also gives traces their pool lanes *)
let schedule_for g ~heuristic ~n_procs =
  match String.lowercase_ascii heuristic with
  | "auto" -> (
    let jobs = Rt_util.Pool.clamp_jobs (Rt_util.Pool.default_jobs ()) in
    match
      snd
        (Rt_util.Pool.with_pool ~jobs (fun pool ->
             List_scheduler.auto ~pool ~n_procs g))
    with
    | Some a ->
      Printf.printf "heuristic: %s (first feasible)\n"
        (Priority.to_string a.List_scheduler.heuristic);
      a.List_scheduler.schedule
    | None ->
      print_endline
        "no feasible schedule found by any heuristic; using alap-edf best effort";
      List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs g)
  | h -> (
    match Priority.of_string h with
    | Some heuristic -> List_scheduler.schedule_with ~heuristic ~n_procs g
    | None ->
      Printf.eprintf "unknown heuristic %S\n" h;
      exit 2)

let sporadic_traces app d ~frames ~seed ~density =
  let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int frames) in
  let prng = Rt_util.Prng.create seed in
  let traces =
    List.filter_map
      (fun p ->
        let proc = Network.process app.net p in
        if Process.is_sporadic proc then
          Some
            ( Process.name proc,
              Fppn.Event.random_sporadic_trace (Process.event proc)
                (Rt_util.Prng.split prng) ~horizon ~density )
        else None)
      (List.init (Network.n_processes app.net) Fun.id)
  in
  (* drop horizon-edge events the simulation cannot handle *)
  let _, unhandled = Engine.sporadic_assignment app.net d ~frames traces in
  List.map
    (fun (n, stamps) ->
      (n, List.filter (fun s -> not (List.mem (n, s) unhandled)) stamps))
    traces

(* --- subcommands -------------------------------------------------------- *)

let info_cmd =
  let run app_name seed =
    let app = resolve_app app_name seed in
    let net = app.net in
    Printf.printf "network: %s\n" (Network.name net);
    Printf.printf "processes (%d):\n" (Network.n_processes net);
    Array.iter
      (fun p -> Format.printf "  %a@." Process.pp p)
      (Network.processes net);
    Printf.printf "internal channels (%d):\n" (List.length (Network.channels net));
    List.iter
      (fun (c : Network.channel_decl) ->
        Printf.printf "  %s: %s -> %s (%s)\n" c.Network.ch_name c.Network.writer
          c.Network.reader
          (Fppn.Channel.kind_to_string c.Network.ch_kind))
      (Network.channels net);
    Printf.printf "functional priorities (%d):\n" (List.length (Network.fp_edges net));
    List.iter
      (fun (hi, lo) ->
        Printf.printf "  %s -> %s\n"
          (Process.name (Network.process net hi))
          (Process.name (Network.process net lo)))
      (Network.fp_edges net);
    match Network.user_map net with
    | Ok _ -> print_endline "scheduling subclass (Sec. III-A): satisfied"
    | Error errs ->
      print_endline "scheduling subclass violations:";
      List.iter (fun e -> Format.printf "  %a@." Network.pp_user_error e) errs
  in
  let term = Term.(const run $ app_arg $ seed_arg) in
  Cmd.v (Cmd.info "info" ~doc:"Describe an application network") term

let derive_cmd =
  let run app_name seed no_reduce =
    let app = resolve_app app_name seed in
    let d = Derive.derive_exn ~reduce:(not no_reduce) ~wcet:app.wcet app.net in
    let g = d.Derive.graph in
    Printf.printf "hyperperiod: %s ms\n" (Rat.to_string d.Derive.hyperperiod);
    Printf.printf "jobs: %d, edges: %d (raw %d)\n" (Graph.n_jobs g)
      (Graph.n_edges g) d.Derive.raw_edges;
    List.iter
      (fun (s : Derive.server_info) ->
        Printf.printf
          "server for %s: user %s, period %s ms, corrected deadline %s ms, %s window\n"
          (Process.name (Network.process app.net s.Derive.sporadic))
          (Process.name (Network.process app.net s.Derive.user))
          (Rat.to_string s.Derive.server_period)
          (Rat.to_string s.Derive.server_relative_deadline)
          (if s.Derive.boundary_closed_right then "(a,b]" else "[a,b)"))
      d.Derive.servers;
    let load = Analysis.load g in
    let w1, w2 = load.Analysis.window in
    Printf.printf "load: %.3f over window [%s, %s] ms\n"
      (Rat.to_float load.Analysis.value)
      (Rat.to_string w1) (Rat.to_string w2);
    List.iter
      (fun m ->
        match Analysis.necessary_condition g ~processors:m with
        | Ok () -> Printf.printf "necessary condition (Prop 3.1) for M=%d: holds\n" m
        | Error _ -> Printf.printf "necessary condition (Prop 3.1) for M=%d: violated\n" m)
      [ 1; 2; 4 ]
  in
  let no_reduce =
    Arg.(value & flag & info [ "no-reduce" ] ~doc:"Skip the transitive reduction.")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ no_reduce) in
  Cmd.v (Cmd.info "derive" ~doc:"Derive the task graph (Sec. III-A)") term

(* Multi-application co-scheduling: --apps a,b,c shares the M processors
   between several networks (Cosched).  Per-app Rta/Dimension accounting
   is printed as a table; --save writes the fppn-cosched/1 JSON. *)
let cosched_run ~apps_csv ~cosched ~priorities ~seed ~n_procs ~heuristic ~save
    ~svg =
  let names =
    List.filter (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' apps_csv))
  in
  if names = [] then begin
    Printf.eprintf "--apps: expected a comma-separated application list\n";
    exit 2
  end;
  let variant =
    match Sched.Cosched.variant_of_string cosched with
    | Some v -> v
    | None ->
      Printf.eprintf "unknown co-scheduling variant %S (expected fair or slots)\n"
        cosched;
      exit 2
  in
  let prios =
    match priorities with
    | "" -> List.mapi (fun i _ -> i) names
    | s -> (
      let fields = String.split_on_char ',' s in
      match List.map (fun f -> int_of_string_opt (String.trim f)) fields with
      | l when List.length l = List.length names && List.for_all Option.is_some l
        ->
        List.map Option.get l
      | _ ->
        Printf.eprintf
          "--priorities: expected %d comma-separated integers (one per app)\n"
          (List.length names);
        exit 2)
  in
  if variant = Sched.Cosched.Slots && List.length names > n_procs then begin
    Printf.eprintf
      "slots variant needs one processor per application (%d apps, M=%d)\n"
      (List.length names) n_procs;
    exit 2
  end;
  (* duplicate inputs are allowed; make display names unique *)
  let seen = Hashtbl.create 8 in
  let resolved =
    List.map2
      (fun name prio ->
        let app = resolve_app name seed in
        let d = derive_app app in
        let base = Filename.remove_extension (Filename.basename name) in
        let uniq =
          match Hashtbl.find_opt seen base with
          | None ->
            Hashtbl.add seen base 1;
            base
          | Some k ->
            Hashtbl.replace seen base (k + 1);
            Printf.sprintf "%s#%d" base (k + 1)
        in
        ( { Sched.Cosched.app_name = uniq; app_priority = prio;
            graph = d.Derive.graph },
          app, d ))
      names prios
  in
  let capps = List.map (fun (c, _, _) -> c) resolved in
  let result =
    match String.lowercase_ascii heuristic with
    | "auto" -> (
      let jobs = Rt_util.Pool.clamp_jobs (Rt_util.Pool.default_jobs ()) in
      match
        snd
          (Rt_util.Pool.with_pool ~jobs (fun pool ->
               Sched.Cosched.auto ~pool ~variant ~n_procs capps))
      with
      | Some a ->
        Printf.printf "heuristic: %s (first all-feasible)\n"
          (Priority.to_string a.Sched.Cosched.heuristic);
        a.Sched.Cosched.result
      | None ->
        print_endline
          "no heuristic co-schedules every application feasibly; using \
           alap-edf best effort";
        Sched.Cosched.schedule_with ~variant ~n_procs capps)
    | h -> (
      match Priority.of_string h with
      | Some heuristic ->
        Sched.Cosched.schedule_with ~heuristic ~variant ~n_procs capps
      | None ->
        Printf.eprintf "unknown heuristic %S\n" h;
        exit 2)
  in
  let rows =
    List.map2
      (fun (r : Sched.Cosched.app_report) (_, app, _) ->
        let rta_ok =
          Sched.Rta.schedulable (Sched.Rta.analyse ~wcet:app.wcet app.net)
        in
        [
          r.Sched.Cosched.name;
          string_of_int r.Sched.Cosched.priority;
          (match r.Sched.Cosched.slots with
          | [] -> "shared"
          | s -> String.concat "+" (List.map string_of_int s));
          (if r.Sched.Cosched.lower_bound = max_int then "inf"
           else string_of_int r.Sched.Cosched.lower_bound);
          Printf.sprintf "%.3f" (Rat.to_float r.Sched.Cosched.utilization);
          (if rta_ok then "yes" else "no");
          Printf.sprintf "%g" (Rat.to_float r.Sched.Cosched.makespan);
          (if r.Sched.Cosched.feasible then "yes" else "NO");
        ])
      result.Sched.Cosched.reports resolved
  in
  Printf.printf "co-scheduling %d applications on M=%d (%s variant)\n"
    (List.length capps) n_procs
    (Sched.Cosched.variant_to_string variant);
  Rt_util.Table.print
    ~aligns:Rt_util.Table.[ Left; Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [ "app"; "prio"; "procs"; "lb"; "load"; "rta(1cpu)"; "makespan ms"; "feasible" ]
    rows;
  Printf.printf "combined makespan: %s ms — %s\n"
    (Rat.to_string result.Sched.Cosched.makespan)
    (if result.Sched.Cosched.feasible then "all applications feasible"
     else "some application misses a deadline");
  Option.iter
    (fun path ->
      Sched.Cosched.save path result;
      Printf.printf "co-schedule saved to %s (fppn-cosched/1 json)\n" path)
    save;
  let gantt_rows =
    Static_schedule.to_gantt_rows result.Sched.Cosched.union
      result.Sched.Cosched.combined
  in
  Option.iter
    (fun path ->
      Runtime.Export.write_file path
        (Rt_util.Gantt.to_svg
           ~title:
             (Printf.sprintf "co-schedule of %s (M=%d, %s)"
                (String.concat ", " names) n_procs
                (Sched.Cosched.variant_to_string variant))
           gantt_rows);
      Printf.printf "gantt chart written to %s (svg)\n" path)
    svg;
  Rt_util.Gantt.print ~width:72
    ~t_max:(Rat.to_float result.Sched.Cosched.makespan)
    gantt_rows

let schedule_term, sched_doc =
  let run_single app_name seed n_procs heuristic save svg trace_out =
    obs_begin trace_out;
    let app = resolve_app app_name seed in
    let d = derive_app app in
    let g = d.Derive.graph in
    let s = schedule_for g ~heuristic ~n_procs in
    Option.iter
      (fun path ->
        Sched.Schedule_io.save ~graph:g path s;
        Printf.printf "schedule saved to %s\n" path)
      save;
    Option.iter
      (fun path ->
        Runtime.Export.write_file path
          (Rt_util.Gantt.to_svg
             ~title:(Printf.sprintf "%s static schedule (M=%d)" app_name n_procs)
             (Static_schedule.to_gantt_rows g s));
        Printf.printf "gantt chart written to %s (svg)\n" path)
      svg;
    Printf.printf "makespan: %s ms (hyperperiod %s ms)\n"
      (Rat.to_string (Static_schedule.makespan g s))
      (Rat.to_string d.Derive.hyperperiod);
    (match Static_schedule.check g s with
    | [] -> print_endline "schedule: feasible"
    | vs ->
      Printf.printf "schedule: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." (Static_schedule.pp_violation g) v) vs);
    Rt_util.Gantt.print ~width:72
      ~t_max:(Rat.to_float d.Derive.hyperperiod)
      (Static_schedule.to_gantt_rows g s);
    obs_finish trace_out
  in
  let run app_name seed n_procs heuristic save svg trace_out apps_csv cosched
      priorities =
    if apps_csv <> "" then begin
      obs_begin trace_out;
      cosched_run ~apps_csv ~cosched ~priorities ~seed ~n_procs ~heuristic
        ~save ~svg;
      obs_finish trace_out
    end
    else run_single app_name seed n_procs heuristic save svg trace_out
  in
  let save =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Persist the schedule (reload with simulate --use-schedule).")
  in
  let svg =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Render the schedule as an SVG Gantt chart.")
  in
  let apps_csv =
    Arg.(
      value & opt string ""
      & info [ "apps" ] ~docv:"APP,APP,..."
          ~doc:
            "Co-schedule several applications (names or .fppn files, \
             comma-separated) on the shared processors instead of one.")
  in
  let cosched =
    Arg.(
      value & opt string "fair"
      & info [ "cosched" ] ~docv:"VARIANT"
          ~doc:
            "Co-scheduling variant for --apps: 'fair' (common ready queue \
             interleaving applications by priority and rank) or 'slots' \
             (preallocated per-application processor budgets).")
  in
  let priorities =
    Arg.(
      value & opt string ""
      & info [ "priorities" ] ~docv:"P,P,..."
          ~doc:
            "Application priorities for --apps (smaller = more important, one \
             per application; default: list order).")
  in
  ( Term.(
      const run $ app_arg $ seed_arg $ procs_arg $ heuristic_arg $ save $ svg
      $ trace_out_arg $ apps_csv $ cosched $ priorities),
    "Compute a static schedule (Sec. III-B); --apps co-schedules several \
     applications (MHEFT-style)" )

let schedule_cmd = Cmd.v (Cmd.info "schedule" ~doc:sched_doc) schedule_term
let sched_cmd = Cmd.v (Cmd.info "sched" ~doc:(sched_doc ^ " (alias of schedule)")) schedule_term

let simulate_term, simulate_doc =
  let run app_name seed n_procs frames heuristic jitter overhead density shards
      json_out csv_out per_process use_schedule latency svg_out trace_out =
    obs_begin trace_out;
    let app = resolve_app app_name seed in
    let d = derive_app app in
    let g = d.Derive.graph in
    let s =
      match use_schedule with
      | None -> schedule_for g ~heuristic ~n_procs
      | Some path -> (
        match Sched.Schedule_io.load path with
        | Ok s when Sched.Schedule_io.matches g s ->
          Printf.printf "schedule loaded from %s\n" path;
          s
        | Ok _ ->
          Printf.eprintf "%s does not cover this application's task graph\n" path;
          exit 2
        | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 2)
    in
    let n_procs = Sched.Static_schedule.n_procs s in
    let density =
      if density < 0.0 then app.default_sporadic_density else density
    in
    let traces = sporadic_traces app d ~frames ~seed ~density in
    let platform_overhead =
      match String.lowercase_ascii overhead with
      | "none" -> Platform.no_overhead
      | "mppa" -> Platform.mppa_like
      | other ->
        Printf.eprintf "unknown overhead model %S (none|mppa)\n" other;
        exit 2
    in
    let exec =
      if jitter <= 0.0 then Exec_time.constant
      else Exec_time.uniform ~seed ~min_fraction:(Float.max 0.0 (1.0 -. jitter))
    in
    let config =
      {
        Engine.platform = Platform.create ~overhead:platform_overhead ~n_procs ();
        exec;
        frames;
        sporadic = traces;
        inputs = app.inputs;
      }
    in
    (* sharded and sequential runs are bit-identical, so everything
       printed below is independent of the shard count — the shard-gate
       byte-compares this command's output across --shards values *)
    let r =
      if shards = 1 then Engine.run app.net d s config
      else
        Engine.run_sharded
          ?shards:(if shards >= 1 then Some shards else None)
          app.net d s config
    in
    Format.printf "%a@." Runtime.Exec_trace.pp_stats r.Engine.stats;
    if per_process then
      Format.printf "%a" Runtime.Exec_trace.pp_by_process
        (Runtime.Exec_trace.by_process (Engine.trace r));
    Option.iter
      (fun path ->
        Runtime.Export.write_file path (Runtime.Export.to_json (Engine.trace r));
        Printf.printf "trace written to %s (json)\n" path)
      json_out;
    Option.iter
      (fun path ->
        Runtime.Export.write_file path (Runtime.Export.to_csv (Engine.trace r));
        Printf.printf "trace written to %s (csv)\n" path)
      csv_out;
    Option.iter
      (fun path ->
        Runtime.Export.write_file path
          (Rt_util.Gantt.to_svg
             ~title:(Printf.sprintf "%s execution (M=%d, %d frames)" app_name n_procs frames)
             (Runtime.Exec_trace.to_gantt_rows ~runtime_row:(Engine.overhead_segments r)
                (Engine.trace r)));
        Printf.printf "gantt chart written to %s (svg)\n" path)
      svg_out;
    (match Runtime.Exec_trace.misses_by_process (Engine.trace r) with
    | [] -> ()
    | per ->
      print_endline "misses by process:";
      List.iter (fun (p, n) -> Printf.printf "  %-20s %d\n" p n) per);
    (match r.Engine.unhandled_events with
    | [] -> ()
    | evs -> Printf.printf "events beyond the simulated horizon: %d\n" (List.length evs));
    (* determinism check against the zero-delay reference *)
    let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int frames) in
    let zd =
      Fppn.Semantics.run ~inputs:app.inputs app.net
        (Fppn.Semantics.invocations ~sporadic:traces ~horizon app.net)
    in
    let eq =
      List.equal
        (fun (n1, h1) (n2, h2) ->
          String.equal n1 n2 && List.equal Fppn.Value.equal h1 h2)
        (Fppn.Semantics.signature zd)
        (Engine.signature r)
    in
    Printf.printf "deterministic vs zero-delay reference: %b\n" eq;
    List.iter
      (fun spec ->
        match String.split_on_char ':' spec with
        | [ source; sink ] ->
          (try
             Format.printf "%a" Runtime.Latency.pp
               (Runtime.Latency.analyse g ~source ~sink (Engine.trace r))
           with Invalid_argument msg -> Printf.printf "latency %s: %s\n" spec msg)
        | _ -> Printf.eprintf "bad --latency spec %S (expected SRC:SNK)\n" spec)
      latency;
    obs_finish ~model:(Runtime.Export.to_chrome (Engine.trace r)) trace_out
  in
  let jitter =
    Arg.(
      value & opt float 0.5
      & info [ "jitter" ] ~docv:"F"
          ~doc:"Execution-time jitter: durations uniform in [(1-F)*C, C]. 0 = WCET.")
  in
  let overhead =
    Arg.(
      value & opt string "none"
      & info [ "overhead" ] ~docv:"MODEL"
          ~doc:"Runtime overhead model: none, or mppa (41/20 ms frame overhead).")
  in
  let density =
    Arg.(
      value & opt float (-1.0)
      & info [ "density" ] ~docv:"D"
          ~doc:"Sporadic event density in [0,1] (default: per-application).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Run the engine on K cooperating domains (bit-identical to K=1; \
             falls back to the sequential core when sharding preconditions \
             fail). 0 = auto (recommended domain count).")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the execution trace as JSON.")
  in
  let csv_out =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the execution trace as CSV.")
  in
  let per_process =
    Arg.(
      value & flag
      & info [ "per-process" ] ~doc:"Print per-process response statistics.")
  in
  let use_schedule =
    Arg.(
      value & opt (some string) None
      & info [ "use-schedule" ] ~docv:"FILE"
          ~doc:"Run a schedule saved by 'schedule --save' instead of scheduling.")
  in
  let latency =
    Arg.(
      value & opt_all string []
      & info [ "latency" ] ~docv:"SRC:SNK"
          ~doc:"Report end-to-end latency between two processes (repeatable).")
  in
  let svg_out =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Render the execution trace as an SVG Gantt chart.")
  in
  ( Term.(
      const run $ app_arg $ seed_arg $ procs_arg $ frames_arg $ heuristic_arg
      $ jitter $ overhead $ density $ shards $ json_out $ csv_out $ per_process
      $ use_schedule $ latency $ svg_out $ trace_out_arg),
    "Run the online static-order policy (Sec. IV)" )

let simulate_cmd = Cmd.v (Cmd.info "simulate" ~doc:simulate_doc) simulate_term
let run_cmd = Cmd.v (Cmd.info "run" ~doc:(simulate_doc ^ " (alias of simulate)")) simulate_term

let buffers_cmd =
  let run app_name seed hyperperiods =
    let app = resolve_app app_name seed in
    let r = Fppn.Buffer_analysis.analyse ~hyperperiods ~inputs:app.inputs app.net in
    Format.printf "%a" Fppn.Buffer_analysis.pp r;
    match Fppn.Buffer_analysis.unbounded_channels r with
    | [] -> print_endline "all FIFOs are bounded"
    | l ->
      Printf.printf "%d unbounded FIFO(s) — fix the application's rates\n"
        (List.length l);
      exit 1
  in
  let hyperperiods =
    Arg.(
      value & opt int 4
      & info [ "hyperperiods" ] ~docv:"N"
          ~doc:"Number of hyperperiods to analyse (default 4).")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ hyperperiods) in
  Cmd.v
    (Cmd.info "buffers" ~doc:"FIFO occupancy bounds from the reference run")
    term

let check_cmd =
  let run app_name seed frames latency_specs =
    let app = resolve_app app_name seed in
    let parsed_specs =
      List.map
        (fun s ->
          match String.split_on_char ':' s with
          | [ src; snk; bound ] -> (
            try
              { Fppn_verify.Checker.l_source = src;
                l_sink = snk;
                max_reaction = Rat.of_string bound }
            with Invalid_argument _ ->
              Printf.eprintf "bad --latency-spec %S (expected SRC:SNK:MS)\n" s;
              exit 2)
          | _ ->
            Printf.eprintf "bad --latency-spec %S (expected SRC:SNK:MS)\n" s;
            exit 2)
        latency_specs
    in
    let config =
      { Fppn_verify.Checker.default_config with
        Fppn_verify.Checker.seed;
        frames;
        inputs = app.inputs;
        latency_specs = parsed_specs }
    in
    let report = Fppn_verify.Checker.run ~config ~wcet:app.wcet app.net in
    Format.printf "%a" Fppn_verify.Checker.pp report;
    if not report.Fppn_verify.Checker.passed then exit 1
  in
  let latency_specs =
    Arg.(
      value & opt_all string []
      & info [ "latency-spec" ] ~docv:"SRC:SNK:MS"
          ~doc:
            "End-to-end reaction-time constraint to verify on the WCET \
             execution (repeatable).")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ frames_arg $ latency_specs) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify an application end to end: derivation, schedulability,           determinism across processor counts and jitter, trace compliance,           buffer bounds")
    term

let exact_cmd =
  let run app_name seed n_procs budget =
    let app = resolve_app app_name seed in
    let d = derive_app app in
    let g = d.Derive.graph in
    if Graph.n_jobs g > 40 then
      Printf.printf
        "warning: %d jobs — exact search may not finish within the budget\n"
        (Graph.n_jobs g);
    let r = Sched.Exact.solve ~node_budget:budget ~n_procs g in
    Printf.printf "nodes explored: %d; search %s\n" r.Sched.Exact.nodes
      (if r.Sched.Exact.optimal then "exhausted (result is exact)"
       else "hit the node budget (result is a bound)");
    match (r.Sched.Exact.schedule, r.Sched.Exact.makespan) with
    | Some s, Some mk ->
      Printf.printf "feasible schedule found, makespan %s ms\n" (Rat.to_string mk);
      Rt_util.Gantt.print ~width:72
        ~t_max:(Rat.to_float d.Derive.hyperperiod)
        (Static_schedule.to_gantt_rows g s)
    | _ ->
      if r.Sched.Exact.optimal then
        Printf.printf "no deadline-feasible schedule exists on %d processor(s)\n"
          n_procs
      else print_endline "no feasible schedule found within the budget"
  in
  let budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "budget" ] ~docv:"N" ~doc:"Branch-and-bound node budget.")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ procs_arg $ budget) in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Exact minimal-makespan schedule by branch and bound (small graphs)")
    term

let rta_cmd =
  let run app_name seed =
    let app = resolve_app app_name seed in
    let entries = Sched.Rta.analyse ~wcet:app.wcet app.net in
    Format.printf "%a" Sched.Rta.pp entries;
    Printf.printf "uniprocessor RM schedulable: %b\n" (Sched.Rta.schedulable entries)
  in
  let term = Term.(const run $ app_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "rta"
       ~doc:"Classical uniprocessor response-time analysis (rate-monotonic)")
    term

let dimension_cmd =
  let run app_name seed =
    let app = resolve_app app_name seed in
    let d = derive_app app in
    let v = Sched.Dimension.min_processors d.Derive.graph in
    Format.printf "%a@." Sched.Dimension.pp v
  in
  let term = Term.(const run $ app_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "dimension" ~doc:"Minimal processor count (Prop. 3.1 + list scheduling)")
    term

let report_cmd =
  let run app_name seed n_procs frames =
    let app = resolve_app app_name seed in
    let net = app.net in
    Printf.printf "# FPPN deployment report: %s\n\n" (Network.name net);
    Printf.printf "## Network\n\n%d processes, %d internal channels, %d priority edges.\n\n"
      (Network.n_processes net)
      (List.length (Network.channels net))
      (List.length (Network.fp_edges net));
    Array.iter
      (fun p -> Format.printf "- %a@." Process.pp p)
      (Network.processes net);
    let d = derive_app app in
    let g = d.Derive.graph in
    let load = Taskgraph.Analysis.load g in
    Printf.printf
      "\n## Task graph (Sec. III-A)\n\nHyperperiod %s ms; %d jobs, %d edges \
       (%d before reduction); load %.3f.\n"
      (Rat.to_string d.Derive.hyperperiod)
      (Graph.n_jobs g) (Graph.n_edges g) d.Derive.raw_edges
      (Rat.to_float load.Taskgraph.Analysis.value);
    let v = Sched.Dimension.min_processors g in
    Format.printf "\nDimensioning: %a@." Sched.Dimension.pp v;
    Printf.printf "\n## Static schedule (M=%d)\n\n```\n" n_procs;
    let s = schedule_for g ~heuristic:"auto" ~n_procs in
    Rt_util.Gantt.print ~width:70
      ~t_max:(Rat.to_float d.Derive.hyperperiod)
      (Static_schedule.to_gantt_rows g s);
    Printf.printf "```\n\n## Uniprocessor response-time analysis\n\n```\n";
    Format.printf "%a" Sched.Rta.pp (Sched.Rta.analyse ~wcet:app.wcet net);
    Printf.printf "```\n\n## Buffer bounds\n\n```\n";
    Format.printf "%a"
      Fppn.Buffer_analysis.pp
      (Fppn.Buffer_analysis.analyse ~hyperperiods:(max 2 frames) ~inputs:app.inputs net);
    Printf.printf "```\n\n## Verification (Props. 2.1 / 3.1 / 4.1)\n\n```\n";
    let config =
      { Fppn_verify.Checker.default_config with
        Fppn_verify.Checker.seed;
        frames;
        processor_counts = [ n_procs ];
        inputs = app.inputs }
    in
    let report = Fppn_verify.Checker.run ~config ~wcet:app.wcet net in
    Format.printf "%a" Fppn_verify.Checker.pp report;
    Printf.printf "```\n"
  in
  let term = Term.(const run $ app_arg $ seed_arg $ procs_arg $ frames_arg) in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Emit a complete Markdown deployment report for an application")
    term

let lint_cmd =
  let run app_name seed format processors =
    let diags =
      if Filename.check_suffix app_name ".fppn" then
        (* lint the AST, not the elaborated network: networks the
           builder would reject still get positioned diagnostics *)
        let src = load_file app_name in
        match Fppn_lang.Parser.parse src with
        | ast -> Fppn_lint.Lint.lint_ast ~file:app_name ?processors ast
        | exception Fppn_lang.Lexer.Error (msg, pos)
        | exception Fppn_lang.Parser.Error (msg, pos) ->
          [
            Fppn_lint.Diagnostic.make ~file:app_name ~pos
              Fppn_lint.Diagnostic.Source_error
              ~subject:("file " ^ Filename.basename app_name)
              msg;
          ]
      else
        let app = resolve_app app_name seed in
        Fppn_lint.Lint.lint_network ?processors
          ~wcet:(fun name -> Some (app.wcet name))
          app.net
    in
    (match format with
    | `Text -> Format.printf "%a" Fppn_lint.Diagnostic.pp_list diags
    | `Json -> print_endline (Fppn_lint.Diagnostic.to_json diags));
    (* exit 2: the source never reached the analyzer; exit 1: it did,
       and error-severity findings came back *)
    if
      List.exists
        (fun d -> d.Fppn_lint.Diagnostic.code = Fppn_lint.Diagnostic.Source_error)
        diags
    then exit 2
    else if Fppn_lint.Diagnostic.has_errors diags then exit 1
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: text (one line per finding) or json \
                (stable schema, version 1).")
  in
  let processors =
    Arg.(
      value
      & opt (some int) None
      & info [ "m"; "procs" ] ~docv:"M"
          ~doc:
            "Enforce the Prop. 3.1 necessary utilization bound against this \
             processor count (error when exceeded); without it the bound is \
             reported as an informational minimum.")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ format $ processors) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: determinism races, functional-priority DAG \
          hygiene, Sec. III-A subclass conformance, channel misuse and \
          timing sanity, with stable FPPN0xx diagnostic codes. Exits 1 on \
          error-severity findings.")
    term

let certify_cmd =
  let run app_name seed format check =
    let model =
      if Filename.check_suffix app_name ".fppn" then
        (* certify the AST model so unbuildable networks still get a
           (rejecting) certificate with positioned diagnostics *)
        let src = load_file app_name in
        match Fppn_lang.Parser.parse src with
        | ast -> Some (Fppn_lint.Model.of_ast ~file:app_name ast)
        | exception Fppn_lang.Lexer.Error (msg, pos)
        | exception Fppn_lang.Parser.Error (msg, pos) ->
          Format.eprintf "%a@." Fppn_lint.Diagnostic.pp
            (Fppn_lint.Diagnostic.make ~file:app_name ~pos
               Fppn_lint.Diagnostic.Source_error
               ~subject:("file " ^ Filename.basename app_name)
               msg);
          None
      else
        let app = resolve_app app_name seed in
        Some
          (Fppn_lint.Model.of_network
             ~wcet:(fun name -> Some (app.wcet name))
             app.net)
    in
    match model with
    | None -> exit 2
    | Some model ->
      let cert = Fppn_lint.Certificate.of_model model in
      let diags = Fppn_lint.Certificate.diagnostics cert in
      (match format with
      | `Text ->
        Format.printf "%a" Fppn_lint.Certificate.pp cert;
        if diags <> [] then Format.printf "%a" Fppn_lint.Diagnostic.pp_list diags
      | `Json -> print_endline (Fppn_lint.Certificate.to_json cert));
      if check then begin
        (* machine-check the serialized artifact: JSON round-trip, then
           re-validate against a fresh analysis of the model *)
        let checked =
          match Fppn_lint.Certificate.of_json (Fppn_lint.Certificate.to_json cert) with
          | Error e -> Error ("round-trip: " ^ e)
          | Ok cert' -> Fppn_lint.Certificate.validate cert' model
        in
        match checked with
        | Ok () -> ()
        | Error e ->
          Printf.eprintf "certificate self-check failed: %s\n" e;
          exit 1
      end;
      if Fppn_lint.Diagnostic.has_errors diags then exit 1
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: text (verdict table) or json (the stable \
                certificate schema, version 1).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Also machine-check the certificate: serialize, re-parse and \
                validate it against a fresh analysis.")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ format $ check) in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Static shardability certification: per-channel job-ordering \
          verdicts proven at the (process, hyperperiod-phase) quotient \
          level (codes FPPN060-062) — the certificate Engine.run_sharded \
          consumes. Exits 1 on error-severity findings, 2 when the source \
          never reached the analyzer, like lint.")
    term

let fuzz_cmd =
  let run seed budget procs frames jitter_seeds permutations no_boundary
      max_periodic max_sporadic no_shrink shrink_budget inject json_out jobs
      static certify trace_out =
    obs_begin trace_out;
    let parse_ints what s =
      try List.map int_of_string (String.split_on_char ',' s)
      with _ ->
        Printf.eprintf "bad %s %S (expected comma-separated integers)\n" what s;
        exit 2
    in
    let inject =
      match String.lowercase_ascii inject with
      | "none" -> Fppn_fuzz.Campaign.No_injection
      | "channel-flip" -> Fppn_fuzz.Campaign.Inject_channel_flip
      | "sporadic-flip" -> Fppn_fuzz.Campaign.Inject_sporadic_flip
      | other ->
        Printf.eprintf
          "unknown injection %S (none|channel-flip|sporadic-flip)\n" other;
        exit 2
    in
    if certify then begin
      (* certificate-vs-engine differential: accepts run sharded
         bit-identically, rejects fall back or are unbuildable *)
      let summary =
        Fppn_fuzz.Static_diff.certify ~log:print_endline ~max_periodic
          ~max_sporadic ~seed ~budget ()
      in
      Format.printf "%a@." Fppn_fuzz.Static_diff.pp_certify summary;
      if not (Fppn_fuzz.Static_diff.certify_passed summary) then begin
        print_endline
          "self-test FAILED: the shardability certificate disagreed with the \
           engine or the job-level closure";
        exit 3
      end
    end
    else if static then begin
      (* lint-vs-oracle differential: no engine runs at all *)
      let summary =
        Fppn_fuzz.Static_diff.run ~log:print_endline ~max_periodic
          ~max_sporadic ~seed ~budget ~inject ()
      in
      Format.printf "%a@." Fppn_fuzz.Static_diff.pp summary;
      if not (Fppn_fuzz.Static_diff.passed ~inject summary) then
        match inject with
        | Fppn_fuzz.Campaign.No_injection -> exit 1
        | _ ->
          print_endline
            "self-test FAILED: an injected priority-order bug was invisible \
             to the static analyzer";
          exit 3
    end
    else
    let config =
      {
        Fppn_fuzz.Campaign.seed;
        budget;
        proc_counts = parse_ints "--procs" procs;
        jitter_seeds = parse_ints "--jitter-seeds" jitter_seeds;
        frames;
        permutations;
        boundary_snap = not no_boundary;
        max_periodic;
        max_sporadic;
        shrink = not no_shrink;
        shrink_budget;
        inject;
      }
    in
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be at least 1\n";
      exit 2
    end;
    let effective = Rt_util.Pool.clamp_jobs jobs in
    if effective <> jobs then
      Printf.printf "note: --jobs %d capped at %d (recommended domain count)\n"
        jobs effective;
    let report =
      Fppn_fuzz.Campaign.run ~log:print_endline ~jobs:effective
        ~jobs_requested:jobs config
    in
    Format.printf "%a" Fppn_fuzz.Report.pp report;
    Option.iter
      (fun path ->
        (try Runtime.Export.write_file path (Fppn_fuzz.Report.to_json report)
         with Sys_error msg ->
           Printf.eprintf "cannot write report: %s\n" msg;
           exit 2);
        Printf.printf "report written to %s (json)\n" path)
      json_out;
    obs_finish trace_out;
    match inject with
    | Fppn_fuzz.Campaign.No_injection ->
      if not (Fppn_fuzz.Report.passed report) then exit 1
    | _ ->
      (* self-test mode: the oracle must catch at least one injected bug *)
      if Fppn_fuzz.Report.passed report then begin
        print_endline
          "self-test FAILED: no injected priority-order bug was caught";
        exit 3
      end
  in
  let budget =
    Arg.(
      value & opt int 50
      & info [ "budget" ] ~docv:"N" ~doc:"Number of random cases to fuzz.")
  in
  let procs =
    Arg.(
      value & opt string "1,2"
      & info [ "procs" ] ~docv:"M,M,..."
          ~doc:"Processor counts every case is executed on (comma-separated).")
  in
  let frames =
    Arg.(
      value & opt int 2
      & info [ "frames" ] ~docv:"N" ~doc:"Hyperperiod frames per execution.")
  in
  let jitter_seeds =
    Arg.(
      value & opt string "1,2"
      & info [ "jitter-seeds" ] ~docv:"S,S,..."
          ~doc:"Execution-time jitter seeds per processor count.")
  in
  let permutations =
    Arg.(
      value & opt int 2
      & info [ "permutations" ] ~docv:"N"
          ~doc:
            "Adversarially permuted zero-delay runs per case (reorders \
             simultaneous invocations).")
  in
  let no_boundary =
    Arg.(
      value & flag
      & info [ "no-boundary" ]
          ~doc:"Disable sporadic stamps snapped to server window boundaries.")
  in
  let max_periodic =
    Arg.(
      value & opt int 6
      & info [ "max-periodic" ] ~docv:"N" ~doc:"Largest periodic process count drawn.")
  in
  let max_sporadic =
    Arg.(
      value & opt int 2
      & info [ "max-sporadic" ] ~docv:"N" ~doc:"Largest sporadic process count drawn.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report counterexamples without minimising them.")
  in
  let shrink_budget =
    Arg.(
      value & opt int 200
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Oracle invocations the shrinker may spend per counterexample.")
  in
  let inject =
    Arg.(
      value & opt string "none"
      & info [ "inject" ] ~docv:"KIND"
          ~doc:
            "Sabotage the system-under-test copy of every case with a flipped \
             functional-priority edge: none, channel-flip, or sporadic-flip. \
             Self-test mode: exits non-zero unless a bug is caught.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable campaign report as JSON.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Rt_util.Pool.default_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains checking oracle cases in parallel (default: the \
             recommended domain count; requests above it are capped, and \
             both counts are recorded in the report).  The report is \
             identical for every N apart from wall-clock fields.")
  in
  let static =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Run the lint-vs-oracle differential instead of engine \
             executions: every injected sabotage must already be visible to \
             the static analyzer, and clean workloads must lint without \
             errors.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Run the certificate-vs-engine differential: \
             certificate-accepted workloads must run sharded \
             bit-identically to the sequential core, rejected ones must \
             fall back or be unbuildable, and the certificate must agree \
             with the legacy job-level closure throughout.")
  in
  let term =
    Term.(
      const run $ seed_arg $ budget $ procs $ frames $ jitter_seeds
      $ permutations $ no_boundary $ max_periodic $ max_sporadic $ no_shrink
      $ shrink_budget $ inject $ json_out $ jobs $ static $ certify
      $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential determinism fuzzing (Props. 2.1 / 4.1): random \
          networks through the zero-delay reference, the multiprocessor \
          runtime under jitter, and the timed-automata backend, with \
          adversarial invocation orders, window-boundary events, and \
          counterexample shrinking")
    term

let profile_cmd =
  let run app_name seed n_procs frames heuristic jitter top trace_out shards =
    Obs_trace.set_enabled true;
    Obs_metrics.set_enabled true;
    let app = resolve_app app_name seed in
    let d = derive_app app in
    let g = d.Derive.graph in
    let s = schedule_for g ~heuristic ~n_procs in
    let traces =
      sporadic_traces app d ~frames ~seed ~density:app.default_sporadic_density
    in
    let exec =
      if jitter <= 0.0 then Exec_time.constant
      else Exec_time.uniform ~seed ~min_fraction:(Float.max 0.0 (1.0 -. jitter))
    in
    let config =
      {
        Engine.platform = Platform.create ~n_procs ();
        exec;
        frames;
        sporadic = traces;
        inputs = app.inputs;
      }
    in
    let r =
      match shards with
      | None -> Engine.run app.net d s config
      | Some k -> Engine.run_sharded ~shards:k app.net d s config
    in
    Format.printf "%a@." Runtime.Exec_trace.pp_stats r.Engine.stats;
    let hotspots = Obs_trace.hotspots () in
    let total_self =
      List.fold_left (fun acc h -> acc + h.Obs_trace.self_ns) 0 hotspots
    in
    let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6) in
    let rows =
      List.filteri (fun i _ -> i < top) hotspots
      |> List.map (fun h ->
             [
               h.Obs_trace.hname;
               string_of_int h.Obs_trace.calls;
               ms h.Obs_trace.total_ns;
               ms h.Obs_trace.self_ns;
               Printf.sprintf "%.1f"
                 (100.0 *. float_of_int h.Obs_trace.self_ns
                 /. float_of_int (max 1 total_self));
             ])
    in
    Printf.printf "\nhotspots (self time, wall clock):\n";
    Rt_util.Table.print
      ~aligns:
        Rt_util.Table.[ Left; Right; Right; Right; Right ]
      ~header:[ "span"; "calls"; "total ms"; "self ms"; "self %" ]
      rows;
    Printf.printf "\nmetrics snapshot:\n%s\n"
      (Json.to_string (Obs_metrics.snapshot ()));
    obs_finish ~model:(Runtime.Export.to_chrome (Engine.trace r)) trace_out
  in
  let jitter =
    Arg.(
      value & opt float 0.5
      & info [ "jitter" ] ~docv:"F"
          ~doc:"Execution-time jitter: durations uniform in [(1-F)*C, C]. 0 = WCET.")
  in
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Number of hotspot rows to print.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Profile Engine.run_sharded on K shards instead of the \
             sequential core; the metrics snapshot then shows \
             engine.certify_ticks (and engine.shard_* counters).")
  in
  let term =
    Term.(
      const run $ app_arg $ seed_arg $ procs_arg $ frames_arg $ heuristic_arg
      $ jitter $ top $ trace_out_arg $ shards)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an application with tracing and metrics enabled and print a \
          self-time hotspot table plus a metrics snapshot (add --trace-out \
          for the full Chrome trace)")
    term

(* --- Chrome trace validation ------------------------------------------- *)

let trace_validate_cmd =
  let str_field name ev = Option.bind (Json.member name ev) Json.as_string
  and int_field name ev = Option.bind (Json.member name ev) Json.as_int in
  let args_name ev =
    Option.bind (Json.member "args" ev) (fun a ->
        Option.bind (Json.member "name" a) Json.as_string)
  in
  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let has_engine_lane evs =
    let engine_pids =
      List.filter_map
        (fun ev ->
          if
            str_field "ph" ev = Some "M"
            && str_field "name" ev = Some "process_name"
            && args_name ev = Some "engine (model time)"
          then int_field "pid" ev
          else None)
        evs
    in
    List.exists
      (fun ev ->
        str_field "ph" ev = Some "X"
        &&
        match int_field "pid" ev with
        | Some p -> List.mem p engine_pids
        | None -> false)
      evs
  in
  let has_sched_lane evs =
    List.exists
      (fun ev ->
        str_field "ph" ev = Some "X"
        &&
        match str_field "name" ev with
        | Some n -> starts_with ~prefix:"sched." n
        | None -> false)
      evs
  in
  let has_pool_lane evs =
    List.exists
      (fun ev ->
        str_field "ph" ev = Some "M"
        && str_field "name" ev = Some "thread_name"
        &&
        match args_name ev with
        | Some n -> starts_with ~prefix:"pool/" n
        | None -> false)
      evs
  in
  let run path require =
    let fail msg =
      Printf.eprintf "%s: %s\n" path msg;
      exit 1
    in
    let json =
      match Json.parse (load_file path) with
      | json -> json
      | exception Json.Malformed msg -> fail ("not valid JSON: " ^ msg)
    in
    (match Chrome.validate json with
    | Ok () -> ()
    | Error msg -> fail ("schema violation: " ^ msg));
    let evs =
      match Option.bind (Json.member "traceEvents" json) Json.as_list with
      | Some evs -> evs
      | None -> fail "no traceEvents array"
    in
    List.iter
      (fun lane ->
        let ok =
          match lane with
          | "engine" -> has_engine_lane evs
          | "sched" -> has_sched_lane evs
          | "pool" -> has_pool_lane evs
          | other -> fail (Printf.sprintf "unknown lane requirement %S" other)
        in
        if not ok then fail (Printf.sprintf "missing required %s lane" lane))
      (match require with
      | "" -> []
      | csv -> String.split_on_char ',' csv);
    Printf.printf "%s: valid Chrome trace (%d events)\n" path (List.length evs)
  in
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace-event JSON file to validate.")
  in
  let require =
    Arg.(
      value & opt string ""
      & info [ "require-lanes" ] ~docv:"L,L,..."
          ~doc:
            "Comma-separated lane kinds that must be present: engine (an X \
             event in the 'engine (model time)' process), sched (an X event \
             named sched.*), pool (a thread named pool/*).")
  in
  let term = Term.(const run $ file $ require) in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:
         "Validate a file against the pinned Chrome trace-event schema \
          (exit 1 on violations)")
    term

let fmt_cmd =
  let run path =
    let src = load_file path in
    match Fppn_lang.Parser.parse src with
    | ast -> print_string (Fppn_lang.Printer.to_string ast)
    | exception Fppn_lang.Parser.Error (msg, pos)
    | exception Fppn_lang.Lexer.Error (msg, pos) ->
      source_error path msg pos
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"FPPN source file.")
  in
  let term = Term.(const run $ file) in
  Cmd.v (Cmd.info "fmt" ~doc:"Reformat an FPPN source file to canonical form") term

let dot_cmd =
  let run app_name seed taskgraph =
    let app = resolve_app app_name seed in
    if taskgraph then
      let d = derive_app app in
      print_string (Graph.to_dot d.Derive.graph)
    else print_string (Network.to_dot app.net)
  in
  let taskgraph =
    Arg.(
      value & flag
      & info [ "taskgraph" ] ~doc:"Export the derived task graph instead of the network.")
  in
  let term = Term.(const run $ app_arg $ seed_arg $ taskgraph) in
  Cmd.v (Cmd.info "dot" ~doc:"Export Graphviz DOT") term

(* --- serve --------------------------------------------------------------- *)

module Service = Fppn_service.Service
module Service_tenant = Fppn_service.Tenant
module Admission = Fppn_service.Admission
module Service_report = Fppn_service.Report

let serve_doc =
  "Host applications as co-resident tenants of a multi-tenant service: MPR \
   admission control at the door, an async event queue at the side, and an \
   epoch loop running every tenant's deterministic engine plan over a shared \
   worker pool"

let serve_cmd =
  let run apps tenants procs frames epochs events producers seed
      queue_capacity jobs reject_demo verify min_admitted json_out =
    if procs <= 0 || frames <= 0 || epochs < 0 then begin
      Printf.eprintf "serve: --procs, --frames must be positive\n";
      exit 2
    end;
    let svc = Service.create ~queue_capacity ~procs ~frames () in
    let rows = ref [] in
    let register name (wcet : Derive.wcet_map) ?inputs net =
      match Service.register svc ~name ~wcet ?inputs net with
      | Ok ten ->
        rows :=
          {
            Service_report.row_name = name;
            row_decision = Admission.Accepted ten.Service_tenant.interface;
          }
          :: !rows
      | Error reason ->
        rows :=
          { Service_report.row_name = name; row_decision = Admission.Rejected reason }
          :: !rows
    in
    if apps <> "" then
      List.iter
        (fun a ->
          let app = resolve_app a seed in
          register a app.wcet ~inputs:app.inputs app.net)
        (String.split_on_char ',' apps);
    (* scripted small tenants: 2 periodic + 1 sporadic process each, WCET
       at 1/2000 of the period, so hundreds of MPR interfaces fit M=4 *)
    for i = 0 to tenants - 1 do
      let params =
        {
          Fppn_apps.Randgen.seed = seed + (7919 * (i + 1));
          n_periodic = 2;
          n_sporadic = 1;
          periods = [ 50; 100 ];
          channel_density = 0.4;
          max_burst = 2;
        }
      in
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 2000)
          (Derive.const_wcet Rat.one) net
      in
      register (Printf.sprintf "rnd%03d" i) wcet net
    done;
    let demo_failed = ref false in
    if reject_demo then begin
      (* five independent period-100 processes at 70ms WCET each: the
         Prop. 3.1 bound still passes on M >= 4 (ceil 3.5 = 4), but no
         MPR contract covers the demand - a deterministic, machine-
         readable MPR rejection *)
      let params =
        {
          Fppn_apps.Randgen.seed;
          n_periodic = 5;
          n_sporadic = 0;
          periods = [ 100 ];
          channel_density = 0.0;
          max_burst = 1;
        }
      in
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 7 10)
          (Derive.const_wcet Rat.one) net
      in
      match Service.register svc ~name:"heavy" ~wcet net with
      | Ok _ ->
        Printf.eprintf "reject-demo: heavy tenant was unexpectedly admitted\n";
        demo_failed := true
      | Error reason ->
        rows :=
          { Service_report.row_name = "heavy"; row_decision = Admission.Rejected reason }
          :: !rows;
        Printf.printf "reject-demo: %s\n"
          (Json.to_string (Admission.reason_to_json reason));
        (match reason with
        | Admission.No_interface _ | Admission.Compose_utilization _
        | Admission.Compose_concurrency _ -> ()
        | _ ->
          Printf.eprintf
            "reject-demo: rejection was not an MPR reason (need procs >= 4?)\n";
          demo_failed := true)
    end;
    let rows = List.rev !rows in
    Service_report.admission_table Format.std_formatter rows;
    let resident = List.length (Service.tenants svc) in
    Printf.printf "resident: %d tenants on M=%d (%d rejected)\n" resident procs
      (List.length rows - resident);
    if resident < min_admitted then begin
      Printf.eprintf "serve: only %d tenants admitted, need %d\n" resident
        min_admitted;
      exit 1
    end;
    (* sporadic-capable targets for the scripted producers *)
    let targets =
      Array.of_list
        (List.filter_map
           (fun ten ->
             match Service_tenant.sporadic_events ten with
             | [] -> None
             | sp ->
               let hp_ms =
                 int_of_float (Rat.to_float (Service_tenant.hyperperiod ten))
               in
               Some
                 ( ten.Service_tenant.name,
                   Array.of_list (List.map fst sp),
                   max 1 (hp_ms * frames) ))
           (Service.tenants svc))
    in
    let reports = ref [] in
    let jobs =
      Rt_util.Pool.clamp_jobs
        (if jobs <= 0 then Rt_util.Pool.default_jobs () else jobs)
    in
    let oracle = ref None in
    Rt_util.Pool.with_pool ~jobs (fun pool ->
        for e = 1 to epochs do
          if Array.length targets > 0 && events > 0 && producers > 0 then begin
            (* async ingestion: each producer is its own domain pushing
               into the MPSC queue; queue-full submits are dropped and
               counted as backpressure *)
            let per = max 1 (events / producers) in
            let doms =
              List.init producers (fun p ->
                  Domain.spawn (fun () ->
                      let prng = Rt_util.Prng.create (seed + (131 * e) + p) in
                      for _ = 1 to per do
                        let tname, sp_names, horizon_ms =
                          targets.(Rt_util.Prng.int prng (Array.length targets))
                        in
                        let process =
                          sp_names.(Rt_util.Prng.int prng (Array.length sp_names))
                        in
                        let stamp = Rat.of_int (Rt_util.Prng.int prng horizon_ms) in
                        ignore (Service.submit svc ~tenant:tname ~process ~stamp)
                      done))
            in
            List.iter Domain.join doms
          end;
          let r = Service.run_epoch ~pool svc in
          reports := r :: !reports;
          Printf.printf
            "epoch %d: drained %d, consumed %d, dropped %d, backpressure %d, \
             jobs %d, misses %d (%.4fs)\n"
            r.Service.epoch r.Service.events_drained r.Service.events_consumed
            r.Service.events_dropped (Service.backpressure svc)
            r.Service.jobs_executed r.Service.deadline_misses r.Service.wall_s
        done;
        if verify then oracle := Some (Service.verify ~pool svc));
    (match !oracle with
    | None -> ()
    | Some results ->
      let bad = List.filter (fun (_, ok) -> not ok) results in
      Printf.printf "determinism oracle: %d/%d tenants match their standalone run\n"
        (List.length results - List.length bad)
        (List.length results);
      List.iter (fun (n, _) -> Printf.eprintf "oracle mismatch: %s\n" n) bad;
      if bad <> [] then exit 1);
    Option.iter
      (fun path ->
        let doc =
          Service_report.serve_json ~status:(Service.status_json svc)
            ~admissions:rows ~epochs:(List.rev !reports) ~oracle:!oracle
        in
        let oc = open_out path in
        output_string oc (Json.to_string doc);
        output_char oc '\n';
        close_out oc;
        Printf.printf "serve report written to %s\n" path)
      json_out;
    if !demo_failed then exit 1
  in
  let apps_opt =
    Arg.(
      value & opt string ""
      & info [ "apps" ] ~docv:"A,B,…"
          ~doc:"Comma-separated applications (names or .fppn files) to \
                register as tenants.")
  in
  let tenants_opt =
    Arg.(
      value & opt int 0
      & info [ "tenants" ] ~docv:"N"
          ~doc:"Additionally register $(docv) small random tenants.")
  in
  let epochs_opt =
    Arg.(
      value & opt int 2
      & info [ "epochs" ] ~docv:"E" ~doc:"Service epochs to run.")
  in
  let events_opt =
    Arg.(
      value & opt int 256
      & info [ "events" ] ~docv:"N"
          ~doc:"Scripted sporadic events submitted per epoch (split across \
                producers).")
  in
  let producers_opt =
    Arg.(
      value & opt int 2
      & info [ "producers" ] ~docv:"P"
          ~doc:"Producer domains submitting events concurrently.")
  in
  let queue_opt =
    Arg.(
      value & opt int 4096
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Ingestion queue capacity (rounded up to a power of two); \
                overflow counts as backpressure.")
  in
  let jobs_opt =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"J"
          ~doc:"Worker pool size for tenant epochs (0 = one per core).")
  in
  let reject_demo_flag =
    Arg.(
      value & flag
      & info [ "reject-demo" ]
          ~doc:"Try to register a deliberately over-demanding tenant and \
                require a machine-readable MPR rejection (exit 1 otherwise).")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"After the last epoch, replay every tenant's most recent epoch \
                standalone and require signature equality (exit 1 otherwise).")
  in
  let min_admitted_opt =
    Arg.(
      value & opt int 0
      & info [ "min-admitted" ] ~docv:"N"
          ~doc:"Fail (exit 1) unless at least $(docv) tenants are resident.")
  in
  let json_opt =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full serve report as JSON.")
  in
  let term =
    Term.(
      const run $ apps_opt $ tenants_opt $ procs_arg $ frames_arg $ epochs_opt
      $ events_opt $ producers_opt $ seed_arg $ queue_opt $ jobs_opt
      $ reject_demo_flag $ verify_flag $ min_admitted_opt $ json_opt)
  in
  Cmd.v (Cmd.info "serve" ~doc:serve_doc) term

let () =
  let doc =
    "Deterministic execution of real-time multiprocessor applications \
     (FPPN; Poplavko et al., DATE 2015)"
  in
  let info = Cmd.info "fppn-tool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            info_cmd; lint_cmd; certify_cmd; check_cmd; fuzz_cmd; report_cmd; derive_cmd;
            schedule_cmd; sched_cmd; exact_cmd; simulate_cmd; run_cmd;
            profile_cmd; trace_validate_cmd; buffers_cmd; dimension_cmd;
            rta_cmd; serve_cmd; fmt_cmd; dot_cmd;
          ]))
