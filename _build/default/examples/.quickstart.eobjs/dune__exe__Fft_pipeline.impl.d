examples/fft_pipeline.ml: Array Float Format Fppn Fppn_apps List Printf Rt_util Runtime Sched Taskgraph
