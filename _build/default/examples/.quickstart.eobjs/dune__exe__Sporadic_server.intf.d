examples/sporadic_server.mli:
