examples/fms_avionics.ml: Format Fppn Fppn_apps List Printf Rt_util Runtime Sched String Taskgraph
