examples/step_debugger.mli:
