examples/sporadic_server.ml: Array Format Fppn Hashtbl List Printf Rt_util Runtime Sched String Taskgraph
