examples/step_debugger.ml: Filename Fppn Fppn_lang List Printf Rt_util String Sys
