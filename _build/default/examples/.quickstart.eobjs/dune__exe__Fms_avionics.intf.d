examples/fms_avionics.mli:
