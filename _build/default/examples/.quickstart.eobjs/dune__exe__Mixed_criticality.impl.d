examples/mixed_criticality.ml: Format Fppn List Mixedcrit Printf Rt_util Runtime Sched Taskgraph
