examples/quickstart.ml: Format Fppn List Printf Rt_util Runtime Sched String Taskgraph
