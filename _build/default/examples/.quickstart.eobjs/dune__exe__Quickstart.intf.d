examples/quickstart.mli:
