(* Mixed-criticality execution — the last future-work item of the paper
   ("we plan to support ... mixed-critical scheduling") implemented on
   top of the FPPN flow.

   A flight-control pair (Sensor -> Control, HI criticality) shares two
   processors with best-effort Logger/Telemetry processes (LO).  Each HI
   process has an optimistic profiled budget C_LO and a conservative
   C_HI.  The runtime follows the LO static order; when a HI job
   overruns its C_LO budget, the frame degrades: pending LO jobs are
   dropped and the HI chain keeps its conservative guarantees.

   Run with:  dune exec examples/mixed_criticality.exe *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Spec = Mixedcrit.Spec
module Dual_schedule = Mixedcrit.Dual_schedule
module Mc_engine = Mixedcrit.Mc_engine

let ms = Rat.of_int

let network () =
  let b = Network.Builder.create "flight-control" in
  let add name body =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
         (Process.Native body))
  in
  add "Sensor" (fun ctx -> ctx.Process.write "meas" (V.Int ctx.Process.job_index));
  add "Control" (fun ctx ->
      let x = ctx.Process.read "meas" in
      ctx.Process.write "cmd" x;
      ctx.Process.write "actuator" x);
  add "Logger" (fun ctx -> ctx.Process.write "log" (ctx.Process.read "cmd"));
  add "Telemetry" (fun ctx -> ctx.Process.write "telemetry" (V.Int ctx.Process.job_index));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Sensor"
    ~reader:"Control" "meas";
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Control"
    ~reader:"Logger" "cmd";
  Network.Builder.add_priority b "Sensor" "Control";
  Network.Builder.add_priority b "Control" "Logger";
  Network.Builder.add_output b ~owner:"Control" "actuator";
  Network.Builder.add_output b ~owner:"Logger" "log";
  Network.Builder.add_output b ~owner:"Telemetry" "telemetry";
  Network.Builder.finish_exn b

let () =
  let net = network () in
  let spec =
    Spec.of_list ~default_criticality:Spec.Lo
      ~wcet_lo:
        (Taskgraph.Derive.wcet_of_list (ms 30)
           [ ("Sensor", ms 15); ("Control", ms 20) ])
      ~hi:[ ("Sensor", ms 40); ("Control", ms 55) ]
  in
  print_endline "criticality assignment:";
  List.iter
    (fun name ->
      Format.printf "  %-10s %a  (C_LO %s ms, C_HI %s ms)@." name
        Spec.pp_criticality
        (Spec.criticality spec name)
        (Rat.to_string (Spec.wcet_lo spec name))
        (Rat.to_string (Spec.wcet_hi spec name)))
    [ "Sensor"; "Control"; "Logger"; "Telemetry" ];

  let dual = Dual_schedule.build_exn ~n_procs:2 ~spec net in
  Printf.printf "\ndual schedules built with heuristic %s\n"
    (Sched.Priority.to_string dual.Dual_schedule.heuristic);
  print_endline "LO-mode schedule (all jobs, optimistic budgets):";
  Rt_util.Gantt.print ~width:60 ~t_min:0.0 ~t_max:100.0
    (Sched.Static_schedule.to_gantt_rows dual.Dual_schedule.derived.Taskgraph.Derive.graph
       dual.Dual_schedule.lo_schedule);
  (match dual.Dual_schedule.hi with
  | Some hi ->
    print_endline "HI-mode schedule (HI jobs only, conservative budgets):";
    Rt_util.Gantt.print ~width:60 ~t_min:0.0 ~t_max:100.0
      (Sched.Static_schedule.to_gantt_rows hi.Dual_schedule.hi_graph
         hi.Dual_schedule.hi_schedule)
  | None -> print_endline "no HI processes");

  (* 20 frames with jittered true execution times: some frames overrun *)
  let config =
    { (Mc_engine.default_config ~frames:20 ~n_procs:2 ()) with
      Mc_engine.exec = Runtime.Exec_time.uniform ~seed:11 ~min_fraction:0.3 }
  in
  let r = Mc_engine.run net ~spec dual config in
  Printf.printf "20 frames executed: %d degraded, %d LO jobs dropped\n"
    (List.length r.Mc_engine.mode_switches)
    r.Mc_engine.dropped_lo;
  Printf.printf "HI deadline misses: %d (the guarantee)\n" r.Mc_engine.hi_misses;
  Printf.printf "LO deadline misses: %d\n" r.Mc_engine.lo_misses;
  List.iter
    (fun (frame, t) ->
      Printf.printf "  frame %2d degraded at t = %s ms\n" frame (Rat.to_string t))
    r.Mc_engine.mode_switches;
  let count name = List.length (List.assoc name r.Mc_engine.output_history) in
  Printf.printf
    "outputs over 20 frames: actuator %d/20 (HI, always), log %d/20, telemetry %d/20 (LO, best effort)\n"
    (count "actuator") (count "log") (count "telemetry")
