(* Quickstart: build a tiny FPPN from scratch, run it under the
   zero-delay reference semantics, derive its task graph, compute a
   static schedule and execute it on a simulated two-core platform.

   Run with:  dune exec examples/quickstart.exe *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

let ms = Rat.of_int

(* 1. Describe the application: a 100 ms producer streams samples to a
   200 ms consumer over a FIFO; a sporadic "gain" process (at most one
   event per 300 ms, deadline 600 ms) reconfigures the consumer through
   a blackboard. *)

let producer_body (ctx : Process.job_ctx) =
  (* each job emits its invocation index as the sample *)
  ctx.Process.write "samples" (V.Int ctx.Process.job_index)

let consumer_body (ctx : Process.job_ctx) =
  let gain =
    match ctx.Process.read "gain" with V.Absent -> 1 | v -> V.to_int v
  in
  (* drain both samples produced since the previous 200 ms job *)
  let consume () =
    match ctx.Process.read "samples" with
    | V.Absent -> ()
    | v -> ctx.Process.write "out" (V.Int (gain * V.to_int v))
  in
  consume ();
  consume ()

let gain_body (ctx : Process.job_ctx) =
  ctx.Process.write "gain" (V.Int (10 * ctx.Process.job_index))

let network () =
  let b = Network.Builder.create "quickstart" in
  Network.Builder.add_process b
    (Process.make ~name:"Producer"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native producer_body));
  Network.Builder.add_process b
    (Process.make ~name:"Consumer"
       ~event:(Event.periodic ~period:(ms 200) ~deadline:(ms 200) ())
       (Process.Native consumer_body));
  Network.Builder.add_process b
    (Process.make ~name:"Gain"
       ~event:(Event.sporadic ~min_period:(ms 300) ~deadline:(ms 600) ())
       (Process.Native gain_body));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"Producer"
    ~reader:"Consumer" "samples";
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Gain"
    ~reader:"Consumer" "gain";
  (* functional priorities: Def. 2.1 requires a direct priority between
     any two processes sharing a channel *)
  Network.Builder.add_priority b "Producer" "Consumer";
  Network.Builder.add_priority b "Gain" "Consumer";
  Network.Builder.add_output b ~owner:"Consumer" "out";
  Network.Builder.finish_exn b

let () =
  let net = network () in
  let horizon = ms 800 in
  let sporadic = [ ("Gain", [ ms 150; ms 450 ]) ] in

  (* 2. Reference run: the deterministic zero-delay semantics *)
  print_endline "== zero-delay reference run ==";
  let inv = Fppn.Semantics.invocations ~sporadic ~horizon net in
  let zd = Fppn.Semantics.run net inv in
  List.iter
    (fun (channel, history) ->
      Printf.printf "  output %s: %s\n" channel
        (String.concat ", " (List.map V.to_string history)))
    zd.Fppn.Semantics.output_history;

  (* 3. Compile: task graph over one hyperperiod + static schedule *)
  print_endline "\n== task graph and static schedule (M=2) ==";
  let wcet = Taskgraph.Derive.wcet_of_list (ms 10) [ ("Consumer", ms 30) ] in
  let d = Taskgraph.Derive.derive_exn ~wcet net in
  let g = d.Taskgraph.Derive.graph in
  Printf.printf "  hyperperiod %s ms, %d jobs, %d edges, load %.3f\n"
    (Rat.to_string d.Taskgraph.Derive.hyperperiod)
    (Taskgraph.Graph.n_jobs g) (Taskgraph.Graph.n_edges g)
    (Rat.to_float (Taskgraph.Analysis.load g).Taskgraph.Analysis.value);
  let attempts, best = Sched.List_scheduler.auto ~n_procs:2 g in
  ignore attempts;
  let sched =
    match best with
    | Some a -> a.Sched.List_scheduler.schedule
    | None -> failwith "no feasible schedule"
  in
  Rt_util.Gantt.print ~width:60
    (Sched.Static_schedule.to_gantt_rows g sched);

  (* 4. Execute online: static-order policy, jittered execution times *)
  print_endline "== simulated execution (4 frames, jittered) ==";
  let config =
    { (Runtime.Engine.default_config ~frames:4 ~n_procs:2 ()) with
      Runtime.Engine.sporadic;
      exec = Runtime.Exec_time.uniform ~seed:42 ~min_fraction:0.5 }
  in
  let rt = Runtime.Engine.run net d sched config in
  Format.printf "  %a@." Runtime.Exec_trace.pp_stats rt.Runtime.Engine.stats;

  (* 5. Determinism check (Prop. 2.1): the runtime wrote exactly the
     same values as the reference *)
  let eq =
    List.equal
      (fun (n1, h1) (n2, h2) -> n1 = n2 && List.equal V.equal h1 h2)
      (Fppn.Semantics.signature zd)
      (Runtime.Engine.signature rt)
  in
  Printf.printf "  deterministic (runtime history = reference history): %b\n" eq
