(* Stepping through an FPPN program written in the description language:
   parse examples/sensor_fusion.fppn, then execute the zero-delay
   semantics one invocation instant at a time, inspecting channels
   between steps — the workflow of a model-level debugger.

   Run with:  dune exec examples/step_debugger.exe *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Stepper = Fppn.Stepper
module Netstate = Fppn.Netstate

let source_path =
  (* resolve relative to this executable so `dune exec` works from anywhere *)
  let candidates =
    [
      "examples/sensor_fusion.fppn";
      Filename.concat (Filename.dirname Sys.executable_name) "sensor_fusion.fppn";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "sensor_fusion.fppn not found"

let () =
  let ic = open_in source_path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let ast = Fppn_lang.Parser.parse src in
  let net = Fppn_lang.Elaborate.to_network ast in
  Printf.printf "loaded %s: %d processes\n" source_path
    (Fppn.Network.n_processes net);

  let sporadic = [ ("Operator", [ Rat.of_int 150; Rat.of_int 420 ]) ] in
  let stepper =
    Stepper.create ~sporadic ~horizon:(Rat.of_int 600) net
  in
  Printf.printf "%d invocation instants over 600 ms\n\n" (Stepper.remaining stepper);

  let show_channel name =
    let v = Fppn.Channel.peek (Netstate.channel_state (Stepper.state stepper) name) in
    Printf.printf "    %-10s = %s\n" name (V.to_string v)
  in
  let rec loop () =
    match Stepper.step stepper with
    | None -> ()
    | Some s ->
      Printf.printf "t = %s ms: %s\n"
        (Rat.to_string s.Stepper.time)
        (String.concat ", "
           (List.map
              (fun (p, k) -> Printf.sprintf "%s[%d]" p k)
              s.Stepper.executed));
      show_channel "raw";
      show_channel "gain_cfg";
      show_channel "fused";
      loop ()
  in
  loop ();
  print_endline "\nfinal output history:";
  List.iter
    (fun (name, history) ->
      Printf.printf "  %s: %s\n" name
        (String.concat ", " (List.map V.to_string history)))
    (Netstate.output_history (Stepper.state stepper))
