(** Schedule-priority ([SP]) heuristics for list scheduling
    (Sec. III-B).

    [SP] is a total order on jobs — earlier means higher priority.  It
    must not be confused with the functional priority [FP], which
    defines the precedence edges; [SP] only steers the list scheduler's
    choices. *)

type heuristic =
  | Alap_edf
      (** EDF adjusted for precedences: ascending ALAP completion time
          [D'_i] — the paper's primary recommendation *)
  | B_level  (** descending longest-path-to-sink (classic list scheduling) *)
  | Deadline_monotonic  (** ascending relative deadline [D_i − A_i] *)
  | Edf_nominal  (** ascending nominal absolute deadline [D_i] *)
  | Fifo_arrival  (** ascending arrival time [A_i] *)

val all : heuristic list
val to_string : heuristic -> string
val of_string : string -> heuristic option
val pp : Format.formatter -> heuristic -> unit

val rank : Taskgraph.Graph.t -> heuristic -> int array
(** [rank.(job) = position] in the priority order: 0 is the highest
    priority.  All heuristics break ties by job id, so the order is
    total and deterministic. *)

val order : Taskgraph.Graph.t -> heuristic -> int array
(** Job ids sorted from highest to lowest priority (the inverse
    permutation of {!rank}). *)
