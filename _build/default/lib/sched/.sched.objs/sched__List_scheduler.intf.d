lib/sched/list_scheduler.mli: Priority Rt_util Static_schedule Taskgraph
