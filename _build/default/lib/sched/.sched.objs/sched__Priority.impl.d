lib/sched/priority.ml: Array Format Fun Int List Rt_util String Taskgraph
