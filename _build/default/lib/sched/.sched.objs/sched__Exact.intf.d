lib/sched/exact.mli: Rt_util Static_schedule Taskgraph
