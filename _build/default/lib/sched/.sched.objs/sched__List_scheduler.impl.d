lib/sched/list_scheduler.ml: Array Int List Priority Rt_util Static_schedule Taskgraph
