lib/sched/priority.mli: Format Taskgraph
