lib/sched/exact.ml: Array List Option Rt_util Static_schedule Taskgraph
