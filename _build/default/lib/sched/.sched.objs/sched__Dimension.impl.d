lib/sched/dimension.ml: Format List List_scheduler Priority Rt_util Taskgraph
