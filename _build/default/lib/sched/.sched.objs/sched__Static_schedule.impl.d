lib/sched/static_schedule.ml: Array Format Fun Int List Printf Rt_util Taskgraph
