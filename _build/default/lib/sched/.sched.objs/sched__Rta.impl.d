lib/sched/rta.ml: Array Format Fppn Fun Int List Rt_util String
