lib/sched/schedule_io.mli: Static_schedule Taskgraph
