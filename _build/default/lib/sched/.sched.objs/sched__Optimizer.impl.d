lib/sched/optimizer.ml: Array List List_scheduler Priority Rt_util Static_schedule Taskgraph
