lib/sched/dimension.mli: Format List_scheduler Priority Taskgraph
