lib/sched/optimizer.mli: Priority Rt_util Static_schedule Taskgraph
