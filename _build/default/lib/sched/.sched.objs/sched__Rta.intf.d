lib/sched/rta.mli: Format Fppn Rt_util Taskgraph
