lib/sched/schedule_io.ml: Array Buffer Fun List Printf Rt_util Static_schedule String Taskgraph
