lib/sched/static_schedule.mli: Format Rt_util Taskgraph
