(** Classical response-time analysis for preemptive fixed-priority
    uniprocessor scheduling (Joseph & Pandya / Audsley; the textbook
    theory of the paper's reference [9], Liu, {e Real-Time Systems}).

    For process [i] with budget [C_i] and higher-priority interference:

    [R_i = C_i + Σ_{j ∈ hp(i)} m_j · ⌈R_i / T_j⌉ · C_j]

    iterated to a fixpoint.  Sporadic processes are analysed at their
    maximal rate ([m_j] events per minimal period [T_j]) — exactly the
    worst case their generator admits.

    This gives an {e analytic} bound on what the [Runtime.Uniproc_fp]
    simulator can produce; the test suite checks simulation ≤ analysis,
    and the FMS experiment compares the bound with the observed maxima. *)

type entry = {
  process : string;
  priority : int;  (** smaller = higher *)
  response : Rt_util.Rat.t option;
      (** [None]: the iteration exceeded the deadline — unschedulable *)
  deadline : Rt_util.Rat.t;  (** relative *)
}

val analyse :
  ?priorities:(string * int) list ->
  wcet:Taskgraph.Derive.wcet_map ->
  Fppn.Network.t ->
  entry list
(** Default priorities: rate-monotonic with the same tie-breaking as
    [Runtime.Uniproc_fp.Rate_monotonic].  Entries are sorted by
    priority. *)

val schedulable : entry list -> bool
(** All processes have a response within their deadline. *)

val pp : Format.formatter -> entry list -> unit
