(** Persistence of static schedules.

    The paper's compile-time algorithm "prepares a configuration for
    the online policy"; this module is that handoff: a schedule computed
    once can be saved, inspected and later fed to the runtime without
    re-running the scheduler.

    Format (line-oriented text, stable across versions of this library):
    {v
    fppn-schedule v1
    procs 2
    jobs 10
    0 0 0        # <job-id> <processor> <start-time as rational>
    1 1 25
    ...
    v}
    Lines starting with [#] and blank lines are ignored; an inline [#]
    starts a comment. *)

val to_string : ?graph:Taskgraph.Graph.t -> Static_schedule.t -> string
(** [graph], if given, adds job labels as comments. *)

val of_string : string -> (Static_schedule.t, string) result
(** Parses {!to_string} output; the error describes the offending line. *)

val save : ?graph:Taskgraph.Graph.t -> string -> Static_schedule.t -> unit
(** [save path sched]. *)

val load : string -> (Static_schedule.t, string) result

val matches : Taskgraph.Graph.t -> Static_schedule.t -> bool
(** Sanity check before running a loaded schedule: covers exactly the
    graph's jobs. *)
