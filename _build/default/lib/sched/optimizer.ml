module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module Graph = Taskgraph.Graph

type outcome = {
  rank : int array;
  schedule : Static_schedule.t;
  feasible : bool;
  makespan : Rat.t;
  iterations : int;
  improvements : int;
}

(* objective: fewer deadline misses first, then makespan *)
let score g sched =
  let misses =
    List.length
      (List.filter
         (function Static_schedule.Deadline _ -> true | _ -> false)
         (Static_schedule.check g sched))
  in
  (misses, Static_schedule.makespan g sched)

let better (m1, s1) (m2, s2) = m1 < m2 || (m1 = m2 && Rat.(s1 < s2))

let improve ?(seed = 1) ?(iterations = 400) ?(start = Priority.Alap_edf)
    ~n_procs g =
  let n = Graph.n_jobs g in
  let prng = Prng.create seed in
  let rank = Priority.rank g start in
  let schedule = ref (List_scheduler.schedule ~rank ~n_procs g) in
  let best = ref (score g !schedule) in
  let improvements = ref 0 in
  let evaluated = ref 0 in
  if n >= 2 then
    for _ = 1 to iterations do
      let a = Prng.int prng n and b = Prng.int prng n in
      if a <> b then begin
        incr evaluated;
        let tmp = rank.(a) in
        rank.(a) <- rank.(b);
        rank.(b) <- tmp;
        let candidate = List_scheduler.schedule ~rank ~n_procs g in
        let s = score g candidate in
        if better s !best then begin
          best := s;
          schedule := candidate;
          incr improvements
        end
        else begin
          (* revert *)
          let tmp = rank.(a) in
          rank.(a) <- rank.(b);
          rank.(b) <- tmp
        end
      end
    done;
  let misses, makespan = !best in
  {
    rank = Array.copy rank;
    schedule = !schedule;
    feasible = misses = 0 && Static_schedule.is_feasible g !schedule;
    makespan;
    iterations = !evaluated;
    improvements = !improvements;
  }
