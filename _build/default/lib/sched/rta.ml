module Rat = Rt_util.Rat
module Network = Fppn.Network
module Process = Fppn.Process

type entry = {
  process : string;
  priority : int;
  response : Rat.t option;
  deadline : Rat.t;
}

let rm_priorities net =
  let n = Network.n_processes net in
  let ids = List.init n Fun.id in
  let sorted =
    List.sort
      (fun a b ->
        let pa = Network.process net a and pb = Network.process net b in
        let c = Rat.compare (Process.period pa) (Process.period pb) in
        if c <> 0 then c
        else
          let c = Int.compare (Network.fp_rank net a) (Network.fp_rank net b) in
          if c <> 0 then c
          else String.compare (Process.name pa) (Process.name pb))
      ids
  in
  List.mapi (fun prio p -> (Process.name (Network.process net p), prio)) sorted

let analyse ?priorities ~wcet net =
  let prio_assoc =
    match priorities with Some l -> l | None -> rm_priorities net
  in
  let prio_of name =
    match List.assoc_opt name prio_assoc with Some p -> p | None -> max_int
  in
  let procs =
    List.sort
      (fun a b -> Int.compare (prio_of (Process.name a)) (prio_of (Process.name b)))
      (Array.to_list (Network.processes net))
  in
  List.map
    (fun proc ->
      let name = Process.name proc in
      let c = wcet name in
      let deadline = Process.deadline proc in
      let higher =
        List.filter
          (fun other ->
            prio_of (Process.name other) < prio_of name)
          procs
      in
      let interference r =
        List.fold_left
          (fun acc j ->
            let jobs =
              Rat.of_int
                (Process.burst j * Rat.ceil (Rat.div r (Process.period j)))
            in
            Rat.add acc (Rat.mul jobs (wcet (Process.name j))))
          Rat.zero higher
      in
      (* fixpoint iteration, bounded by the deadline *)
      let rec iterate r guard =
        if guard = 0 then None
        else
          let r' = Rat.add c (interference r) in
          if Rat.(r' > deadline) then None
          else if Rat.equal r' r then Some r
          else iterate r' (guard - 1)
      in
      { process = name; priority = prio_of name; response = iterate c 10_000; deadline })
    procs

let schedulable entries = List.for_all (fun e -> e.response <> None) entries

let pp ppf entries =
  Format.fprintf ppf "%-20s %4s %12s %12s@." "process" "prio" "response ms"
    "deadline ms";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-20s %4d %12s %12s@." e.process e.priority
        (match e.response with
        | Some r -> Rat.to_string r
        | None -> "unschedulable")
        (Rat.to_string e.deadline))
    entries
