module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

let to_string ?graph s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "fppn-schedule v1\n";
  Buffer.add_string buf (Printf.sprintf "procs %d\n" (Static_schedule.n_procs s));
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" (Static_schedule.n_jobs s));
  for i = 0 to Static_schedule.n_jobs s - 1 do
    let label =
      match graph with
      | Some g -> Printf.sprintf "  # %s" (Job.label (Graph.job g i))
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%d %d %s%s\n" i (Static_schedule.proc s i)
         (Rat.to_string (Static_schedule.start s i))
         label)
  done;
  Buffer.contents buf

let of_string text =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let lines =
    List.filteri (fun _ l -> String.trim l <> "")
      (List.map strip_comment (String.split_on_char '\n' text))
    |> List.map String.trim
  in
  match lines with
  | header :: rest when String.trim header = "fppn-schedule v1" -> (
    let parse_kv key line =
      match String.split_on_char ' ' line with
      | [ k; v ] when k = key -> int_of_string_opt v
      | _ -> None
    in
    match rest with
    | procs_line :: jobs_line :: entries -> (
      match (parse_kv "procs" procs_line, parse_kv "jobs" jobs_line) with
      | Some n_procs, Some n_jobs -> (
        if List.length entries <> n_jobs then
          Error
            (Printf.sprintf "expected %d entries, found %d" n_jobs
               (List.length entries))
        else
          let table =
            Array.make n_jobs { Static_schedule.proc = 0; start = Rat.zero }
          in
          let seen = Array.make n_jobs false in
          let parse_entry line =
            match
              List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
            with
            | [ id; proc; start ] -> (
              match (int_of_string_opt id, int_of_string_opt proc) with
              | Some id, Some proc when id >= 0 && id < n_jobs -> (
                try
                  table.(id) <-
                    { Static_schedule.proc; start = Rat.of_string start };
                  seen.(id) <- true;
                  Ok ()
                with Invalid_argument msg -> Error msg)
              | _ -> Error (Printf.sprintf "bad entry %S" line))
            | _ -> Error (Printf.sprintf "bad entry %S" line)
          in
          let rec parse_all = function
            | [] -> Ok ()
            | l :: rest -> (
              match parse_entry l with Ok () -> parse_all rest | Error e -> Error e)
          in
          match parse_all entries with
          | Error e -> Error e
          | Ok () ->
            if Array.for_all Fun.id seen then
              try Ok (Static_schedule.make ~n_procs table)
              with Invalid_argument msg -> Error msg
            else Error "some job ids are missing")
      | _ -> Error "malformed procs/jobs header")
    | _ -> Error "truncated header")
  | _ -> Error "not an fppn-schedule v1 file"

let save ?graph path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?graph s))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let matches g s = Static_schedule.n_jobs s = Graph.n_jobs g
