module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Analysis = Taskgraph.Analysis

type heuristic =
  | Alap_edf
  | B_level
  | Deadline_monotonic
  | Edf_nominal
  | Fifo_arrival

let all = [ Alap_edf; B_level; Deadline_monotonic; Edf_nominal; Fifo_arrival ]

let to_string = function
  | Alap_edf -> "alap-edf"
  | B_level -> "b-level"
  | Deadline_monotonic -> "deadline-monotonic"
  | Edf_nominal -> "edf"
  | Fifo_arrival -> "fifo"

let of_string s =
  List.find_opt (fun h -> to_string h = String.lowercase_ascii s) all

let pp ppf h = Format.pp_print_string ppf (to_string h)

let order g h =
  let n = Graph.n_jobs g in
  let key : int -> Rat.t =
    match h with
    | Alap_edf ->
      let times = Analysis.asap_alap g in
      fun i -> times.Analysis.alap.(i)
    | B_level ->
      let bl = Analysis.b_level g in
      fun i -> Rat.neg bl.(i)
    | Deadline_monotonic ->
      fun i ->
        let j = Graph.job g i in
        Rat.sub j.Job.deadline j.Job.arrival
    | Edf_nominal -> fun i -> (Graph.job g i).Job.deadline
    | Fifo_arrival -> fun i -> (Graph.job g i).Job.arrival
  in
  let keys = Array.init n key in
  let ids = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Rat.compare keys.(a) keys.(b) in
      if c <> 0 then c else Int.compare a b)
    ids;
  ids

let rank g h =
  let ids = order g h in
  let r = Array.make (Array.length ids) 0 in
  Array.iteri (fun pos id -> r.(id) <- pos) ids;
  r
