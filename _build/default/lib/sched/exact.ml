module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

type result = {
  schedule : Static_schedule.t option;
  makespan : Rat.t option;
  optimal : bool;
  nodes : int;
}

let solve ?(node_budget = 2_000_000) ~n_procs g =
  let n = Graph.n_jobs g in
  if n_procs <= 0 then invalid_arg "Exact.solve: no processors";
  let jobs = Graph.jobs g in
  (* remaining critical-path length from each job (b-level): lower bound *)
  let b_level = Taskgraph.Analysis.b_level g in
  let total_work = Graph.total_wcet g in
  let best_makespan = ref None in
  let best_entries = ref None in
  let nodes = ref 0 in
  let exhausted = ref true in
  (* search state (mutated along the DFS, restored on backtrack) *)
  let entries = Array.make n { Static_schedule.proc = 0; start = Rat.zero } in
  let finish = Array.make n Rat.zero in
  let scheduled = Array.make n false in
  let missing = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let proc_free = Array.make n_procs Rat.zero in
  let beats_best candidate =
    match !best_makespan with None -> true | Some b -> Rat.(candidate < b)
  in
  let rec dfs n_done current_makespan remaining_work =
    if !nodes >= node_budget then exhausted := false
    else begin
    incr nodes;
    if n_done = n then begin
      if beats_best current_makespan then begin
        best_makespan := Some current_makespan;
        best_entries := Some (Array.copy entries)
      end
    end
    else begin
      (* lower bounds: remaining work spread over all machines, and the
         deepest remaining chain from any ready-or-future job *)
      let earliest_free =
        Array.fold_left Rat.min proc_free.(0) proc_free
      in
      let work_bound =
        Rat.add earliest_free (Rat.div remaining_work (Rat.of_int n_procs))
      in
      let path_bound =
        let bound = ref Rat.zero in
        for i = 0 to n - 1 do
          if not scheduled.(i) then
            bound := Rat.max !bound (Rat.add jobs.(i).Job.arrival b_level.(i))
        done;
        !bound
      in
      let lower = Rat.max current_makespan (Rat.max work_bound path_bound) in
      if beats_best lower then begin
        (* branch over every ready job × distinct processor free times *)
        for i = 0 to n - 1 do
          if (not scheduled.(i)) && missing.(i) = 0 then begin
            let ready_data =
              List.fold_left
                (fun acc p -> Rat.max acc finish.(p))
                jobs.(i).Job.arrival (Graph.preds g i)
            in
            (* symmetry breaking: among identical machines only distinct
               free times matter; pick the first processor per time *)
            let seen_times = ref [] in
            for p = 0 to n_procs - 1 do
              if not (List.exists (Rat.equal proc_free.(p)) !seen_times) then begin
                seen_times := proc_free.(p) :: !seen_times;
                let start = Rat.max ready_data proc_free.(p) in
                let e = Rat.add start jobs.(i).Job.wcet in
                (* prune deadline misses immediately *)
                if Rat.(e <= jobs.(i).Job.deadline) then begin
                  let saved_free = proc_free.(p) in
                  entries.(i) <- { Static_schedule.proc = p; start };
                  finish.(i) <- e;
                  scheduled.(i) <- true;
                  proc_free.(p) <- e;
                  List.iter
                    (fun s -> missing.(s) <- missing.(s) - 1)
                    (Graph.succs g i);
                  dfs (n_done + 1) (Rat.max current_makespan e)
                    (Rat.sub remaining_work jobs.(i).Job.wcet);
                  List.iter
                    (fun s -> missing.(s) <- missing.(s) + 1)
                    (Graph.succs g i);
                  proc_free.(p) <- saved_free;
                  scheduled.(i) <- false
                end
              end
            done
          end
        done
      end
    end
    end
  in
  if n > 0 then dfs 0 Rat.zero total_work;
  {
    schedule =
      Option.map (fun e -> Static_schedule.make ~n_procs e) !best_entries;
    makespan = !best_makespan;
    optimal = !exhausted;
    nodes = !nodes;
  }

let optimality_gap ?node_budget ~n_procs ~heuristic_makespan g =
  let r = solve ?node_budget ~n_procs g in
  match (r.makespan, r.optimal) with
  | Some opt, true ->
    Some
      ((Rat.to_float heuristic_makespan -. Rat.to_float opt)
      /. Rat.to_float opt)
  | _ -> None
