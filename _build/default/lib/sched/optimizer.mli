(** Stochastic improvement of the schedule priority [SP].

    Sec. III-B: "If the obtained static schedule satisfies the job
    deadlines then it is feasible, otherwise the selected schedule
    priority may be sub-optimal.  Different heuristics exist for
    optimizing priority order SP [8]."  This module implements the
    search side of that remark: starting from a heuristic's priority
    order, it repeatedly swaps ranks of random job pairs and keeps a
    swap when it improves the objective — first feasibility (fewer
    deadline misses in the static schedule), then makespan.

    Deterministic in the seed. *)

type outcome = {
  rank : int array;  (** the best priority ranks found *)
  schedule : Static_schedule.t;
  feasible : bool;
  makespan : Rt_util.Rat.t;
  iterations : int;  (** swap attempts actually evaluated *)
  improvements : int;  (** accepted swaps *)
}

val improve :
  ?seed:int ->
  ?iterations:int ->
  ?start:Priority.heuristic ->
  n_procs:int ->
  Taskgraph.Graph.t ->
  outcome
(** Defaults: seed 1, 400 iterations, starting from {!Priority.Alap_edf}.
    The result is never worse than the starting heuristic's schedule
    under the (missed deadlines, makespan) lexicographic objective. *)
