module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

let ms = Rat.of_int

let sporadic_processes =
  [
    "AnemoConfig";
    "GPSConfig";
    "IRSConfig";
    "DopplerConfig";
    "BCPConfig";
    "MagnDeclinConfig";
    "PerformanceConfig";
  ]

(* --- process bodies ------------------------------------------------- *)

(* A configuration process copies the pilot's command (external input)
   into its user's configuration blackboard; without an external feed it
   synthesizes a deterministic command. *)
let config_body ~input ~channel ~scale (ctx : Process.job_ctx) =
  let command =
    match ctx.Process.read input with
    | V.Absent -> V.Float (1.0 +. (scale *. float_of_int ctx.Process.job_index))
    | v -> v
  in
  ctx.Process.write channel command

(* SensorInput: acquire the four navigation sensors, apply the current
   calibration configs, publish the calibrated readings. *)
let sensor_input_body (ctx : Process.job_ctx) =
  let k = float_of_int ctx.Process.job_index in
  let cfg name =
    match ctx.Process.read name with V.Absent -> 1.0 | v -> V.to_float v
  in
  let raw =
    match ctx.Process.read "sensor_bus" with
    | V.Absent -> 40.0 +. (0.25 *. sin k)
    | v -> V.to_float v
  in
  ctx.Process.write "AnemoData" (V.Float (raw *. cfg "AnemoCfg"));
  ctx.Process.write "GPSData" (V.Float ((raw +. 0.01) *. cfg "GpsCfg"));
  ctx.Process.write "IRSData" (V.Float ((raw +. 0.02) *. cfg "IrsCfg"));
  ctx.Process.write "DopplerData" (V.Float ((raw -. 0.01) *. cfg "DopplerCfg"))

(* HighFreqBCP: fuse the four sensor readings into the best computed
   position, weighting per the BCP configuration. *)
let high_freq_bcp_body (ctx : Process.job_ctx) =
  let read name =
    match ctx.Process.read name with V.Absent -> 0.0 | v -> V.to_float v
  in
  let w =
    match ctx.Process.read "BcpCfg" with V.Absent -> 0.25 | v -> V.to_float v
  in
  let anemo = read "AnemoData"
  and gps = read "GPSData"
  and irs = read "IRSData"
  and doppler = read "DopplerData" in
  let bcp =
    (w *. gps) +. ((1.0 -. w) /. 3.0 *. (anemo +. irs +. doppler))
  in
  ctx.Process.write "BCPData" (V.Float bcp);
  ctx.Process.write "bcp_out" (V.Float bcp)

(* MagnDeclin: update the magnetic declination table.  In the reduced
   configuration the main body runs once per [stride] invocations, as in
   the paper's hyperperiod workaround. *)
let magn_declin_body ~stride (ctx : Process.job_ctx) =
  if (ctx.Process.job_index - 1) mod stride = 0 then begin
    let cfg =
      match ctx.Process.read "DeclinCfg" with
      | V.Absent -> 1.0
      | v -> V.to_float v
    in
    let table_index = 1 + ((ctx.Process.job_index - 1) / stride) in
    let declination = cfg *. 0.1 *. sin (float_of_int table_index) in
    ctx.Process.write "DeclinData" (V.Float declination)
  end

(* LowFreqBCP: long-term position consolidation with declination
   correction, feeding the performance predictor. *)
let low_freq_bcp_body (ctx : Process.job_ctx) =
  let bcp =
    match ctx.Process.read "BCPData" with V.Absent -> 0.0 | v -> V.to_float v
  in
  let declin =
    match ctx.Process.read "DeclinData" with
    | V.Absent -> 0.0
    | v -> V.to_float v
  in
  let consolidated = bcp +. declin in
  ctx.Process.write "PerformanceData" (V.Float consolidated);
  ctx.Process.write "lowfreq_out" (V.Float consolidated)

(* Performance: predict fuel usage from the consolidated position. *)
let performance_body (ctx : Process.job_ctx) =
  let pos =
    match ctx.Process.read "PerformanceData" with
    | V.Absent -> 0.0
    | v -> V.to_float v
  in
  let cfg =
    match ctx.Process.read "PerfCfg" with V.Absent -> 1.0 | v -> V.to_float v
  in
  let fuel = cfg *. (100.0 -. (0.35 *. pos)) in
  ctx.Process.write "perf_out" (V.Float fuel)

(* --- network -------------------------------------------------------- *)

let build ~magn_declin_period ~stride name =
  let b = Network.Builder.create name in
  let periodic name period body locals =
    Network.Builder.add_process b
      (Process.make ~locals ~name
         ~event:(Event.periodic ~period:(ms period) ~deadline:(ms period) ())
         (Process.Native body))
  in
  (* sporadic deadlines are 2·T_p so that d_p > T_u(p) holds and the
     server keeps the plain user period (no footnote-3 fraction) *)
  let sporadic name ~burst ~min_period body =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:
           (Event.sporadic ~burst ~min_period:(ms min_period)
              ~deadline:(ms (2 * min_period))
              ())
         (Process.Native body))
  in
  periodic "SensorInput" 200 sensor_input_body [];
  periodic "HighFreqBCP" 200 high_freq_bcp_body [];
  periodic "LowFreqBCP" 5000 low_freq_bcp_body [];
  periodic "MagnDeclin" magn_declin_period (magn_declin_body ~stride) [];
  periodic "Performance" 1000 performance_body [];
  sporadic "AnemoConfig" ~burst:2 ~min_period:200
    (config_body ~input:"anemo_cmd" ~channel:"AnemoCfg" ~scale:0.01);
  sporadic "GPSConfig" ~burst:2 ~min_period:200
    (config_body ~input:"gps_cmd" ~channel:"GpsCfg" ~scale:0.02);
  sporadic "IRSConfig" ~burst:2 ~min_period:200
    (config_body ~input:"irs_cmd" ~channel:"IrsCfg" ~scale:0.03);
  sporadic "DopplerConfig" ~burst:2 ~min_period:200
    (config_body ~input:"doppler_cmd" ~channel:"DopplerCfg" ~scale:0.04);
  sporadic "BCPConfig" ~burst:2 ~min_period:200
    (config_body ~input:"bcp_cmd" ~channel:"BcpCfg" ~scale:0.005);
  sporadic "MagnDeclinConfig" ~burst:5 ~min_period:1600
    (config_body ~input:"declin_cmd" ~channel:"DeclinCfg" ~scale:0.05);
  sporadic "PerformanceConfig" ~burst:5 ~min_period:1000
    (config_body ~input:"perf_cmd" ~channel:"PerfCfg" ~scale:0.06);
  let bb = Fppn.Channel.Blackboard in
  let chan ~writer ~reader name =
    Network.Builder.add_channel b ~kind:bb ~writer ~reader name
  in
  (* sensor fusion path (the named channels of Fig. 7) *)
  chan ~writer:"SensorInput" ~reader:"HighFreqBCP" "AnemoData";
  chan ~writer:"SensorInput" ~reader:"HighFreqBCP" "GPSData";
  chan ~writer:"SensorInput" ~reader:"HighFreqBCP" "IRSData";
  chan ~writer:"SensorInput" ~reader:"HighFreqBCP" "DopplerData";
  chan ~writer:"HighFreqBCP" ~reader:"LowFreqBCP" "BCPData";
  chan ~writer:"MagnDeclin" ~reader:"LowFreqBCP" "DeclinData";
  chan ~writer:"LowFreqBCP" ~reader:"Performance" "PerformanceData";
  (* configuration blackboards *)
  chan ~writer:"AnemoConfig" ~reader:"SensorInput" "AnemoCfg";
  chan ~writer:"GPSConfig" ~reader:"SensorInput" "GpsCfg";
  chan ~writer:"IRSConfig" ~reader:"SensorInput" "IrsCfg";
  chan ~writer:"DopplerConfig" ~reader:"SensorInput" "DopplerCfg";
  chan ~writer:"BCPConfig" ~reader:"HighFreqBCP" "BcpCfg";
  chan ~writer:"MagnDeclinConfig" ~reader:"MagnDeclin" "DeclinCfg";
  chan ~writer:"PerformanceConfig" ~reader:"Performance" "PerfCfg";
  (* functional priorities: rate-monotonic among periodic processes
     (dataflow direction on the 200 ms tie), users above sporadics *)
  let prio hi lo = Network.Builder.add_priority b hi lo in
  (* the periodic processes are totally ordered rate-monotonically
     (dataflow direction breaks the SensorInput/HighFreqBCP tie), as in
     the original uniprocessor prototype *)
  let periodic_rm_order =
    if magn_declin_period <= 1000 then
      [ "SensorInput"; "HighFreqBCP"; "MagnDeclin"; "Performance"; "LowFreqBCP" ]
    else
      [ "SensorInput"; "HighFreqBCP"; "Performance"; "MagnDeclin"; "LowFreqBCP" ]
  in
  let rec all_pairs = function
    | [] -> ()
    | hi :: rest ->
      List.iter (fun lo -> prio hi lo) rest;
      all_pairs rest
  in
  all_pairs periodic_rm_order;
  prio "SensorInput" "AnemoConfig";
  prio "SensorInput" "GPSConfig";
  prio "SensorInput" "IRSConfig";
  prio "SensorInput" "DopplerConfig";
  prio "HighFreqBCP" "BCPConfig";
  prio "MagnDeclin" "MagnDeclinConfig";
  prio "Performance" "PerformanceConfig";
  (* external I/O *)
  Network.Builder.add_input b ~owner:"SensorInput" "sensor_bus";
  Network.Builder.add_input b ~owner:"AnemoConfig" "anemo_cmd";
  Network.Builder.add_input b ~owner:"GPSConfig" "gps_cmd";
  Network.Builder.add_input b ~owner:"IRSConfig" "irs_cmd";
  Network.Builder.add_input b ~owner:"DopplerConfig" "doppler_cmd";
  Network.Builder.add_input b ~owner:"BCPConfig" "bcp_cmd";
  Network.Builder.add_input b ~owner:"MagnDeclinConfig" "declin_cmd";
  Network.Builder.add_input b ~owner:"PerformanceConfig" "perf_cmd";
  Network.Builder.add_output b ~owner:"HighFreqBCP" "bcp_out";
  Network.Builder.add_output b ~owner:"LowFreqBCP" "lowfreq_out";
  Network.Builder.add_output b ~owner:"Performance" "perf_out";
  Network.Builder.finish_exn b

let original () = build ~magn_declin_period:1600 ~stride:1 "fms-original"
let reduced () = build ~magn_declin_period:400 ~stride:4 "fms-reduced"

(* Synthetic per-process budgets tuned so that the reduced task graph's
   load is ≈ 0.23, the value the paper reports for the profiled FMS. *)
let wcet =
  Taskgraph.Derive.wcet_of_list (ms 1)
    [
      ("SensorInput", ms 4);
      ("HighFreqBCP", ms 6);
      ("LowFreqBCP", ms 22);
      ("MagnDeclin", ms 7);
      ("Performance", ms 11);
    ]

let random_config_traces ~seed ~horizon ~density net =
  let prng = Rt_util.Prng.create seed in
  List.map
    (fun name ->
      let p = Network.find net name in
      let ev = Process.event (Network.process net p) in
      (name, Event.random_sporadic_trace ev (Rt_util.Prng.split prng) ~horizon ~density))
    sporadic_processes

let rm_priorities net =
  let n = Network.n_processes net in
  let ids = List.init n Fun.id in
  let sorted =
    List.sort
      (fun a b ->
        let pa = Network.process net a and pb = Network.process net b in
        let c = Rat.compare (Process.period pa) (Process.period pb) in
        if c <> 0 then c
        else
          let c = Int.compare (Network.fp_rank net a) (Network.fp_rank net b) in
          if c <> 0 then c
          else String.compare (Process.name pa) (Process.name pb))
      ids
  in
  List.mapi (fun prio p -> (Process.name (Network.process net p), prio)) sorted
