(** The avionics case study of Sec. V-B: a subsystem of a Flight
    Management System (Fig. 7) computing the best computed position
    (BCP) and predicting aircraft performance from sensor data and
    sporadic pilot configuration commands.

    Twelve processes: five periodic — SensorInput (200 ms), HighFreqBCP
    (200 ms), LowFreqBCP (5000 ms), MagnDeclin (1600 ms), Performance
    (1000 ms) — and seven sporadic configuration processes: AnemoConfig,
    GPSConfig, IRSConfig, DopplerConfig, BCPConfig (2 per 200 ms each),
    MagnDeclinConfig (5 per 1600 ms), PerformanceConfig (5 per 1000 ms).

    As in the paper, sporadic processes have {e lower} functional
    priority than their periodic users, and the relative priority of the
    periodic processes is rate-monotonic.

    The original hyperperiod is 40 s; {!reduced} applies the paper's
    workaround — MagnDeclin's period shrinks from 1600 ms to 400 ms and
    its main body executes once per four invocations — giving a 10 s
    hyperperiod and a task graph of 812 jobs.

    The paper does not publish per-process WCETs (they were profiled);
    {!wcet} is a synthetic profile chosen so the derived task-graph load
    lands at the reported ≈ 0.23.  Sporadic deadlines, also unpublished,
    are set to [2·T_p] so that the server-deadline correction
    [d_p − T_u(p)] stays positive with the plain user period. *)

val original : unit -> Fppn.Network.t
(** MagnDeclin at 1600 ms (40 s hyperperiod). *)

val reduced : unit -> Fppn.Network.t
(** MagnDeclin at 400 ms, main body once per 4 invocations (10 s
    hyperperiod, 812 jobs — the configuration actually evaluated). *)

val wcet : Taskgraph.Derive.wcet_map

val sporadic_processes : string list
(** Names of the seven configuration processes. *)

val random_config_traces :
  seed:int -> horizon:Rt_util.Rat.t -> density:float -> Fppn.Network.t ->
  (string * Rt_util.Rat.t list) list
(** Random pilot-command traces for every sporadic process, respecting
    each generator's [(m, T)] constraint. *)

val rm_priorities : Fppn.Network.t -> (string * int) list
(** The rate-monotonic priority assignment of the original uniprocessor
    prototype (smaller = higher). *)
