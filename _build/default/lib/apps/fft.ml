module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

type params = { n : int; period_ms : int; wcet : Rat.t }

let default_params = { n = 8; period_ms = 200; wcet = Rat.make 133 10 }

let log2_exact n =
  let rec loop n acc =
    if n = 1 then acc
    else if n land 1 = 1 then invalid_arg "Fft: n must be a power of two"
    else loop (n lsr 1) (acc + 1)
  in
  if n < 2 then invalid_arg "Fft: n must be >= 2" else loop n 0

let n_processes p = 2 + (log2_exact p.n * p.n / 2)

let bit_reverse ~bits i =
  let rec loop i acc k =
    if k = 0 then acc else loop (i lsr 1) ((acc lsl 1) lor (i land 1)) (k - 1)
  in
  loop i 0 bits

(* channel carrying position [pos] of the intermediate vector after
   [stage] (stage 0 = generator output, already bit-reversed) *)
let ch stage pos = Printf.sprintf "s%d_p%d" stage pos

let generator_name = "generator"
let consumer_name = "consumer"
let butterfly_name stage b = Printf.sprintf "FFT2_%d_%d" stage b

(* Butterflies of stage s (1-based): pairs (p1, p2) and twiddle exponent. *)
let butterflies_of_stage ~n s =
  let span = 1 lsl s in
  let half = span / 2 in
  let result = ref [] in
  let k = ref 0 in
  while !k < n do
    for j = 0 to half - 1 do
      result := (!k + j, !k + j + half, j, span) :: !result
    done;
    k := !k + span
  done;
  List.rev !result

let complex_of v = V.to_complex v

let twiddle ~j ~span =
  let angle = -2.0 *. Float.pi *. float_of_int j /. float_of_int span in
  (cos angle, sin angle)

let cmul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))
let cadd (ar, ai) (br, bi) = (ar +. br, ai +. bi)
let csub (ar, ai) (br, bi) = (ar -. br, ai -. bi)

let default_block ~n k =
  (* deterministic multi-tone test signal, distinct per block *)
  List.init n (fun i ->
      let t = float_of_int i /. float_of_int n in
      let f = float_of_int (1 + (k mod (n / 2))) in
      V.complex
        (cos (2.0 *. Float.pi *. f *. t) +. (0.25 *. float_of_int (k mod 3)))
        (0.5 *. sin (2.0 *. Float.pi *. f *. t)))

let generator_body ~n ~bits (ctx : Process.job_ctx) =
  let block =
    match ctx.Process.read "fft_in" with
    | V.Absent -> V.List (default_block ~n ctx.Process.job_index)
    | v -> v
  in
  let samples = Array.of_list (V.to_list block) in
  if Array.length samples <> n then
    invalid_arg "Fft.generator: input block has the wrong length";
  (* distribute in bit-reversed order: position p receives x[bitrev p] *)
  for p = 0 to n - 1 do
    ctx.Process.write (ch 0 p) samples.(bit_reverse ~bits p)
  done

let butterfly_body ~stage ~p1 ~p2 ~j ~span (ctx : Process.job_ctx) =
  let read pos =
    match ctx.Process.read (ch (stage - 1) pos) with
    | V.Absent -> (0.0, 0.0)
    | v -> complex_of v
  in
  let u = read p1 and t = read p2 in
  let wt = cmul (twiddle ~j ~span) t in
  let a = cadd u wt and b = csub u wt in
  ctx.Process.write (ch stage p1) (V.complex (fst a) (snd a));
  ctx.Process.write (ch stage p2) (V.complex (fst b) (snd b))

let consumer_body ~n ~stages (ctx : Process.job_ctx) =
  let bins =
    List.init n (fun p ->
        match ctx.Process.read (ch stages p) with
        | V.Absent -> V.complex 0.0 0.0
        | v -> v)
  in
  ctx.Process.write "spectrum" (V.List bins)

let network p =
  let stages = log2_exact p.n in
  let bits = stages in
  let event =
    Event.periodic
      ~period:(Rat.of_int p.period_ms)
      ~deadline:(Rat.of_int p.period_ms)
      ()
  in
  let b = Network.Builder.create (Printf.sprintf "fft%d" p.n) in
  let add name body =
    Network.Builder.add_process b (Process.make ~name ~event (Process.Native body))
  in
  add generator_name (generator_body ~n:p.n ~bits);
  for s = 1 to stages do
    List.iteri
      (fun bidx (p1, p2, j, span) ->
        add
          (butterfly_name (s - 1) bidx)
          (butterfly_body ~stage:s ~p1 ~p2 ~j ~span))
      (butterflies_of_stage ~n:p.n s)
  done;
  add consumer_name (consumer_body ~n:p.n ~stages);
  (* channels + aligned functional priorities: data flow order *)
  let owner_of_pos = Array.make p.n generator_name in
  for s = 1 to stages do
    List.iteri
      (fun bidx (p1, p2, _, _) ->
        let reader = butterfly_name (s - 1) bidx in
        List.iter
          (fun pos ->
            let writer = owner_of_pos.(pos) in
            Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer
              ~reader
              (ch (s - 1) pos);
            if not (writer = reader) then
              Network.Builder.add_priority b writer reader)
          [ p1; p2 ])
      (butterflies_of_stage ~n:p.n s);
    (* after scheduling stage s, its butterflies own their positions *)
    List.iteri
      (fun bidx (p1, p2, _, _) ->
        owner_of_pos.(p1) <- butterfly_name (s - 1) bidx;
        owner_of_pos.(p2) <- butterfly_name (s - 1) bidx)
      (butterflies_of_stage ~n:p.n s)
  done;
  for pos = 0 to p.n - 1 do
    let writer = owner_of_pos.(pos) in
    Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer
      ~reader:consumer_name (ch stages pos);
    Network.Builder.add_priority b writer consumer_name
  done;
  Network.Builder.add_input b ~owner:generator_name "fft_in";
  Network.Builder.add_output b ~owner:consumer_name "spectrum";
  Network.Builder.finish_exn b

let wcet_map p = Taskgraph.Derive.const_wcet p.wcet

let overhead_process = "runtime_overhead"

let network_with_overhead_job p =
  (* identical network plus a do-nothing highest-priority process whose
     WCET stands for the frame-management overhead *)
  let base = network p in
  let b = Network.Builder.create (Printf.sprintf "fft%d+overhead" p.n) in
  let event =
    Event.periodic
      ~period:(Rat.of_int p.period_ms)
      ~deadline:(Rat.of_int p.period_ms)
      ()
  in
  Network.Builder.add_process b
    (Process.make ~name:overhead_process ~event (Process.Native (fun _ -> ())));
  Array.iter (Network.Builder.add_process b) (Network.processes base);
  List.iter
    (fun (c : Network.channel_decl) ->
      Network.Builder.add_channel b ?init:c.Network.init ~kind:c.Network.ch_kind
        ~writer:c.Network.writer ~reader:c.Network.reader c.Network.ch_name)
    (Network.channels base);
  List.iter
    (fun (hi, lo) ->
      Network.Builder.add_priority b
        (Process.name (Network.process base hi))
        (Process.name (Network.process base lo)))
    (Network.fp_edges base);
  Network.Builder.add_priority b overhead_process generator_name;
  List.iter
    (fun (io : Network.io_decl) ->
      match io.Network.dir with
      | Network.In -> Network.Builder.add_input b ~owner:io.Network.owner io.Network.io_name
      | Network.Out -> Network.Builder.add_output b ~owner:io.Network.owner io.Network.io_name)
    (Network.inputs base @ Network.outputs base);
  Network.Builder.finish_exn b

let wcet_map_with_overhead p ~overhead name =
  if name = overhead_process then overhead else p.wcet

let input_feed p ~frames =
  Fppn.Netstate.feed_of_list
    [ ("fft_in", List.init frames (fun i -> V.List (default_block ~n:p.n (i + 1)))) ]

let impulse_feed p =
  let impulse =
    V.List
      (List.init p.n (fun i -> if i = 0 then V.complex 1.0 0.0 else V.complex 0.0 0.0))
  in
  fun channel k ->
    if channel = "fft_in" && k = 1 then impulse
    else if channel = "fft_in" then
      V.List (List.init p.n (fun _ -> V.complex 0.0 0.0))
    else V.Absent

let reference_dft x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref (0.0, 0.0) in
      for t = 0 to n - 1 do
        let angle = -2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
        acc := cadd !acc (cmul x.(t) (cos angle, sin angle))
      done;
      !acc)

let spectrum_of_output v = Array.of_list (List.map complex_of (V.to_list v))
