(** Random FPPN workload generator for stress tests and benchmark
    sweeps.

    Generated networks always satisfy Def. 2.1 (FP DAG covering every
    channel pair) and the Sec. III-A scheduling subclass (every sporadic
    process has a single periodic user of no larger period, and a
    deadline exceeding the user period).  Process bodies are generic:
    read every input channel, combine with the invocation index, write
    every output channel — enough to exercise determinism checks. *)

type params = {
  seed : int;
  n_periodic : int;  (** >= 1 *)
  n_sporadic : int;
  periods : int list;  (** candidate periods (ms); keep their lcm small *)
  channel_density : float;
      (** probability that an ordered periodic pair gets a channel *)
  max_burst : int;  (** sporadic burst drawn from [1..max_burst] *)
}

val default_params : params

val network : params -> Fppn.Network.t
(** Deterministic in [params.seed]. *)

val wcet : scale:Rt_util.Rat.t -> Taskgraph.Derive.wcet_map -> Fppn.Network.t -> Taskgraph.Derive.wcet_map
(** [wcet ~scale fallback net] assigns each process
    [scale · T_p], falling back to [fallback] for unknown names. *)

val sporadic_names : Fppn.Network.t -> string list

val random_traces :
  seed:int ->
  horizon:Rt_util.Rat.t ->
  density:float ->
  Fppn.Network.t ->
  (string * Rt_util.Rat.t list) list
(** Valid random event traces for all sporadic processes. *)
