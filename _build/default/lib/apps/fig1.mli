(** The running example of the paper (Fig. 1): an imaginary signal
    processing application with a 200 ms input sample period,
    reconfigurable filter coefficients (the sporadic process CoefB) and
    a feedback loop (NormA → FilterA).

    Processes: InputA (200 ms), FilterA (100 ms), FilterB (200 ms),
    OutputA (200 ms), NormA (200 ms), OutputB (100 ms) — periodic — and
    CoefB, sporadic with burst 2 per 700 ms.

    Its derived task graph is the paper's Fig. 3 (10 jobs over the
    200 ms hyperperiod, with the InputA→NormA edge removed as redundant)
    and its 2-processor schedule is Fig. 4. *)

val network : unit -> Fppn.Network.t

val wcet : Taskgraph.Derive.wcet_map
(** 25 ms for every process, as assumed in Fig. 3. *)

val input_feed : samples:int -> Fppn.Netstate.input_feed
(** Deterministic external stimulus: sample [k] of ["in_samples"] is
    [Float (sin k)]-ish test data; ["coef_commands"] yields filter
    coefficients.  [samples] bounds the feed length. *)

(** Channel names, for assertions in tests. *)

val ch_input_to_filter_a : string
val ch_input_to_filter_b : string
val ch_filter_a_to_norm : string
val ch_norm_to_filter_a : string
val ch_filter_a_to_output : string
val ch_filter_b_to_output : string
val ch_coef_to_filter_b : string
