module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

let ms = Rat.of_int

let sporadic_processes = [ "KnockSensor"; "DriverRequest" ]

(* --- behaviors -------------------------------------------------------- *)

let crank_body (ctx : Process.job_ctx) =
  let raw =
    match ctx.Process.read "crank" with
    | V.Absent -> 3000.0 +. (50.0 *. sin (0.1 *. float_of_int ctx.Process.job_index))
    | v -> V.to_float v
  in
  ctx.Process.write "speed" (V.Float raw);
  ctx.Process.write "speed_ign" (V.Float raw)

let injection_body (ctx : Process.job_ctx) =
  let speed =
    match ctx.Process.read "speed" with V.Absent -> 0.0 | v -> V.to_float v
  in
  let mixture =
    match ctx.Process.read "mixture" with V.Absent -> 1.0 | v -> V.to_float v
  in
  let pedal_map =
    match ctx.Process.read "pedal_map" with V.Absent -> 1.0 | v -> V.to_float v
  in
  (* pulse width: base map scaled by enrichment and pedal demand *)
  let pulse = speed /. 1000.0 *. mixture *. pedal_map in
  ctx.Process.write "pulse" (V.Float pulse)

let injector_out_body (ctx : Process.job_ctx) =
  match ctx.Process.read "pulse" with
  | V.Absent -> ()
  | v -> ctx.Process.write "injector" v

let ignition_body (ctx : Process.job_ctx) =
  let speed =
    match ctx.Process.read "speed_ign" with V.Absent -> 0.0 | v -> V.to_float v
  in
  let retard =
    match ctx.Process.read "knock_cfg" with V.Absent -> 0.0 | v -> V.to_float v
  in
  (* spark advance pulled back by the latest knock severity *)
  ctx.Process.write "ignition" (V.Float ((speed /. 100.0) -. retard))

let temp_body (ctx : Process.job_ctx) =
  let coolant =
    match ctx.Process.read "coolant" with
    | V.Absent -> 80.0 +. (0.5 *. float_of_int (ctx.Process.job_index mod 7))
    | v -> V.to_float v
  in
  ctx.Process.write "temp" (V.Float coolant)

let thermal_body (ctx : Process.job_ctx) =
  let temp =
    match ctx.Process.read "temp" with V.Absent -> 80.0 | v -> V.to_float v
  in
  (* cold engine -> richer mixture *)
  let mixture = if temp < 70.0 then 1.2 else 1.0 +. ((90.0 -. temp) /. 200.0) in
  ctx.Process.write "mixture" (V.Float mixture)

let knock_body (ctx : Process.job_ctx) =
  (* each event reports a knock severity; the controller keeps the last *)
  ctx.Process.write "knock_cfg"
    (V.Float (0.5 +. (0.25 *. float_of_int (ctx.Process.job_index mod 3))))

let driver_body (ctx : Process.job_ctx) =
  ctx.Process.write "pedal_map"
    (V.Float (1.0 +. (0.1 *. float_of_int (ctx.Process.job_index mod 5))))

(* --- network ----------------------------------------------------------- *)

let network () =
  let b = Network.Builder.create "engine-management" in
  let periodic name period body =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:(Event.periodic ~period:(ms period) ~deadline:(ms period) ())
         (Process.Native body))
  in
  periodic "CrankSensor" 10 crank_body;
  periodic "InjectionCtrl" 10 injection_body;
  periodic "InjectorOut" 10 injector_out_body;
  periodic "IgnitionCtrl" 20 ignition_body;
  periodic "TempSensor" 100 temp_body;
  periodic "ThermalModel" 200 thermal_body;
  Network.Builder.add_process b
    (Process.make ~name:"KnockSensor"
       ~event:(Event.sporadic ~burst:3 ~min_period:(ms 20) ~deadline:(ms 40) ())
       (Process.Native knock_body));
  Network.Builder.add_process b
    (Process.make ~name:"DriverRequest"
       ~event:(Event.sporadic ~min_period:(ms 50) ~deadline:(ms 100) ())
       (Process.Native driver_body));
  let bb = Fppn.Channel.Blackboard and fifo = Fppn.Channel.Fifo in
  let chan kind ~writer ~reader name =
    Network.Builder.add_channel b ~kind ~writer ~reader name
  in
  chan bb ~writer:"CrankSensor" ~reader:"InjectionCtrl" "speed";
  chan bb ~writer:"CrankSensor" ~reader:"IgnitionCtrl" "speed_ign";
  chan fifo ~writer:"InjectionCtrl" ~reader:"InjectorOut" "pulse";
  chan bb ~writer:"TempSensor" ~reader:"ThermalModel" "temp";
  chan bb ~writer:"ThermalModel" ~reader:"InjectionCtrl" "mixture";
  chan bb ~writer:"KnockSensor" ~reader:"IgnitionCtrl" "knock_cfg";
  chan bb ~writer:"DriverRequest" ~reader:"InjectionCtrl" "pedal_map";
  let prio hi lo = Network.Builder.add_priority b hi lo in
  prio "CrankSensor" "InjectionCtrl";
  prio "CrankSensor" "IgnitionCtrl";
  prio "InjectionCtrl" "InjectorOut";
  prio "TempSensor" "ThermalModel";
  (* the fast loop reads the previous mixture: reader above writer, as
     the FMS orders Performance above LowFreqBCP *)
  prio "InjectionCtrl" "ThermalModel";
  (* sporadic sensors below their periodic users, as in the FMS *)
  prio "IgnitionCtrl" "KnockSensor";
  prio "InjectionCtrl" "DriverRequest";
  Network.Builder.add_input b ~owner:"CrankSensor" "crank";
  Network.Builder.add_input b ~owner:"TempSensor" "coolant";
  Network.Builder.add_output b ~owner:"InjectorOut" "injector";
  Network.Builder.add_output b ~owner:"IgnitionCtrl" "ignition";
  Network.Builder.finish_exn b

let wcet =
  Taskgraph.Derive.wcet_of_list (Rat.make 1 2)
    [
      ("CrankSensor", ms 1);
      ("InjectionCtrl", ms 2);
      ("InjectorOut", ms 1);
      ("IgnitionCtrl", ms 2);
      ("TempSensor", ms 2);
      ("ThermalModel", ms 3);
    ]

let knock_burst ~horizon =
  let knock =
    (* a 3-event burst at 55 ms and again every 60 ms after *)
    let rec bursts t acc =
      if Rat.(t >= horizon) then List.rev acc
      else bursts (Rat.add t (ms 60)) (t :: t :: t :: acc)
    in
    bursts (ms 55) []
  in
  let driver =
    let rec events t acc =
      if Rat.(t >= horizon) then List.rev acc
      else events (Rat.add t (ms 90)) (t :: acc)
    in
    events (ms 15) []
  in
  [ ("KnockSensor", knock); ("DriverRequest", driver) ]

let input_feed channel k =
  match channel with
  | "crank" -> V.Float 3000.0
  | "coolant" -> V.Float (60.0 +. (0.8 *. float_of_int (min k 40)))
  | _ -> V.Absent
