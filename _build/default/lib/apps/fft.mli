(** The streaming use case of Sec. V-A: a radix-2 FFT implemented as an
    FPPN, in the shape of Fig. 5 — a generator, [log2 n] stages of
    [n/2] butterfly processes ([FFT2_s_b]), and a consumer.

    With [n = 8] (four complex samples, i.e. "four floating-point
    numbers" in the paper's complex-pair reading) the grid is 3 stages ×
    4 butterflies: 14 processes = 14 jobs per frame, exactly the job
    count whose arrival management cost 20 ms per frame on the MPPA.

    All processes share the same period and deadline
    ([T_p = d_p = 200] ms); FIFO data flow coincides with functional
    priority, so the task graph maps one-to-one to the process network
    graph. *)

type params = {
  n : int;  (** FFT size, a power of two, >= 2 *)
  period_ms : int;  (** [T_p = d_p], 200 in the paper *)
  wcet : Rt_util.Rat.t;  (** per-process WCET; the paper measured ~14 ms,
      and reports load 0.93, i.e. ~13.3 ms *)
}

val default_params : params
(** n = 8, 200 ms, WCET 13.3 ms (load 0.93 on the 14-job graph). *)

val network : params -> Fppn.Network.t

val wcet_map : params -> Taskgraph.Derive.wcet_map

val overhead_process : string
(** Name of the synthetic runtime-overhead process added by
    {!network_with_overhead_job}. *)

val network_with_overhead_job : params -> Fppn.Network.t
(** Sec. V-A's accounting trick: the per-frame arrival-management
    overhead is modelled as an extra highest-priority job with a
    precedence edge directed to the generator.  Use
    {!wcet_map_with_overhead} so the extra process carries the measured
    overhead (41 ms for the MPPA first frame). *)

val wcet_map_with_overhead :
  params -> overhead:Rt_util.Rat.t -> Taskgraph.Derive.wcet_map

val n_processes : params -> int
(** [2 + log2 n · n/2]. *)

val input_feed : params -> frames:int -> Fppn.Netstate.input_feed
(** Feeds ["fft_in"] with a deterministic complex test signal; sample
    [k] is the [k]-th input block ([List] of [n] complex pairs). *)

val impulse_feed : params -> Fppn.Netstate.input_feed
(** Block 1 is a unit impulse, later blocks are zero — the FFT of an
    impulse is flat, which makes output checking trivial. *)

val reference_dft : (float * float) array -> (float * float) array
(** Naive O(n²) DFT used as ground truth in tests. *)

val spectrum_of_output : Fppn.Value.t -> (float * float) array
(** Decode one ["spectrum"] output sample back into complex bins. *)
