(** Automotive engine-management workload.

    The paper's industry motivation cites the introduction of multi-core
    at automotive engine systems (ref. [3], Claraz et al., ERTSS'14) —
    exactly the domain where functional determinism matters for control
    stability and for testing.  This module provides a representative
    engine-management FPPN:

    - a fast fuel-injection loop: CrankSensor → InjectionCtrl →
      InjectorOut at 10 ms;
    - a knock-protection path: sporadic KnockSensor events (bursty: up
      to 3 per 20 ms) retarding the ignition through IgnitionCtrl
      (20 ms);
    - slow thermal management: TempSensor (100 ms) → ThermalModel
      (200 ms) adjusting a mixture-enrichment blackboard read by the
      injection controller;
    - a sporadic DriverRequest (pedal map switches, ≤ 1 per 50 ms)
      configuring InjectionCtrl.

    Periods share a 200 ms hyperperiod.  Functional priorities follow
    the data flow and rate-monotonic order; sporadic processes sit below
    their users, as in the FMS case study. *)

val network : unit -> Fppn.Network.t

val wcet : Taskgraph.Derive.wcet_map
(** Budgets that land the task-graph load around 0.6 on one core —
    tight enough that the 2-core mapping is the natural deployment. *)

val sporadic_processes : string list
(** [KnockSensor; DriverRequest]. *)

val knock_burst : horizon:Rt_util.Rat.t -> (string * Rt_util.Rat.t list) list
(** A deterministic stress trace: knock bursts around every 60 ms plus
    sparse driver requests — valid for both generators. *)

val input_feed : Fppn.Netstate.input_feed
(** Deterministic crank/temperature signals. *)
