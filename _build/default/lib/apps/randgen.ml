module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

type params = {
  seed : int;
  n_periodic : int;
  n_sporadic : int;
  periods : int list;
  channel_density : float;
  max_burst : int;
}

let default_params =
  {
    seed = 42;
    n_periodic = 8;
    n_sporadic = 3;
    periods = [ 100; 200; 400; 800 ];
    channel_density = 0.3;
    max_burst = 2;
  }

(* Generic body: fold all inputs with the job index, write everywhere. *)
let generic_body ~ins ~outs (ctx : Process.job_ctx) =
  let combine acc c =
    match ctx.Process.read c with
    | V.Absent -> acc
    | V.Int n -> acc + n
    | V.Float f -> acc + int_of_float f
    | _ -> acc + 1
  in
  let acc = List.fold_left combine ctx.Process.job_index ins in
  List.iter (fun c -> ctx.Process.write c (V.Int acc)) outs

(* The same behavior as a Def. 2.2 automaton, so random workloads also
   exercise the formal-automaton execution path. *)
let generic_automaton ~ins ~outs =
  let module A = Fppn.Automaton in
  let read_locs = List.mapi (fun i c -> (Printf.sprintf "r%d" i, c)) ins in
  let sum_expr =
    List.fold_left
      (fun acc (v, _) ->
        (* absent reads contribute 0 via a guarded helper variable *)
        A.Add (acc, A.Var (v ^ "_n")))
      (A.Add (A.Var "k", A.Const (V.Int 0)))
      read_locs
  in
  let transitions =
    (* entry: bump the job counter *)
    [ {
        A.src = "start";
        guard = A.Const (V.Bool true);
        actions = [ A.Assign ("k", A.Add (A.Var "k", A.Const (V.Int 1))) ];
        dst = (match read_locs with [] -> "emit" | (l, _) :: _ -> l);
      } ]
    @ List.concat
        (List.mapi
           (fun i (l, c) ->
             let next =
               match List.nth_opt read_locs (i + 1) with
               | Some (l', _) -> l'
               | None -> "emit"
             in
             [
               {
                 A.src = l;
                 guard = A.Const (V.Bool true);
                 actions = [ A.Read (l ^ "_raw", c) ];
                 dst = l ^ "_norm";
               };
               {
                 A.src = l ^ "_norm";
                 guard = A.Avail (l ^ "_raw");
                 actions = [ A.Assign (l ^ "_n", A.Var (l ^ "_raw")) ];
                 dst = next;
               };
               {
                 A.src = l ^ "_norm";
                 guard = A.Not (A.Avail (l ^ "_raw"));
                 actions = [ A.Assign (l ^ "_n", A.Const (V.Int 0)) ];
                 dst = next;
               };
             ])
           read_locs)
    @ [ {
          A.src = "emit";
          guard = A.Const (V.Bool true);
          actions = List.map (fun c -> A.Write (c, sum_expr)) outs;
          dst = "start";
        } ]
  in
  let vars =
    ("k", V.Int 0)
    :: List.concat_map
         (fun (l, _) -> [ (l ^ "_raw", V.Absent); (l ^ "_n", V.Int 0) ])
         read_locs
  in
  Process.Automaton (A.make ~initial:"start" ~vars ~transitions)

let periodic_name i = Printf.sprintf "P%d" i
let sporadic_name i = Printf.sprintf "S%d" i
let channel_name w r = Printf.sprintf "ch_%s_%s" w r

let network p =
  if p.n_periodic < 1 then invalid_arg "Randgen.network: need >= 1 periodic";
  if p.periods = [] then invalid_arg "Randgen.network: empty period menu";
  let prng = Prng.create p.seed in
  let periods =
    Array.init p.n_periodic (fun _ -> Prng.pick prng p.periods)
  in
  (* channels between forward-ordered periodic pairs *)
  let channels = ref [] in
  for i = 0 to p.n_periodic - 1 do
    for j = i + 1 to p.n_periodic - 1 do
      if Prng.float prng 1.0 < p.channel_density then
        channels :=
          (periodic_name i, periodic_name j, Prng.bool prng) :: !channels
    done
  done;
  let channels = List.rev !channels in
  (* sporadic processes: user, burst, min period (multiple of the user's) *)
  let sporadics =
    List.init p.n_sporadic (fun s ->
        let user = Prng.int prng p.n_periodic in
        let burst = Prng.int_in prng 1 p.max_burst in
        let factor = Prng.int_in prng 1 3 in
        let higher_than_user = Prng.bool prng in
        (sporadic_name s, user, burst, periods.(user) * factor, higher_than_user))
  in
  let b = Network.Builder.create (Printf.sprintf "random%d" p.seed) in
  (* in/out channel names per process, to instantiate the generic body *)
  let ins = Hashtbl.create 16 and outs = Hashtbl.create 16 in
  let push tbl key v =
    let prev = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (prev @ [ v ])
  in
  List.iter
    (fun (w, r, _) ->
      push outs w (channel_name w r);
      push ins r (channel_name w r))
    channels;
  List.iter
    (fun (s, user, _, _, _) ->
      push outs s (channel_name s (periodic_name user));
      push ins (periodic_name user) (channel_name s (periodic_name user)))
    sporadics;
  (* every third process gets the automaton encoding of the behavior,
     so random workloads also cover the Def. 2.2 execution path *)
  let behavior_of idx name =
    let ins = try Hashtbl.find ins name with Not_found -> [] in
    let outs = try Hashtbl.find outs name with Not_found -> [] in
    if idx mod 3 = 2 then generic_automaton ~ins ~outs
    else Process.Native (generic_body ~ins ~outs)
  in
  for i = 0 to p.n_periodic - 1 do
    let name = periodic_name i in
    Network.Builder.add_process b
      (Process.make ~name
         ~event:
           (Event.periodic
              ~period:(Rat.of_int periods.(i))
              ~deadline:(Rat.of_int periods.(i))
              ())
         (behavior_of i name))
  done;
  List.iteri
    (fun i (name, _, burst, min_period, _) ->
      Network.Builder.add_process b
        (Process.make ~name
           ~event:
             (Event.sporadic ~burst
                ~min_period:(Rat.of_int min_period)
                ~deadline:(Rat.of_int (2 * min_period))
                ())
           (behavior_of (i + 1) name)))
    sporadics;
  List.iter
    (fun (w, r, fifo) ->
      Network.Builder.add_channel b
        ~kind:(if fifo then Fppn.Channel.Fifo else Fppn.Channel.Blackboard)
        ~writer:w ~reader:r (channel_name w r);
      Network.Builder.add_priority b w r)
    channels;
  List.iter
    (fun (s, user, _, _, higher) ->
      let u = periodic_name user in
      Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:s
        ~reader:u (channel_name s u);
      if higher then Network.Builder.add_priority b s u
      else Network.Builder.add_priority b u s)
    sporadics;
  Network.Builder.finish_exn b

let wcet ~scale fallback net name =
  match
    (try Some (Network.find net name) with Not_found -> None)
  with
  | Some p -> Rat.mul scale (Process.period (Network.process net p))
  | None -> fallback name

let sporadic_names net =
  Array.to_list (Network.processes net)
  |> List.filter Process.is_sporadic
  |> List.map Process.name

let random_traces ~seed ~horizon ~density net =
  let prng = Prng.create seed in
  List.map
    (fun name ->
      let p = Network.find net name in
      let ev = Process.event (Network.process net p) in
      (name, Event.random_sporadic_trace ev (Prng.split prng) ~horizon ~density))
    (sporadic_names net)
