lib/apps/fft.mli: Fppn Rt_util Taskgraph
