lib/apps/fms.ml: Fppn Fun Int List Rt_util String Taskgraph
