lib/apps/fig1.mli: Fppn Taskgraph
