lib/apps/automotive.ml: Fppn List Rt_util Taskgraph
