lib/apps/randgen.mli: Fppn Rt_util Taskgraph
