lib/apps/fms.mli: Fppn Rt_util Taskgraph
