lib/apps/randgen.ml: Array Fppn Hashtbl List Printf Rt_util
