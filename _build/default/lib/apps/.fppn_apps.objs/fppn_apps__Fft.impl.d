lib/apps/fft.ml: Array Float Fppn List Printf Rt_util Taskgraph
