lib/apps/fig1.ml: Float Fppn List Rt_util Taskgraph
