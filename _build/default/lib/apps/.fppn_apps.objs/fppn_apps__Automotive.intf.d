lib/apps/automotive.mli: Fppn Rt_util Taskgraph
