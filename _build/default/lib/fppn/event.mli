(** Event generators (Sec. II-A).

    Both kinds are parameterized by the burst size [m_e] and the period
    [T_e].  A multi-periodic generator produces a burst of [m_e]
    simultaneous events at times [0, T_e, 2·T_e, …].  A sporadic
    generator produces at most [m_e] events in any half-closed interval
    of length [T_e].  Every generator carries the relative deadline
    [d_e] for the jobs it invokes. *)

type kind = Periodic | Sporadic

type t = private {
  kind : kind;
  burst : int;           (** [m_e >= 1] *)
  period : Rt_util.Rat.t;(** [T_e > 0]; minimum inter-burst separation for sporadic *)
  deadline : Rt_util.Rat.t; (** [d_e > 0], relative *)
}

val periodic : ?burst:int -> period:Rt_util.Rat.t -> deadline:Rt_util.Rat.t -> unit -> t
(** @raise Invalid_argument on non-positive period/deadline or burst < 1. *)

val sporadic : ?burst:int -> min_period:Rt_util.Rat.t -> deadline:Rt_util.Rat.t -> unit -> t

val is_sporadic : t -> bool

val pp : Format.formatter -> t -> unit
(** E.g. ["periodic 200ms"] or ["sporadic 2 per 700ms"] as in Fig. 1. *)

val periodic_invocations : t -> horizon:Rt_util.Rat.t -> Rt_util.Rat.t list
(** Invocation time stamps in [\[0, horizon)], each burst expanded to
    [m_e] equal stamps, ascending.
    @raise Invalid_argument on a sporadic generator. *)

val count_periodic_jobs : t -> horizon:Rt_util.Rat.t -> int
(** [m_e · ⌈horizon / T_e⌉] for horizon a multiple of the period. *)

val is_valid_sporadic_trace : t -> Rt_util.Rat.t list -> bool
(** Checks the sporadic constraint: stamps ascending, non-negative, and
    at most [m_e] of them in any half-closed window [(t, t+T_e]].
    Always true of the empty trace.  Periodic generators accept exactly
    their own stamp sequence prefix. *)

val random_sporadic_trace :
  t -> Rt_util.Prng.t -> horizon:Rt_util.Rat.t -> density:float -> Rt_util.Rat.t list
(** A random trace over [\[0, horizon)] satisfying the sporadic
    constraint.  [density] in [\[0,1\]] scales how close the trace runs
    to the maximal rate ([m_e] events per window). Stamps are drawn on a
    millisecond grid so they stay small rationals. *)
