module Rat = Rt_util.Rat

type action =
  | Wait of Rat.t
  | Job_start of { process : string; k : int }
  | Job_end of { process : string; k : int }
  | Read of { process : string; k : int; channel : string; value : Value.t }
  | Write of { process : string; k : int; channel : string; value : Value.t }

type t = action list

let pp_action ppf = function
  | Wait t -> Format.fprintf ppf "w(%a)" Rat.pp t
  | Job_start { process; k } -> Format.fprintf ppf "start %s[%d]" process k
  | Job_end { process; k } -> Format.fprintf ppf "end %s[%d]" process k
  | Read { process; k; channel; value } ->
    Format.fprintf ppf "%s[%d]: ?%s = %a" process k channel Value.pp value
  | Write { process; k; channel; value } ->
    Format.fprintf ppf "%s[%d]: !%s <- %a" process k channel Value.pp value

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_action ppf t

let to_string t = Format.asprintf "%a" pp t

let jobs t =
  List.filter_map
    (function Job_end { process; k } -> Some (process, k) | _ -> None)
    t

let writes_to t channel =
  List.filter_map
    (function
      | Write w when w.channel = channel -> Some w.value
      | _ -> None)
    t

let job_count t process =
  List.length (List.filter (fun (p, _) -> p = process) (jobs t))
