(** Mutable execution state of a network: channel contents, external
    output recorders and per-process instances.

    All interpreters (zero-delay, multiprocessor runtime, uniprocessor
    baseline, timed-automata) drive their jobs through {!run_job}, which
    routes channel names to internal channel state, external input
    feeds, or external output recorders, and optionally records the
    accesses in a {!Trace.t}. *)

type input_feed = string -> int -> Value.t
(** [feed channel k] is sample [k] (1-based) of an external input. *)

val no_inputs : input_feed
val feed_of_list : (string * Value.t list) list -> input_feed

type t

val create : Network.t -> t
val network : t -> Network.t
val instance : t -> int -> Instance.t

val run_job :
  ?recorder:(Trace.action -> unit) ->
  ?inputs:input_feed ->
  t ->
  proc:int ->
  now:Rt_util.Rat.t ->
  unit
(** Runs the next job of process [proc].  Reads and writes are recorded
    through [recorder] (wrapped in [Job_start]/[Job_end]).
    @raise Invalid_argument if the process accesses a channel that is
    not attached to it. *)

val skip_job : t -> proc:int -> unit
(** Consume an invocation without executing (a ['false'] job). *)

val run_job_deferred :
  ?recorder:(Trace.action -> unit) ->
  ?inputs:input_feed ->
  t ->
  proc:int ->
  now:Rt_util.Rat.t ->
  unit ->
  unit
(** Like {!run_job}, but channel writes are buffered: the body runs
    immediately (reads observe the pre-job state), and the returned
    thunk publishes the writes in program order.  This is the
    read-at-start / write-at-completion access model of preemptive
    fixed-priority implementations ([Runtime.Uniproc_fp]). *)

val channel_history : t -> (string * Value.t list) list
(** Internal channels, sorted by name. *)

val output_history : t -> (string * Value.t list) list
(** External outputs, sorted by name. *)

val channel_state : t -> string -> Channel.t
(** Internal channel or external output recorder by name.
    @raise Not_found *)

val reset : t -> unit
