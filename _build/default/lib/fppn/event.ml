module Rat = Rt_util.Rat
module Prng = Rt_util.Prng

type kind = Periodic | Sporadic

type t = { kind : kind; burst : int; period : Rat.t; deadline : Rat.t }

let validate ~burst ~period ~deadline =
  if burst < 1 then invalid_arg "Event: burst must be >= 1";
  if Rat.sign period <= 0 then invalid_arg "Event: period must be positive";
  if Rat.sign deadline <= 0 then invalid_arg "Event: deadline must be positive"

let periodic ?(burst = 1) ~period ~deadline () =
  validate ~burst ~period ~deadline;
  { kind = Periodic; burst; period; deadline }

let sporadic ?(burst = 1) ~min_period ~deadline () =
  validate ~burst ~period:min_period ~deadline;
  { kind = Sporadic; burst; period = min_period; deadline }

let is_sporadic t = t.kind = Sporadic

let pp ppf t =
  match t.kind with
  | Periodic ->
    if t.burst = 1 then Format.fprintf ppf "periodic %ams" Rat.pp t.period
    else Format.fprintf ppf "%d-periodic per %ams" t.burst Rat.pp t.period
  | Sporadic -> Format.fprintf ppf "sporadic %d per %ams" t.burst Rat.pp t.period

let periodic_invocations t ~horizon =
  if is_sporadic t then
    invalid_arg "Event.periodic_invocations: sporadic generator";
  let rec times time acc =
    if Rat.(time >= horizon) then List.rev acc
    else times (Rat.add time t.period) (time :: acc)
  in
  List.concat_map
    (fun time -> List.init t.burst (fun _ -> time))
    (times Rat.zero [])

let count_periodic_jobs t ~horizon =
  let periods = Rat.ceil (Rat.div horizon t.period) in
  t.burst * periods

let is_valid_sporadic_trace t stamps =
  let rec ascending = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Rat.(a <= b) && ascending rest
  in
  let non_negative = List.for_all (fun s -> Rat.sign s >= 0) stamps in
  (* window check: for the i-th stamp s, the stamps in (s - T, s] must
     number at most m.  Checking windows anchored at each stamp is
     sufficient because a maximal violating window can always be slid
     right until its right edge hits a stamp. *)
  let arr = Array.of_list stamps in
  let n = Array.length arr in
  let window_ok i =
    let s = arr.(i) in
    let lo = Rat.sub s t.period in
    let count = ref 0 in
    for j = 0 to i do
      if Rat.(arr.(j) > lo) then incr count
    done;
    !count <= t.burst
  in
  let rec all_windows i = i >= n || (window_ok i && all_windows (i + 1)) in
  ascending stamps && non_negative && all_windows 0

let random_sporadic_trace t prng ~horizon ~density =
  if density < 0.0 || density > 1.0 then
    invalid_arg "Event.random_sporadic_trace: density must be in [0,1]";
  (* Draw candidate stamps on a 1 ms grid left to right; accept each
     candidate only if it keeps the window constraint.  The expected
     rate is density * (m/T). *)
  let horizon_ms = Rat.floor horizon in
  let period_f = Rat.to_float t.period in
  let p_event = density *. float_of_int t.burst /. period_f in
  let accepted = ref [] in
  let window_count stamp =
    let lo = Rat.sub stamp t.period in
    List.length (List.filter (fun s -> Rat.(s > lo)) !accepted)
  in
  for ms = 0 to horizon_ms - 1 do
    if Prng.float prng 1.0 < p_event then begin
      let stamp = Rat.of_int ms in
      if window_count stamp < t.burst then accepted := stamp :: !accepted
    end
  done;
  let stamps = List.rev !accepted in
  assert (is_valid_sporadic_trace t stamps);
  stamps
