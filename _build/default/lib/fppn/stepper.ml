module Rat = Rt_util.Rat

type step = { time : Rat.t; executed : (string * int) list }

type t = {
  net : Network.t;
  inputs : Netstate.input_feed;
  st : Netstate.t;
  mutable pending : (Rat.t * int list) list;
      (** grouped instants, ascending; processes already in FP order *)
}

let create ?sporadic ?(inputs = Netstate.no_inputs) ~horizon net =
  let invs = Semantics.invocations ?sporadic ~horizon net in
  (* group by time, order each group by functional priority *)
  let rec group acc current = function
    | [] -> List.rev (match current with None -> acc | Some g -> g :: acc)
    | inv :: rest -> (
      let t = inv.Semantics.time and p = inv.Semantics.process in
      match current with
      | Some (t0, ps) when Rat.equal t0 t -> group acc (Some (t0, p :: ps)) rest
      | Some g -> group (g :: acc) (Some (t, [ p ])) rest
      | None -> group acc (Some (t, [ p ])) rest)
  in
  let pending =
    List.map
      (fun (t, ps) ->
        ( t,
          List.stable_sort
            (fun a b -> Int.compare (Network.fp_rank net a) (Network.fp_rank net b))
            (List.rev ps) ))
      (group [] None invs)
  in
  { net; inputs; st = Netstate.create net; pending }

let now t = match t.pending with [] -> None | (time, _) :: _ -> Some time
let remaining t = List.length t.pending
let state t = t.st

let step t =
  match t.pending with
  | [] -> None
  | (time, procs) :: rest ->
    t.pending <- rest;
    let executed =
      List.map
        (fun p ->
          Netstate.run_job ~inputs:t.inputs t.st ~proc:p ~now:time;
          ( Process.name (Network.process t.net p),
            Instance.job_count (Netstate.instance t.st p) ))
        procs
    in
    Some { time; executed }

let run_to_end t =
  let rec loop acc =
    match step t with None -> List.rev acc | Some s -> loop (s :: acc)
  in
  loop []
