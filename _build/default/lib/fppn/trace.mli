(** Execution traces (Sec. II-A).

    The zero-delay semantics produces a trace of the form
    [w(t1) ∘ α1 ∘ w(t2) ∘ α2 …] where each [α_i] concatenates the job
    execution runs of the processes invoked at [t_i], ordered by
    functional priority.  Individual channel accesses are recorded so
    tests can assert fine-grained ordering properties. *)

type action =
  | Wait of Rt_util.Rat.t  (** [w(τ)]: time advances to [τ] *)
  | Job_start of { process : string; k : int }
  | Job_end of { process : string; k : int }
  | Read of { process : string; k : int; channel : string; value : Value.t }
      (** [x?c] — the value obtained (possibly {!Value.Absent}) *)
  | Write of { process : string; k : int; channel : string; value : Value.t }
      (** [x!c] *)

type t = action list

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val jobs : t -> (string * int) list
(** Completed jobs in execution order. *)

val writes_to : t -> string -> Value.t list
(** Sequence of values written to one channel, in trace order. *)

val job_count : t -> string -> int
(** Number of completed jobs of a process. *)
