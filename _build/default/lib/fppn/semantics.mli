(** Zero-delay semantics of FPPN (Sec. II-B).

    Given the invocation sequence [(t1, P1), (t2, P2), …] produced by
    the event generators, the trace is
    [w(t1) ∘ α1 ∘ w(t2) ∘ α2 …], where [α_i] runs the jobs invoked at
    [t_i] atomically, in functional-priority order: if [p1 → p2] then
    the job(s) of [p1] execute before the job(s) of [p2].

    This interpreter is the {e reference implementation} against which
    the real-time runtime ([Runtime.Engine]) and the timed-automata
    translation ([Timedauto.Translate]) are compared when testing
    Prop. 2.1 (deterministic execution) and Prop. 4.1 (schedule
    correctness). *)

type invocation = { time : Rt_util.Rat.t; process : int }

type event_trace = invocation list
(** Ascending by time; simultaneous invocations in any order (the
    semantics re-sorts by functional priority). *)

val invocations :
  ?sporadic:(string * Rt_util.Rat.t list) list ->
  horizon:Rt_util.Rat.t ->
  Network.t ->
  event_trace
(** Invocations over [\[0, horizon)].  Periodic processes generate their
    own stamps; sporadic processes take the stamps listed for them in
    [sporadic] (default: never invoked).
    @raise Invalid_argument if a sporadic trace violates its generator's
    [(m, T)] constraint, refers to an unknown or periodic process, or if
    stamps fall outside the horizon. *)

type input_feed = string -> int -> Value.t
(** [feed channel k] is sample [k] (1-based) of an external input
    channel — the paper's [x?\[k\]I]. *)

val no_inputs : input_feed
(** Always {!Value.Absent}. *)

val feed_of_list : (string * Value.t list) list -> input_feed
(** Finite per-channel sample lists; exhausted ⇒ {!Value.Absent}. *)

type result = {
  trace : Trace.t;
  channel_history : (string * Value.t list) list;
      (** per internal channel: all values written, in order *)
  output_history : (string * Value.t list) list;
      (** per external output channel *)
  job_counts : (string * int) list;  (** executed jobs per process *)
}

val run : ?inputs:input_feed -> Network.t -> event_trace -> result
(** Executes the whole event trace under zero-delay semantics. *)

val signature : result -> (string * Value.t list) list
(** The determinism signature of Prop. 2.1: the write sequences of all
    internal and external output channels, sorted by channel name.  Two
    semantics-respecting executions of the same network on the same
    inputs must have equal signatures. *)

val equal_signature : result -> result -> bool
