(** Deterministic process automata (Def. 2.2).

    A process is a tuple [(l0, L, X, X0, I, O, A, T)]: locations
    (source-code line numbers), internal variables with initial values,
    input/output channels, and guarded transitions whose actions are
    variable assignments, channel reads and channel writes.

    A {e job execution run} is a non-empty sequence of transition steps
    that brings the automaton back to its initial location; variables
    persist across runs (that is how state such as filter coefficients
    survives), while the location is guaranteed to be [l0] at both ends
    of every run.

    Determinism: at each step the first transition (in declaration
    order) out of the current location whose guard evaluates to [true]
    is taken.  Well-formed automata should have mutually exclusive
    guards; the declaration order makes execution deterministic even
    when they are not. *)

type loc = string

(** Expressions over internal variables.  [Avail x] tests that variable
    [x] does not hold {!Value.Absent} — the idiom for "did the last read
    return data?". *)
type expr =
  | Const of Value.t
  | Var of string
  | Avail of string
  | Neg of expr
  | Not of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Mod of expr * expr
  | Eq of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of expr * expr
  | Or of expr * expr

type action =
  | Assign of string * expr  (** [x := e] *)
  | Read of string * string  (** [x ? c]: read channel [c] into variable [x] *)
  | Write of string * expr   (** [e ! c]: write the value of [e] to channel [c] *)

type transition = {
  src : loc;
  guard : expr;      (** must evaluate to [Bool] *)
  actions : action list;
  dst : loc;
}

type t

val make :
  initial:loc ->
  vars:(string * Value.t) list ->
  transitions:transition list ->
  t
(** @raise Invalid_argument if a transition refers to an undeclared
    source location's variable set … (static checks: all guard/action
    variables are declared; at least one transition leaves [initial]). *)

val initial : t -> loc
val variables : t -> (string * Value.t) list
val transitions : t -> transition list

val locations : t -> loc list
(** All locations mentioned, initial first, without duplicates. *)

val channels_read : t -> string list
val channels_written : t -> string list

(** Runtime interface used by the semantics interpreters. *)

type env = {
  lookup : string -> Value.t;
  assign : string -> Value.t -> unit;
  read_channel : string -> Value.t;
  write_channel : string -> Value.t -> unit;
}

val eval : (string -> Value.t) -> expr -> Value.t
(** Evaluates an expression under a variable valuation.
    @raise Invalid_argument on type errors (e.g. adding booleans). *)

exception Stuck of loc
(** Raised by {!run_job} when no transition out of a non-initial
    location is enabled. *)

val run_job : ?max_steps:int -> t -> env -> int
(** Executes one job run: steps from the initial location until it is
    reached again.  Returns the number of transitions taken.
    @raise Stuck if execution cannot continue.
    @raise Invalid_argument if [max_steps] (default 10_000) is exceeded
    — the guard against non-terminating job runs. *)
