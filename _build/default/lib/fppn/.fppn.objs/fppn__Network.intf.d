lib/fppn/network.mli: Channel Format Process Rt_util Value
