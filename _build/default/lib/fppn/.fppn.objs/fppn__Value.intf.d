lib/fppn/value.mli: Format
