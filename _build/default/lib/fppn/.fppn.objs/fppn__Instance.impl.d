lib/fppn/instance.ml: Automaton Hashtbl List Printf Process Value
