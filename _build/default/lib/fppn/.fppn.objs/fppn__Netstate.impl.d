lib/fppn/netstate.ml: Array Channel Hashtbl Instance List Network Printf Process String Trace Value
