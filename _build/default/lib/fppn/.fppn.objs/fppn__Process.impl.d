lib/fppn/process.ml: Automaton Event Format Rt_util String Value
