lib/fppn/netstate.mli: Channel Instance Network Rt_util Trace Value
