lib/fppn/channel.mli: Format Value
