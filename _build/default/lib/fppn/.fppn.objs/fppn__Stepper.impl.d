lib/fppn/stepper.ml: Instance Int List Netstate Network Process Rt_util Semantics
