lib/fppn/buffer_analysis.ml: Channel Event Format Fun Hashtbl List Netstate Network Option Process Rt_util Semantics String Trace Value
