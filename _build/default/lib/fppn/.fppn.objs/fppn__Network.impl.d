lib/fppn/network.ml: Array Channel Event Format Hashtbl Int List Printf Process Rt_util String Value
