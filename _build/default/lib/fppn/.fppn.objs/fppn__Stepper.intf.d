lib/fppn/stepper.mli: Netstate Network Rt_util
