lib/fppn/process.mli: Automaton Event Format Rt_util Value
