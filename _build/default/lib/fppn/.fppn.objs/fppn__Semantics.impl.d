lib/fppn/semantics.ml: Array Event Instance Int List Netstate Network Printf Process Rt_util String Trace Value
