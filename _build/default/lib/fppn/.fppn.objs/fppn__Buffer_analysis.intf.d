lib/fppn/buffer_analysis.mli: Channel Format Netstate Network Rt_util
