lib/fppn/automaton.mli: Value
