lib/fppn/semantics.mli: Network Rt_util Trace Value
