lib/fppn/event.ml: Array Format List Rt_util
