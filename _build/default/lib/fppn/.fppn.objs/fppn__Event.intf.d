lib/fppn/event.mli: Format Rt_util
