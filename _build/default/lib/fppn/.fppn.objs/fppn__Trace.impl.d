lib/fppn/trace.ml: Format List Rt_util Value
