lib/fppn/instance.mli: Process Rt_util Value
