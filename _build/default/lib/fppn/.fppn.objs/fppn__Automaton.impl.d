lib/fppn/automaton.ml: Hashtbl List Printf Value
