lib/fppn/channel.ml: Format List Queue Value
