lib/fppn/trace.mli: Format Rt_util Value
