(** Instant-by-instant execution of the zero-delay semantics.

    [Semantics.run] executes a whole event trace at once; this module
    exposes the same interpretation one {e invocation instant} at a
    time, so callers (debuggers, REPLs, tests) can inspect channel
    contents and process variables between steps. The final state and
    histories coincide with [Semantics.run] on the same inputs. *)

type t

val create :
  ?sporadic:(string * Rt_util.Rat.t list) list ->
  ?inputs:Netstate.input_feed ->
  horizon:Rt_util.Rat.t ->
  Network.t ->
  t
(** Same validation as [Semantics.invocations]. *)

type step = {
  time : Rt_util.Rat.t;
  executed : (string * int) list;
      (** jobs run at this instant, in execution (functional-priority)
          order: (process, invocation index) *)
}

val step : t -> step option
(** Executes the next instant; [None] when the horizon is exhausted. *)

val now : t -> Rt_util.Rat.t option
(** Time stamp of the next pending instant. *)

val remaining : t -> int
(** Number of instants still to execute. *)

val state : t -> Netstate.t
(** Live network state — channels and instances are inspectable (and
    shared with the stepper; mutating them mid-run changes the run). *)

val run_to_end : t -> step list
(** All remaining steps, in order. *)
