(** Data values carried by FPPN channels.

    [Absent] is the paper's "indicator of non-availability of data"
    returned when reading an empty FIFO or an uninitialized blackboard
    (Sec. II-A); it is a first-class value so process code can branch on
    it. *)

type t =
  | Absent
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_absent : t -> bool

(** Coercions used by process bodies; each raises [Invalid_argument]
    with the value printed when the constructor does not match. *)

val to_int : t -> int
val to_float : t -> float
(** Accepts [Int] too (widening). *)

val to_bool : t -> bool
val to_pair : t -> t * t
val to_list : t -> t list

val complex : float -> float -> t
(** [complex re im] is [Pair (Float re, Float im)] — the FFT sample
    encoding. *)

val to_complex : t -> float * float
