module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph

type channel_decl = {
  ch_name : string;
  ch_kind : Channel.kind;
  writer : string;
  reader : string;
  init : Value.t option;
}

type io_dir = In | Out

type io_decl = { io_name : string; owner : string; dir : io_dir }

type t = {
  net_name : string;
  procs : Process.t array;
  proc_index : (string, int) Hashtbl.t;
  chans : channel_decl list;
  fp : (int * int) list;
  fp_dag : Digraph.t;
  rank : int array; (* topological rank in fp_dag *)
  ios : io_decl list;
}

type error =
  | Duplicate_process of string
  | Unknown_process of string
  | Duplicate_channel of string
  | Self_channel of string
  | Priority_cycle of string list
  | Missing_priority of { channel : string; writer : string; reader : string }
  | Duplicate_io of string
  | Empty_network

let pp_error ppf = function
  | Duplicate_process p -> Format.fprintf ppf "duplicate process %S" p
  | Unknown_process p -> Format.fprintf ppf "unknown process %S" p
  | Duplicate_channel c -> Format.fprintf ppf "duplicate channel %S" c
  | Self_channel c -> Format.fprintf ppf "channel %S connects a process to itself" c
  | Priority_cycle ps ->
    Format.fprintf ppf "functional priority cycle: %s" (String.concat " -> " ps)
  | Missing_priority { channel; writer; reader } ->
    Format.fprintf ppf
      "channel %S: no functional priority between %S and %S (Def. 2.1 requires one)"
      channel writer reader
  | Duplicate_io c -> Format.fprintf ppf "duplicate external channel %S" c
  | Empty_network -> Format.fprintf ppf "network has no processes"

module Builder = struct
  type net = t

  type b = {
    b_name : string;
    mutable b_procs : Process.t list; (* reversed *)
    mutable b_chans : channel_decl list; (* reversed *)
    mutable b_fp : (string * string) list; (* reversed *)
    mutable b_ios : io_decl list; (* reversed *)
  }

  let create b_name = { b_name; b_procs = []; b_chans = []; b_fp = []; b_ios = [] }
  let add_process b p = b.b_procs <- p :: b.b_procs

  let add_channel b ?init ~kind ~writer ~reader ch_name =
    b.b_chans <- { ch_name; ch_kind = kind; writer; reader; init } :: b.b_chans

  let add_priority b hi lo = b.b_fp <- (hi, lo) :: b.b_fp
  let add_input b ~owner io_name = b.b_ios <- { io_name; owner; dir = In } :: b.b_ios
  let add_output b ~owner io_name = b.b_ios <- { io_name; owner; dir = Out } :: b.b_ios

  let finish b =
    let procs = Array.of_list (List.rev b.b_procs) in
    let chans = List.rev b.b_chans in
    let fp_names =
      (* dedup while keeping first-declaration order *)
      List.rev
        (List.fold_left
           (fun acc e -> if List.mem e acc then acc else e :: acc)
           [] (List.rev b.b_fp))
    in
    let ios = List.rev b.b_ios in
    let errors = ref [] in
    let err e = errors := e :: !errors in
    if Array.length procs = 0 then err Empty_network;
    let proc_index = Hashtbl.create 16 in
    Array.iteri
      (fun i p ->
        let n = Process.name p in
        if Hashtbl.mem proc_index n then err (Duplicate_process n)
        else Hashtbl.add proc_index n i)
      procs;
    let known n = Hashtbl.mem proc_index n in
    let check_known n = if not (known n) then err (Unknown_process n) in
    (* channels *)
    let seen_ch = Hashtbl.create 16 in
    List.iter
      (fun c ->
        if Hashtbl.mem seen_ch c.ch_name then err (Duplicate_channel c.ch_name)
        else Hashtbl.add seen_ch c.ch_name ();
        check_known c.writer;
        check_known c.reader;
        if c.writer = c.reader then err (Self_channel c.ch_name))
      chans;
    (* priority edges *)
    List.iter
      (fun (hi, lo) ->
        check_known hi;
        check_known lo)
      fp_names;
    (* external channels *)
    let seen_io = Hashtbl.create 16 in
    List.iter
      (fun io ->
        if Hashtbl.mem seen_io io.io_name then err (Duplicate_io io.io_name)
        else Hashtbl.add seen_io io.io_name ();
        check_known io.owner)
      ios;
    if !errors <> [] then Error (List.rev !errors)
    else begin
      let n = Array.length procs in
      let fp_dag = Digraph.create n in
      let fp =
        List.map
          (fun (hi, lo) -> (Hashtbl.find proc_index hi, Hashtbl.find proc_index lo))
          fp_names
      in
      List.iter (fun (hi, lo) -> Digraph.add_edge fp_dag hi lo) fp;
      (* channel pairs must carry a direct priority edge *)
      List.iter
        (fun c ->
          let w = Hashtbl.find proc_index c.writer
          and r = Hashtbl.find proc_index c.reader in
          if not (Digraph.has_edge fp_dag w r || Digraph.has_edge fp_dag r w) then
            err
              (Missing_priority
                 { channel = c.ch_name; writer = c.writer; reader = c.reader }))
        chans;
      (match Digraph.topo_sort fp_dag with
      | None ->
        let cycle =
          match Digraph.find_cycle fp_dag with
          | Some vs -> List.map (fun v -> Process.name procs.(v)) vs
          | None -> []
        in
        err (Priority_cycle cycle);
        Error (List.rev !errors)
      | Some order ->
        if !errors <> [] then Error (List.rev !errors)
        else begin
          let rank = Array.make n 0 in
          List.iteri (fun i v -> rank.(v) <- i) order;
          Ok { net_name = b.b_name; procs; proc_index; chans; fp; fp_dag; rank; ios }
        end)
    end

  let finish_exn b =
    match finish b with
    | Ok net -> net
    | Error errs ->
      invalid_arg
        (Format.asprintf "Network.Builder.finish: %a"
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_error)
           errs)
end

let name t = t.net_name
let n_processes t = Array.length t.procs
let processes t = t.procs
let process t i = t.procs.(i)
let find t n = Hashtbl.find t.proc_index n
let channels t = t.chans
let inputs t = List.filter (fun io -> io.dir = In) t.ios
let outputs t = List.filter (fun io -> io.dir = Out) t.ios
let io_of t pname = List.filter (fun io -> io.owner = pname) t.ios
let fp_edges t = t.fp
let fp_graph t = Digraph.copy t.fp_dag

let related t p q = Digraph.has_edge t.fp_dag p q || Digraph.has_edge t.fp_dag q p
let higher_priority t p q = Digraph.has_edge t.fp_dag p q
let fp_rank t p = t.rank.(p)

let channels_between t p q =
  let np = Process.name t.procs.(p) and nq = Process.name t.procs.(q) in
  List.filter
    (fun c -> (c.writer = np && c.reader = nq) || (c.writer = nq && c.reader = np))
    t.chans

let in_channels_of t p =
  let np = Process.name t.procs.(p) in
  List.filter (fun c -> c.reader = np) t.chans

let out_channels_of t p =
  let np = Process.name t.procs.(p) in
  List.filter (fun c -> c.writer = np) t.chans

let hyperperiod t =
  Rat.lcm_list (Array.to_list (Array.map Process.period t.procs))

type user_error =
  | No_user of string
  | Ambiguous_user of string * string list
  | Sporadic_user of { sporadic : string; user : string }
  | User_period_too_large of { sporadic : string; user : string }

let pp_user_error ppf = function
  | No_user p -> Format.fprintf ppf "sporadic process %S has no channel to a user" p
  | Ambiguous_user (p, us) ->
    Format.fprintf ppf "sporadic process %S has several users: %s" p
      (String.concat ", " us)
  | Sporadic_user { sporadic; user } ->
    Format.fprintf ppf "user %S of sporadic %S is itself sporadic" user sporadic
  | User_period_too_large { sporadic; user } ->
    Format.fprintf ppf "user %S has a larger period than sporadic %S" user sporadic

let user_map t =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let n = Array.length t.procs in
  let result = Array.make n None in
  for p = 0 to n - 1 do
    let proc = t.procs.(p) in
    if Process.is_sporadic proc then begin
      let partners =
        List.sort_uniq Int.compare
          (List.concat_map
             (fun c ->
               let w = Hashtbl.find t.proc_index c.writer
               and r = Hashtbl.find t.proc_index c.reader in
               if w = p then [ r ] else if r = p then [ w ] else [])
             t.chans)
      in
      match partners with
      | [] -> err (No_user (Process.name proc))
      | [ u ] ->
        let uproc = t.procs.(u) in
        if Process.is_sporadic uproc then
          err
            (Sporadic_user
               { sporadic = Process.name proc; user = Process.name uproc })
        else if Rat.(Process.period uproc > Process.period proc) then
          err
            (User_period_too_large
               { sporadic = Process.name proc; user = Process.name uproc })
        else result.(p) <- Some u
      | us ->
        err
          (Ambiguous_user
             (Process.name proc, List.map (fun u -> Process.name t.procs.(u)) us))
    end
  done;
  if !errors = [] then Ok result else Error (List.rev !errors)

let to_dot t =
  let module Dot = Rt_util.Dot in
  let nodes =
    Array.to_list
      (Array.map
         (fun p ->
           let label =
             Format.asprintf "%s\n%a" (Process.name p) Event.pp (Process.event p)
           in
           let style = if Process.is_sporadic p then "dashed" else "" in
           Dot.node ~label ~shape:"box" ~style (Process.name p))
         t.procs)
  in
  let io_nodes =
    List.map
      (fun io -> Dot.node ~label:io.io_name ~shape:"ellipse" io.io_name)
      t.ios
  in
  let chan_edges =
    List.map
      (fun c ->
        Dot.edge
          ~label:(Printf.sprintf "%s (%s)" c.ch_name (Channel.kind_to_string c.ch_kind))
          c.writer c.reader)
      t.chans
  in
  let covered hi lo =
    List.exists
      (fun c ->
        (c.writer = hi && c.reader = lo) || (c.writer = lo && c.reader = hi))
      t.chans
  in
  let fp_only_edges =
    List.filter_map
      (fun (hi, lo) ->
        let nh = Process.name t.procs.(hi) and nl = Process.name t.procs.(lo) in
        if covered nh nl then None
        else Some (Dot.edge ~label:"priority" ~style:"dashed" nh nl))
      t.fp
  in
  let io_edges =
    List.map
      (fun io ->
        match io.dir with
        | In -> Dot.edge ~style:"bold" io.io_name io.owner
        | Out -> Dot.edge ~style:"bold" io.owner io.io_name)
      t.ios
  in
  Dot.render ~name:t.net_name (nodes @ io_nodes)
    (chan_edges @ fp_only_edges @ io_edges)
