type t =
  | Absent
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

let rec equal a b =
  match (a, b) with
  | Absent, Absent | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
  | List l1, List l2 -> List.equal equal l1 l2
  | (Absent | Unit | Bool _ | Int _ | Float _ | Str _ | Pair _ | List _), _ ->
    false

let rec compare a b =
  match (a, b) with
  | Absent, Absent | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | List l1, List l2 -> List.compare compare l1 l2
  | a, b -> Int.compare (tag a) (tag b)

and tag = function
  | Absent -> 0
  | Unit -> 1
  | Bool _ -> 2
  | Int _ -> 3
  | Float _ -> 4
  | Str _ -> 5
  | Pair _ -> 6
  | List _ -> 7

let rec pp ppf = function
  | Absent -> Format.pp_print_string ppf "<absent>"
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List l ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      l

let to_string v = Format.asprintf "%a" pp v
let is_absent = function Absent -> true | _ -> false

let coercion_error expected v =
  invalid_arg (Printf.sprintf "Value: expected %s, got %s" expected (to_string v))

let to_int = function Int n -> n | v -> coercion_error "Int" v
let to_float = function Float f -> f | Int n -> float_of_int n | v -> coercion_error "Float" v
let to_bool = function Bool b -> b | v -> coercion_error "Bool" v
let to_pair = function Pair (a, b) -> (a, b) | v -> coercion_error "Pair" v
let to_list = function List l -> l | v -> coercion_error "List" v
let complex re im = Pair (Float re, Float im)

let to_complex = function
  | Pair (a, b) -> (to_float a, to_float b)
  | v -> coercion_error "complex Pair" v
