type kind = Fifo | Blackboard

let kind_to_string = function Fifo -> "fifo" | Blackboard -> "blackboard"
let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

type state =
  | Queue of Value.t Queue.t
  | Board of Value.t option ref

type t = {
  ch_kind : kind;
  init : Value.t option;
  state : state;
  mutable writes : Value.t list; (* reversed *)
}

let fill state init =
  match (state, init) with
  | _, None -> ()
  | Queue q, Some v -> Queue.push v q
  | Board b, Some v -> b := Some v

let create ?init ch_kind =
  let state =
    match ch_kind with Fifo -> Queue (Queue.create ()) | Blackboard -> Board (ref None)
  in
  fill state init;
  { ch_kind; init; state; writes = [] }

let kind t = t.ch_kind

let write t v =
  t.writes <- v :: t.writes;
  match t.state with
  | Queue q -> Queue.push v q
  | Board b -> b := Some v

let read t =
  match t.state with
  | Queue q -> (match Queue.take_opt q with Some v -> v | None -> Value.Absent)
  | Board b -> (match !b with Some v -> v | None -> Value.Absent)

let peek t =
  match t.state with
  | Queue q -> (match Queue.peek_opt q with Some v -> v | None -> Value.Absent)
  | Board b -> (match !b with Some v -> v | None -> Value.Absent)

let occupancy t =
  match t.state with
  | Queue q -> Queue.length q
  | Board b -> (match !b with Some _ -> 1 | None -> 0)

let history t = List.rev t.writes

let reset t =
  (match t.state with
  | Queue q -> Queue.clear q
  | Board b -> b := None);
  fill t.state t.init;
  t.writes <- []
