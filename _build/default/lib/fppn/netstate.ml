type input_feed = string -> int -> Value.t

let no_inputs _ _ = Value.Absent

let feed_of_list feeds channel k =
  match List.assoc_opt channel feeds with
  | None -> Value.Absent
  | Some samples -> (
    match List.nth_opt samples (k - 1) with
    | Some v -> v
    | None -> Value.Absent)

type route =
  | Internal of Channel.t
  | Ext_input
  | Ext_output of Channel.t

type t = {
  net : Network.t;
  instances : Instance.t array;
  chan_states : (string * Channel.t) list; (* internal, sorted by name *)
  out_states : (string * Channel.t) list; (* external outputs, sorted *)
  (* (proc, channel) -> route, for read and write directions *)
  read_routes : (int * string, route) Hashtbl.t;
  write_routes : (int * string, route) Hashtbl.t;
}

let create net =
  let instances =
    Array.map Instance.create (Network.processes net)
  in
  let chan_states =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun c ->
           ( c.Network.ch_name,
             Channel.create ?init:c.Network.init c.Network.ch_kind ))
         (Network.channels net))
  in
  let out_states =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun io -> (io.Network.io_name, Channel.create Channel.Fifo))
         (Network.outputs net))
  in
  let read_routes = Hashtbl.create 32 and write_routes = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let state = List.assoc c.Network.ch_name chan_states in
      let r = Network.find net c.Network.reader
      and w = Network.find net c.Network.writer in
      Hashtbl.replace read_routes (r, c.Network.ch_name) (Internal state);
      Hashtbl.replace write_routes (w, c.Network.ch_name) (Internal state))
    (Network.channels net);
  List.iter
    (fun io ->
      let owner = Network.find net io.Network.owner in
      match io.Network.dir with
      | Network.In -> Hashtbl.replace read_routes (owner, io.Network.io_name) Ext_input
      | Network.Out ->
        let state = List.assoc io.Network.io_name out_states in
        Hashtbl.replace write_routes (owner, io.Network.io_name) (Ext_output state))
    (Network.inputs net @ Network.outputs net);
  { net; instances; chan_states; out_states; read_routes; write_routes }

let network t = t.net
let instance t i = t.instances.(i)

let run_job ?(recorder = fun _ -> ()) ?(inputs = no_inputs) t ~proc ~now =
  let inst = t.instances.(proc) in
  let pname = Process.name (Instance.process inst) in
  let k = Instance.job_count inst + 1 in
  let unknown dir c =
    invalid_arg
      (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
  in
  let read c =
    let v =
      match Hashtbl.find_opt t.read_routes (proc, c) with
      | Some (Internal state) -> Channel.read state
      | Some Ext_input -> inputs c k
      | Some (Ext_output _) | None -> unknown "read" c
    in
    recorder (Trace.Read { process = pname; k; channel = c; value = v });
    v
  in
  let write c v =
    (match Hashtbl.find_opt t.write_routes (proc, c) with
    | Some (Internal state) | Some (Ext_output state) -> Channel.write state v
    | Some Ext_input | None -> unknown "write" c);
    recorder (Trace.Write { process = pname; k; channel = c; value = v })
  in
  recorder (Trace.Job_start { process = pname; k });
  Instance.run_job inst ~now ~read ~write;
  recorder (Trace.Job_end { process = pname; k })

let skip_job t ~proc = Instance.skip_job t.instances.(proc)

let run_job_deferred ?(recorder = fun _ -> ()) ?(inputs = no_inputs) t ~proc ~now =
  let inst = t.instances.(proc) in
  let pname = Process.name (Instance.process inst) in
  let k = Instance.job_count inst + 1 in
  let unknown dir c =
    invalid_arg
      (Printf.sprintf "process %s: %s to unattached channel %S" pname dir c)
  in
  let read c =
    let v =
      match Hashtbl.find_opt t.read_routes (proc, c) with
      | Some (Internal state) -> Channel.read state
      | Some Ext_input -> inputs c k
      | Some (Ext_output _) | None -> unknown "read" c
    in
    recorder (Trace.Read { process = pname; k; channel = c; value = v });
    v
  in
  let buffered = ref [] in
  let write c v =
    (match Hashtbl.find_opt t.write_routes (proc, c) with
    | Some (Internal state) | Some (Ext_output state) ->
      buffered := (state, c, v) :: !buffered
    | Some Ext_input | None -> unknown "write" c);
    recorder (Trace.Write { process = pname; k; channel = c; value = v })
  in
  recorder (Trace.Job_start { process = pname; k });
  Instance.run_job inst ~now ~read ~write;
  let to_flush = List.rev !buffered in
  fun () ->
    List.iter (fun (state, _, v) -> Channel.write state v) to_flush;
    recorder (Trace.Job_end { process = pname; k })

let histories states = List.map (fun (n, st) -> (n, Channel.history st)) states
let channel_history t = histories t.chan_states
let output_history t = histories t.out_states

let channel_state t name =
  match List.assoc_opt name t.chan_states with
  | Some st -> st
  | None -> (
    match List.assoc_opt name t.out_states with
    | Some st -> st
    | None -> raise Not_found)

let reset t =
  Array.iter Instance.reset t.instances;
  List.iter (fun (_, st) -> Channel.reset st) t.chan_states;
  List.iter (fun (_, st) -> Channel.reset st) t.out_states
