type t = {
  proc : Process.t;
  locals : (string, Value.t) Hashtbl.t;
  mutable count : int;
}

let load_locals locals proc =
  Hashtbl.reset locals;
  List.iter (fun (x, v) -> Hashtbl.replace locals x v) proc.Process.locals

let create proc =
  let locals = Hashtbl.create 8 in
  load_locals locals proc;
  { proc; locals; count = 0 }

let process t = t.proc
let job_count t = t.count

let get t x =
  match Hashtbl.find_opt t.locals x with
  | Some v -> v
  | None -> raise Not_found

let run_job t ~now ~read ~write =
  let k = t.count + 1 in
  let lookup x =
    match Hashtbl.find_opt t.locals x with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "process %s: undeclared variable %S"
           (Process.name t.proc) x)
  in
  let assign x v = Hashtbl.replace t.locals x v in
  (match t.proc.Process.behavior with
  | Process.Native body ->
    body
      {
        Process.job_index = k;
        now;
        read;
        write;
        get = lookup;
        set = assign;
      }
  | Process.Automaton a ->
    let env =
      { Automaton.lookup; assign; read_channel = read; write_channel = write }
    in
    ignore (Automaton.run_job a env));
  t.count <- k

let skip_job t = t.count <- t.count + 1

let reset t =
  load_locals t.locals t.proc;
  t.count <- 0
