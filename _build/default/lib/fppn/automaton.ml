type loc = string

type expr =
  | Const of Value.t
  | Var of string
  | Avail of string
  | Neg of expr
  | Not of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Mod of expr * expr
  | Eq of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of expr * expr
  | Or of expr * expr

type action =
  | Assign of string * expr
  | Read of string * string
  | Write of string * expr

type transition = { src : loc; guard : expr; actions : action list; dst : loc }

type t = {
  initial : loc;
  vars : (string * Value.t) list;
  transitions : transition list;
  by_src : (loc, transition list) Hashtbl.t;
}

let rec expr_vars acc = function
  | Const _ -> acc
  | Var x | Avail x -> x :: acc
  | Neg e | Not e -> expr_vars acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Eq (a, b) | Lt (a, b) | Le (a, b) | And (a, b) | Or (a, b) ->
    expr_vars (expr_vars acc a) b

let action_vars acc = function
  | Assign (x, e) -> x :: expr_vars acc e
  | Read (x, _) -> x :: acc
  | Write (_, e) -> expr_vars acc e

let make ~initial ~vars ~transitions =
  let declared = List.map fst vars in
  let check_var x =
    if not (List.mem x declared) then
      invalid_arg (Printf.sprintf "Automaton: undeclared variable %S" x)
  in
  List.iter
    (fun tr ->
      List.iter check_var (expr_vars [] tr.guard);
      List.iter (fun a -> List.iter check_var (action_vars [] a)) tr.actions)
    transitions;
  if not (List.exists (fun tr -> tr.src = initial) transitions) then
    invalid_arg "Automaton: no transition leaves the initial location";
  let by_src = Hashtbl.create 16 in
  (* preserve declaration order within each source location *)
  List.iter
    (fun tr ->
      let prev = try Hashtbl.find by_src tr.src with Not_found -> [] in
      Hashtbl.replace by_src tr.src (prev @ [ tr ]))
    transitions;
  { initial; vars; transitions; by_src }

let initial t = t.initial
let variables t = t.vars
let transitions t = t.transitions

let locations t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      out := l :: !out
    end
  in
  visit t.initial;
  List.iter
    (fun tr ->
      visit tr.src;
      visit tr.dst)
    t.transitions;
  List.rev !out

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let channels_read t =
  dedup
    (List.concat_map
       (fun tr ->
         List.filter_map (function Read (_, c) -> Some c | _ -> None) tr.actions)
       t.transitions)

let channels_written t =
  dedup
    (List.concat_map
       (fun tr ->
         List.filter_map (function Write (c, _) -> Some c | _ -> None) tr.actions)
       t.transitions)

type env = {
  lookup : string -> Value.t;
  assign : string -> Value.t -> unit;
  read_channel : string -> Value.t;
  write_channel : string -> Value.t -> unit;
}

let type_error op a b =
  invalid_arg
    (Printf.sprintf "Automaton.eval: %s applied to %s and %s" op
       (Value.to_string a) (Value.to_string b))

let arith op_name int_op float_op a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> Value.Int (int_op x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (float_op (Value.to_float a) (Value.to_float b))
  | _ -> type_error op_name a b

let rec eval lookup = function
  | Const v -> v
  | Var x -> lookup x
  | Avail x -> Value.Bool (not (Value.is_absent (lookup x)))
  | Neg e -> (
    match eval lookup e with
    | Value.Int n -> Value.Int (-n)
    | Value.Float f -> Value.Float (-.f)
    | v -> type_error "neg" v v)
  | Not e -> Value.Bool (not (Value.to_bool (eval lookup e)))
  | Add (a, b) -> arith "+" ( + ) ( +. ) (eval lookup a) (eval lookup b)
  | Sub (a, b) -> arith "-" ( - ) ( -. ) (eval lookup a) (eval lookup b)
  | Mul (a, b) -> arith "*" ( * ) ( *. ) (eval lookup a) (eval lookup b)
  | Div (a, b) -> arith "/" ( / ) ( /. ) (eval lookup a) (eval lookup b)
  | Mod (a, b) -> (
    match (eval lookup a, eval lookup b) with
    | Value.Int x, Value.Int y -> Value.Int (x mod y)
    | a, b -> type_error "mod" a b)
  | Eq (a, b) -> Value.Bool (Value.equal (eval lookup a) (eval lookup b))
  | Lt (a, b) -> Value.Bool (Value.compare (eval lookup a) (eval lookup b) < 0)
  | Le (a, b) -> Value.Bool (Value.compare (eval lookup a) (eval lookup b) <= 0)
  | And (a, b) ->
    Value.Bool (Value.to_bool (eval lookup a) && Value.to_bool (eval lookup b))
  | Or (a, b) ->
    Value.Bool (Value.to_bool (eval lookup a) || Value.to_bool (eval lookup b))

exception Stuck of loc

let perform env = function
  | Assign (x, e) -> env.assign x (eval env.lookup e)
  | Read (x, c) -> env.assign x (env.read_channel c)
  | Write (c, e) -> env.write_channel c (eval env.lookup e)

let run_job ?(max_steps = 10_000) t env =
  let step loc =
    let candidates = try Hashtbl.find t.by_src loc with Not_found -> [] in
    match
      List.find_opt
        (fun tr -> Value.to_bool (eval env.lookup tr.guard))
        candidates
    with
    | None -> raise (Stuck loc)
    | Some tr ->
      List.iter (perform env) tr.actions;
      tr.dst
  in
  let rec loop loc steps =
    if steps >= max_steps then
      invalid_arg "Automaton.run_job: step bound exceeded (non-terminating job?)"
    else
      let next = step loc in
      let steps = steps + 1 in
      if next = t.initial then steps else loop next steps
  in
  loop t.initial 0
