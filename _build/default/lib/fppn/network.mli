(** Fixed-Priority Process Networks (Def. 2.1).

    An FPPN is a tuple [(P, C, FP, e_p, I_e, O_e, d_e, Σ_c, CT_c)]:
    processes, internal channels (a directed graph, possibly cyclic), an
    acyclic {e functional-priority} graph [FP], one event generator per
    process, external I/O channels partitioned among the generators, and
    channel types.

    Static well-formedness enforced by {!Builder.finish}:
    - process names unique, channel endpoints exist, no self channels;
    - [FP] is a DAG;
    - every pair of processes sharing a channel is related by a direct
      [FP] edge ((p1,p2) ∈ C ⇒ p1 → p2 ∨ p2 → p1);
    - external I/O names unique and owned by existing processes.

    The {e scheduling subclass} of Sec. III-A (each sporadic process has
    exactly one periodic user of no larger period) is checked separately
    by {!user_map} because the model itself does not require it. *)

type channel_decl = {
  ch_name : string;
  ch_kind : Channel.kind;
  writer : string;
  reader : string;
  init : Value.t option;
}

type io_dir = In | Out

type io_decl = { io_name : string; owner : string; dir : io_dir }

type t

type error =
  | Duplicate_process of string
  | Unknown_process of string
  | Duplicate_channel of string
  | Self_channel of string
  | Priority_cycle of string list
  | Missing_priority of { channel : string; writer : string; reader : string }
  | Duplicate_io of string
  | Empty_network

val pp_error : Format.formatter -> error -> unit

(** Imperative construction API. *)
module Builder : sig
  type net = t
  type b

  val create : string -> b
  val add_process : b -> Process.t -> unit

  val add_channel :
    b ->
    ?init:Value.t ->
    kind:Channel.kind ->
    writer:string ->
    reader:string ->
    string ->
    unit

  val add_priority : b -> string -> string -> unit
  (** [add_priority b hi lo] declares the functional-priority edge
      [hi → lo] (jobs of [hi] precede simultaneous jobs of [lo]). *)

  val add_input : b -> owner:string -> string -> unit
  val add_output : b -> owner:string -> string -> unit

  val finish : b -> (net, error list) result

  val finish_exn : b -> net
  (** @raise Invalid_argument listing all validation errors. *)
end

val name : t -> string
val n_processes : t -> int
val processes : t -> Process.t array
val process : t -> int -> Process.t
val find : t -> string -> int
(** @raise Not_found *)

val channels : t -> channel_decl list
val inputs : t -> io_decl list
val outputs : t -> io_decl list
val io_of : t -> string -> io_decl list
(** External I/O owned by a process name. *)

val fp_edges : t -> (int * int) list
(** Functional-priority edges over process indices. *)

val fp_graph : t -> Rt_util.Digraph.t
(** A copy of the FP DAG; mutating it does not affect the network. *)

val related : t -> int -> int -> bool
(** The [p ./ q] relation: a direct FP edge in either direction. *)

val higher_priority : t -> int -> int -> bool
(** Direct edge [p → q]. *)

val fp_rank : t -> int -> int
(** Position of a process in the deterministic topological order of the
    FP DAG; simultaneous jobs execute by ascending rank. *)

val channels_between : t -> int -> int -> channel_decl list
(** Channels with these endpoints, in either direction. *)

val in_channels_of : t -> int -> channel_decl list
(** Internal channels read by a process. *)

val out_channels_of : t -> int -> channel_decl list

val hyperperiod : t -> Rt_util.Rat.t
(** [lcm] of all process periods (sporadic processes contribute their
    minimal period [T_p]).  For the scheduling flow, use the hyperperiod
    of the server-transformed network computed by [Taskgraph.Derive]. *)

type user_error =
  | No_user of string
  | Ambiguous_user of string * string list
  | Sporadic_user of { sporadic : string; user : string }
  | User_period_too_large of { sporadic : string; user : string }

val pp_user_error : Format.formatter -> user_error -> unit

val user_map : t -> (int option array, user_error list) result
(** Sec. III-A restriction: for each sporadic process [p], the unique
    periodic process [u(p)] connected to [p] by a channel, with
    [T_u(p) <= T_p].  Entry is [None] for periodic processes. *)

val to_dot : t -> string
(** Graphviz rendering in the style of Fig. 1: solid arrows for
    channels (labelled with their type), dashed arrows for pure
    functional-priority edges. *)
