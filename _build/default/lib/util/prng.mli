(** Deterministic pseudo-random number generator (SplitMix64).

    Used for sporadic event traces, execution-time jitter and random
    workload generation.  A dedicated generator (rather than
    [Stdlib.Random]) keeps experiment outputs bit-identical across OCaml
    versions and independent of global state. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float_in : t -> float -> float -> float
(** Uniform in [\[lo, hi)]. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list. *)
