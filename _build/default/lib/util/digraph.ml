type t = {
  n : int;
  succ : int list array; (* reversed insertion order; normalized on read *)
  pred : int list array;
  edge_set : (int * int, unit) Hashtbl.t;
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; succ = Array.make n []; pred = Array.make n []; edge_set = Hashtbl.create 64; m = 0 }

let n_nodes t = t.n
let n_edges t = t.m

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of [0,%d)" v t.n)

let has_edge t u v =
  check t u;
  check t v;
  Hashtbl.mem t.edge_set (u, v)

let add_edge t u v =
  if not (has_edge t u v) then begin
    Hashtbl.replace t.edge_set (u, v) ();
    t.succ.(u) <- v :: t.succ.(u);
    t.pred.(v) <- u :: t.pred.(v);
    t.m <- t.m + 1
  end

let remove_edge t u v =
  if has_edge t u v then begin
    Hashtbl.remove t.edge_set (u, v);
    t.succ.(u) <- List.filter (fun w -> w <> v) t.succ.(u);
    t.pred.(v) <- List.filter (fun w -> w <> u) t.pred.(v);
    t.m <- t.m - 1
  end

let succs t v =
  check t v;
  List.rev t.succ.(v)

let preds t v =
  check t v;
  List.rev t.pred.(v)

let out_degree t v = check t v; List.length t.succ.(v)
let in_degree t v = check t v; List.length t.pred.(v)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) (List.rev t.succ.(u))
  done;
  !acc

let copy t =
  {
    n = t.n;
    succ = Array.copy t.succ;
    pred = Array.copy t.pred;
    edge_set = Hashtbl.copy t.edge_set;
    m = t.m;
  }

let topo_sort t =
  let indeg = Array.init t.n (fun v -> List.length t.pred.(v)) in
  (* min-heap on node index for a deterministic order *)
  let ready = Pqueue.create ~cmp:Int.compare in
  Array.iteri (fun v d -> if d = 0 then Pqueue.push ready v) indeg;
  let rec loop acc count =
    match Pqueue.pop ready with
    | None -> if count = t.n then Some (List.rev acc) else None
    | Some v ->
      List.iter
        (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Pqueue.push ready w)
        t.succ.(v);
      loop (v :: acc) (count + 1)
  in
  loop [] 0

let is_acyclic t = topo_sort t <> None

let find_cycle t =
  (* iterative DFS with colors; returns the cycle found on a back edge *)
  let white = 0 and gray = 1 and black = 2 in
  let color = Array.make t.n white in
  let parent = Array.make t.n (-1) in
  let result = ref None in
  let rec dfs v =
    color.(v) <- gray;
    List.iter
      (fun w ->
        if !result = None then
          if color.(w) = white then begin
            parent.(w) <- v;
            dfs w
          end
          else if color.(w) = gray then begin
            (* back edge v -> w: walk parents from v up to w *)
            let rec collect u acc = if u = w then u :: acc else collect parent.(u) (u :: acc) in
            result := Some (collect v [])
          end)
      (List.rev t.succ.(v));
    color.(v) <- black
  in
  let v = ref 0 in
  while !result = None && !v < t.n do
    if color.(!v) = white then dfs !v;
    incr v
  done;
  !result

let reachable_from t src =
  check t src;
  let seen = Bitset.create t.n in
  let stack = ref t.succ.(src) in
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if not (Bitset.mem seen v) then begin
        Bitset.add seen v;
        stack := t.succ.(v) @ !stack
      end;
      loop ()
  in
  loop ();
  seen

let transitive_closure t =
  match topo_sort t with
  | None -> invalid_arg "Digraph.transitive_closure: graph is cyclic"
  | Some order ->
    let closure = Array.init t.n (fun _ -> Bitset.create t.n) in
    (* reverse topological order: successors are finished first *)
    List.iter
      (fun v ->
        List.iter
          (fun w ->
            Bitset.add closure.(v) w;
            Bitset.union_into closure.(v) closure.(w))
          t.succ.(v))
      (List.rev order);
    closure

let transitive_reduction t =
  let closure = transitive_closure t in
  let reduced = create t.n in
  List.iter
    (fun (u, v) ->
      (* (u,v) is redundant iff some other successor of u reaches v *)
      let redundant =
        List.exists (fun s -> s <> v && Bitset.mem closure.(s) v) t.succ.(u)
      in
      if not redundant then add_edge reduced u v)
    (edges t);
  reduced

let path_exists t u v = Bitset.mem (reachable_from t u) v
