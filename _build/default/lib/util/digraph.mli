(** Mutable directed graphs over integer nodes [0..n-1].

    Shared by the functional-priority graph (which must be a DAG,
    Def. 2.1), the task graph (Def. 3.1) and DOT export.  Edges are kept
    unique; insertion order of successors is preserved. *)

type t

val create : int -> t
(** [create n] is an edgeless graph with nodes [0..n-1]. *)

val n_nodes : t -> int
val n_edges : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; self-loops are allowed (and make the graph cyclic). *)

val remove_edge : t -> int -> int -> unit
val has_edge : t -> int -> int -> bool

val succs : t -> int -> int list
(** Successors in insertion order. *)

val preds : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val edges : t -> (int * int) list
val copy : t -> t

val topo_sort : t -> int list option
(** Kahn's algorithm; [None] iff the graph has a cycle.  Ties are broken
    by node index, so the order is deterministic. *)

val is_acyclic : t -> bool

val find_cycle : t -> int list option
(** Some witness cycle [v0; v1; ...; vk] with an edge [vk -> v0]. *)

val reachable_from : t -> int -> Bitset.t
(** Nodes reachable from a node by a non-empty path (the node itself is
    included only if it lies on a cycle). *)

val transitive_closure : t -> Bitset.t array
(** [closure.(v)] is {!reachable_from}[ t v] for every [v], computed in
    one pass (DAG only).
    @raise Invalid_argument on a cyclic graph. *)

val transitive_reduction : t -> t
(** Smallest subgraph with the same reachability relation (unique for
    DAGs).  @raise Invalid_argument on a cyclic graph. *)

val path_exists : t -> int -> int -> bool
(** True iff there is a non-empty path from the first to the second node. *)
