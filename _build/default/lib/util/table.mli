(** ASCII table rendering for experiment and benchmark reports. *)

type align = Left | Right | Center

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with a
    separator rule, padding columns to their widest cell.  [aligns]
    defaults to left for every column; a short list is padded with
    [Left].  Ragged rows are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** {!render} followed by [print_string]. *)
