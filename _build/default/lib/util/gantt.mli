(** ASCII Gantt charts of schedules and execution traces (the textual
    analogue of the paper's Fig. 4 and Fig. 6). *)

type segment = {
  start : float;
  finish : float;  (** must satisfy [finish >= start] *)
  label : string;  (** shown inside the bar, clipped to its width *)
}

type row = { name : string; segments : segment list }

val render :
  ?width:int ->
  ?t_min:float ->
  ?t_max:float ->
  ?time_unit:string ->
  row list ->
  string
(** [render rows] draws one line per row plus a time axis.  [width] is
    the number of character cells of the time span (default 72).  The
    span defaults to the extremes of all segments.  Overlapping segments
    within a row are drawn left to right, later ones overwriting. *)

val print :
  ?width:int -> ?t_min:float -> ?t_max:float -> ?time_unit:string -> row list -> unit

val to_svg :
  ?width:int ->
  ?row_height:int ->
  ?t_min:float ->
  ?t_max:float ->
  ?time_unit:string ->
  ?title:string ->
  row list ->
  string
(** Standalone SVG document: one horizontal lane per row, one rounded
    bar per segment with its label, a time axis with ticks, and a
    stable label→color mapping so the same job always gets the same hue
    across charts.  [width] is in pixels (default 960). *)
