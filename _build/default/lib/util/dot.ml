type node = { id : string; label : string; shape : string; style : string }
type edge = { src : string; dst : string; elabel : string; estyle : string }

let node ?label ?(shape = "box") ?(style = "") id =
  { id; label = (match label with Some l -> l | None -> id); shape; style }

let edge ?(label = "") ?(style = "") src dst =
  { src; dst; elabel = label; estyle = style }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ~name nodes edges =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n";
  List.iter
    (fun n ->
      let attrs =
        [ Printf.sprintf "label=\"%s\"" (escape n.label);
          Printf.sprintf "shape=%s" n.shape ]
        @ (if n.style = "" then [] else [ Printf.sprintf "style=\"%s\"" (escape n.style) ])
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [%s];\n" (escape n.id) (String.concat ", " attrs)))
    nodes;
  List.iter
    (fun e ->
      let attrs =
        (if e.elabel = "" then [] else [ Printf.sprintf "label=\"%s\"" (escape e.elabel) ])
        @ if e.estyle = "" then [] else [ Printf.sprintf "style=\"%s\"" (escape e.estyle) ]
      in
      let attr_str = if attrs = [] then "" else Printf.sprintf " [%s]" (String.concat ", " attrs) in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (escape e.src) (escape e.dst) attr_str))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
