type t = { words : int array; capacity : int }

let bits_per_word = 63 (* avoid sign-bit subtleties on boxed ints *)

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n / bits_per_word) + 1) 0; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let copy t = { t with words = Array.copy t.words }

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let equal a b = a.capacity = b.capacity && a.words = b.words
