type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render ?(aligns = []) ~header rows =
  let n_cols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let widths =
    Array.init n_cols (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (cell row i)))
          (String.length (cell header i))
          rows)
  in
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> Left
  in
  let render_row row =
    let cells =
      List.init n_cols (fun i -> pad (align_of i) widths.(i) (cell row i))
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row header :: rule :: body) @ [ "" ])

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)
