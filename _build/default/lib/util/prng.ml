type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, trivially
   seedable, and splittable — exactly what reproducible experiments need. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* take 62 non-negative bits; modulo bias is negligible for our bounds *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled to [0,1) *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float_in t lo hi = lo +. float t (hi -. lo)

let split t = { state = mix (next_int64 t) }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
