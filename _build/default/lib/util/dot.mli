(** Graphviz DOT export of process networks and task graphs. *)

type node = {
  id : string;
  label : string;
  shape : string;  (** e.g. ["box"], ["ellipse"] *)
  style : string;  (** e.g. [""], ["dashed"] *)
}

type edge = {
  src : string;
  dst : string;
  elabel : string;
  estyle : string;  (** e.g. [""], ["dotted"] for priority-only edges *)
}

val node : ?label:string -> ?shape:string -> ?style:string -> string -> node
val edge : ?label:string -> ?style:string -> string -> string -> edge

val render : name:string -> node list -> edge list -> string
(** A complete [digraph name { ... }] document; identifiers are quoted
    and escaped. *)
