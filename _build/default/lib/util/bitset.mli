(** Fixed-capacity mutable bitsets.

    Used for dense reachability matrices in transitive closure and
    reduction of task graphs (hundreds to thousands of nodes). *)

type t

val create : int -> t
(** [create n] is an empty set over universe [\[0, n)]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val union_into : t -> t -> unit
(** [union_into dst src] adds every element of [src] to [dst].
    @raise Invalid_argument on capacity mismatch. *)

val inter_into : t -> t -> unit
val copy : t -> t
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val is_empty : t -> bool
val equal : t -> t -> bool
