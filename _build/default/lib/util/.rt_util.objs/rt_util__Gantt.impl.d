lib/util/gantt.ml: Buffer Bytes Float Hashtbl List Printf String
