lib/util/digraph.ml: Array Bitset Hashtbl Int List Pqueue Printf
