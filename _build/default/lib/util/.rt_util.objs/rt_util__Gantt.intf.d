lib/util/gantt.mli:
