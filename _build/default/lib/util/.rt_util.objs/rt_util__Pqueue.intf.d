lib/util/pqueue.mli:
