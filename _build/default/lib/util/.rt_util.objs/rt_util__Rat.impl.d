lib/util/rat.ml: Format List Printf Stdlib String
