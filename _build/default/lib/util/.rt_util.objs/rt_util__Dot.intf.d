lib/util/dot.mli:
