lib/util/prng.mli:
