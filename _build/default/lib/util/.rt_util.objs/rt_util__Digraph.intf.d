lib/util/digraph.mli: Bitset
