lib/util/table.ml: Array List String
