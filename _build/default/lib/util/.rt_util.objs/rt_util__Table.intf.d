lib/util/table.mli:
