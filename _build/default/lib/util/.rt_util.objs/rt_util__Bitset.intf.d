lib/util/bitset.mli:
