type segment = { start : float; finish : float; label : string }
type row = { name : string; segments : segment list }

let span rows =
  List.fold_left
    (fun (lo, hi) r ->
      List.fold_left
        (fun (lo, hi) s -> (min lo s.start, max hi s.finish))
        (lo, hi) r.segments)
    (infinity, neg_infinity) rows

let render ?(width = 72) ?t_min ?t_max ?(time_unit = "ms") rows =
  let lo0, hi0 = span rows in
  let lo = match t_min with Some v -> v | None -> if lo0 = infinity then 0.0 else lo0 in
  let hi = match t_max with Some v -> v | None -> if hi0 = neg_infinity then 1.0 else hi0 in
  let hi = if hi <= lo then lo +. 1.0 else hi in
  let scale = float_of_int width /. (hi -. lo) in
  let cell_of t =
    let c = int_of_float (Float.round ((t -. lo) *. scale)) in
    min width (max 0 c)
  in
  let name_width =
    List.fold_left (fun acc r -> max acc (String.length r.name)) 4 rows
  in
  let buf = Buffer.create 1024 in
  let draw_row r =
    let line = Bytes.make width '.' in
    let segs = List.sort (fun a b -> compare a.start b.start) r.segments in
    List.iter
      (fun s ->
        let c0 = cell_of s.start and c1 = cell_of s.finish in
        let c1 = if c1 <= c0 then min width (c0 + 1) else c1 in
        for c = c0 to c1 - 1 do
          Bytes.set line c '#'
        done;
        (* bar boundaries, then the clipped label *)
        if c0 < width then Bytes.set line c0 '[';
        if c1 - 1 >= 0 && c1 - 1 < width && c1 - 1 > c0 then Bytes.set line (c1 - 1) ']';
        let room = c1 - c0 - 2 in
        let lbl = s.label in
        let lbl_len = min (String.length lbl) (max 0 room) in
        for k = 0 to lbl_len - 1 do
          Bytes.set line (c0 + 1 + k) lbl.[k]
        done)
      segs;
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s|\n" name_width r.name (Bytes.to_string line))
  in
  List.iter draw_row rows;
  (* time axis with ticks at the ends and the middle *)
  let axis = Bytes.make width '-' in
  Bytes.set axis 0 '+';
  if width > 1 then Bytes.set axis (width - 1) '+';
  if width > 2 then Bytes.set axis (width / 2) '+';
  Buffer.add_string buf
    (Printf.sprintf "%-*s |%s|\n" name_width "" (Bytes.to_string axis));
  let mid = (lo +. hi) /. 2.0 in
  let fmt v = Printf.sprintf "%g%s" v time_unit in
  let left = fmt lo and middle = fmt mid and right = fmt hi in
  let axis_labels = Bytes.make (width + 2) ' ' in
  let put pos s =
    let pos = max 0 (min (Bytes.length axis_labels - String.length s) pos) in
    String.iteri (fun i c -> Bytes.set axis_labels (pos + i) c) s
  in
  put 0 left;
  put ((width / 2) - (String.length middle / 2)) middle;
  put (width + 2 - String.length right) right;
  Buffer.add_string buf
    (Printf.sprintf "%-*s %s\n" name_width "" (Bytes.to_string axis_labels));
  Buffer.contents buf

let print ?width ?t_min ?t_max ?time_unit rows =
  print_string (render ?width ?t_min ?t_max ?time_unit rows)

let escape_xml s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* stable label -> hue: the process-name prefix (before '[') hashes to a
   hue so all jobs of one process share a color across charts *)
let color_of label =
  let key =
    match String.index_opt label '[' with
    | Some i -> String.sub label 0 i
    | None -> label
  in
  let h = Hashtbl.hash key in
  let hue = h mod 360 in
  Printf.sprintf "hsl(%d, 62%%, 62%%)" hue

let to_svg ?(width = 960) ?(row_height = 34) ?t_min ?t_max ?(time_unit = "ms")
    ?(title = "") rows =
  let lo0, hi0 = span rows in
  let lo = match t_min with Some v -> v | None -> if lo0 = infinity then 0.0 else lo0 in
  let hi = match t_max with Some v -> v | None -> if hi0 = neg_infinity then 1.0 else hi0 in
  let hi = if hi <= lo then lo +. 1.0 else hi in
  let margin_left = 90 and margin_top = if title = "" then 12 else 36 in
  let chart_w = width - margin_left - 16 in
  let x_of t =
    float_of_int margin_left +. ((t -. lo) /. (hi -. lo) *. float_of_int chart_w)
  in
  let n_rows = List.length rows in
  let height = margin_top + (n_rows * row_height) + 34 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"sans-serif\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect width=\"%d\" height=\"%d\" fill=\"white\" stroke=\"#ccc\"/>\n"
       width height);
  if title <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"22\" font-size=\"14\" font-weight=\"bold\">%s</text>\n"
         margin_left (escape_xml title));
  (* lanes *)
  List.iteri
    (fun i row ->
      let y = margin_top + (i * row_height) in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n"
           (margin_left - 8)
           (y + (row_height / 2) + 4)
           (escape_xml row.name));
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#eee\"/>\n"
           margin_left (y + row_height) (margin_left + chart_w) (y + row_height));
      List.iter
        (fun s ->
          let x0 = x_of (Float.max lo s.start) and x1 = x_of (Float.min hi s.finish) in
          if x1 > x0 then begin
            let w = x1 -. x0 in
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" rx=\"3\" \
                  fill=\"%s\" stroke=\"#555\" stroke-width=\"0.5\">\
                  <title>%s: %.4g-%.4g %s</title></rect>\n"
                 x0 (y + 4) w (row_height - 10)
                 (color_of s.label)
                 (escape_xml s.label) s.start s.finish time_unit);
            if w > 30.0 then
              Buffer.add_string buf
                (Printf.sprintf
                   "<text x=\"%.1f\" y=\"%d\" clip-path=\"none\">%s</text>\n"
                   (x0 +. 3.0)
                   (y + (row_height / 2) + 3)
                   (escape_xml s.label))
          end)
        row.segments)
    rows;
  (* time axis with ~8 ticks *)
  let axis_y = margin_top + (n_rows * row_height) + 6 in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#333\"/>\n"
       margin_left axis_y (margin_left + chart_w) axis_y);
  let n_ticks = 8 in
  for k = 0 to n_ticks do
    let t = lo +. ((hi -. lo) *. float_of_int k /. float_of_int n_ticks) in
    let x = x_of t in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#333\"/>\n" x
         axis_y x (axis_y + 4));
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%.4g%s</text>\n" x
         (axis_y + 18) t
         (if k = n_ticks then time_unit else ""))
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
