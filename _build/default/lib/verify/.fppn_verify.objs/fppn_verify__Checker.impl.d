lib/verify/checker.ml: Format Fppn Fun List Printf Rt_util Runtime Sched String Taskgraph Timedauto
