lib/verify/checker.mli: Format Fppn Rt_util Taskgraph
