module Rat = Rt_util.Rat

(* floats must re-lex as FLOAT tokens: print with a decimal point *)
let pp_literal ppf = function
  | Ast.L_int n -> Format.pp_print_int ppf n
  | Ast.L_float f ->
    let s = Printf.sprintf "%.12g" (Float.abs f) in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    if f < 0.0 then Format.fprintf ppf "-%s" s else Format.pp_print_string ppf s
  | Ast.L_bool b -> Format.pp_print_bool ppf b
  | Ast.L_string s -> Format.fprintf ppf "%S" s

let binop_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

(* parenthesize everything nested: correct and trivially re-parseable *)
let rec pp_expr ppf = function
  | Ast.Lit l -> pp_literal ppf l
  | Ast.Var x -> Format.pp_print_string ppf x
  | Ast.Avail x -> Format.fprintf ppf "avail(%s)" x
  | Ast.Unop (Ast.Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Ast.Unop (Ast.Not, e) -> Format.fprintf ppf "(not %a)" pp_expr e
  | Ast.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_string op) pp_expr b

let pp_action ppf = function
  | Ast.Assign (x, e) -> Format.fprintf ppf "%s := %a" x pp_expr e
  | Ast.Read (x, c) -> Format.fprintf ppf "%s ? %s" x c
  | Ast.Write (e, c) -> Format.fprintf ppf "%a ! %s" pp_expr e c

let pp_rat ppf r =
  if Rat.is_integer r then Format.fprintf ppf "%d" (Rat.to_int_exn r)
  else Format.fprintf ppf "%.6g" (Rat.to_float r)

let pp_event ppf = function
  | Ast.Periodic { burst; period; deadline } ->
    if burst = 1 then
      Format.fprintf ppf "periodic %a deadline %a" pp_rat period pp_rat deadline
    else
      Format.fprintf ppf "periodic %d per %a deadline %a" burst pp_rat period
        pp_rat deadline
  | Ast.Sporadic { burst; period; deadline } ->
    if burst = 1 then
      Format.fprintf ppf "sporadic %a deadline %a" pp_rat period pp_rat deadline
    else
      Format.fprintf ppf "sporadic %d per %a deadline %a" burst pp_rat period
        pp_rat deadline

let pp_transition ppf (t : Ast.transition) =
  Format.fprintf ppf "      when %a" pp_expr t.Ast.guard;
  (match t.Ast.actions with
  | [] -> ()
  | actions ->
    Format.fprintf ppf " do %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_action)
      actions);
  Format.fprintf ppf " goto %s;@." t.Ast.goto

let pp_machine ppf (m : Ast.machine) =
  Format.fprintf ppf " {@.";
  List.iter
    (fun (x, l) -> Format.fprintf ppf "    var %s := %a;@." x pp_literal l)
    m.Ast.vars;
  List.iter
    (fun (l : Ast.location) ->
      Format.fprintf ppf "    loc %s {@." l.Ast.loc_name;
      List.iter (pp_transition ppf) l.Ast.transitions;
      Format.fprintf ppf "    }@.")
    m.Ast.locations;
  Format.fprintf ppf "  }@."

let pp_process ppf (p : Ast.process_decl) =
  Format.fprintf ppf "  process %s : %a" p.Ast.p_name pp_event p.Ast.event;
  (match p.Ast.wcet with
  | Some w -> Format.fprintf ppf " wcet %a" pp_rat w
  | None -> ());
  match p.Ast.behavior with
  | Ast.Extern -> Format.fprintf ppf " extern;@."
  | Ast.Machine m -> pp_machine ppf m

let pp_network ppf (n : Ast.network) =
  Format.fprintf ppf "network %s {@." n.Ast.n_name;
  List.iter (pp_process ppf) n.Ast.processes;
  List.iter
    (fun (c : Ast.channel_decl) ->
      Format.fprintf ppf "  channel %s %s : %s -> %s"
        (Fppn.Channel.kind_to_string c.Ast.kind)
        c.Ast.c_name c.Ast.writer c.Ast.reader;
      (match c.Ast.init with
      | Some l -> Format.fprintf ppf " init %a" pp_literal l
      | None -> ());
      Format.fprintf ppf ";@.")
    n.Ast.channels;
  List.iter
    (fun (hi, lo, _) -> Format.fprintf ppf "  priority %s -> %s;@." hi lo)
    n.Ast.priorities;
  List.iter
    (fun (io : Ast.io_decl) ->
      match io.Ast.dir with
      | Ast.In -> Format.fprintf ppf "  input %s -> %s;@." io.Ast.io_name io.Ast.io_owner
      | Ast.Out ->
        Format.fprintf ppf "  output %s -> %s;@." io.Ast.io_owner io.Ast.io_name)
    n.Ast.ios;
  Format.fprintf ppf "}@."

let to_string n = Format.asprintf "%a" pp_network n
