type pos = { line : int; col : int }

type literal =
  | L_int of int
  | L_float of float
  | L_bool of bool
  | L_string of string

type expr =
  | Lit of literal
  | Var of string
  | Avail of string
  | Unop of unop * expr
  | Binop of binop * expr * expr

and unop = Neg | Not

and binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type action =
  | Assign of string * expr
  | Read of string * string
  | Write of expr * string

type transition = {
  guard : expr;
  actions : action list;
  goto : string;
  t_pos : pos;
}

type location = { loc_name : string; transitions : transition list }

type machine = {
  vars : (string * literal) list;
  locations : location list;
}

type behavior = Extern | Machine of machine

type event =
  | Periodic of { burst : int; period : Rt_util.Rat.t; deadline : Rt_util.Rat.t }
  | Sporadic of { burst : int; period : Rt_util.Rat.t; deadline : Rt_util.Rat.t }

type process_decl = {
  p_name : string;
  event : event;
  wcet : Rt_util.Rat.t option;
  behavior : behavior;
  p_pos : pos;
}

type channel_decl = {
  c_name : string;
  kind : Fppn.Channel.kind;
  writer : string;
  reader : string;
  init : literal option;
  c_pos : pos;
}

type io_dir = In | Out

type io_decl = { io_name : string; io_owner : string; dir : io_dir; io_pos : pos }

type network = {
  n_name : string;
  processes : process_decl list;
  channels : channel_decl list;
  priorities : (string * string * pos) list;
  ios : io_decl list;
}

let value_of_literal = function
  | L_int n -> Fppn.Value.Int n
  | L_float f -> Fppn.Value.Float f
  | L_bool b -> Fppn.Value.Bool b
  | L_string s -> Fppn.Value.Str s

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col
