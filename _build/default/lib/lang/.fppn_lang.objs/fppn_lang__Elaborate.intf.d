lib/lang/elaborate.mli: Ast Fppn Rt_util
