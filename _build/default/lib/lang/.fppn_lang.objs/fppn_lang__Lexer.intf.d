lib/lang/lexer.mli: Ast Format
