lib/lang/printer.ml: Ast Float Format Fppn List Printf Rt_util String
