lib/lang/ast.ml: Format Fppn Rt_util
