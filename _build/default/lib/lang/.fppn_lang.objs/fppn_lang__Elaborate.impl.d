lib/lang/elaborate.ml: Ast Format Fppn List Option Printf
