lib/lang/parser.ml: Array Ast Format Fppn Lexer List Printf Rt_util
