lib/lang/lexer.ml: Ast Buffer Format List Printf String
