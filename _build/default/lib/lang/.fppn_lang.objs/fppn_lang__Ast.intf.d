lib/lang/ast.mli: Format Fppn Rt_util
