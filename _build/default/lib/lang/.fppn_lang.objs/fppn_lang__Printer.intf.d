lib/lang/printer.mli: Ast Format
