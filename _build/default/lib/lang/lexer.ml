type token =
  | IDENT of string
  | INT of int
  | FLOAT of string
  | STRING of string
  | KW of string
  | LBRACE | RBRACE | LPAREN | RPAREN
  | SEMI | COLON | COMMA
  | ARROW
  | ASSIGN
  | QUESTION | BANG
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LE | LT | GE | GT
  | ANDAND | OROR | NOT
  | EOF

let keywords =
  [
    "network"; "process"; "periodic"; "sporadic"; "per"; "deadline"; "wcet";
    "extern"; "channel"; "fifo"; "blackboard"; "init"; "priority"; "input";
    "output"; "var"; "loc"; "when"; "do"; "goto"; "avail"; "true"; "false";
  ]

type t = { token : token; pos : Ast.pos }

exception Error of string * Ast.pos

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | FLOAT s -> Format.fprintf ppf "number %s" s
  | STRING s -> Format.fprintf ppf "string %S" s
  | KW s -> Format.fprintf ppf "keyword '%s'" s
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | SEMI -> Format.pp_print_string ppf "';'"
  | COLON -> Format.pp_print_string ppf "':'"
  | COMMA -> Format.pp_print_string ppf "','"
  | ARROW -> Format.pp_print_string ppf "'->'"
  | ASSIGN -> Format.pp_print_string ppf "':='"
  | QUESTION -> Format.pp_print_string ppf "'?'"
  | BANG -> Format.pp_print_string ppf "'!'"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | MINUS -> Format.pp_print_string ppf "'-'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | SLASH -> Format.pp_print_string ppf "'/'"
  | PERCENT -> Format.pp_print_string ppf "'%'"
  | EQ -> Format.pp_print_string ppf "'=='"
  | NE -> Format.pp_print_string ppf "'!='"
  | LE -> Format.pp_print_string ppf "'<='"
  | LT -> Format.pp_print_string ppf "'<'"
  | GE -> Format.pp_print_string ppf "'>='"
  | GT -> Format.pp_print_string ppf "'>'"
  | ANDAND -> Format.pp_print_string ppf "'&&'"
  | OROR -> Format.pp_print_string ppf "'||'"
  | NOT -> Format.pp_print_string ppf "'not'"
  | EOF -> Format.pp_print_string ppf "end of input"

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let pos st = { Ast.line = st.line; col = st.col }
let at_end st = st.offset >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.offset]

let peek2 st =
  if st.offset + 1 >= String.length st.src then '\000'
  else st.src.[st.offset + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.offset] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.offset <- st.offset + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_block_comment st depth start =
  if at_end st then raise (Error ("unterminated comment", start))
  else if peek st = '(' && peek2 st = '*' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1) start
  end
  else if peek st = '*' && peek2 st = ')' then begin
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st (depth - 1) start
  end
  else begin
    advance st;
    skip_block_comment st depth start
  end

let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
    advance st;
    skip_trivia st
  | '/' when peek2 st = '/' ->
    while (not (at_end st)) && peek st <> '\n' do
      advance st
    done;
    skip_trivia st
  | '(' when peek2 st = '*' ->
    let start = pos st in
    advance st;
    advance st;
    skip_block_comment st 1 start;
    skip_trivia st
  | _ -> ()

let lex_string st =
  let start = pos st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end st then raise (Error ("unterminated string", start))
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
        advance st;
        (match peek st with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> Buffer.add_char buf c);
        advance st;
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  STRING (Buffer.contents buf)

let lex_number st =
  let start_off = st.offset in
  while is_digit (peek st) do
    advance st
  done;
  if peek st = '.' && is_digit (peek2 st) then begin
    advance st;
    while is_digit (peek st) do
      advance st
    done;
    FLOAT (String.sub st.src start_off (st.offset - start_off))
  end
  else INT (int_of_string (String.sub st.src start_off (st.offset - start_off)))

let lex_ident st =
  let start_off = st.offset in
  while is_ident (peek st) do
    advance st
  done;
  let word = String.sub st.src start_off (st.offset - start_off) in
  if word = "not" then NOT
  else if List.mem word keywords then KW word
  else IDENT word

let next_token st =
  skip_trivia st;
  let p = pos st in
  let tok =
    if at_end st then EOF
    else
      match peek st with
      | '"' -> lex_string st
      | c when is_digit c -> lex_number st
      | c when is_ident_start c -> lex_ident st
      | '{' -> advance st; LBRACE
      | '}' -> advance st; RBRACE
      | '(' -> advance st; LPAREN
      | ')' -> advance st; RPAREN
      | ';' -> advance st; SEMI
      | ',' -> advance st; COMMA
      | ':' ->
        advance st;
        if peek st = '=' then begin advance st; ASSIGN end else COLON
      | '-' ->
        advance st;
        if peek st = '>' then begin advance st; ARROW end else MINUS
      | '?' -> advance st; QUESTION
      | '!' ->
        advance st;
        if peek st = '=' then begin advance st; NE end else BANG
      | '+' -> advance st; PLUS
      | '*' -> advance st; STAR
      | '/' -> advance st; SLASH
      | '%' -> advance st; PERCENT
      | '=' ->
        advance st;
        if peek st = '=' then begin advance st; EQ end
        else raise (Error ("'=' must be '==' or ':='", p))
      | '<' ->
        advance st;
        if peek st = '=' then begin advance st; LE end else LT
      | '>' ->
        advance st;
        if peek st = '=' then begin advance st; GE end else GT
      | '&' ->
        advance st;
        if peek st = '&' then begin advance st; ANDAND end
        else raise (Error ("'&' must be '&&'", p))
      | '|' ->
        advance st;
        if peek st = '|' then begin advance st; OROR end
        else raise (Error ("'|' must be '||'", p))
      | c -> raise (Error (Printf.sprintf "illegal character %C" c, p))
  in
  { token = tok; pos = p }

let tokenize src =
  let st = { src; offset = 0; line = 1; col = 1 } in
  let rec loop acc =
    let t = next_token st in
    if t.token = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
