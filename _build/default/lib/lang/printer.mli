(** Pretty-printer for the FPPN description language.

    [parse (print ast)] yields a structurally equal AST (round-trip
    property tested in [test/test_lang.ml]). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_action : Format.formatter -> Ast.action -> unit
val pp_network : Format.formatter -> Ast.network -> unit
val to_string : Ast.network -> string
