(** Abstract syntax of the FPPN description language.

    Sec. V of the paper mentions "an FPPN-related programming language"
    defined in the CERTAINTY project, from which the scheduling and
    code-generation tools start.  This library is our equivalent: a
    small concrete syntax for networks whose process behaviors are
    either Def. 2.2 automata written inline or [extern] bodies supplied
    by the host program.

    Concrete syntax sketch (see [examples/fig1.fppn]):
    {v
    network demo {
      process Counter : periodic 100 deadline 100 wcet 10 {
        var x = 0;
        loc l0 {
          when true do x := x + 1, x ! samples goto l0;
        }
      }
      process Sink : periodic 200 deadline 200 wcet 30 extern;
      channel fifo samples : Counter -> Sink;
      priority Counter -> Sink;
      output Sink -> out;
    }
    v} *)

type pos = { line : int; col : int }

type literal =
  | L_int of int
  | L_float of float
  | L_bool of bool
  | L_string of string

type expr =
  | Lit of literal
  | Var of string
  | Avail of string  (** [avail(x)] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

and unop = Neg | Not

and binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type action =
  | Assign of string * expr  (** [x := e] *)
  | Read of string * string  (** [x ? c] *)
  | Write of expr * string   (** [e ! c] *)

type transition = {
  guard : expr;
  actions : action list;
  goto : string;
  t_pos : pos;
}

type location = { loc_name : string; transitions : transition list }

type machine = {
  vars : (string * literal) list;
  locations : location list;  (** the first location is initial *)
}

type behavior = Extern | Machine of machine

type event =
  | Periodic of { burst : int; period : Rt_util.Rat.t; deadline : Rt_util.Rat.t }
  | Sporadic of { burst : int; period : Rt_util.Rat.t; deadline : Rt_util.Rat.t }

type process_decl = {
  p_name : string;
  event : event;
  wcet : Rt_util.Rat.t option;
  behavior : behavior;
  p_pos : pos;
}

type channel_decl = {
  c_name : string;
  kind : Fppn.Channel.kind;
  writer : string;
  reader : string;
  init : literal option;
  c_pos : pos;
}

type io_dir = In | Out

type io_decl = { io_name : string; io_owner : string; dir : io_dir; io_pos : pos }

type network = {
  n_name : string;
  processes : process_decl list;
  channels : channel_decl list;
  priorities : (string * string * pos) list;
  ios : io_decl list;
}

val value_of_literal : literal -> Fppn.Value.t
val pp_pos : Format.formatter -> pos -> unit
