(** Hand-written lexer for the FPPN description language.

    Comments: [// line] and [(* block *)] (nested).  Numbers lex as
    integers or decimals; the parser converts timing literals to exact
    rationals. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of string  (** the raw spelling, e.g. ["13.3"], kept exact *)
  | STRING of string
  | KW of string  (** one of {!keywords} *)
  | LBRACE | RBRACE | LPAREN | RPAREN
  | SEMI | COLON | COMMA
  | ARROW  (** [->] *)
  | ASSIGN  (** [:=] *)
  | QUESTION | BANG
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LE | LT | GE | GT
  | ANDAND | OROR | NOT
  | EOF

val keywords : string list
(** [network process periodic sporadic per deadline wcet extern channel
    fifo blackboard init priority input output var loc when do goto
    avail true false] *)

type t = { token : token; pos : Ast.pos }

exception Error of string * Ast.pos

val tokenize : string -> t list
(** The whole input as a token list ending with [EOF].
    @raise Error on an illegal character or unterminated string/comment. *)

val pp_token : Format.formatter -> token -> unit
