module Rat = Rt_util.Rat

exception Error of string * Ast.pos

type state = { tokens : Lexer.t array; mutable idx : int }

let current st = st.tokens.(st.idx)
let peek_token st = (current st).Lexer.token
let peek_pos st = (current st).Lexer.pos
let advance st = if st.idx < Array.length st.tokens - 1 then st.idx <- st.idx + 1

let fail st msg =
  raise (Error (Format.asprintf "%s (found %a)" msg Lexer.pp_token (peek_token st), peek_pos st))

let expect st tok msg =
  if peek_token st = tok then advance st else fail st msg

let expect_kw st kw =
  match peek_token st with
  | Lexer.KW k when k = kw -> advance st
  | _ -> fail st (Printf.sprintf "expected keyword '%s'" kw)

let accept_kw st kw =
  match peek_token st with
  | Lexer.KW k when k = kw ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek_token st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "expected an identifier"

(* timing literal: INT or FLOAT, converted to an exact rational *)
let number st =
  match peek_token st with
  | Lexer.INT n ->
    advance st;
    Rat.of_int n
  | Lexer.FLOAT s ->
    advance st;
    Rat.of_string s
  | _ -> fail st "expected a number"

let literal st =
  match peek_token st with
  | Lexer.INT n ->
    advance st;
    Ast.L_int n
  | Lexer.FLOAT s ->
    advance st;
    Ast.L_float (float_of_string s)
  | Lexer.STRING s ->
    advance st;
    Ast.L_string s
  | Lexer.KW "true" ->
    advance st;
    Ast.L_bool true
  | Lexer.KW "false" ->
    advance st;
    Ast.L_bool false
  | Lexer.MINUS -> (
    advance st;
    match peek_token st with
    | Lexer.INT n ->
      advance st;
      Ast.L_int (-n)
    | Lexer.FLOAT s ->
      advance st;
      Ast.L_float (-.float_of_string s)
    | _ -> fail st "expected a number after '-'")
  | _ -> fail st "expected a literal"

(* --- expressions --------------------------------------------------------- *)

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  if peek_token st = Lexer.OROR then begin
    advance st;
    Ast.Binop (Ast.Or, lhs, or_expr st)
  end
  else lhs

and and_expr st =
  let lhs = cmp_expr st in
  if peek_token st = Lexer.ANDAND then begin
    advance st;
    Ast.Binop (Ast.And, lhs, and_expr st)
  end
  else lhs

and cmp_expr st =
  let lhs = add_expr st in
  let op =
    match peek_token st with
    | Lexer.EQ -> Some Ast.Eq
    | Lexer.NE -> Some Ast.Ne
    | Lexer.LE -> Some Ast.Le
    | Lexer.LT -> Some Ast.Lt
    | Lexer.GE -> Some Ast.Ge
    | Lexer.GT -> Some Ast.Gt
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, add_expr st)

and add_expr st =
  let rec loop lhs =
    match peek_token st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, lhs, mul_expr st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, lhs, mul_expr st))
    | _ -> lhs
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop lhs =
    match peek_token st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, lhs, unary_expr st))
    | Lexer.SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, lhs, unary_expr st))
    | Lexer.PERCENT ->
      advance st;
      loop (Ast.Binop (Ast.Mod, lhs, unary_expr st))
    | _ -> lhs
  in
  loop (unary_expr st)

and unary_expr st =
  match peek_token st with
  | Lexer.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, unary_expr st)
  | Lexer.NOT ->
    advance st;
    Ast.Unop (Ast.Not, unary_expr st)
  | _ -> primary_expr st

and primary_expr st =
  match peek_token st with
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.KW "true"
  | Lexer.KW "false" ->
    Ast.Lit (literal st)
  | Lexer.KW "avail" ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after avail";
    let x = ident st in
    expect st Lexer.RPAREN "expected ')'";
    Ast.Avail x
  | Lexer.IDENT name ->
    advance st;
    Ast.Var name
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN "expected ')'";
    e
  | _ -> fail st "expected an expression"

(* --- actions and machines ------------------------------------------------- *)

let action st =
  (* lookahead: IDENT ':=' / IDENT '?' are the two name-led forms;
     anything else is [expr ! channel] *)
  match peek_token st with
  | Lexer.IDENT name -> (
    let save = st.idx in
    advance st;
    match peek_token st with
    | Lexer.ASSIGN ->
      advance st;
      Ast.Assign (name, expr st)
    | Lexer.QUESTION ->
      advance st;
      Ast.Read (name, ident st)
    | _ ->
      st.idx <- save;
      let e = expr st in
      expect st Lexer.BANG "expected '!' in a write action";
      Ast.Write (e, ident st))
  | _ ->
    let e = expr st in
    expect st Lexer.BANG "expected '!' in a write action";
    Ast.Write (e, ident st)

let transition st =
  let t_pos = peek_pos st in
  expect_kw st "when";
  let guard = expr st in
  let actions =
    if accept_kw st "do" then begin
      let rec loop acc =
        let a = action st in
        if peek_token st = Lexer.COMMA then begin
          advance st;
          loop (a :: acc)
        end
        else List.rev (a :: acc)
      in
      loop []
    end
    else []
  in
  expect_kw st "goto";
  let goto = ident st in
  expect st Lexer.SEMI "expected ';' after a transition";
  { Ast.guard; actions; goto; t_pos }

let location st =
  expect_kw st "loc";
  let loc_name = ident st in
  expect st Lexer.LBRACE "expected '{' after the location name";
  let rec loop acc =
    match peek_token st with
    | Lexer.KW "when" -> loop (transition st :: acc)
    | Lexer.RBRACE ->
      advance st;
      List.rev acc
    | _ -> fail st "expected 'when' or '}' in a location"
  in
  { Ast.loc_name; transitions = loop [] }

let machine st =
  expect st Lexer.LBRACE "expected '{' to open a machine body";
  let rec vars acc =
    if accept_kw st "var" then begin
      let name = ident st in
      expect st Lexer.ASSIGN "expected ':=' in a variable declaration";
      let l = literal st in
      expect st Lexer.SEMI "expected ';' after a variable declaration";
      vars ((name, l) :: acc)
    end
    else List.rev acc
  in
  let vars = vars [] in
  let rec locs acc =
    match peek_token st with
    | Lexer.KW "loc" -> locs (location st :: acc)
    | Lexer.RBRACE ->
      advance st;
      List.rev acc
    | _ -> fail st "expected 'loc' or '}' in a machine body"
  in
  let locations = locs [] in
  { Ast.vars; locations }

(* --- declarations ----------------------------------------------------------- *)

let event st =
  let sporadic =
    if accept_kw st "periodic" then false
    else if accept_kw st "sporadic" then true
    else fail st "expected 'periodic' or 'sporadic'"
  in
  (* [INT "per"] number *)
  let burst, period =
    match peek_token st with
    | Lexer.INT n when st.tokens.(st.idx + 1).Lexer.token = Lexer.KW "per" ->
      advance st;
      advance st;
      (n, number st)
    | _ -> (1, number st)
  in
  expect_kw st "deadline";
  let deadline = number st in
  if sporadic then Ast.Sporadic { burst; period; deadline }
  else Ast.Periodic { burst; period; deadline }

let process_decl st =
  let p_pos = peek_pos st in
  expect_kw st "process";
  let p_name = ident st in
  expect st Lexer.COLON "expected ':' after the process name";
  let ev = event st in
  let wcet = if accept_kw st "wcet" then Some (number st) else None in
  let behavior =
    if accept_kw st "extern" then begin
      expect st Lexer.SEMI "expected ';' after extern";
      Ast.Extern
    end
    else Ast.Machine (machine st)
  in
  { Ast.p_name; event = ev; wcet; behavior; p_pos }

let channel_decl st =
  let c_pos = peek_pos st in
  expect_kw st "channel";
  let kind =
    if accept_kw st "fifo" then Fppn.Channel.Fifo
    else if accept_kw st "blackboard" then Fppn.Channel.Blackboard
    else fail st "expected 'fifo' or 'blackboard'"
  in
  let c_name = ident st in
  expect st Lexer.COLON "expected ':' after the channel name";
  let writer = ident st in
  expect st Lexer.ARROW "expected '->' between writer and reader";
  let reader = ident st in
  let init = if accept_kw st "init" then Some (literal st) else None in
  expect st Lexer.SEMI "expected ';' after a channel declaration";
  { Ast.c_name; kind; writer; reader; init; c_pos }

let priority_decl st =
  let p = peek_pos st in
  expect_kw st "priority";
  let hi = ident st in
  expect st Lexer.ARROW "expected '->' in a priority declaration";
  let lo = ident st in
  expect st Lexer.SEMI "expected ';' after a priority declaration";
  (hi, lo, p)

let io_decl st dir =
  let io_pos = peek_pos st in
  advance st (* the keyword *);
  match dir with
  | Ast.In ->
    let io_name = ident st in
    expect st Lexer.ARROW "expected '->' in an input declaration";
    let io_owner = ident st in
    expect st Lexer.SEMI "expected ';' after an input declaration";
    { Ast.io_name; io_owner; dir; io_pos }
  | Ast.Out ->
    let io_owner = ident st in
    expect st Lexer.ARROW "expected '->' in an output declaration";
    let io_name = ident st in
    expect st Lexer.SEMI "expected ';' after an output declaration";
    { Ast.io_name; io_owner; dir; io_pos }

let network st =
  expect_kw st "network";
  let n_name = ident st in
  expect st Lexer.LBRACE "expected '{' after the network name";
  let processes = ref []
  and channels = ref []
  and priorities = ref []
  and ios = ref [] in
  let rec items () =
    match peek_token st with
    | Lexer.KW "process" ->
      processes := process_decl st :: !processes;
      items ()
    | Lexer.KW "channel" ->
      channels := channel_decl st :: !channels;
      items ()
    | Lexer.KW "priority" ->
      priorities := priority_decl st :: !priorities;
      items ()
    | Lexer.KW "input" ->
      ios := io_decl st Ast.In :: !ios;
      items ()
    | Lexer.KW "output" ->
      ios := io_decl st Ast.Out :: !ios;
      items ()
    | Lexer.RBRACE -> advance st
    | _ -> fail st "expected a declaration or '}'"
  in
  items ();
  if peek_token st <> Lexer.EOF then fail st "trailing input after the network";
  {
    Ast.n_name;
    processes = List.rev !processes;
    channels = List.rev !channels;
    priorities = List.rev !priorities;
    ios = List.rev !ios;
  }

let of_string src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  { tokens; idx = 0 }

let parse src = network (of_string src)

let parse_expr src =
  let st = of_string src in
  let e = expr st in
  if peek_token st <> Lexer.EOF then fail st "trailing input after the expression";
  e
