(** Recursive-descent parser for the FPPN description language.

    Grammar (EBNF; [{x}] repetition, [\[x\]] option):
    {v
    network   ::= "network" IDENT "{" {item} "}"
    item      ::= process | channel | priority | io
    process   ::= "process" IDENT ":" event ["wcet" number]
                  ("extern" ";" | machine)
    event     ::= ("periodic" | "sporadic") [INT "per"] number
                  "deadline" number
    machine   ::= "{" {var} {location} "}"
    var       ::= "var" IDENT ":=" literal ";"
    location  ::= "loc" IDENT "{" {transition} "}"
    transition::= "when" expr ["do" action {"," action}] "goto" IDENT ";"
    action    ::= IDENT ":=" expr | IDENT "?" IDENT | expr "!" IDENT
    channel   ::= "channel" ("fifo"|"blackboard") IDENT ":"
                  IDENT "->" IDENT ["init" literal] ";"
    priority  ::= "priority" IDENT "->" IDENT ";"
    io        ::= "input" IDENT "->" IDENT ";"
                | "output" IDENT "->" IDENT ";"
    v}

    Expressions use conventional precedence
    ([||] < [&&] < comparisons < [+ -] < [* / %] < unary) and support
    [avail(x)] for data-availability tests. *)

exception Error of string * Ast.pos

val parse : string -> Ast.network
(** @raise Error with a position on any syntax error.
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (for tests). *)
