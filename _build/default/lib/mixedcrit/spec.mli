(** Mixed-criticality specifications (the paper's last future-work
    item: "mixed-critical scheduling").

    Following the dual-criticality Vestal model used by the authors'
    follow-up work: every process is [Lo] or [Hi]; [Hi] processes carry
    two execution-time budgets — an optimistic [C_LO] (e.g. from
    profiling, as in Sec. V) and a conservative [C_HI >= C_LO].  The
    system starts each frame in LO mode; if a [Hi] job exceeds its
    [C_LO] budget, the frame degrades to HI mode: not-yet-started [Lo]
    jobs are dropped and the remaining [Hi] jobs keep running under
    their conservative budgets. *)

type criticality = Lo | Hi

val pp_criticality : Format.formatter -> criticality -> unit

type t

val make :
  criticality:(string -> criticality) ->
  wcet_lo:Taskgraph.Derive.wcet_map ->
  wcet_hi:Taskgraph.Derive.wcet_map ->
  t
(** [wcet_hi] is only consulted for [Hi] processes; it must dominate
    [wcet_lo] there (checked lazily per process;
    @raise Invalid_argument on violation when queried). *)

val of_list :
  default_criticality:criticality ->
  wcet_lo:Taskgraph.Derive.wcet_map ->
  hi:(string * Rt_util.Rat.t) list ->
  t
(** Convenience: processes listed in [hi] are [Hi] with the given
    conservative budget; everyone else is [Lo]. *)

val criticality : t -> string -> criticality
val wcet_lo : t -> Taskgraph.Derive.wcet_map

val wcet_hi : t -> Taskgraph.Derive.wcet_map
(** For [Lo] processes this equals [wcet_lo]. *)

val budget_lo : t -> Taskgraph.Job.t -> Rt_util.Rat.t
(** The LO-mode budget of a job (by its process name). *)

val is_hi : t -> Taskgraph.Job.t -> bool
