lib/mixedcrit/dual_schedule.ml: Array Format List Sched Spec Taskgraph
