lib/mixedcrit/mc_engine.mli: Dual_schedule Fppn Rt_util Runtime Spec
