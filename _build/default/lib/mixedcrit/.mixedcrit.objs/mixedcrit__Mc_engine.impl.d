lib/mixedcrit/mc_engine.ml: Array Dual_schedule Fppn Hashtbl Int List Option Rt_util Runtime Sched Spec String Taskgraph
