lib/mixedcrit/dual_schedule.mli: Format Fppn Sched Spec Taskgraph
