lib/mixedcrit/spec.ml: Format List Printf Rt_util Taskgraph
