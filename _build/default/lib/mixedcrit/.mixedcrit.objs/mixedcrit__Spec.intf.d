lib/mixedcrit/spec.mli: Format Rt_util Taskgraph
