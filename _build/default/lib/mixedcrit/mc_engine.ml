module Rat = Rt_util.Rat
module Pqueue = Rt_util.Pqueue
module Network = Fppn.Network
module Process = Fppn.Process
module Netstate = Fppn.Netstate
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Static_schedule = Sched.Static_schedule
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Engine = Runtime.Engine

type config = {
  exec : Exec_time.t;
  frames : int;
  sporadic : (string * Rat.t list) list;
  inputs : Netstate.input_feed;
  n_procs : int;
}

let default_config ?(frames = 1) ~n_procs () =
  {
    exec = Exec_time.constant;
    frames;
    sporadic = [];
    inputs = Netstate.no_inputs;
    n_procs;
  }

type result = {
  trace : Exec_trace.t;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  mode_switches : (int * Rat.t) list;
  dropped_lo : int;
  hi_misses : int;
  lo_misses : int;
}

type proc_state = {
  order : int array;
  mutable frame : int;
  mutable pos : int;
  mutable busy_until : Rat.t option;
  mutable running : (int * Exec_trace.record) option;
}

let run net ~spec (dual : Dual_schedule.t) config =
  let derived = dual.Dual_schedule.derived in
  let g = derived.Derive.graph in
  let h = derived.Derive.hyperperiod in
  let n = Graph.n_jobs g in
  if config.frames <= 0 then invalid_arg "Mc_engine.run: frames must be positive";
  if Static_schedule.n_procs dual.Dual_schedule.lo_schedule <> config.n_procs then
    invalid_arg "Mc_engine.run: schedule and config processor counts differ";
  let assigned, _unhandled =
    Engine.sporadic_assignment net derived ~frames:config.frames config.sporadic
  in
  let state = Netstate.create net in
  let sched = dual.Dual_schedule.lo_schedule in
  let procs =
    Array.init config.n_procs (fun p ->
        {
          order = Array.of_list (Static_schedule.jobs_on sched p);
          frame = 0;
          pos = 0;
          busy_until = None;
          running = None;
        })
  in
  let completions = Array.make n 0 in
  let records = ref [] in
  let mode_switches = ref [] in
  let dropped_lo = ref 0 in
  (* processors advance through frames independently, so degradation is
     tracked per frame *)
  let degraded = Array.make config.frames false in
  let events = Pqueue.create ~cmp:Rat.compare in
  let now = ref Rat.zero in
  let frame_base frame = Rat.mul h (Rat.of_int frame) in
  let preds_done frame job =
    List.for_all (fun p -> completions.(p) > frame) (Graph.preds g job)
  in
  let relative_deadline job =
    Process.deadline (Network.process net (Graph.job g job).Job.proc)
  in
  let switch_to_hi frame =
    if not degraded.(frame) then begin
      degraded.(frame) <- true;
      mode_switches := (frame, !now) :: !mode_switches
    end
  in
  let finish_round ps =
    ps.pos <- ps.pos + 1;
    if ps.pos >= Array.length ps.order then begin
      ps.pos <- 0;
      ps.frame <- ps.frame + 1
    end
  in
  let skip_record ?(invoked = !now) ~job ~frame () =
    let j = Graph.job g job in
    records :=
      {
        Exec_trace.job;
        label = Job.label j;
        frame;
        proc = Static_schedule.proc sched job;
        invoked;
        start = !now;
        finish = !now;
        deadline = Rat.add invoked (relative_deadline job);
        skipped = true;
      }
      :: !records
  in
  let advance ps =
    match ps.busy_until with
    | Some t when Rat.(t <= !now) ->
      let job, record = Option.get ps.running in
      completions.(job) <- completions.(job) + 1;
      records := { record with Exec_trace.finish = t } :: !records;
      ps.busy_until <- None;
      ps.running <- None;
      finish_round ps;
      true
    | Some _ ->
      (* overrun detection: a HI job still running past its C_LO budget
         degrades the frame *)
      (match ps.running with
      | Some (job, record) ->
        let j = Graph.job g job in
        if Spec.is_hi spec j
           && (not degraded.(ps.frame))
           && Rat.(Rat.add record.Exec_trace.start (Spec.budget_lo spec j) <= !now)
        then switch_to_hi ps.frame
      | None -> ());
      false
    | None ->
      if ps.frame >= config.frames || Array.length ps.order = 0 then false
      else begin
        let job = ps.order.(ps.pos) in
        let j = Graph.job g job in
        let base = frame_base ps.frame in
        let invocation = Rat.add base j.Job.arrival in
        (* degraded frame: drop not-yet-started LO jobs immediately *)
        if degraded.(ps.frame) && not (Spec.is_hi spec j) then begin
          incr dropped_lo;
          skip_record ~invoked:invocation ~job ~frame:ps.frame ();
          completions.(job) <- completions.(job) + 1;
          finish_round ps;
          true
        end
        else if Rat.(invocation > !now) then begin
          Pqueue.push events invocation;
          false
        end
        else if not (preds_done ps.frame job) then false
        else begin
          let stamp =
            if j.Job.is_server then Hashtbl.find_opt assigned (job, ps.frame)
            else Some invocation
          in
          match stamp with
          | None ->
            skip_record ~invoked:invocation ~job ~frame:ps.frame ();
            completions.(job) <- completions.(job) + 1;
            finish_round ps;
            true
          | Some invoked ->
            Netstate.run_job ~inputs:config.inputs state ~proc:j.Job.proc
              ~now:invoked;
            (* true duration sampled against the criticality budget *)
            let budget =
              if Spec.is_hi spec j then Spec.wcet_hi spec j.Job.proc_name
              else Spec.budget_lo spec j
            in
            let duration = Exec_time.sample config.exec { j with Job.wcet = budget } in
            let finish = Rat.add !now duration in
            (* if this HI job will overrun C_LO, schedule the detection *)
            if Spec.is_hi spec j then begin
              let detect = Rat.add !now (Spec.budget_lo spec j) in
              if Rat.(detect < finish) then Pqueue.push events detect
            end;
            ps.busy_until <- Some finish;
            ps.running <-
              Some
                ( job,
                  {
                    Exec_trace.job;
                    label = Job.label j;
                    frame = ps.frame;
                    proc = Static_schedule.proc sched job;
                    invoked;
                    start = !now;
                    finish;
                    deadline = Rat.add invoked (relative_deadline job);
                    skipped = false;
                  } );
            Pqueue.push events finish;
            true
        end
      end
  in
  Pqueue.push events Rat.zero;
  let rec fixpoint () =
    let changed = Array.fold_left (fun acc ps -> advance ps || acc) false procs in
    if changed then fixpoint ()
  in
  let rec loop () =
    match Pqueue.pop events with
    | None -> ()
    | Some t ->
      if Rat.(t >= !now) then begin
        now := t;
        fixpoint ()
      end;
      loop ()
  in
  loop ();
  let trace =
    List.sort
      (fun (a : Exec_trace.record) b ->
        let c = Rat.compare a.Exec_trace.start b.Exec_trace.start in
        if c <> 0 then c
        else
          let c = Int.compare a.Exec_trace.proc b.Exec_trace.proc in
          if c <> 0 then c
          else
            let c = Int.compare a.Exec_trace.frame b.Exec_trace.frame in
            if c <> 0 then c else Int.compare a.Exec_trace.job b.Exec_trace.job)
      !records
  in
  let miss_count keep =
    List.length
      (List.filter
         (fun (r : Exec_trace.record) ->
           (not r.Exec_trace.skipped)
           && Exec_trace.missed r
           && keep (Graph.job g r.Exec_trace.job))
         trace)
  in
  {
    trace;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    mode_switches = List.rev !mode_switches;
    dropped_lo = !dropped_lo;
    hi_misses = miss_count (Spec.is_hi spec);
    lo_misses = miss_count (fun j -> not (Spec.is_hi spec j));
  }

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)
