module Rat = Rt_util.Rat

type criticality = Lo | Hi

let pp_criticality ppf = function
  | Lo -> Format.pp_print_string ppf "LO"
  | Hi -> Format.pp_print_string ppf "HI"

type t = {
  crit : string -> criticality;
  lo : Taskgraph.Derive.wcet_map;
  hi : Taskgraph.Derive.wcet_map;
}

let make ~criticality ~wcet_lo ~wcet_hi =
  { crit = criticality; lo = wcet_lo; hi = wcet_hi }

let of_list ~default_criticality ~wcet_lo ~hi =
  {
    crit =
      (fun name ->
        if List.mem_assoc name hi then Hi else default_criticality);
    lo = wcet_lo;
    hi =
      (fun name ->
        match List.assoc_opt name hi with Some c -> c | None -> wcet_lo name);
  }

let criticality t name = t.crit name
let wcet_lo t = t.lo

let wcet_hi t name =
  match t.crit name with
  | Lo -> t.lo name
  | Hi ->
    let c_hi = t.hi name and c_lo = t.lo name in
    if Rat.(c_hi < c_lo) then
      invalid_arg
        (Printf.sprintf "Mixedcrit.Spec: C_HI < C_LO for HI process %S" name)
    else c_hi

let budget_lo t (j : Taskgraph.Job.t) = t.lo j.Taskgraph.Job.proc_name
let is_hi t (j : Taskgraph.Job.t) = t.crit j.Taskgraph.Job.proc_name = Hi
