(** Mode-switched online policy for mixed-criticality FPPNs.

    Runs the LO schedule's static order; every [Hi] job is monitored
    against its optimistic budget [C_LO].  When a [Hi] job is still
    running at [start + C_LO], the frame degrades to HI mode:

    - [Lo] jobs not yet started in this frame are {e dropped} (recorded
      as skipped, their precedence obligations waived);
    - running jobs finish normally (run-to-completion) and [Hi] jobs
      continue under their conservative budgets [C_HI];
    - the next frame starts back in LO mode.

    Determinism caveat (inherent to mixed criticality): [Hi] outputs
    remain a function of inputs/stamps {e and the overrun pattern}; [Lo]
    outputs are best-effort and disappear in degraded frames. *)

type config = {
  exec : Runtime.Exec_time.t;
      (** samples the {e true} duration of each job against its
          criticality-dependent budget ([C_HI] for [Hi] processes, so a
          jitter model reaching 1.0 can trigger overruns) *)
  frames : int;
  sporadic : (string * Rt_util.Rat.t list) list;
  inputs : Fppn.Netstate.input_feed;
  n_procs : int;
}

val default_config : ?frames:int -> n_procs:int -> unit -> config

type result = {
  trace : Runtime.Exec_trace.t;
      (** dropped [Lo] jobs appear with [skipped = true] *)
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  mode_switches : (int * Rt_util.Rat.t) list;
      (** (frame, switch instant) for every degraded frame *)
  dropped_lo : int;
  hi_misses : int;  (** deadline misses of [Hi] jobs — must stay 0 *)
  lo_misses : int;  (** misses of [Lo] jobs that did execute *)
}

val run : Fppn.Network.t -> spec:Spec.t -> Dual_schedule.t -> config -> result

val signature : result -> (string * Fppn.Value.t list) list
