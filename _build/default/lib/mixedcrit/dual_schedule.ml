module Graph = Taskgraph.Graph
module Derive = Taskgraph.Derive
module Priority = Sched.Priority
module List_scheduler = Sched.List_scheduler
module Static_schedule = Sched.Static_schedule

type hi_part = {
  hi_graph : Graph.t;
  hi_to_full : int array;
  hi_schedule : Static_schedule.t;
}

type t = {
  derived : Derive.t;
  lo_schedule : Static_schedule.t;
  hi : hi_part option;
  heuristic : Priority.heuristic;
}

type error =
  | Derivation of Derive.error
  | Lo_infeasible
  | Hi_infeasible

let pp_error ppf = function
  | Derivation e -> Derive.pp_error ppf e
  | Lo_infeasible ->
    Format.pp_print_string ppf "no feasible LO-mode schedule (optimistic budgets)"
  | Hi_infeasible ->
    Format.pp_print_string ppf
      "no feasible HI-mode schedule (conservative budgets, HI jobs only)"

let build ?(heuristics = Priority.all) ~n_procs ~spec net =
  match Derive.derive ~wcet:(Spec.wcet_lo spec) net with
  | Error e -> Error (Derivation e)
  | Ok derived ->
    let full = derived.Derive.graph in
    let any_hi = Array.exists (Spec.is_hi spec) (Graph.jobs full) in
    let hi_side =
      if not any_hi then None
      else begin
        let hi_graph_lo, hi_to_full = Graph.induced ~keep:(Spec.is_hi spec) full in
        let hi_graph =
          Graph.map_wcet
            (fun j -> Spec.wcet_hi spec j.Taskgraph.Job.proc_name)
            hi_graph_lo
        in
        Some (hi_graph, hi_to_full)
      end
    in
    let rec try_heuristics = function
      | [] -> None
      | heuristic :: rest ->
        let lo = List_scheduler.schedule_with ~heuristic ~n_procs full in
        let hi =
          match hi_side with
          | None -> None
          | Some (hi_graph, hi_to_full) ->
            let hi_schedule =
              List_scheduler.schedule_with ~heuristic ~n_procs hi_graph
            in
            Some { hi_graph; hi_to_full; hi_schedule }
        in
        let hi_ok =
          match hi with
          | None -> true
          | Some part ->
            Static_schedule.is_feasible part.hi_graph part.hi_schedule
        in
        if Static_schedule.is_feasible full lo && hi_ok then
          Some (heuristic, lo, hi)
        else try_heuristics rest
    in
    (match try_heuristics heuristics with
    | Some (heuristic, lo_schedule, hi) ->
      Ok { derived; lo_schedule; hi; heuristic }
    | None ->
      (* report the blocking side for the first heuristic, for diagnosis *)
      let h = List.hd heuristics in
      let lo = List_scheduler.schedule_with ~heuristic:h ~n_procs full in
      if not (Static_schedule.is_feasible full lo) then Error Lo_infeasible
      else Error Hi_infeasible)

let build_exn ?heuristics ~n_procs ~spec net =
  match build ?heuristics ~n_procs ~spec net with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Dual_schedule.build: %a" pp_error e)
