(** Dual static schedules for mixed-criticality execution.

    Compile time produces two consistent schedules from the same derived
    task graph:

    - the {e LO schedule}: every job, with optimistic budgets [C_LO] —
      what the system follows while nothing overruns;
    - the {e HI schedule}: only the jobs of [Hi] processes, with
      conservative budgets [C_HI] — the guarantee that, after a mode
      switch drops the [Lo] jobs, the critical work still meets its
      deadlines.  Precedence among [Hi] jobs is preserved through
      dropped [Lo] jobs (path-induced restriction).

    Both are produced by the same schedule-priority heuristic, so the
    relative order of [Hi] jobs agrees between modes. *)

type hi_part = {
  hi_graph : Taskgraph.Graph.t;  (** [Hi]-induced graph with [C_HI] budgets *)
  hi_to_full : int array;  (** hi-graph job id → full-graph job id *)
  hi_schedule : Sched.Static_schedule.t;  (** over [hi_graph] *)
}

type t = {
  derived : Taskgraph.Derive.t;  (** full derivation with [C_LO] budgets *)
  lo_schedule : Sched.Static_schedule.t;  (** over the full graph *)
  hi : hi_part option;  (** [None] iff the system has no [Hi] process *)
  heuristic : Sched.Priority.heuristic;
}

type error =
  | Derivation of Taskgraph.Derive.error
  | Lo_infeasible
  | Hi_infeasible

val pp_error : Format.formatter -> error -> unit

val build :
  ?heuristics:Sched.Priority.heuristic list ->
  n_procs:int ->
  spec:Spec.t ->
  Fppn.Network.t ->
  (t, error) result
(** Tries the heuristics in order until one yields feasible LO {e and}
    HI schedules. *)

val build_exn :
  ?heuristics:Sched.Priority.heuristic list ->
  n_procs:int ->
  spec:Spec.t ->
  Fppn.Network.t ->
  t
