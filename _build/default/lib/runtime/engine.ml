module Rat = Rt_util.Rat
module Pqueue = Rt_util.Pqueue
module Network = Fppn.Network
module Process = Fppn.Process
module Event = Fppn.Event
module Netstate = Fppn.Netstate
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Static_schedule = Sched.Static_schedule

type config = {
  platform : Platform.t;
  exec : Exec_time.t;
  frames : int;
  sporadic : (string * Rat.t list) list;
  inputs : Netstate.input_feed;
}

let default_config ?(frames = 1) ~n_procs () =
  {
    platform = Platform.create ~n_procs ();
    exec = Exec_time.constant;
    frames;
    sporadic = [];
    inputs = Netstate.no_inputs;
  }

type result = {
  trace : Exec_trace.t;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  stats : Exec_trace.stats;
  unhandled_events : (string * Rat.t) list;
  overhead_segments : (int * Rat.t * Rat.t) list;
}

(* Map every (server job id, frame) to the real sporadic event it
   handles, applying the Fig. 2 boundary rule.  Returns the map plus the
   events that fall beyond the last simulated window. *)
let assign_sporadic_events net (derived : Derive.t) ~frames ~hyperperiod traces =
  let g = derived.Derive.graph in
  let assigned : (int * int, Rat.t) Hashtbl.t = Hashtbl.create 64 in
  let unhandled = ref [] in
  List.iter
    (fun (s : Derive.server_info) ->
      let p = s.Derive.sporadic in
      let name = Process.name (Network.process net p) in
      let stamps =
        match List.assoc_opt name traces with Some l -> l | None -> []
      in
      let ev = Process.event (Network.process net p) in
      if not (Event.is_valid_sporadic_trace ev stamps) then
        invalid_arg
          (Printf.sprintf "Engine.run: sporadic trace of %S violates (m,T)" name);
      let ts = s.Derive.server_period in
      let burst = Process.burst (Network.process net p) in
      let slots_per_frame = Rat.to_int_exn (Rat.div hyperperiod ts) in
      let in_window ~b stamp =
        let lo = Rat.sub b ts in
        if s.Derive.boundary_closed_right then Rat.(stamp > lo) && Rat.(stamp <= b)
        else Rat.(stamp >= lo) && Rat.(stamp < b)
      in
      let consumed = Hashtbl.create 16 in
      for frame = 0 to frames - 1 do
        for slot = 1 to slots_per_frame do
          let rel = Rat.mul ts (Rat.of_int (slot - 1)) in
          let b = Rat.add (Rat.mul hyperperiod (Rat.of_int frame)) rel in
          (* positions within the subset, in stamp order *)
          let idx = ref 0 in
          List.iteri
            (fun i stamp ->
              if (not (Hashtbl.mem consumed i)) && in_window ~b stamp then begin
                incr idx;
                if !idx <= burst then begin
                  Hashtbl.replace consumed i ();
                  let k = ((slot - 1) * burst) + !idx in
                  let job_id = Graph.find_job g ~proc:p ~k in
                  Hashtbl.replace assigned (job_id, frame) stamp
                end
              end)
            stamps
        done
      done;
      List.iteri
        (fun i stamp ->
          if not (Hashtbl.mem consumed i) then
            unhandled := (name, stamp) :: !unhandled)
        stamps)
    derived.Derive.servers;
  (assigned, List.rev !unhandled)

let sporadic_assignment net derived ~frames traces =
  assign_sporadic_events net derived ~frames
    ~hyperperiod:derived.Derive.hyperperiod traces

type proc_state = {
  order : int array;
  mutable frame : int;
  mutable pos : int;
  mutable busy_until : Rat.t option;
  mutable running : (int * Exec_trace.record) option;
      (** job id + its record-in-progress while busy *)
}

let run net derived sched config =
  let g = derived.Derive.graph in
  let h = derived.Derive.hyperperiod in
  let n = Graph.n_jobs g in
  if config.frames <= 0 then invalid_arg "Engine.run: frames must be positive";
  if Static_schedule.n_jobs sched <> n then
    invalid_arg "Engine.run: schedule does not cover the task graph";
  if Static_schedule.n_procs sched <> config.platform.Platform.n_procs then
    invalid_arg "Engine.run: schedule and platform processor counts differ";
  List.iter
    (fun (name, _) ->
      let p =
        try Network.find net name
        with Not_found ->
          invalid_arg (Printf.sprintf "Engine.run: unknown process %S" name)
      in
      if not (Process.is_sporadic (Network.process net p)) then
        invalid_arg
          (Printf.sprintf "Engine.run: %S is periodic, not sporadic" name))
    config.sporadic;
  let assigned, unhandled_events =
    assign_sporadic_events net derived ~frames:config.frames ~hyperperiod:h
      config.sporadic
  in
  let state = Netstate.create net in
  let n_procs = config.platform.Platform.n_procs in
  let procs =
    Array.init n_procs (fun p ->
        {
          order = Array.of_list (Static_schedule.jobs_on sched p);
          frame = 0;
          pos = 0;
          busy_until = None;
          running = None;
        })
  in
  (* completions.(job) = number of frames in which the job has completed
     (executed or skipped); job j of frame f is done iff > f *)
  let completions = Array.make n 0 in
  let records = ref [] in
  let events = Pqueue.create ~cmp:Rat.compare in
  let now = ref Rat.zero in
  let frame_base frame = Rat.mul h (Rat.of_int frame) in
  let overhead_end frame =
    Rat.add (frame_base frame)
      (Platform.frame_overhead config.platform ~frame)
  in
  let preds_done frame job =
    List.for_all (fun p -> completions.(p) > frame) (Graph.preds g job)
  in
  let relative_deadline job =
    Process.deadline (Network.process net (Graph.job g job).Job.proc)
  in
  (* one attempt to make progress on processor [p]; true if state changed *)
  let advance ps =
    match ps.busy_until with
    | Some t when Rat.(t <= !now) ->
      (* job completes *)
      let job, record = Option.get ps.running in
      completions.(job) <- completions.(job) + 1;
      records := { record with Exec_trace.finish = t } :: !records;
      ps.busy_until <- None;
      ps.running <- None;
      ps.pos <- ps.pos + 1;
      if ps.pos >= Array.length ps.order then begin
        ps.pos <- 0;
        ps.frame <- ps.frame + 1
      end;
      true
    | Some _ -> false
    | None ->
      if ps.frame >= config.frames || Array.length ps.order = 0 then false
      else begin
        let job = ps.order.(ps.pos) in
        let j = Graph.job g job in
        let base = frame_base ps.frame in
        (* For periodic jobs the invocation occurs at A_i.  For server
           slots the real event may arrive earlier, but only at the
           boundary b = A_i can a slot be declared 'false' (Sec. IV), so
           the round synchronizes on A_i in both cases — conservative
           and sufficient for Prop. 4.1. *)
        let invocation = Rat.add base j.Job.arrival in
        let earliest = Rat.max invocation (overhead_end ps.frame) in
        if Rat.(earliest > !now) then begin
          Pqueue.push events earliest;
          false
        end
        else if not (preds_done ps.frame job) then false
        else begin
          let stamp =
            if j.Job.is_server then Hashtbl.find_opt assigned (job, ps.frame)
            else Some (Rat.add base j.Job.arrival)
          in
          match stamp with
          | None ->
            (* 'false' job: skip without executing *)
            let b = Rat.add base j.Job.arrival in
            records :=
              {
                Exec_trace.job;
                label = Job.label j;
                frame = ps.frame;
                proc = Static_schedule.proc sched job;
                invoked = b;
                start = !now;
                finish = !now;
                deadline = Rat.add b (relative_deadline job);
                skipped = true;
              }
              :: !records;
            completions.(job) <- completions.(job) + 1;
            ps.pos <- ps.pos + 1;
            if ps.pos >= Array.length ps.order then begin
              ps.pos <- 0;
              ps.frame <- ps.frame + 1
            end;
            true
          | Some invoked ->
            (* execute the job body now; duration covers the WCET model
               plus per-access synchronisation overhead *)
            let accesses = ref 0 in
            let recorder = function
              | Fppn.Trace.Read _ | Fppn.Trace.Write _ -> incr accesses
              | _ -> ()
            in
            Netstate.run_job ~recorder ~inputs:config.inputs state
              ~proc:j.Job.proc ~now:invoked;
            let duration =
              Rat.add
                (Exec_time.sample config.exec j)
                (Rat.mul
                   config.platform.Platform.overhead.Platform.per_access
                   (Rat.of_int !accesses))
            in
            let finish = Rat.add !now duration in
            ps.busy_until <- Some finish;
            ps.running <-
              Some
                ( job,
                  {
                    Exec_trace.job;
                    label = Job.label j;
                    frame = ps.frame;
                    proc = Static_schedule.proc sched job;
                    invoked;
                    start = !now;
                    finish;
                    deadline = Rat.add invoked (relative_deadline job);
                    skipped = false;
                  } );
            Pqueue.push events finish;
            true
        end
      end
  in
  Pqueue.push events Rat.zero;
  let rec fixpoint () =
    let changed = Array.fold_left (fun acc ps -> advance ps || acc) false procs in
    if changed then fixpoint ()
  in
  let rec loop () =
    match Pqueue.pop events with
    | None -> ()
    | Some t ->
      if Rat.(t >= !now) then begin
        now := t;
        fixpoint ()
      end;
      loop ()
  in
  loop ();
  let trace =
    List.sort
      (fun (a : Exec_trace.record) b ->
        let c = Rat.compare a.start b.start in
        if c <> 0 then c
        else
          let c = Int.compare a.proc b.proc in
          if c <> 0 then c
          else
            let c = Int.compare a.frame b.frame in
            if c <> 0 then c else Int.compare a.job b.job)
      !records
  in
  let overhead_segments =
    List.filter_map
      (fun frame ->
        let from = frame_base frame and till = overhead_end frame in
        if Rat.(till > from) then Some (frame, from, till) else None)
      (List.init config.frames Fun.id)
  in
  {
    trace;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    stats = Exec_trace.stats trace;
    unhandled_events;
    overhead_segments;
  }

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)
