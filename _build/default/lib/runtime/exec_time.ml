module Rat = Rt_util.Rat
module Prng = Rt_util.Prng

type t =
  | Constant
  | Uniform of { prng : Prng.t; min_fraction : float }
  | Scaled of float
  | Profile of (string -> Rat.t)

let constant = Constant

let uniform ~seed ~min_fraction =
  if min_fraction < 0.0 || min_fraction > 1.0 then
    invalid_arg "Exec_time.uniform: min_fraction must be in [0,1]";
  Uniform { prng = Prng.create seed; min_fraction }

let scaled fraction =
  if fraction < 0.0 then invalid_arg "Exec_time.scaled: negative fraction";
  Scaled fraction

let profile f = Profile f

let quantized_fraction wcet fraction =
  (* wcet * round(fraction * 1000) / 1000, keeping denominators small *)
  let milli = int_of_float (Float.round (fraction *. 1000.0)) in
  Rat.mul wcet (Rat.make milli 1000)

let sample t (job : Taskgraph.Job.t) =
  match t with
  | Constant -> job.Taskgraph.Job.wcet
  | Uniform { prng; min_fraction } ->
    let f = Prng.float_in prng min_fraction 1.0 in
    quantized_fraction job.Taskgraph.Job.wcet f
  | Scaled f -> quantized_fraction job.Taskgraph.Job.wcet f
  | Profile p -> p job.Taskgraph.Job.proc_name
