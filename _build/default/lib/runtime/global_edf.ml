module Rat = Rt_util.Rat
module Network = Fppn.Network
module Process = Fppn.Process
module Netstate = Fppn.Netstate

type config = {
  exec : Exec_time.t;
  wcet : Taskgraph.Derive.wcet_map;
  horizon : Rat.t;
  n_procs : int;
  sporadic : (string * Rat.t list) list;
  inputs : Netstate.input_feed;
}

let default_config ~wcet ~horizon ~n_procs =
  {
    exec = Exec_time.constant;
    wcet;
    horizon;
    n_procs;
    sporadic = [];
    inputs = Netstate.no_inputs;
  }

type record = {
  process : string;
  k : int;
  released : Rat.t;
  started : Rat.t;
  finished : Rat.t;
  deadline : Rat.t;
  migrations : int;
}

type result = {
  records : record list;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  misses : int;
}

type live = {
  proc : int;
  seq : int;
  released_at : Rat.t;
  abs_deadline : Rat.t;
  mutable remaining : Rat.t;
  mutable started_at : Rat.t option;
  mutable flush : (unit -> unit) option;
  mutable body_k : int;
  mutable last_cpu : int;
  mutable migrations : int;
}

let cmp_edf a b =
  let c = Rat.compare a.abs_deadline b.abs_deadline in
  if c <> 0 then c
  else
    let c = Rat.compare a.released_at b.released_at in
    if c <> 0 then c else Int.compare a.seq b.seq

let run net config =
  if config.n_procs < 1 then invalid_arg "Global_edf.run: n_procs must be >= 1";
  let releases =
    ref
      (Fppn.Semantics.invocations ~sporadic:config.sporadic
         ~horizon:config.horizon net)
  in
  let state = Netstate.create net in
  let live : live list ref = ref [] in
  let seq = ref 0 in
  let now = ref Rat.zero in
  let records = ref [] in
  let misses = ref 0 in
  let duration_of lj =
    let proc = Network.process net lj.proc in
    let name = Process.name proc in
    Exec_time.sample config.exec
      {
        Taskgraph.Job.id = 0;
        proc = lj.proc;
        proc_name = name;
        k = lj.body_k;
        arrival = lj.released_at;
        deadline = lj.abs_deadline;
        wcet = config.wcet name;
        is_server = Process.is_sporadic proc;
      }
  in
  let release_at t =
    let rec loop () =
      match !releases with
      | inv :: rest when Rat.equal inv.Fppn.Semantics.time t ->
        releases := rest;
        incr seq;
        let p = inv.Fppn.Semantics.process in
        let d = Process.deadline (Network.process net p) in
        live :=
          {
            proc = p;
            seq = !seq;
            released_at = t;
            abs_deadline = Rat.add t d;
            remaining = Rat.zero;
            started_at = None;
            flush = None;
            body_k = 0;
            last_cpu = -1;
            migrations = 0;
          }
          :: !live;
        loop ()
      | _ -> ()
    in
    loop ()
  in
  let next_release () =
    match !releases with [] -> None | inv :: _ -> Some inv.Fppn.Semantics.time
  in
  let start lj =
    lj.started_at <- Some !now;
    let inst = Netstate.instance state lj.proc in
    lj.body_k <- Fppn.Instance.job_count inst + 1;
    lj.flush <-
      Some
        (Netstate.run_job_deferred ~inputs:config.inputs state ~proc:lj.proc
           ~now:lj.released_at);
    lj.remaining <- duration_of lj
  in
  let complete lj =
    (match lj.flush with Some f -> f () | None -> ());
    let r =
      {
        process = Process.name (Network.process net lj.proc);
        k = lj.body_k;
        released = lj.released_at;
        started = (match lj.started_at with Some s -> s | None -> !now);
        finished = !now;
        deadline = lj.abs_deadline;
        migrations = lj.migrations;
      }
    in
    if Rat.(r.finished > r.deadline) then incr misses;
    records := r :: !records;
    live := List.filter (fun j -> j != lj) !live
  in
  let rec loop () =
    let running =
      (* the M earliest-deadline jobs run; start their bodies on first
         dispatch, count migrations on processor changes *)
      let sorted = List.stable_sort cmp_edf !live in
      let rec take n cpu = function
        | [] -> []
        | _ when n = 0 -> []
        | lj :: rest ->
          if lj.started_at = None then start lj;
          if lj.last_cpu >= 0 && lj.last_cpu <> cpu then
            lj.migrations <- lj.migrations + 1;
          lj.last_cpu <- cpu;
          lj :: take (n - 1) (cpu + 1) rest
      in
      take config.n_procs 0 sorted
    in
    match (running, next_release ()) with
    | [], None -> ()
    | [], Some t ->
      now := Rat.max !now t;
      release_at t;
      loop ()
    | _ :: _, next ->
      (* advance to the earliest completion among running, or the next
         release, whichever comes first *)
      let earliest_completion =
        List.fold_left
          (fun acc lj ->
            let f = Rat.add !now lj.remaining in
            match acc with None -> Some f | Some b -> Some (Rat.min b f))
          None running
      in
      let completion = Option.get earliest_completion in
      let target =
        match next with
        | Some t when Rat.(t < completion) -> `Release t
        | _ -> `Completion completion
      in
      let upto = match target with `Release t -> t | `Completion t -> t in
      let elapsed = Rat.sub upto !now in
      List.iter (fun lj -> lj.remaining <- Rat.sub lj.remaining elapsed) running;
      now := upto;
      (match target with
      | `Release t -> release_at t
      | `Completion _ ->
        List.iter (fun lj -> if Rat.sign lj.remaining <= 0 then complete lj) running);
      loop ()
  in
  loop ();
  {
    records = List.rev !records;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    misses = !misses;
  }

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)
