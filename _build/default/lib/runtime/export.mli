(** Machine-readable export of execution traces (JSON and CSV) for
    external Gantt viewers and post-processing. *)

val record_to_json : Exec_trace.record -> string
(** One JSON object; times as exact strings (e.g. ["133/10"]) plus
    float fields ([*_ms]) for plotting. *)

val to_json : Exec_trace.t -> string
(** A JSON array of records. *)

val csv_header : string

val record_to_csv : Exec_trace.record -> string

val to_csv : Exec_trace.t -> string
(** Header line + one line per record. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
