(** End-to-end latency analysis.

    The paper's introduction motivates FPPN with end-to-end timing:
    "Without deterministic communication it is impossible to define and
    guarantee end-to-end timing constraints."  Because the task graph
    fixes which source job each sink job observes, end-to-end latencies
    are well defined per job — this module extracts them from an
    execution trace.

    For a {e source} process [src] and a {e sink} process [snk], every
    executed sink job [snk\[k\]] is matched with its source-ancestor jobs
    in the task graph (same frame; jobs with a precedence path to the
    sink job):

    - {e reaction time}: [finish(snk job) − invocation(latest source
      ancestor)] — how stale the freshest contributing input is when the
      output appears;
    - {e data age}: [finish(snk job) − invocation(earliest source
      ancestor)] — the age of the oldest input still influencing the
      output.

    Sink jobs with no source ancestor in their frame (e.g. the sink runs
    before the source's first job) are skipped. *)

type sample = {
  sink_label : string;
  frame : int;
  reaction : Rt_util.Rat.t;
  age : Rt_util.Rat.t;
}

type t = {
  source : string;
  sink : string;
  samples : sample list;  (** in sink-completion order *)
  max_reaction : Rt_util.Rat.t;
  mean_reaction_ms : float;
  max_age : Rt_util.Rat.t;
}

val analyse :
  Taskgraph.Graph.t -> source:string -> sink:string -> Exec_trace.t -> t
(** @raise Invalid_argument if no precedence path connects the two
    processes in the task graph (the pair has no defined end-to-end
    constraint), or if either name has no jobs. *)

val pp : Format.formatter -> t -> unit
