lib/runtime/platform.mli: Rt_util
