lib/runtime/engine.ml: Array Exec_time Exec_trace Fppn Fun Hashtbl Int List Option Platform Printf Rt_util Sched String Taskgraph
