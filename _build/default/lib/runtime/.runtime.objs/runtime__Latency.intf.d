lib/runtime/latency.mli: Exec_trace Format Rt_util Taskgraph
