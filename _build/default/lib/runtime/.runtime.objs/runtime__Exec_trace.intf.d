lib/runtime/exec_trace.mli: Format Rt_util Taskgraph
