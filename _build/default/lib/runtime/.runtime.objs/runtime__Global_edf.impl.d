lib/runtime/global_edf.ml: Exec_time Fppn Int List Option Rt_util String Taskgraph
