lib/runtime/global_edf.mli: Exec_time Fppn Rt_util Taskgraph
