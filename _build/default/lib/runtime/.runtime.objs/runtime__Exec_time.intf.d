lib/runtime/exec_time.mli: Rt_util Taskgraph
