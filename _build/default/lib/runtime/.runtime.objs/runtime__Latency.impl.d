lib/runtime/latency.ml: Array Exec_trace Format Fun Hashtbl List Printf Rt_util Taskgraph
