lib/runtime/platform.ml: Rt_util
