lib/runtime/exec_time.ml: Float Rt_util Taskgraph
