lib/runtime/exec_trace.ml: Array Format Hashtbl List Printf Rt_util String Taskgraph
