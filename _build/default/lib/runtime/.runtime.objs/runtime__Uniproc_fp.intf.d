lib/runtime/uniproc_fp.mli: Exec_time Fppn Rt_util Taskgraph
