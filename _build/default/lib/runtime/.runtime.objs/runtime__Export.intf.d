lib/runtime/export.mli: Exec_trace
