lib/runtime/engine.mli: Exec_time Exec_trace Fppn Hashtbl Platform Rt_util Sched Taskgraph
