lib/runtime/export.ml: Buffer Char Exec_trace Fun List Printf Rt_util String
