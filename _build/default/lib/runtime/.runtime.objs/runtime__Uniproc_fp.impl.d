lib/runtime/uniproc_fp.ml: Array Exec_time Fppn Fun Int List Rt_util String Taskgraph
