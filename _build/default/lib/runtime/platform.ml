module Rat = Rt_util.Rat

type overhead = {
  first_frame : Rat.t;
  steady_frame : Rat.t;
  per_access : Rat.t;
}

let no_overhead =
  { first_frame = Rat.zero; steady_frame = Rat.zero; per_access = Rat.zero }

let mppa_like =
  {
    first_frame = Rat.of_int 41;
    steady_frame = Rat.of_int 20;
    per_access = Rat.zero;
  }

type t = { n_procs : int; overhead : overhead }

let create ?(overhead = no_overhead) ~n_procs () =
  if n_procs <= 0 then invalid_arg "Platform.create: n_procs must be positive";
  if
    Rat.sign overhead.first_frame < 0
    || Rat.sign overhead.steady_frame < 0
    || Rat.sign overhead.per_access < 0
  then invalid_arg "Platform.create: negative overhead";
  { n_procs; overhead }

let frame_overhead t ~frame =
  if frame = 0 then t.overhead.first_frame else t.overhead.steady_frame
