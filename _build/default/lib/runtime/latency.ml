module Rat = Rt_util.Rat
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job

type sample = {
  sink_label : string;
  frame : int;
  reaction : Rat.t;
  age : Rat.t;
}

type t = {
  source : string;
  sink : string;
  samples : sample list;
  max_reaction : Rat.t;
  mean_reaction_ms : float;
  max_age : Rat.t;
}

let analyse g ~source ~sink trace =
  let jobs_of name =
    List.filter
      (fun i -> (Graph.job g i).Job.proc_name = name)
      (List.init (Graph.n_jobs g) Fun.id)
  in
  let src_jobs = jobs_of source and snk_jobs = jobs_of sink in
  if src_jobs = [] then
    invalid_arg (Printf.sprintf "Latency.analyse: no jobs of source %S" source);
  if snk_jobs = [] then
    invalid_arg (Printf.sprintf "Latency.analyse: no jobs of sink %S" sink);
  (* ancestors via the transitive closure of the task-graph DAG *)
  let closure = Rt_util.Digraph.transitive_closure (Graph.dag g) in
  let ancestors_of snk_id =
    List.filter (fun s -> Rt_util.Bitset.mem closure.(s) snk_id) src_jobs
  in
  if not (List.exists (fun j -> ancestors_of j <> []) snk_jobs) then
    invalid_arg
      (Printf.sprintf
         "Latency.analyse: no precedence path from %S to %S — the pair has no \
          defined end-to-end constraint"
         source sink);
  (* invocation stamps per (job id, frame) from the trace *)
  let invoked = Hashtbl.create 64 and finished = Hashtbl.create 64 in
  List.iter
    (fun (r : Exec_trace.record) ->
      if not r.Exec_trace.skipped then begin
        Hashtbl.replace invoked (r.Exec_trace.job, r.Exec_trace.frame)
          r.Exec_trace.invoked;
        Hashtbl.replace finished (r.Exec_trace.job, r.Exec_trace.frame)
          r.Exec_trace.finish
      end)
    trace;
  let samples =
    List.filter_map
      (fun (r : Exec_trace.record) ->
        if r.Exec_trace.skipped || (Graph.job g r.Exec_trace.job).Job.proc_name <> sink
        then None
        else begin
          let stamps =
            List.filter_map
              (fun s -> Hashtbl.find_opt invoked (s, r.Exec_trace.frame))
              (ancestors_of r.Exec_trace.job)
          in
          match stamps with
          | [] -> None (* e.g. all contributing source slots were skipped *)
          | first :: rest ->
            let latest = List.fold_left Rat.max first rest in
            let earliest = List.fold_left Rat.min first rest in
            Some
              {
                sink_label = r.Exec_trace.label;
                frame = r.Exec_trace.frame;
                reaction = Rat.sub r.Exec_trace.finish latest;
                age = Rat.sub r.Exec_trace.finish earliest;
              }
        end)
      trace
  in
  let max_reaction =
    List.fold_left (fun acc s -> Rat.max acc s.reaction) Rat.zero samples
  in
  let max_age = List.fold_left (fun acc s -> Rat.max acc s.age) Rat.zero samples in
  let mean_reaction_ms =
    match samples with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc s -> acc +. Rat.to_float s.reaction) 0.0 samples
      /. float_of_int (List.length samples)
  in
  { source; sink; samples; max_reaction; mean_reaction_ms; max_age }

let pp ppf t =
  Format.fprintf ppf
    "end-to-end %s -> %s over %d sink job(s): max reaction %a ms (mean %.2f), \
     max data age %a ms@."
    t.source t.sink (List.length t.samples) Rat.pp t.max_reaction
    t.mean_reaction_ms Rat.pp t.max_age
