(** Global preemptive EDF — the determinism counter-example.

    This baseline schedules the same job releases as the FPPN runtime on
    [M] identical processors with global earliest-deadline-first
    dispatching, but {e without} the functional-priority/precedence
    machinery: jobs read their inputs when first dispatched and publish
    their outputs at completion, in whatever order EDF happens to
    produce.

    On one processor with aligned priorities this coincides with the
    classical deterministic setting; on multiple processors the
    interleaving — and therefore the data — depends on execution times.
    Experiment E8 in [bench/main.ml] shows its channel histories
    changing across jitter seeds while the FPPN runtime's stay fixed,
    which is the paper's core motivation (Sec. I). *)

type config = {
  exec : Exec_time.t;
  wcet : Taskgraph.Derive.wcet_map;
  horizon : Rt_util.Rat.t;
  n_procs : int;
  sporadic : (string * Rt_util.Rat.t list) list;
  inputs : Fppn.Netstate.input_feed;
}

val default_config :
  wcet:Taskgraph.Derive.wcet_map ->
  horizon:Rt_util.Rat.t ->
  n_procs:int ->
  config

type record = {
  process : string;
  k : int;
  released : Rt_util.Rat.t;
  started : Rt_util.Rat.t;
  finished : Rt_util.Rat.t;
  deadline : Rt_util.Rat.t;
  migrations : int;  (** processor changes after first dispatch *)
}

type result = {
  records : record list;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  misses : int;
}

val run : Fppn.Network.t -> config -> result

val signature : result -> (string * Fppn.Value.t list) list
