(** Preemptive fixed-priority uniprocessor scheduling — the classical
    setting whose determinism FPPN generalizes (Sec. I, Sec. V-B).

    The FMS case study's "original uniprocessor prototype" scheduled
    processes rate-monotonically; because the network's functional
    priorities were aligned with the scheduling priorities, the FPPN
    implementation is functionally equivalent to it, "which we verified
    by testing".  This module is that baseline: jobs are released by the
    same event generators, dispatched preemptively by fixed priority,
    and their bodies run against the same network state.

    Data-access model: a job reads its inputs when it first gets the
    processor and its output writes are published at completion (writes
    are buffered in between) — the standard implicit-communication model
    of the cited scheduling work. *)

type priority_assignment =
  | Rate_monotonic
      (** ascending period; ties broken by functional-priority rank,
          then by name — deterministic *)
  | Explicit of (string * int) list
      (** smaller number = higher priority; unlisted processes get the
          lowest priority *)

type config = {
  exec : Exec_time.t;
  wcet : Taskgraph.Derive.wcet_map;
      (** per-process execution budget handed to the [exec] model *)
  horizon : Rt_util.Rat.t;
  sporadic : (string * Rt_util.Rat.t list) list;
  inputs : Fppn.Netstate.input_feed;
  priorities : priority_assignment;
}

val default_config :
  wcet:Taskgraph.Derive.wcet_map -> horizon:Rt_util.Rat.t -> config

type record = {
  process : string;
  k : int;
  released : Rt_util.Rat.t;
  started : Rt_util.Rat.t;
  finished : Rt_util.Rat.t;
  deadline : Rt_util.Rat.t;  (** released + d_p *)
  preemptions : int;
}

type result = {
  records : record list;  (** completion order *)
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  misses : int;
  max_response : Rt_util.Rat.t;
}

val run : Fppn.Network.t -> config -> result

val signature : result -> (string * Fppn.Value.t list) list
(** Comparable with [Fppn.Semantics.signature] and [Engine.signature]. *)
