(** Execution platform model: processor count and runtime overheads.

    The paper's measurements on the Kalray MPPA (Sec. V-A) show the
    runtime environment costs a fixed overhead at the beginning of each
    frame (41 ms for the first frame — cold caches — and 20 ms for the
    subsequent ones, spent managing the arrival of the frame's jobs)
    plus a per-request cost for read/write synchronisation.  We model
    exactly those three parameters. *)

type overhead = {
  first_frame : Rt_util.Rat.t;
      (** delay before any job of frame 0 may start *)
  steady_frame : Rt_util.Rat.t;
      (** same for every subsequent frame *)
  per_access : Rt_util.Rat.t;
      (** added to a job's execution time per channel read/write *)
}

val no_overhead : overhead

val mppa_like : overhead
(** The Sec. V-A measurements: 41 ms / 20 ms / 0. *)

type t = { n_procs : int; overhead : overhead }

val create : ?overhead:overhead -> n_procs:int -> unit -> t
(** Defaults to {!no_overhead}.
    @raise Invalid_argument if [n_procs <= 0] or any overhead is
    negative. *)

val frame_overhead : t -> frame:int -> Rt_util.Rat.t
