module Rat = Rt_util.Rat

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let record_to_json (r : Exec_trace.record) =
  Printf.sprintf
    "{\"job\":%d,\"label\":\"%s\",\"frame\":%d,\"proc\":%d,\"invoked\":\"%s\",\
     \"start\":\"%s\",\"finish\":\"%s\",\"deadline\":\"%s\",\
     \"invoked_ms\":%g,\"start_ms\":%g,\"finish_ms\":%g,\"deadline_ms\":%g,\
     \"skipped\":%b,\"missed\":%b}"
    r.Exec_trace.job
    (escape_json r.Exec_trace.label)
    r.Exec_trace.frame r.Exec_trace.proc
    (Rat.to_string r.Exec_trace.invoked)
    (Rat.to_string r.Exec_trace.start)
    (Rat.to_string r.Exec_trace.finish)
    (Rat.to_string r.Exec_trace.deadline)
    (Rat.to_float r.Exec_trace.invoked)
    (Rat.to_float r.Exec_trace.start)
    (Rat.to_float r.Exec_trace.finish)
    (Rat.to_float r.Exec_trace.deadline)
    r.Exec_trace.skipped (Exec_trace.missed r)

let to_json trace =
  "[\n  " ^ String.concat ",\n  " (List.map record_to_json trace) ^ "\n]\n"

let csv_header = "job,label,frame,proc,invoked_ms,start_ms,finish_ms,deadline_ms,skipped,missed"

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let record_to_csv (r : Exec_trace.record) =
  Printf.sprintf "%d,%s,%d,%d,%g,%g,%g,%g,%b,%b" r.Exec_trace.job
    (escape_csv r.Exec_trace.label)
    r.Exec_trace.frame r.Exec_trace.proc
    (Rat.to_float r.Exec_trace.invoked)
    (Rat.to_float r.Exec_trace.start)
    (Rat.to_float r.Exec_trace.finish)
    (Rat.to_float r.Exec_trace.deadline)
    r.Exec_trace.skipped (Exec_trace.missed r)

let to_csv trace =
  String.concat "\n" (csv_header :: List.map record_to_csv trace) ^ "\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
