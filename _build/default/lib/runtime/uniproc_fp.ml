module Rat = Rt_util.Rat
module Pqueue = Rt_util.Pqueue
module Network = Fppn.Network
module Process = Fppn.Process
module Netstate = Fppn.Netstate

type priority_assignment =
  | Rate_monotonic
  | Explicit of (string * int) list

type config = {
  exec : Exec_time.t;
  wcet : Taskgraph.Derive.wcet_map;
  horizon : Rat.t;
  sporadic : (string * Rat.t list) list;
  inputs : Netstate.input_feed;
  priorities : priority_assignment;
}

let default_config ~wcet ~horizon =
  {
    exec = Exec_time.constant;
    wcet;
    horizon;
    sporadic = [];
    inputs = Netstate.no_inputs;
    priorities = Rate_monotonic;
  }

type record = {
  process : string;
  k : int;
  released : Rat.t;
  started : Rat.t;
  finished : Rat.t;
  deadline : Rat.t;
  preemptions : int;
}

type result = {
  records : record list;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  misses : int;
  max_response : Rat.t;
}

type live_job = {
  proc : int;
  prio : int;
  released_at : Rat.t;
  seq : int;
  mutable remaining : Rat.t;
  mutable started_at : Rat.t option;
  mutable flush : (unit -> unit) option; (* deferred writes, set at start *)
  mutable body_k : int;
  mutable preempted : int;
}

let priorities_of net = function
  | Explicit assoc ->
    fun p ->
      let name = Process.name (Network.process net p) in
      (match List.assoc_opt name assoc with Some n -> n | None -> max_int)
  | Rate_monotonic ->
    let n = Network.n_processes net in
    let ids = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let pa = Network.process net a and pb = Network.process net b in
        let c = Rat.compare (Process.period pa) (Process.period pb) in
        if c <> 0 then c
        else
          let c = Int.compare (Network.fp_rank net a) (Network.fp_rank net b) in
          if c <> 0 then c
          else String.compare (Process.name pa) (Process.name pb))
      ids;
    let prio = Array.make n 0 in
    Array.iteri (fun rank p -> prio.(p) <- rank) ids;
    fun p -> prio.(p)

let run net config =
  if Rat.sign config.horizon <= 0 then
    invalid_arg "Uniproc_fp.run: horizon must be positive";
  let prio_of = priorities_of net config.priorities in
  (* releases over the horizon, produced by the same generator semantics
     as the zero-delay interpreter *)
  let releases =
    ref
      (Fppn.Semantics.invocations ~sporadic:config.sporadic
         ~horizon:config.horizon net)
  in
  let state = Netstate.create net in
  let cmp_ready (a : live_job) (b : live_job) =
    let c = Int.compare a.prio b.prio in
    if c <> 0 then c
    else
      let c = Rat.compare a.released_at b.released_at in
      if c <> 0 then c else Int.compare a.seq b.seq
  in
  let ready = Pqueue.create ~cmp:cmp_ready in
  let seq = ref 0 in
  let records = ref [] in
  let duration_of lj =
    (* a synthetic job descriptor carries the process WCET to the model *)
    let proc = Network.process net lj.proc in
    let name = Process.name proc in
    let job =
      {
        Taskgraph.Job.id = 0;
        proc = lj.proc;
        proc_name = name;
        k = lj.body_k;
        arrival = lj.released_at;
        deadline = Rat.add lj.released_at (Process.deadline proc);
        wcet = config.wcet name;
        is_server = Process.is_sporadic proc;
      }
    in
    Exec_time.sample config.exec job
  in
  let now = ref Rat.zero in
  let current : live_job option ref = ref None in
  let misses = ref 0 in
  let max_response = ref Rat.zero in
  let release_at t =
    (* move all releases with stamp = t into the ready queue *)
    let rec loop () =
      match !releases with
      | inv :: rest when Rat.equal inv.Fppn.Semantics.time t ->
        releases := rest;
        incr seq;
        Pqueue.push ready
          {
            proc = inv.Fppn.Semantics.process;
            prio = prio_of inv.Fppn.Semantics.process;
            released_at = t;
            seq = !seq;
            remaining = Rat.zero;
            started_at = None;
            flush = None;
            body_k = 0;
            preempted = 0;
          };
        loop ()
      | _ -> ()
    in
    loop ()
  in
  let next_release_time () =
    match !releases with [] -> None | inv :: _ -> Some inv.Fppn.Semantics.time
  in
  let complete lj =
    (match lj.flush with Some f -> f () | None -> ());
    let proc = Network.process net lj.proc in
    let deadline = Rat.add lj.released_at (Process.deadline proc) in
    let r =
      {
        process = Process.name proc;
        k = lj.body_k;
        released = lj.released_at;
        started = (match lj.started_at with Some s -> s | None -> !now);
        finished = !now;
        deadline;
        preemptions = lj.preempted;
      }
    in
    records := r :: !records;
    if Rat.(r.finished > deadline) then incr misses;
    max_response := Rat.max !max_response (Rat.sub r.finished r.released)
  in
  let start lj =
    lj.started_at <- Some !now;
    (* body runs now: reads observe current state, writes are deferred
       to completion *)
    let inst = Netstate.instance state lj.proc in
    lj.body_k <- Fppn.Instance.job_count inst + 1;
    lj.flush <-
      Some
        (Netstate.run_job_deferred ~inputs:config.inputs state ~proc:lj.proc
           ~now:lj.released_at)
  in
  (* main preemptive loop *)
  let rec loop () =
    match (!current, Pqueue.peek ready, next_release_time ()) with
    | None, None, None -> ()
    | None, None, Some t ->
      now := Rat.max !now t;
      release_at t;
      loop ()
    | None, Some _, _ ->
      let lj = Pqueue.pop_exn ready in
      if lj.started_at = None then begin
        start lj;
        lj.remaining <- duration_of lj
      end;
      current := Some lj;
      loop ()
    | Some lj, _, next ->
      let finish_at = Rat.add !now lj.remaining in
      let preempt_at =
        match next with
        | Some t when Rat.(t < finish_at) -> Some t
        | _ -> None
      in
      (match preempt_at with
      | Some t ->
        lj.remaining <- Rat.sub lj.remaining (Rat.sub t !now);
        now := t;
        release_at t;
        (* preempt if a higher-priority job is now ready *)
        (match Pqueue.peek ready with
        | Some top when cmp_ready top lj < 0 ->
          lj.preempted <- lj.preempted + 1;
          Pqueue.push ready lj;
          current := None
        | _ -> ())
      | None ->
        now := finish_at;
        complete lj;
        current := None);
      loop ()
  in
  loop ();
  {
    records = List.rev !records;
    channel_history = Netstate.channel_history state;
    output_history = Netstate.output_history state;
    misses = !misses;
    max_response = !max_response;
  }

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)
