lib/timedauto/ta.mli: Rt_util
