lib/timedauto/sim.mli: Rt_util Ta
