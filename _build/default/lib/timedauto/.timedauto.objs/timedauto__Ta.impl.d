lib/timedauto/ta.ml: Hashtbl List Printf Rt_util
