lib/timedauto/render.ml: Buffer List Printf Rt_util String Ta
