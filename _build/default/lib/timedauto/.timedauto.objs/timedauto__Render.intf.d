lib/timedauto/render.mli: Ta
