lib/timedauto/sim.ml: Array Hashtbl List Printf Rt_util Ta
