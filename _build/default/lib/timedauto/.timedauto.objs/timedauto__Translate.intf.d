lib/timedauto/translate.mli: Fppn Runtime Sched Sim Ta Taskgraph
