lib/timedauto/translate.ml: Array Fppn Hashtbl Int List Option Printf Rt_util Runtime Sched Sim String Ta Taskgraph
