module Rat = Rt_util.Rat

type loc = string
type clock = string

type bound =
  | Static of Rat.t
  | Dynamic of (unit -> Rat.t)

type atom =
  | Ge of clock * bound
  | Le of clock * bound

type edge = {
  src : loc;
  atoms : atom list;
  data_guard : unit -> bool;
  resets : clock list;
  effect : now:Rat.t -> unit;
  dst : loc;
  name : string;
}

type component = {
  comp_name : string;
  comp_initial : loc;
  comp_clocks : clock list;
  comp_edges : edge list;
  by_src : (loc, edge list) Hashtbl.t;
}

let clock_of_atom = function Ge (c, _) | Le (c, _) -> c

let component ~name ~initial ~clocks edges =
  let check c =
    if not (List.mem c clocks) then
      invalid_arg
        (Printf.sprintf "Ta.component %s: undeclared clock %S" name c)
  in
  List.iter
    (fun e ->
      List.iter (fun a -> check (clock_of_atom a)) e.atoms;
      List.iter check e.resets)
    edges;
  let by_src = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let prev = try Hashtbl.find by_src e.src with Not_found -> [] in
      Hashtbl.replace by_src e.src (prev @ [ e ]))
    edges;
  {
    comp_name = name;
    comp_initial = initial;
    comp_clocks = clocks;
    comp_edges = edges;
    by_src;
  }

let name c = c.comp_name
let initial c = c.comp_initial
let clocks c = c.comp_clocks
let edges c = c.comp_edges
let edges_from c l = try Hashtbl.find c.by_src l with Not_found -> []
let true_guard () = true
let no_effect ~now:_ = ()
