(** Inspection output for timed-automata networks: a textual listing of
    every component (locations, edges, guards) and a Graphviz DOT
    rendering of the location graphs.

    Guard atoms with dynamic bounds print as ["x >= <dyn>"] — their value
    exists only at run time; data guards print as ["[data]"] when they
    are not the trivial [true_guard].  This makes generated scheduler
    automata reviewable, which is how the paper's toolchain users audit
    the code generator's output. *)

val describe : Ta.component -> string
(** One component, human-readable. *)

val describe_all : Ta.component list -> string

val to_dot : Ta.component list -> string
(** One DOT cluster per component; edges labelled with their names and
    clock constraints. *)
