(** A small timed-automata intermediate representation.

    The paper's toolchain ([10]) compiles an FPPN and its static
    schedule into a network of timed automata executed by a real-time
    engine (on Linux and on the Kalray MPPA).  This module is the IR of
    our equivalent of that path: components with locations, real-valued
    clocks, guarded edges, clock resets, and effect closures that carry
    the data computation (job bodies).

    Guards combine {e clock atoms} — lower/upper bounds on clocks, with
    possibly dynamic bounds (e.g. a sampled execution time) — and a
    {e data guard} closure over shared state (e.g. "all predecessor done
    flags set").  This mirrors how the BIP engine mixes timing
    constraints with data predicates. *)

type loc = string
type clock = string

type bound =
  | Static of Rt_util.Rat.t
  | Dynamic of (unit -> Rt_util.Rat.t)
      (** evaluated when the guard is tested; must be stable while the
          source location is occupied *)

type atom =
  | Ge of clock * bound  (** [x >= b] *)
  | Le of clock * bound  (** [x <= b] *)

type edge = {
  src : loc;
  atoms : atom list;  (** conjunction; empty = true *)
  data_guard : unit -> bool;
  resets : clock list;
  effect : now:Rt_util.Rat.t -> unit;
  dst : loc;
  name : string;  (** for traces/debugging *)
}

type component

val component :
  name:string -> initial:loc -> clocks:clock list -> edge list -> component
(** @raise Invalid_argument if an edge resets or tests an undeclared
    clock. *)

val name : component -> string
val initial : component -> loc
val clocks : component -> clock list
val edges : component -> edge list
val edges_from : component -> loc -> edge list

val true_guard : unit -> bool
val no_effect : now:Rt_util.Rat.t -> unit
