(** Code generation: FPPN + static schedule → network of timed automata.

    Reproduces the architecture of the paper's toolchain [10]: the
    process network and the schedule are compiled into one {e scheduler
    automaton per processor} that encodes the static-order policy —
    per job round, a {e wait} location whose outgoing start edge is
    guarded by the invocation time (global clock) and the predecessors'
    done flags (data guard), and a {e run} location left when the local
    clock reaches the sampled execution time.  Sporadic server slots get
    an alternative {e skip} edge for the ['false'] case.

    Executing the generated network under {!Sim} must produce exactly
    the channel histories of [Runtime.Engine] and of the zero-delay
    interpreter — this is the cross-validation used by the determinism
    experiment (E5 in DESIGN.md). *)

type system

val build :
  Fppn.Network.t ->
  Taskgraph.Derive.t ->
  Sched.Static_schedule.t ->
  Runtime.Engine.config ->
  system
(** Same preconditions as [Runtime.Engine.run]. *)

val components : system -> Ta.component list

type result = {
  trace : Runtime.Exec_trace.t;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  stats : Runtime.Exec_trace.stats;
  firings : Sim.fired list;
}

val execute : ?max_steps:int -> system -> result
(** Builds a {!Sim.t} over the generated components and runs it to
    quiescence. *)

val signature : result -> (string * Fppn.Value.t list) list
