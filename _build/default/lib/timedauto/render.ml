module Rat = Rt_util.Rat

let bound_to_string = function
  | Ta.Static r -> Rat.to_string r
  | Ta.Dynamic _ -> "<dyn>"

let atom_to_string = function
  | Ta.Ge (c, b) -> Printf.sprintf "%s >= %s" c (bound_to_string b)
  | Ta.Le (c, b) -> Printf.sprintf "%s <= %s" c (bound_to_string b)

let guard_to_string (e : Ta.edge) =
  let atoms = List.map atom_to_string e.Ta.atoms in
  let data = if e.Ta.data_guard == Ta.true_guard then [] else [ "[data]" ] in
  match atoms @ data with [] -> "true" | parts -> String.concat " && " parts

let edge_to_string (e : Ta.edge) =
  Printf.sprintf "  %s --[%s | %s%s]--> %s" e.Ta.src e.Ta.name
    (guard_to_string e)
    (match e.Ta.resets with
    | [] -> ""
    | resets -> Printf.sprintf " | reset %s" (String.concat "," resets))
    e.Ta.dst

let describe c =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "component %s (initial %s, clocks %s)\n" (Ta.name c)
       (Ta.initial c)
       (String.concat "," (Ta.clocks c)));
  List.iter
    (fun e -> Buffer.add_string buf (edge_to_string e ^ "\n"))
    (Ta.edges c);
  Buffer.contents buf

let describe_all cs = String.concat "\n" (List.map describe cs)

let to_dot components =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph ta {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" i (Ta.name c));
      let qualify l = Printf.sprintf "%s__%s" (Ta.name c) l in
      let locations =
        List.sort_uniq String.compare
          (Ta.initial c
          :: List.concat_map (fun (e : Ta.edge) -> [ e.Ta.src; e.Ta.dst ]) (Ta.edges c))
      in
      List.iter
        (fun l ->
          let shape =
            if l = Ta.initial c then ", shape=doublecircle" else ""
          in
          Buffer.add_string buf
            (Printf.sprintf "    \"%s\" [label=\"%s\"%s];\n" (qualify l) l shape))
        locations;
      List.iter
        (fun (e : Ta.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "    \"%s\" -> \"%s\" [label=\"%s\\n%s\", fontsize=9];\n"
               (qualify e.Ta.src) (qualify e.Ta.dst) e.Ta.name (guard_to_string e)))
        (Ta.edges c);
      Buffer.add_string buf "  }\n")
    components;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
