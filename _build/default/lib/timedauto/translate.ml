module Rat = Rt_util.Rat
module Network = Fppn.Network
module Process = Fppn.Process
module Netstate = Fppn.Netstate
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Static_schedule = Sched.Static_schedule
module Engine = Runtime.Engine
module Exec_trace = Runtime.Exec_trace
module Platform = Runtime.Platform
module Exec_time = Runtime.Exec_time

type system = {
  components : Ta.component list;
  state : Netstate.t;
  records : Exec_trace.record list ref;
}

let components s = s.components

let build net derived sched (config : Engine.config) =
  let g = derived.Derive.graph in
  let h = derived.Derive.hyperperiod in
  if config.Engine.frames <= 0 then
    invalid_arg "Translate.build: frames must be positive";
  if Static_schedule.n_jobs sched <> Graph.n_jobs g then
    invalid_arg "Translate.build: schedule does not cover the task graph";
  let n_procs = config.Engine.platform.Platform.n_procs in
  if Static_schedule.n_procs sched <> n_procs then
    invalid_arg "Translate.build: schedule and platform processor counts differ";
  let assigned, _unhandled =
    Engine.sporadic_assignment net derived ~frames:config.Engine.frames
      config.Engine.sporadic
  in
  let state = Netstate.create net in
  let completions = Array.make (Graph.n_jobs g) 0 in
  let records = ref [] in
  let frame_base f = Rat.mul h (Rat.of_int f) in
  let preds_done frame job () =
    List.for_all (fun p -> completions.(p) > frame) (Graph.preds g job)
  in
  let relative_deadline job =
    Process.deadline (Network.process net (Graph.job g job).Job.proc)
  in
  let component_of_proc p =
    let order = Static_schedule.jobs_on sched p in
    let edges = ref [] in
    let add e = edges := e :: !edges in
    let n_rounds = List.length order in
    let loc_wait f i = Printf.sprintf "f%d_r%d_wait" f i in
    let loc_run f i = Printf.sprintf "f%d_r%d_run" f i in
    let loc_after f i =
      if i + 1 < n_rounds then loc_wait f (i + 1)
      else if f + 1 < config.Engine.frames then loc_wait (f + 1) 0
      else "done"
    in
    (* one mutable cell per component holds the running job's duration
       (read by the completion edge's dynamic bound) *)
    let duration = ref Rat.zero in
    (* record of the currently running job, published at completion *)
    let pending = ref None in
    for f = 0 to config.Engine.frames - 1 do
      List.iteri
        (fun i job ->
          let j = Graph.job g job in
          let base = frame_base f in
          let invocation = Rat.add base j.Job.arrival in
          let earliest =
            Rat.max invocation
              (Rat.add base (Platform.frame_overhead config.Engine.platform ~frame:f))
          in
          let stamp_of () =
            if j.Job.is_server then Hashtbl.find_opt assigned (job, f)
            else Some invocation
          in
          let is_real () = stamp_of () <> None in
          (* start edge *)
          add
            {
              Ta.src = loc_wait f i;
              atoms = [ Ta.Ge ("t", Ta.Static earliest) ];
              data_guard = (fun () -> preds_done f job () && is_real ());
              resets = [ "x" ];
              effect =
                (fun ~now ->
                  let invoked = Option.get (stamp_of ()) in
                  let accesses = ref 0 in
                  let recorder = function
                    | Fppn.Trace.Read _ | Fppn.Trace.Write _ -> incr accesses
                    | _ -> ()
                  in
                  Netstate.run_job ~recorder ~inputs:config.Engine.inputs state
                    ~proc:j.Job.proc ~now:invoked;
                  duration :=
                    Rat.add
                      (Exec_time.sample config.Engine.exec j)
                      (Rat.mul
                         config.Engine.platform.Platform.overhead
                           .Platform.per_access
                         (Rat.of_int !accesses));
                  pending :=
                    Some
                      {
                        Exec_trace.job;
                        label = Job.label j;
                        frame = f;
                        proc = p;
                        invoked;
                        start = now;
                        finish = now (* patched at completion *);
                        deadline = Rat.add invoked (relative_deadline job);
                        skipped = false;
                      });
              dst = loc_run f i;
              name = Printf.sprintf "start:%s:f%d" (Job.label j) f;
            };
          (* completion edge *)
          add
            {
              Ta.src = loc_run f i;
              atoms = [ Ta.Ge ("x", Ta.Dynamic (fun () -> !duration)) ];
              data_guard = Ta.true_guard;
              resets = [];
              effect =
                (fun ~now ->
                  completions.(job) <- completions.(job) + 1;
                  match !pending with
                  | Some r ->
                    records := { r with Exec_trace.finish = now } :: !records;
                    pending := None
                  | None -> ());
              dst = loc_after f i;
              name = Printf.sprintf "end:%s:f%d" (Job.label j) f;
            };
          (* skip edge for a 'false' server slot: taken at the window
             boundary when no real event maps to the slot *)
          if j.Job.is_server then
            add
              {
                Ta.src = loc_wait f i;
                atoms = [ Ta.Ge ("t", Ta.Static earliest) ];
                data_guard =
                  (fun () -> preds_done f job () && not (is_real ()));
                resets = [];
                effect =
                  (fun ~now ->
                    completions.(job) <- completions.(job) + 1;
                    records :=
                      {
                        Exec_trace.job;
                        label = Job.label j;
                        frame = f;
                        proc = p;
                        invoked = invocation;
                        start = now;
                        finish = now;
                        deadline = Rat.add invocation (relative_deadline job);
                        skipped = true;
                      }
                      :: !records);
                dst = loc_after f i;
                name = Printf.sprintf "skip:%s:f%d" (Job.label j) f;
              })
        order
    done;
    let initial = if n_rounds = 0 then "done" else loc_wait 0 0 in
    Ta.component
      ~name:(Printf.sprintf "sched_M%d" (p + 1))
      ~initial ~clocks:[ "t"; "x" ] (List.rev !edges)
  in
  {
    components = List.init n_procs component_of_proc;
    state;
    records;
  }

type result = {
  trace : Exec_trace.t;
  channel_history : (string * Fppn.Value.t list) list;
  output_history : (string * Fppn.Value.t list) list;
  stats : Exec_trace.stats;
  firings : Sim.fired list;
}

let execute ?max_steps s =
  let sim = Sim.create s.components in
  let firings = Sim.run ?max_steps sim in
  let trace =
    List.sort
      (fun (a : Exec_trace.record) b ->
        let c = Rat.compare a.Exec_trace.start b.Exec_trace.start in
        if c <> 0 then c
        else
          let c = Int.compare a.Exec_trace.proc b.Exec_trace.proc in
          if c <> 0 then c
          else
            let c = Int.compare a.Exec_trace.frame b.Exec_trace.frame in
            if c <> 0 then c else Int.compare a.Exec_trace.job b.Exec_trace.job)
      !(s.records)
  in
  {
    trace;
    channel_history = Netstate.channel_history s.state;
    output_history = Netstate.output_history s.state;
    stats = Exec_trace.stats trace;
    firings;
  }

let signature r =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (r.channel_history @ r.output_history)
