(** Simulator for closed networks of timed automata.

    Semantics implemented: at the current instant, fire any enabled edge
    (deterministically: components in declaration order, edges in
    declaration order within a component) until none is enabled; then
    let time elapse to the earliest instant at which some edge with a
    currently-true data guard becomes clock-enabled; repeat.  Suitable
    for the deterministic, urgency-free-upper-bound networks produced by
    {!Translate} (each "wait" has an exact firing time).

    A {e step bound} guards against Zeno loops (effect closures that
    re-enable themselves without consuming time). *)

type t

val create : Ta.component list -> t
(** @raise Invalid_argument on duplicate component names. *)

type fired = { time : Rt_util.Rat.t; component : string; edge : string }

val run :
  ?max_steps:int -> ?horizon:Rt_util.Rat.t -> t -> fired list
(** Runs until no edge can ever fire again (quiescence), the optional
    time [horizon] is passed, or [max_steps] (default 1_000_000) edges
    have fired.  Returns the firing log in order.
    @raise Invalid_argument when the step bound is hit. *)

val now : t -> Rt_util.Rat.t
val location : t -> string -> Ta.loc
(** Current location of a component. @raise Not_found *)
