module Rat = Rt_util.Rat

type comp_state = {
  comp : Ta.component;
  mutable loc : Ta.loc;
  resets : (Ta.clock, Rat.t) Hashtbl.t; (* last reset instant *)
}

type t = { comps : comp_state array; mutable time : Rat.t }

let create components =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let n = Ta.name c in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Sim.create: duplicate component %S" n);
      Hashtbl.add seen n ())
    components;
  let comps =
    Array.of_list
      (List.map
         (fun comp ->
           let resets = Hashtbl.create 4 in
           List.iter (fun c -> Hashtbl.replace resets c Rat.zero) (Ta.clocks comp);
           { comp; loc = Ta.initial comp; resets })
         components)
  in
  { comps; time = Rat.zero }

type fired = { time : Rat.t; component : string; edge : string }

let eval_bound = function Ta.Static r -> r | Ta.Dynamic f -> f ()

(* Earliest instant >= now at which the clock atoms of [e] hold, or None. *)
let enabling_time cs now (e : Ta.edge) =
  let lower = ref now and upper = ref None in
  List.iter
    (fun atom ->
      match atom with
      | Ta.Ge (c, b) ->
        let at = Rat.add (Hashtbl.find cs.resets c) (eval_bound b) in
        if Rat.(at > !lower) then lower := at
      | Ta.Le (c, b) ->
        let at = Rat.add (Hashtbl.find cs.resets c) (eval_bound b) in
        upper := Some (match !upper with None -> at | Some u -> Rat.min u at))
    e.Ta.atoms;
  match !upper with
  | Some u when Rat.(!lower > u) -> None
  | _ -> Some !lower

let run ?(max_steps = 1_000_000) ?horizon (t : t) =
  let log = ref [] in
  let steps = ref 0 in
  let fire cs (e : Ta.edge) =
    incr steps;
    if !steps > max_steps then
      invalid_arg "Sim.run: step bound exceeded (Zeno loop?)";
    List.iter (fun c -> Hashtbl.replace cs.resets c t.time) e.Ta.resets;
    e.Ta.effect ~now:t.time;
    cs.loc <- e.Ta.dst;
    log :=
      { time = t.time; component = Ta.name cs.comp; edge = e.Ta.name } :: !log
  in
  (* fire any edge enabled right now; component order, then edge order *)
  let fire_one () =
    let rec scan i =
      if i >= Array.length t.comps then false
      else
        let cs = t.comps.(i) in
        let candidate =
          List.find_opt
            (fun (e : Ta.edge) ->
              e.Ta.data_guard ()
              && match enabling_time cs t.time e with
                 | Some at -> Rat.equal at t.time
                 | None -> false)
            (Ta.edges_from cs.comp cs.loc)
        in
        match candidate with
        | Some e ->
          fire cs e;
          true
        | None -> scan (i + 1)
    in
    scan 0
  in
  let next_wakeup () =
    Array.fold_left
      (fun acc cs ->
        List.fold_left
          (fun acc (e : Ta.edge) ->
            if e.Ta.data_guard () then
              match enabling_time cs t.time e with
              | Some at when Rat.(at > t.time) -> (
                match acc with
                | None -> Some at
                | Some b -> Some (Rat.min b at))
              | _ -> acc
            else acc)
          acc
          (Ta.edges_from cs.comp cs.loc))
      None t.comps
  in
  let rec loop () =
    if fire_one () then loop ()
    else
      match next_wakeup () with
      | None -> () (* quiescent *)
      | Some at ->
        (match horizon with
        | Some h when Rat.(at > h) -> ()
        | _ ->
          t.time <- at;
          loop ())
  in
  loop ();
  List.rev !log

let now (t : t) = t.time

let location (t : t) name =
  let rec find i =
    if i >= Array.length t.comps then raise Not_found
    else if Ta.name t.comps.(i).comp = name then t.comps.(i).loc
    else find (i + 1)
  in
  find 0
