module Rat = Rt_util.Rat

type times = { asap : Rat.t array; alap : Rat.t array }

let asap_alap g =
  let n = Graph.n_jobs g in
  let asap = Array.make n Rat.zero and alap = Array.make n Rat.zero in
  let topo = Graph.topo_order g in
  List.iter
    (fun i ->
      let j = Graph.job g i in
      let from_preds =
        List.fold_left
          (fun acc p ->
            Rat.max acc (Rat.add asap.(p) (Graph.job g p).Job.wcet))
          j.Job.arrival (Graph.preds g i)
      in
      asap.(i) <- from_preds)
    topo;
  List.iter
    (fun i ->
      let j = Graph.job g i in
      let from_succs =
        List.fold_left
          (fun acc s ->
            Rat.min acc (Rat.sub alap.(s) (Graph.job g s).Job.wcet))
          j.Job.deadline (Graph.succs g i)
      in
      alap.(i) <- from_succs)
    (List.rev topo);
  { asap; alap }

type load_result = { value : Rat.t; window : Rat.t * Rat.t }

let distinct_sorted values =
  Array.of_list (List.sort_uniq Rat.compare (Array.to_list values))

let load ?times g =
  let n = Graph.n_jobs g in
  if n = 0 then { value = Rat.zero; window = (Rat.zero, Rat.one) }
  else begin
    let { asap; alap } =
      match times with Some t -> t | None -> asap_alap g
    in
    (* Candidate window bounds: t1 among ASAP starts, t2 among ALAP
       completions — shrinking a window to these values never decreases
       the ratio. *)
    let t1s = distinct_sorted asap and t2s = distinct_sorted alap in
    let q = Array.length t2s in
    let d_index = Hashtbl.create q in
    Array.iteri (fun i v -> Hashtbl.replace d_index v i) t2s;
    (* Jobs grouped by ASAP, swept from the largest t1 downward; [acc]
       accumulates per-ALAP-value WCET of jobs with A'_i >= t1. *)
    let by_asap = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      let prev = try Hashtbl.find by_asap asap.(i) with Not_found -> [] in
      Hashtbl.replace by_asap asap.(i) (i :: prev)
    done;
    let acc = Array.make q Rat.zero in
    let best = ref Rat.zero and best_window = ref (Rat.zero, Rat.one) in
    for a = Array.length t1s - 1 downto 0 do
      let t1 = t1s.(a) in
      List.iter
        (fun i ->
          let d = Hashtbl.find d_index alap.(i) in
          acc.(d) <- Rat.add acc.(d) (Graph.job g i).Job.wcet)
        (try Hashtbl.find by_asap t1 with Not_found -> []);
      (* prefix sums over t2 ascending *)
      let running = ref Rat.zero in
      for d = 0 to q - 1 do
        running := Rat.add !running acc.(d);
        let t2 = t2s.(d) in
        if Rat.(t2 > t1) && Rat.sign !running > 0 then begin
          let ratio = Rat.div !running (Rat.sub t2 t1) in
          if Rat.(ratio > !best) then begin
            best := ratio;
            best_window := (t1, t2)
          end
        end
      done
    done;
    { value = !best; window = !best_window }
  end

type violation =
  | Job_infeasible of int
  | Load_exceeds of { load : Rat.t; processors : int }

let pp_violation g ppf = function
  | Job_infeasible i ->
    Format.fprintf ppf "job %s cannot fit its ASAP/ALAP window"
      (Job.label (Graph.job g i))
  | Load_exceeds { load; processors } ->
    Format.fprintf ppf "ceil(load %a) exceeds %d processor(s)" Rat.pp load
      processors

let necessary_condition ?times g ~processors =
  let t = match times with Some t -> t | None -> asap_alap g in
  let violations = ref [] in
  for i = Graph.n_jobs g - 1 downto 0 do
    let j = Graph.job g i in
    if Rat.(Rat.add t.asap.(i) j.Job.wcet > t.alap.(i)) then
      violations := Job_infeasible i :: !violations
  done;
  let l = load ~times:t g in
  if Rat.ceil l.value > processors then
    violations :=
      !violations @ [ Load_exceeds { load = l.value; processors } ];
  match !violations with [] -> Ok () | vs -> Error vs

let b_level g =
  let n = Graph.n_jobs g in
  let bl = Array.make n Rat.zero in
  List.iter
    (fun i ->
      let j = Graph.job g i in
      let best_succ =
        List.fold_left (fun acc s -> Rat.max acc bl.(s)) Rat.zero (Graph.succs g i)
      in
      bl.(i) <- Rat.add j.Job.wcet best_succ)
    (List.rev (Graph.topo_order g));
  bl

let critical_path g =
  let bl = b_level g in
  let n = Graph.n_jobs g in
  if n = 0 then (Rat.zero, [])
  else begin
    let start = ref 0 in
    for i = 1 to n - 1 do
      if Rat.(bl.(i) > bl.(!start)) then start := i
    done;
    let rec walk i acc =
      let acc = i :: acc in
      let next =
        List.fold_left
          (fun best s ->
            match best with
            | None -> Some s
            | Some b -> if Rat.(bl.(s) > bl.(b)) then Some s else best)
          None (Graph.succs g i)
      in
      match next with None -> List.rev acc | Some s -> walk s acc
    in
    (bl.(!start), walk !start [])
  end
