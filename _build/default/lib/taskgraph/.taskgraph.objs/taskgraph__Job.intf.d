lib/taskgraph/job.mli: Format Rt_util
