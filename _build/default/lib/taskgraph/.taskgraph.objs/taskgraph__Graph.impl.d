lib/taskgraph/graph.ml: Array Buffer Format Fun Hashtbl Int Job List Printf Rt_util
