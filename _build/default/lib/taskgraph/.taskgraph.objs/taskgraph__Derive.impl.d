lib/taskgraph/derive.ml: Array Format Fppn Fun Graph Int Job List Rt_util String
