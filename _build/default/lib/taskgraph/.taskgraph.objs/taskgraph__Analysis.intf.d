lib/taskgraph/analysis.mli: Format Graph Rt_util
