lib/taskgraph/derive.mli: Format Fppn Graph Rt_util
