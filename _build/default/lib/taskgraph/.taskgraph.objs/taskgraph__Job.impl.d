lib/taskgraph/job.ml: Format Int Printf Rt_util
