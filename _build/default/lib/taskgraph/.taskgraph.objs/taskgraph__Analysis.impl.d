lib/taskgraph/analysis.ml: Array Format Graph Hashtbl Job List Rt_util
