lib/taskgraph/graph.mli: Job Rt_util
