(** ASAP/ALAP times, the precedence-aware load metric, and the necessary
    schedulability condition (Sec. III-B, Prop. 3.1). *)

type times = {
  asap : Rt_util.Rat.t array;
      (** [A'_i = max(A_i, max_{j ∈ Pred(i)} A'_j + C_j)] — a lower
          bound on any feasible start time *)
  alap : Rt_util.Rat.t array;
      (** [D'_i = min(D_i, min_{j ∈ Succ(i)} D'_j − C_j)] — an upper
          bound on any feasible completion time *)
}

val asap_alap : Graph.t -> times

type load_result = {
  value : Rt_util.Rat.t;
  window : Rt_util.Rat.t * Rt_util.Rat.t;
      (** a maximizing window [(t1, t2)] *)
}

val load : ?times:times -> Graph.t -> load_result
(** [Load(TG) = max_{t1<t2} (Σ_{A'_i ≥ t1 ∧ D'_i ≤ t2} C_i) / (t2−t1)],
    the generalization of Liu's load to precedence constraints.  Returns
    zero load over window [(0,1)] for an empty graph. *)

type violation =
  | Job_infeasible of int
      (** [A'_i + C_i > D'_i]: the job cannot fit its own window *)
  | Load_exceeds of { load : Rt_util.Rat.t; processors : int }
      (** [⌈Load⌉ > M] *)

val pp_violation : Graph.t -> Format.formatter -> violation -> unit

val necessary_condition :
  ?times:times -> Graph.t -> processors:int -> (unit, violation list) result
(** Prop. 3.1: a task graph is schedulable on [M] processors only if
    every job fits its ASAP/ALAP window and [⌈Load⌉ ≤ M]. *)

val b_level : Graph.t -> Rt_util.Rat.t array
(** [b_level.(i)] is the longest WCET path from job [i] to a sink,
    including [C_i] — the classic list-scheduling priority. *)

val critical_path : Graph.t -> Rt_util.Rat.t * int list
(** Longest WCET path in the graph and a witness job sequence. *)
