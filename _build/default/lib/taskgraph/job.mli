(** Jobs of a task graph (Def. 3.1).

    A job is the 6-tuple [(p_i, k_i, A_i, D_i, C_i)] plus its node index
    in the graph.  Jobs derived from a sporadic process are {e server}
    jobs (Sec. III-A): at run time they may carry a real sporadic
    invocation or be marked ['false'] and skipped. *)

type t = {
  id : int;  (** node index within the task graph *)
  proc : int;  (** process index in the source network *)
  proc_name : string;
  k : int;  (** invocation count, 1-based: this job is [p\[k\]] *)
  arrival : Rt_util.Rat.t;  (** [A_i] *)
  deadline : Rt_util.Rat.t;  (** absolute required time [D_i], truncated to the hyperperiod *)
  wcet : Rt_util.Rat.t;  (** [C_i] *)
  is_server : bool;  (** derived from a sporadic process via its server *)
}

val pp : Format.formatter -> t -> unit
(** [name\[k\] (A,D,C)] as in Fig. 3. *)

val label : t -> string
(** [name\[k\]]. *)

val compare_by_arrival : t -> t -> int
(** Ascending arrival, ties by id. *)
