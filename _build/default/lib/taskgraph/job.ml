module Rat = Rt_util.Rat

type t = {
  id : int;
  proc : int;
  proc_name : string;
  k : int;
  arrival : Rat.t;
  deadline : Rat.t;
  wcet : Rat.t;
  is_server : bool;
}

let label j = Printf.sprintf "%s[%d]" j.proc_name j.k

let pp ppf j =
  Format.fprintf ppf "%s (%a,%a,%a)" (label j) Rat.pp j.arrival Rat.pp
    j.deadline Rat.pp j.wcet

let compare_by_arrival a b =
  let c = Rat.compare a.arrival b.arrival in
  if c <> 0 then c else Int.compare a.id b.id
