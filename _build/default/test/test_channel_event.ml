module Rat = Rt_util.Rat
module V = Fppn.Value
module Channel = Fppn.Channel
module Event = Fppn.Event

let value = Alcotest.testable V.pp V.equal

let qprop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- Value ------------------------------------------------------------ *)

let test_value_equal_compare () =
  Alcotest.(check bool) "pair equal" true
    (V.equal (V.Pair (V.Int 1, V.Bool true)) (V.Pair (V.Int 1, V.Bool true)));
  Alcotest.(check bool) "different constructors differ" false
    (V.equal (V.Int 0) (V.Float 0.0));
  Alcotest.(check bool) "compare is consistent with equal" true
    (V.compare (V.List [ V.Int 1 ]) (V.List [ V.Int 1 ]) = 0);
  Alcotest.(check bool) "list ordering lexicographic" true
    (V.compare (V.List [ V.Int 1 ]) (V.List [ V.Int 2 ]) < 0)

let test_value_coercions () =
  Alcotest.(check int) "to_int" 5 (V.to_int (V.Int 5));
  Alcotest.(check (float 1e-9)) "to_float widens int" 5.0 (V.to_float (V.Int 5));
  let re, im = V.to_complex (V.complex 1.5 (-2.0)) in
  Alcotest.(check (float 1e-9)) "complex re" 1.5 re;
  Alcotest.(check (float 1e-9)) "complex im" (-2.0) im;
  Alcotest.check_raises "bad coercion"
    (Invalid_argument "Value: expected Int, got true") (fun () ->
      ignore (V.to_int (V.Bool true)))

let rec value_gen depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [
        return V.Absent;
        return V.Unit;
        map (fun b -> V.Bool b) bool;
        map (fun n -> V.Int n) (int_range (-50) 50);
        map (fun f -> V.Float f) (float_bound_inclusive 10.0);
        map (fun s -> V.Str s) (string_size (int_range 0 5));
      ]
  else
    oneof
      [
        value_gen 0;
        map2 (fun a b -> V.Pair (a, b)) (value_gen (depth - 1)) (value_gen (depth - 1));
        map (fun l -> V.List l) (list_size (int_range 0 3) (value_gen (depth - 1)));
      ]

let prop_value_compare_total_order =
  qprop "Value.compare is a total order consistent with equal"
    QCheck2.Gen.(triple (value_gen 2) (value_gen 2) (value_gen 2))
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (V.compare a b) = -sgn (V.compare b a)
      && (V.equal a b = (V.compare a b = 0))
      && ((not (V.compare a b <= 0 && V.compare b c <= 0)) || V.compare a c <= 0))

let prop_value_pp_roundtrips_equality =
  qprop "equal values print identically" QCheck2.Gen.(pair (value_gen 2) (value_gen 2))
    (fun (a, b) -> (not (V.equal a b)) || String.equal (V.to_string a) (V.to_string b))

(* --- Channel: FIFO ---------------------------------------------------- *)

let test_fifo_order () =
  let c = Channel.create Channel.Fifo in
  Alcotest.check value "empty read is Absent" V.Absent (Channel.read c);
  Channel.write c (V.Int 1);
  Channel.write c (V.Int 2);
  Channel.write c (V.Int 3);
  Alcotest.(check int) "occupancy" 3 (Channel.occupancy c);
  Alcotest.check value "fifo pops in order" (V.Int 1) (Channel.read c);
  Alcotest.check value "peek does not consume" (V.Int 2) (Channel.peek c);
  Alcotest.check value "next is still 2" (V.Int 2) (Channel.read c);
  Alcotest.check value "then 3" (V.Int 3) (Channel.read c);
  Alcotest.check value "exhausted" V.Absent (Channel.read c)

let test_fifo_history () =
  let c = Channel.create Channel.Fifo in
  Channel.write c (V.Int 1);
  ignore (Channel.read c);
  Channel.write c (V.Int 2);
  Alcotest.(check (list value)) "history keeps consumed writes"
    [ V.Int 1; V.Int 2 ] (Channel.history c)

let test_fifo_init_reset () =
  let c = Channel.create ~init:(V.Str "seed") Channel.Fifo in
  Alcotest.check value "initial token readable" (V.Str "seed") (Channel.read c);
  Alcotest.(check (list value)) "init not in history" [] (Channel.history c);
  Channel.write c (V.Int 9);
  Channel.reset c;
  Alcotest.check value "reset restores init" (V.Str "seed") (Channel.read c);
  Alcotest.(check (list value)) "reset clears history" [] (Channel.history c)

(* --- Channel: Blackboard ---------------------------------------------- *)

let test_blackboard () =
  let c = Channel.create Channel.Blackboard in
  Alcotest.check value "uninitialized is Absent" V.Absent (Channel.read c);
  Channel.write c (V.Int 1);
  Channel.write c (V.Int 2);
  Alcotest.check value "remembers last write" (V.Int 2) (Channel.read c);
  Alcotest.check value "read does not consume" (V.Int 2) (Channel.read c);
  Alcotest.(check int) "occupancy is 1" 1 (Channel.occupancy c);
  Alcotest.(check (list value)) "history has both writes" [ V.Int 1; V.Int 2 ]
    (Channel.history c)

let prop_fifo_is_queue =
  qprop "fifo behaves as a queue"
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 1000))
    (fun writes ->
      let c = Channel.create Channel.Fifo in
      List.iter (fun x -> Channel.write c (V.Int x)) writes;
      let reads = List.map (fun _ -> Channel.read c) writes in
      reads = List.map (fun x -> V.Int x) writes
      && Channel.read c = V.Absent)

let prop_blackboard_last_wins =
  qprop "blackboard returns the last write"
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 1000))
    (fun writes ->
      let c = Channel.create Channel.Blackboard in
      List.iter (fun x -> Channel.write c (V.Int x)) writes;
      Channel.read c = V.Int (List.nth writes (List.length writes - 1)))

(* --- Event generators -------------------------------------------------- *)

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

let test_event_validation () =
  Alcotest.check_raises "zero period"
    (Invalid_argument "Event: period must be positive") (fun () ->
      ignore (Event.periodic ~period:Rat.zero ~deadline:Rat.one ()));
  Alcotest.check_raises "zero burst" (Invalid_argument "Event: burst must be >= 1")
    (fun () ->
      ignore (Event.periodic ~burst:0 ~period:Rat.one ~deadline:Rat.one ()))

let test_periodic_invocations () =
  let e = Event.periodic ~period:(ms 100) ~deadline:(ms 100) () in
  Alcotest.(check (list rat)) "simple periodic"
    [ ms 0; ms 100; ms 200 ]
    (Event.periodic_invocations e ~horizon:(ms 300));
  let e2 = Event.periodic ~burst:2 ~period:(ms 200) ~deadline:(ms 200) () in
  Alcotest.(check (list rat)) "bursts duplicated"
    [ ms 0; ms 0; ms 200; ms 200 ]
    (Event.periodic_invocations e2 ~horizon:(ms 400));
  Alcotest.(check int) "count matches" 4
    (Event.count_periodic_jobs e2 ~horizon:(ms 400));
  Alcotest.check_raises "sporadic rejected"
    (Invalid_argument "Event.periodic_invocations: sporadic generator")
    (fun () ->
      ignore
        (Event.periodic_invocations
           (Event.sporadic ~min_period:(ms 100) ~deadline:(ms 100) ())
           ~horizon:(ms 300)))

let test_sporadic_trace_validity () =
  (* CoefB of Fig. 1: 2 per 700 ms *)
  let e = Event.sporadic ~burst:2 ~min_period:(ms 700) ~deadline:(ms 700) () in
  Alcotest.(check bool) "empty ok" true (Event.is_valid_sporadic_trace e []);
  Alcotest.(check bool) "two inside a window ok" true
    (Event.is_valid_sporadic_trace e [ ms 50; ms 200 ]);
  Alcotest.(check bool) "three inside a window rejected" false
    (Event.is_valid_sporadic_trace e [ ms 50; ms 200; ms 550 ]);
  Alcotest.(check bool) "spread out ok" true
    (Event.is_valid_sporadic_trace e [ ms 0; ms 100; ms 800; ms 900 ]);
  Alcotest.(check bool) "window is half-closed: 0 and 700 may join 2 others"
    true
    (Event.is_valid_sporadic_trace e [ ms 0; ms 100; ms 800 ]);
  Alcotest.(check bool) "descending rejected" false
    (Event.is_valid_sporadic_trace e [ ms 100; ms 50 ]);
  Alcotest.(check bool) "negative rejected" false
    (Event.is_valid_sporadic_trace e [ Rat.neg (ms 1) ])

let test_random_sporadic_trace () =
  let e = Event.sporadic ~burst:2 ~min_period:(ms 200) ~deadline:(ms 400) () in
  let prng = Rt_util.Prng.create 11 in
  let t = Event.random_sporadic_trace e prng ~horizon:(ms 5000) ~density:0.8 in
  Alcotest.(check bool) "non-trivial" true (List.length t > 5);
  Alcotest.(check bool) "valid" true (Event.is_valid_sporadic_trace e t);
  Alcotest.(check bool) "within horizon" true
    (List.for_all (fun s -> Rat.(s < ms 5000) && Rat.sign s >= 0) t)

let prop_random_traces_valid =
  qprop "random sporadic traces always satisfy (m,T)" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 3) (int_range 50 400) (int_range 0 10_000))
    (fun (burst, period, seed) ->
      let e =
        Event.sporadic ~burst ~min_period:(ms period) ~deadline:(ms (2 * period)) ()
      in
      let prng = Rt_util.Prng.create seed in
      let t = Event.random_sporadic_trace e prng ~horizon:(ms 3000) ~density:1.0 in
      Event.is_valid_sporadic_trace e t)

let test_pp () =
  let s = Format.asprintf "%a" Event.pp (Event.periodic ~period:(ms 200) ~deadline:(ms 200) ()) in
  Alcotest.(check string) "periodic pp" "periodic 200ms" s;
  let s2 =
    Format.asprintf "%a" Event.pp
      (Event.sporadic ~burst:2 ~min_period:(ms 700) ~deadline:(ms 700) ())
  in
  Alcotest.(check string) "sporadic pp" "sporadic 2 per 700ms" s2

let () =
  Alcotest.run "channel-event"
    [
      ( "value",
        [
          Alcotest.test_case "equal/compare" `Quick test_value_equal_compare;
          Alcotest.test_case "coercions" `Quick test_value_coercions;
          prop_value_compare_total_order;
          prop_value_pp_roundtrips_equality;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "history" `Quick test_fifo_history;
          Alcotest.test_case "init/reset" `Quick test_fifo_init_reset;
          prop_fifo_is_queue;
        ] );
      ( "blackboard",
        [ Alcotest.test_case "semantics" `Quick test_blackboard; prop_blackboard_last_wins ] );
      ( "event",
        [
          Alcotest.test_case "validation" `Quick test_event_validation;
          Alcotest.test_case "periodic invocations" `Quick test_periodic_invocations;
          Alcotest.test_case "sporadic validity" `Quick test_sporadic_trace_validity;
          Alcotest.test_case "random trace" `Quick test_random_sporadic_trace;
          Alcotest.test_case "pretty printing" `Quick test_pp;
          prop_random_traces_valid;
        ] );
    ]
