module Ast = Fppn_lang.Ast
module Lexer = Fppn_lang.Lexer
module Parser = Fppn_lang.Parser
module Elaborate = Fppn_lang.Elaborate
module Printer = Fppn_lang.Printer
module Rat = Rt_util.Rat
module V = Fppn.Value

let ms = Rat.of_int

(* --- lexer ---------------------------------------------------------------- *)

let tokens_of src = List.map (fun t -> t.Lexer.token) (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check int) "token count" 8
    (List.length (tokens_of "network n { process } 42 13.5"));
  (match tokens_of "x := y -> z" with
  | [ Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.IDENT "y"; Lexer.ARROW; Lexer.IDENT "z"; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "unexpected tokens");
  match tokens_of "a <= b != c && d" with
  | [ Lexer.IDENT "a"; Lexer.LE; Lexer.IDENT "b"; Lexer.NE; Lexer.IDENT "c";
      Lexer.ANDAND; Lexer.IDENT "d"; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments_strings () =
  (match tokens_of "a // comment\n b" with
  | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "line comment");
  (match tokens_of "a (* nested (* deeper *) still *) b" with
  | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "nested block comment");
  match tokens_of {|"hi\nthere"|} with
  | [ Lexer.STRING "hi\nthere"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_lexer_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected a lexical error on %S" src
  in
  expect_error "a # b";
  expect_error "\"unterminated";
  expect_error "(* unterminated";
  expect_error "a & b";
  expect_error "a = b"

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.pos.Ast.line;
    Alcotest.(check int) "b line" 2 b.Lexer.pos.Ast.line;
    Alcotest.(check int) "b col" 3 b.Lexer.pos.Ast.col
  | _ -> Alcotest.fail "token shape"

(* --- expression parsing ----------------------------------------------------- *)

let test_expr_precedence () =
  (match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Lit (Ast.L_int 1), Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (match Parser.parse_expr "a && b || c" with
  | Ast.Binop (Ast.Or, Ast.Binop (Ast.And, _, _), _) -> ()
  | _ -> Alcotest.fail "and binds tighter than or");
  (match Parser.parse_expr "x + 1 <= y" with
  | Ast.Binop (Ast.Le, Ast.Binop (Ast.Add, _, _), _) -> ()
  | _ -> Alcotest.fail "arithmetic binds tighter than comparison");
  (match Parser.parse_expr "not avail(x)" with
  | Ast.Unop (Ast.Not, Ast.Avail "x") -> ()
  | _ -> Alcotest.fail "not/avail");
  match Parser.parse_expr "-(3 % 2)" with
  | Ast.Unop (Ast.Neg, Ast.Binop (Ast.Mod, _, _)) -> ()
  | _ -> Alcotest.fail "unary minus over parens"

let test_parse_errors_have_positions () =
  let expect src =
    match Parser.parse src with
    | exception Parser.Error (_, pos) ->
      Alcotest.(check bool) "line >= 1" true (pos.Ast.line >= 1)
    | _ -> Alcotest.failf "expected a parse error on %S" src
  in
  expect "network {";
  expect "network n { process }";
  expect "network n { channel pipe c : A -> B; }";
  expect "network n { process P : periodic deadline 1 extern; }"

(* --- full program parse + elaborate ------------------------------------------ *)

let counter_src =
  {|
network demo {
  process Counter : periodic 100 deadline 100 wcet 10 {
    var x := 0;
    loc l0 {
      when true do x := x + 1, x ! samples goto l0;
    }
  }
  process Sink : periodic 200 deadline 200 wcet 30 extern;
  channel fifo samples : Counter -> Sink;
  priority Counter -> Sink;
  output Sink -> out;
}
|}

let sink_behavior =
  Fppn.Process.Native
    (fun ctx -> ctx.Fppn.Process.write "out" (ctx.Fppn.Process.read "samples"))

let test_parse_network () =
  let ast = Parser.parse counter_src in
  Alcotest.(check string) "name" "demo" ast.Ast.n_name;
  Alcotest.(check int) "2 processes" 2 (List.length ast.Ast.processes);
  Alcotest.(check int) "1 channel" 1 (List.length ast.Ast.channels);
  Alcotest.(check int) "1 priority" 1 (List.length ast.Ast.priorities);
  let counter = List.hd ast.Ast.processes in
  (match counter.Ast.event with
  | Ast.Periodic { burst = 1; period; deadline } ->
    Alcotest.(check bool) "period 100" true (Rat.equal period (ms 100));
    Alcotest.(check bool) "deadline 100" true (Rat.equal deadline (ms 100))
  | _ -> Alcotest.fail "expected periodic");
  Alcotest.(check bool) "wcet recorded" true
    (counter.Ast.wcet = Some (ms 10))

let test_elaborate_and_run () =
  let ast = Parser.parse counter_src in
  let net = Elaborate.to_network ~externs:[ ("Sink", sink_behavior) ] ast in
  let res =
    Fppn.Semantics.run net
      (Fppn.Semantics.invocations ~horizon:(ms 400) net)
  in
  Alcotest.(check (list (testable V.pp V.equal)))
    "automaton counter streams through the extern sink"
    [ V.Int 1; V.Int 2 ]
    (List.assoc "out" res.Fppn.Semantics.output_history);
  let wcet = Elaborate.wcet_map ~default:(ms 99) ast in
  Alcotest.(check bool) "wcet from annotation" true (Rat.equal (wcet "Counter") (ms 10));
  Alcotest.(check bool) "wcet default" true (Rat.equal (wcet "Unknown") (ms 99))

let test_elaborate_errors () =
  let expect_elab_error ?externs src =
    match Elaborate.to_network ?externs (Parser.parse src) with
    | exception Elaborate.Error _ -> ()
    | _ -> Alcotest.fail "expected an elaboration error"
  in
  (* extern without a binding *)
  expect_elab_error
    "network n { process P : periodic 1 deadline 1 extern; }";
  (* goto to an unknown location *)
  expect_elab_error
    "network n { process P : periodic 1 deadline 1 { loc a { when true goto zz; } } }";
  (* network-level validation (missing priority on a channel) *)
  expect_elab_error
    "network n {\n\
     process A : periodic 1 deadline 1 { loc a { when true goto a; } }\n\
     process B : periodic 1 deadline 1 { loc a { when true goto a; } }\n\
     channel fifo c : A -> B;\n\
     }"

let test_sporadic_event_syntax () =
  let ast =
    Parser.parse
      "network n { process S : sporadic 2 per 700 deadline 700 { loc a { when \
       true goto a; } } process U : periodic 200 deadline 200 { loc a { when \
       true goto a; } } channel blackboard c : S -> U; priority S -> U; }"
  in
  match (List.hd ast.Ast.processes).Ast.event with
  | Ast.Sporadic { burst = 2; period; deadline } ->
    Alcotest.(check bool) "period 700" true (Rat.equal period (ms 700));
    Alcotest.(check bool) "deadline 700" true (Rat.equal deadline (ms 700))
  | _ -> Alcotest.fail "expected sporadic 2 per 700"

(* --- printer round-trip ------------------------------------------------------- *)

let test_print_parse_roundtrip () =
  let ast = Parser.parse counter_src in
  let printed = Printer.to_string ast in
  let ast' = Parser.parse printed in
  let printed' = Printer.to_string ast' in
  Alcotest.(check string) "print . parse . print is stable" printed printed'

let test_sensor_fusion_example () =
  (* the shipped example file must parse, elaborate and simulate
     deterministically *)
  (* resolve next to the test binary so both `dune runtest` and
     `dune exec` find the copied file *)
  let path =
    Filename.concat (Filename.dirname Sys.executable_name) "sensor_fusion.fppn"
  in
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let ast = Parser.parse src in
  let net = Elaborate.to_network ast in
  Alcotest.(check int) "4 processes" 4 (Fppn.Network.n_processes net);
  let wcet = Elaborate.wcet_map ~default:(ms 10) ast in
  let d = Taskgraph.Derive.derive_exn ~wcet net in
  let sched =
    match snd (Sched.List_scheduler.auto ~n_procs:2 d.Taskgraph.Derive.graph) with
    | Some a -> a.Sched.List_scheduler.schedule
    | None -> Alcotest.fail "sensor_fusion should be schedulable on 2 cores"
  in
  let sporadic = [ ("Operator", [ ms 120; ms 180 ]) ] in
  let config =
    { (Runtime.Engine.default_config ~frames:3 ~n_procs:2 ()) with
      Runtime.Engine.sporadic;
      exec = Runtime.Exec_time.uniform ~seed:3 ~min_fraction:0.4 }
  in
  let rt = Runtime.Engine.run net d sched config in
  let zd =
    Fppn.Semantics.run net
      (Fppn.Semantics.invocations ~sporadic
         ~horizon:(Rat.mul d.Taskgraph.Derive.hyperperiod (Rat.of_int 3))
         net)
  in
  Alcotest.(check bool) "parsed program runs deterministically" true
    (List.equal
       (fun (n1, h1) (n2, h2) -> n1 = n2 && List.equal V.equal h1 h2)
       (Fppn.Semantics.signature zd)
       (Runtime.Engine.signature rt))

(* --- property: generated ASTs round-trip -------------------------------------- *)

let qprop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let ident_gen =
  QCheck2.Gen.(
    map
      (fun (c, rest) ->
        String.make 1 (Char.chr (Char.code 'a' + c))
        ^ String.concat ""
            (List.map (fun i -> string_of_int (abs i mod 10)) rest))
      (pair (int_range 0 25) (list_size (int_range 0 4) small_int)))

let rec expr_gen depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> Ast.Lit (Ast.L_int n)) (int_range 0 100);
        map (fun b -> Ast.Lit (Ast.L_bool b)) bool;
        map (fun x -> Ast.Var x) ident_gen;
        map (fun x -> Ast.Avail x) ident_gen;
      ]
  else
    oneof
      [
        expr_gen 0;
        map (fun e -> Ast.Unop (Ast.Neg, e)) (expr_gen (depth - 1));
        map (fun e -> Ast.Unop (Ast.Not, e)) (expr_gen (depth - 1));
        map3
          (fun op a b -> Ast.Binop (op, a, b))
          (oneofl
             [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne;
               Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or ])
          (expr_gen (depth - 1))
          (expr_gen (depth - 1));
      ]

let prop_expr_roundtrip =
  qprop "printed expressions re-parse to the same AST" (expr_gen 4) (fun e ->
      let printed = Format.asprintf "%a" Printer.pp_expr e in
      Parser.parse_expr printed = e)

(* network-level roundtrip: random ASTs survive print+parse, ignoring
   source positions *)

let zero_pos = { Ast.line = 0; col = 0 }

let strip_network (n : Ast.network) =
  let strip_machine (m : Ast.machine) =
    { m with
      Ast.locations =
        List.map
          (fun (l : Ast.location) ->
            { l with
              Ast.transitions =
                List.map
                  (fun t -> { t with Ast.t_pos = zero_pos })
                  l.Ast.transitions })
          m.Ast.locations }
  in
  {
    n with
    Ast.processes =
      List.map
        (fun (p : Ast.process_decl) ->
          { p with
            Ast.p_pos = zero_pos;
            behavior =
              (match p.Ast.behavior with
              | Ast.Extern -> Ast.Extern
              | Ast.Machine m -> Ast.Machine (strip_machine m)) })
        n.Ast.processes;
    channels =
      List.map (fun (c : Ast.channel_decl) -> { c with Ast.c_pos = zero_pos }) n.Ast.channels;
    priorities = List.map (fun (a, b, _) -> (a, b, zero_pos)) n.Ast.priorities;
    ios = List.map (fun (io : Ast.io_decl) -> { io with Ast.io_pos = zero_pos }) n.Ast.ios;
  }

(* integer-only expressions over declared variables: generated machines
   must both elaborate AND evaluate without type errors *)
let rec int_expr_gen n_vars depth =
  let open QCheck2.Gen in
  let leaf =
    if n_vars = 0 then map (fun n -> Ast.Lit (Ast.L_int n)) (int_range 0 50)
    else
      oneof
        [
          map (fun n -> Ast.Lit (Ast.L_int n)) (int_range 0 50);
          map (fun i -> Ast.Var (Printf.sprintf "v%d" (i mod n_vars))) (int_range 0 9);
        ]
  in
  if depth = 0 then leaf
  else
    oneof
      [
        leaf;
        map (fun e -> Ast.Unop (Ast.Neg, e)) (int_expr_gen n_vars (depth - 1));
        map3
          (fun op a b -> Ast.Binop (op, a, b))
          (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
          (int_expr_gen n_vars (depth - 1))
          (int_expr_gen n_vars (depth - 1));
      ]

let machine_gen =
  QCheck2.Gen.(
    let* n_vars = int_range 0 2 in
    let* exprs = list_size (int_range 1 2) (int_expr_gen n_vars 2) in
    let vars = List.init n_vars (fun i -> (Printf.sprintf "v%d" i, Ast.L_int i)) in
    let exprs = if n_vars = 0 then [] else exprs in
    let actions =
      List.mapi (fun i e -> Ast.Assign (Printf.sprintf "v%d" (i mod (max 1 n_vars)), e)) exprs
    in
    return
      {
        Ast.vars;
        locations =
          [
            {
              Ast.loc_name = "main";
              transitions =
                [ { Ast.guard = Ast.Lit (Ast.L_bool true); actions; goto = "main"; t_pos = zero_pos } ];
            };
          ];
      })

let network_gen =
  QCheck2.Gen.(
    let* n_procs = int_range 1 4 in
    let* machines = list_repeat n_procs machine_gen in
    let* dense = float_bound_inclusive 1.0 in
    let name i = Printf.sprintf "P%d" i in
    let processes =
      List.mapi
        (fun i m ->
          {
            Ast.p_name = name i;
            event =
              Ast.Periodic
                { burst = 1; period = Rt_util.Rat.of_int ((i + 1) * 100);
                  deadline = Rt_util.Rat.of_int ((i + 1) * 100) };
            wcet = (if i mod 2 = 0 then Some (Rt_util.Rat.of_int 5) else None);
            behavior = Ast.Machine m;
            p_pos = zero_pos;
          })
        machines
    in
    let channels, priorities =
      let cs = ref [] and ps = ref [] in
      for i = 0 to n_procs - 1 do
        for j = i + 1 to n_procs - 1 do
          if dense > 0.5 || j = i + 1 then begin
            cs :=
              {
                Ast.c_name = Printf.sprintf "c%d_%d" i j;
                kind = (if (i + j) mod 2 = 0 then Fppn.Channel.Fifo else Fppn.Channel.Blackboard);
                writer = name i;
                reader = name j;
                init = (if j mod 3 = 0 then Some (Ast.L_int 0) else None);
                c_pos = zero_pos;
              }
              :: !cs;
            ps := (name i, name j, zero_pos) :: !ps
          end
        done
      done;
      (List.rev !cs, List.rev !ps)
    in
    return
      {
        Ast.n_name = "gen";
        processes;
        channels;
        priorities;
        ios = [ { Ast.io_name = "out0"; io_owner = name 0; dir = Ast.Out; io_pos = zero_pos } ];
      })

let prop_network_roundtrip =
  qprop "printed networks re-parse to the same AST (modulo positions)" ~count:80
    network_gen
    (fun ast ->
      let printed = Printer.to_string ast in
      strip_network (Parser.parse printed) = strip_network ast)

let prop_generated_networks_elaborate =
  qprop "generated network ASTs elaborate and run" ~count:40 network_gen
    (fun ast ->
      let net = Elaborate.to_network ast in
      let res =
        Fppn.Semantics.run net
          (Fppn.Semantics.invocations ~horizon:(Rt_util.Rat.of_int 200) net)
      in
      List.length res.Fppn.Semantics.job_counts = Fppn.Network.n_processes net)

(* robustness: arbitrary input never escapes the documented exceptions *)
let prop_parser_total =
  qprop "parser raises only its documented errors on random input" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\x20' '\x7e') (int_range 0 60))
    (fun s ->
      match Parser.parse s with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true)

let prop_lexer_total =
  qprop "lexer is total up to Lexer.Error" ~count:300
    QCheck2.Gen.(string_size (int_range 0 80))
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Lexer.Error _ -> true)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "comments and strings" `Quick test_lexer_comments_strings;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
          Alcotest.test_case "error positions" `Quick test_parse_errors_have_positions;
          Alcotest.test_case "network" `Quick test_parse_network;
          Alcotest.test_case "sporadic syntax" `Quick test_sporadic_event_syntax;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "run a parsed program" `Quick test_elaborate_and_run;
          Alcotest.test_case "errors" `Quick test_elaborate_errors;
          Alcotest.test_case "sensor_fusion example" `Quick test_sensor_fusion_example;
        ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          prop_expr_roundtrip;
          prop_network_roundtrip;
          prop_generated_networks_elaborate;
          prop_parser_total;
          prop_lexer_total;
        ] );
    ]
