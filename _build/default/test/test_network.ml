module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal
let nop _ = ()

let periodic ?(burst = 1) name period =
  Process.make ~name
    ~event:(Event.periodic ~burst ~period:(ms period) ~deadline:(ms period) ())
    (Process.Native nop)

let sporadic ?(burst = 1) ?deadline name period =
  let deadline = match deadline with Some d -> ms d | None -> ms (2 * period) in
  Process.make ~name
    ~event:(Event.sporadic ~burst ~min_period:(ms period) ~deadline ())
    (Process.Native nop)

(* two periodic processes with one channel and one priority edge *)
let tiny () =
  let b = Network.Builder.create "tiny" in
  Network.Builder.add_process b (periodic "A" 100);
  Network.Builder.add_process b (periodic "B" 200);
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"A" ~reader:"B" "c";
  Network.Builder.add_priority b "A" "B";
  b

let test_build_ok () =
  let net = Network.Builder.finish_exn (tiny ()) in
  Alcotest.(check int) "2 processes" 2 (Network.n_processes net);
  Alcotest.(check int) "A index" 0 (Network.find net "A");
  Alcotest.(check bool) "A higher priority" true
    (Network.higher_priority net 0 1);
  Alcotest.(check bool) "related either way" true (Network.related net 1 0);
  Alcotest.(check bool) "rank order" true
    (Network.fp_rank net 0 < Network.fp_rank net 1);
  Alcotest.check rat "hyperperiod" (ms 200) (Network.hyperperiod net);
  Alcotest.(check int) "one channel between" 1
    (List.length (Network.channels_between net 0 1))

let expect_errors b expected =
  match Network.Builder.finish b with
  | Ok _ -> Alcotest.fail "expected validation errors"
  | Error errs ->
    let strings =
      List.map (fun e -> Format.asprintf "%a" Network.pp_error e) errs
    in
    List.iter
      (fun needle ->
        if
          not
            (List.exists
               (fun s ->
                 (* substring check *)
                 let nl = String.length needle and sl = String.length s in
                 let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
                 scan 0)
               strings)
        then
          Alcotest.failf "missing error %S among [%s]" needle
            (String.concat "; " strings))
      expected

let test_duplicate_process () =
  let b = tiny () in
  Network.Builder.add_process b (periodic "A" 100);
  expect_errors b [ "duplicate process \"A\"" ]

let test_unknown_process () =
  let b = tiny () in
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"A" ~reader:"Ghost" "g";
  expect_errors b [ "unknown process \"Ghost\"" ]

let test_duplicate_channel () =
  let b = tiny () in
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"B" ~reader:"A" "c";
  expect_errors b [ "duplicate channel \"c\"" ]

let test_self_channel () =
  let b = tiny () in
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"A" ~reader:"A" "self";
  expect_errors b [ "connects a process to itself" ]

let test_priority_cycle () =
  let b = tiny () in
  Network.Builder.add_priority b "B" "A";
  expect_errors b [ "functional priority cycle" ]

let test_missing_priority () =
  let b = Network.Builder.create "nopr" in
  Network.Builder.add_process b (periodic "A" 100);
  Network.Builder.add_process b (periodic "B" 100);
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"A" ~reader:"B" "c";
  expect_errors b [ "no functional priority between" ]

let test_empty_network () =
  expect_errors (Network.Builder.create "empty") [ "network has no processes" ]

let test_duplicate_io () =
  let b = tiny () in
  Network.Builder.add_input b ~owner:"A" "in";
  Network.Builder.add_input b ~owner:"B" "in";
  expect_errors b [ "duplicate external channel \"in\"" ]

(* --- user map (scheduling subclass, Sec. III-A) ----------------------- *)

let with_sporadic ~user_period ~sporadic_period ~deadline () =
  let b = Network.Builder.create "sub" in
  Network.Builder.add_process b (periodic "U" user_period);
  Network.Builder.add_process b (sporadic ~deadline "S" sporadic_period);
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S"
    ~reader:"U" "cfg";
  Network.Builder.add_priority b "S" "U";
  Network.Builder.finish_exn b

let test_user_map_ok () =
  let net = with_sporadic ~user_period:100 ~sporadic_period:300 ~deadline:600 () in
  match Network.user_map net with
  | Error _ -> Alcotest.fail "expected Ok"
  | Ok users ->
    Alcotest.(check (option int)) "U has no user" None users.(Network.find net "U");
    Alcotest.(check (option int)) "S's user is U"
      (Some (Network.find net "U"))
      users.(Network.find net "S")

let test_user_map_no_user () =
  let b = Network.Builder.create "nouser" in
  Network.Builder.add_process b (periodic "U" 100);
  Network.Builder.add_process b (sporadic "S" 300);
  (* no channel: S has no user *)
  let net = Network.Builder.finish_exn b in
  match Network.user_map net with
  | Ok _ -> Alcotest.fail "expected error"
  | Error [ Network.No_user "S" ] -> ()
  | Error _ -> Alcotest.fail "expected No_user"

let test_user_map_period_too_large () =
  let net = with_sporadic ~user_period:500 ~sporadic_period:300 ~deadline:600 () in
  match Network.user_map net with
  | Ok _ -> Alcotest.fail "expected error"
  | Error [ Network.User_period_too_large { sporadic = "S"; user = "U" } ] -> ()
  | Error _ -> Alcotest.fail "expected User_period_too_large"

let test_user_map_ambiguous () =
  let b = Network.Builder.create "ambig" in
  Network.Builder.add_process b (periodic "U1" 100);
  Network.Builder.add_process b (periodic "U2" 100);
  Network.Builder.add_process b (sporadic "S" 300);
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S" ~reader:"U1" "c1";
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S" ~reader:"U2" "c2";
  Network.Builder.add_priority b "S" "U1";
  Network.Builder.add_priority b "S" "U2";
  let net = Network.Builder.finish_exn b in
  match Network.user_map net with
  | Error [ Network.Ambiguous_user ("S", [ "U1"; "U2" ]) ] -> ()
  | _ -> Alcotest.fail "expected Ambiguous_user"

let test_user_map_sporadic_user () =
  let b = Network.Builder.create "spuser" in
  Network.Builder.add_process b (periodic "P" 100);
  Network.Builder.add_process b (sporadic "S1" 200);
  Network.Builder.add_process b (sporadic "S2" 400);
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S2" ~reader:"S1" "c";
  Network.Builder.add_priority b "S2" "S1";
  let net = Network.Builder.finish_exn b in
  match Network.user_map net with
  | Error errs ->
    Alcotest.(check bool) "mentions sporadic user" true
      (List.exists
         (function Network.Sporadic_user _ -> true | _ -> false)
         errs)
  | Ok _ -> Alcotest.fail "expected error"

(* --- rendering, I/O accessors ----------------------------------------- *)

let test_io_and_dot () =
  let b = tiny () in
  Network.Builder.add_input b ~owner:"A" "ext_in";
  Network.Builder.add_output b ~owner:"B" "ext_out";
  let net = Network.Builder.finish_exn b in
  Alcotest.(check int) "one input" 1 (List.length (Network.inputs net));
  Alcotest.(check int) "one output" 1 (List.length (Network.outputs net));
  Alcotest.(check int) "io of A" 1 (List.length (Network.io_of net "A"));
  let dot = Network.to_dot net in
  List.iter
    (fun needle ->
      let nl = String.length needle and sl = String.length dot in
      let rec scan i = i + nl <= sl && (String.sub dot i nl = needle || scan (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "dot mentions %s" needle) true (scan 0))
    [ "digraph"; "\"A\""; "\"B\""; "ext_in"; "fifo" ]

let test_fig1_shape () =
  (* structural checks against the paper's Fig. 1 *)
  let net = Fppn_apps.Fig1.network () in
  Alcotest.(check int) "7 processes" 7 (Network.n_processes net);
  Alcotest.(check int) "7 internal channels" 7 (List.length (Network.channels net));
  let coefb = Network.process net (Network.find net "CoefB") in
  Alcotest.(check bool) "CoefB sporadic" true (Process.is_sporadic coefb);
  Alcotest.(check int) "CoefB burst 2" 2 (Process.burst coefb);
  Alcotest.check rat "CoefB min period 700" (ms 700) (Process.period coefb);
  Alcotest.check rat "hyperperiod 200 excluding sporadic periods via lcm"
    (ms 1400)
    (Network.hyperperiod net);
  match Network.user_map net with
  | Error _ -> Alcotest.fail "Fig.1 is in the scheduling subclass"
  | Ok users ->
    Alcotest.(check (option int)) "CoefB's user is FilterB"
      (Some (Network.find net "FilterB"))
      users.(Network.find net "CoefB")

let () =
  Alcotest.run "network"
    [
      ( "builder",
        [
          Alcotest.test_case "valid build" `Quick test_build_ok;
          Alcotest.test_case "duplicate process" `Quick test_duplicate_process;
          Alcotest.test_case "unknown process" `Quick test_unknown_process;
          Alcotest.test_case "duplicate channel" `Quick test_duplicate_channel;
          Alcotest.test_case "self channel" `Quick test_self_channel;
          Alcotest.test_case "priority cycle" `Quick test_priority_cycle;
          Alcotest.test_case "missing priority" `Quick test_missing_priority;
          Alcotest.test_case "empty network" `Quick test_empty_network;
          Alcotest.test_case "duplicate io" `Quick test_duplicate_io;
        ] );
      ( "user-map",
        [
          Alcotest.test_case "ok" `Quick test_user_map_ok;
          Alcotest.test_case "no user" `Quick test_user_map_no_user;
          Alcotest.test_case "period too large" `Quick test_user_map_period_too_large;
          Alcotest.test_case "ambiguous" `Quick test_user_map_ambiguous;
          Alcotest.test_case "sporadic user" `Quick test_user_map_sporadic_user;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "io and dot" `Quick test_io_and_dot;
          Alcotest.test_case "fig1 shape" `Quick test_fig1_shape;
        ] );
    ]
