module A = Fppn.Automaton
module V = Fppn.Value

let value = Alcotest.testable V.pp V.equal

(* A tiny store-backed environment for direct eval/run tests. *)
let make_env ?(channels = []) vars =
  let store = Hashtbl.create 8 in
  List.iter (fun (x, v) -> Hashtbl.replace store x v) vars;
  let chans = Hashtbl.create 8 in
  List.iter (fun (c, vs) -> Hashtbl.replace chans c (ref vs)) channels;
  let written = ref [] in
  let env =
    {
      A.lookup = (fun x -> try Hashtbl.find store x with Not_found -> V.Absent);
      assign = (fun x v -> Hashtbl.replace store x v);
      read_channel =
        (fun c ->
          match Hashtbl.find_opt chans c with
          | Some ({ contents = v :: rest } as r) ->
            r := rest;
            v
          | _ -> V.Absent);
      write_channel = (fun c v -> written := (c, v) :: !written);
    }
  in
  (env, store, written)

let test_eval_arithmetic () =
  let lookup = function "x" -> V.Int 6 | "y" -> V.Float 0.5 | _ -> V.Absent in
  let check expr expected label =
    Alcotest.check value label expected (A.eval lookup expr)
  in
  check (A.Add (A.Var "x", A.Const (V.Int 1))) (V.Int 7) "int add";
  check (A.Mul (A.Var "x", A.Var "y")) (V.Float 3.0) "mixed mul widens";
  check (A.Neg (A.Var "x")) (V.Int (-6)) "neg";
  check (A.Mod (A.Var "x", A.Const (V.Int 4))) (V.Int 2) "mod";
  check (A.Lt (A.Var "y", A.Const (V.Float 1.0))) (V.Bool true) "lt";
  check (A.Avail "x") (V.Bool true) "avail on present";
  check (A.Avail "zz") (V.Bool false) "avail on absent";
  check
    (A.And (A.Const (V.Bool true), A.Not (A.Const (V.Bool false))))
    (V.Bool true) "boolean ops"

let test_eval_type_errors () =
  let lookup _ = V.Bool true in
  Alcotest.(check bool) "adding booleans raises" true
    (try
       ignore (A.eval lookup (A.Add (A.Var "a", A.Var "b")));
       false
     with Invalid_argument _ -> true)

(* Counter automaton: one job run increments x and emits it. *)
let counter =
  A.make ~initial:"l0"
    ~vars:[ ("x", V.Int 0) ]
    ~transitions:
      [
        {
          A.src = "l0";
          guard = A.Const (V.Bool true);
          actions =
            [ A.Assign ("x", A.Add (A.Var "x", A.Const (V.Int 1))); A.Write ("out", A.Var "x") ];
          dst = "l0";
        };
      ]

let test_run_job_counter () =
  let env, store, written = make_env [ ("x", V.Int 0) ] in
  let steps = A.run_job counter env in
  Alcotest.(check int) "one step per run" 1 steps;
  ignore (A.run_job counter env);
  ignore (A.run_job counter env);
  Alcotest.check value "x incremented thrice" (V.Int 3) (Hashtbl.find store "x");
  Alcotest.(check (list (pair string value)))
    "writes in order"
    [ ("out", V.Int 1); ("out", V.Int 2); ("out", V.Int 3) ]
    (List.rev !written)

(* Two-location automaton with a guarded branch: models an 'if'. *)
let brancher =
  A.make ~initial:"start"
    ~vars:[ ("x", V.Int 0); ("big", V.Bool false) ]
    ~transitions:
      [
        {
          A.src = "start";
          guard = A.Const (V.Bool true);
          actions = [ A.Read ("x", "in") ];
          dst = "decide";
        };
        {
          A.src = "decide";
          guard = A.Lt (A.Const (V.Int 10), A.Var "x");
          actions = [ A.Assign ("big", A.Const (V.Bool true)); A.Write ("out", A.Var "x") ];
          dst = "start";
        };
        {
          A.src = "decide";
          guard = A.Le (A.Var "x", A.Const (V.Int 10));
          actions = [ A.Assign ("big", A.Const (V.Bool false)) ];
          dst = "start";
        };
      ]

let test_run_job_branching () =
  let env, store, written =
    make_env ~channels:[ ("in", [ V.Int 42; V.Int 3 ]) ]
      [ ("x", V.Int 0); ("big", V.Bool false) ]
  in
  let steps = A.run_job brancher env in
  Alcotest.(check int) "two steps" 2 steps;
  Alcotest.check value "took the big branch" (V.Bool true) (Hashtbl.find store "big");
  Alcotest.(check int) "one write" 1 (List.length !written);
  ignore (A.run_job brancher env);
  Alcotest.check value "small branch on second job" (V.Bool false)
    (Hashtbl.find store "big")

let test_stuck () =
  let a =
    A.make ~initial:"l0" ~vars:[]
      ~transitions:
        [
          {
            A.src = "l0";
            guard = A.Const (V.Bool true);
            actions = [];
            dst = "dead_end";
          };
        ]
  in
  let env, _, _ = make_env [] in
  Alcotest.check_raises "stuck in dead_end" (A.Stuck "dead_end") (fun () ->
      ignore (A.run_job a env))

let test_step_bound () =
  (* l0 -> l1 -> l1 -> ... never returns to l0 *)
  let a =
    A.make ~initial:"l0" ~vars:[]
      ~transitions:
        [
          { A.src = "l0"; guard = A.Const (V.Bool true); actions = []; dst = "l1" };
          { A.src = "l1"; guard = A.Const (V.Bool true); actions = []; dst = "l1" };
        ]
  in
  let env, _, _ = make_env [] in
  Alcotest.check_raises "non-terminating job"
    (Invalid_argument "Automaton.run_job: step bound exceeded (non-terminating job?)")
    (fun () -> ignore (A.run_job ~max_steps:50 a env))

let test_static_checks () =
  Alcotest.(check bool) "undeclared variable rejected" true
    (try
       ignore
         (A.make ~initial:"l0" ~vars:[]
            ~transitions:
              [
                {
                  A.src = "l0";
                  guard = A.Var "ghost";
                  actions = [];
                  dst = "l0";
                };
              ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "initial location must have an exit" true
    (try
       ignore (A.make ~initial:"l0" ~vars:[] ~transitions:[]);
       false
     with Invalid_argument _ -> true)

let test_introspection () =
  Alcotest.(check (list string)) "locations" [ "start"; "decide" ] (A.locations brancher);
  Alcotest.(check (list string)) "channels read" [ "in" ] (A.channels_read brancher);
  Alcotest.(check (list string)) "channels written" [ "out" ] (A.channels_written brancher)

(* Automaton process embedded in a network must behave like a native
   process: this exercises Instance + Netstate with the Automaton path. *)
let test_automaton_in_network () =
  let module Network = Fppn.Network in
  let module Process = Fppn.Process in
  let module Event = Fppn.Event in
  let ms = Rt_util.Rat.of_int in
  let b = Network.Builder.create "auto-net" in
  Network.Builder.add_process b
    (Process.make ~name:"Counter"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Automaton counter));
  Network.Builder.add_process b
    (Process.make ~name:"Sink"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native
          (fun ctx -> ctx.Process.write "sunk" (ctx.Process.read "out"))));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"Counter"
    ~reader:"Sink" "out";
  Network.Builder.add_priority b "Counter" "Sink";
  Network.Builder.add_output b ~owner:"Sink" "sunk";
  let net = Network.Builder.finish_exn b in
  let inv = Fppn.Semantics.invocations ~horizon:(ms 300) net in
  let res = Fppn.Semantics.run net inv in
  Alcotest.(check (list value))
    "automaton output flows through the network"
    [ V.Int 1; V.Int 2; V.Int 3 ]
    (List.assoc "sunk" res.Fppn.Semantics.output_history)

let () =
  Alcotest.run "automaton"
    [
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arithmetic;
          Alcotest.test_case "type errors" `Quick test_eval_type_errors;
        ] );
      ( "run",
        [
          Alcotest.test_case "counter" `Quick test_run_job_counter;
          Alcotest.test_case "branching" `Quick test_run_job_branching;
          Alcotest.test_case "stuck" `Quick test_stuck;
          Alcotest.test_case "step bound" `Quick test_step_bound;
        ] );
      ( "static",
        [
          Alcotest.test_case "checks" `Quick test_static_checks;
          Alcotest.test_case "introspection" `Quick test_introspection;
        ] );
      ( "integration",
        [ Alcotest.test_case "automaton in network" `Quick test_automaton_in_network ] );
    ]
