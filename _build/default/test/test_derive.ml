module Rat = Rt_util.Rat
module Network = Fppn.Network
module Process = Fppn.Process
module Event = Fppn.Event
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

let fig1_derived () =
  Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ())

let label g i = Job.label (Graph.job g i)

let find g lbl =
  let n = Graph.n_jobs g in
  let rec scan i =
    if i >= n then Alcotest.failf "job %s not found" lbl
    else if label g i = lbl then i
    else scan (i + 1)
  in
  scan 0

(* --- Fig. 3 reproduction ---------------------------------------------- *)

let test_fig3_job_set () =
  let d = fig1_derived () in
  let g = d.Derive.graph in
  Alcotest.check rat "hyperperiod 200" (ms 200) d.Derive.hyperperiod;
  Alcotest.(check int) "10 jobs as in Fig. 3" 10 (Graph.n_jobs g);
  let labels = List.sort String.compare (List.init 10 (label g)) in
  Alcotest.(check (list string)) "job labels"
    (List.sort String.compare
       [
         "InputA[1]"; "FilterA[1]"; "FilterA[2]"; "FilterB[1]"; "OutputA[1]";
         "NormA[1]"; "CoefB[1]"; "CoefB[2]"; "OutputB[1]"; "OutputB[2]";
       ])
    labels

let test_fig3_job_params () =
  let d = fig1_derived () in
  let g = d.Derive.graph in
  let check lbl a dl =
    let j = Graph.job g (find g lbl) in
    Alcotest.check rat (lbl ^ " arrival") (ms a) j.Job.arrival;
    Alcotest.check rat (lbl ^ " deadline") (ms dl) j.Job.deadline;
    Alcotest.check rat (lbl ^ " wcet") (ms 25) j.Job.wcet
  in
  (* exactly the (A_i, D_i, C_i) annotations of Fig. 3 *)
  check "InputA[1]" 0 200;
  check "FilterA[1]" 0 100;
  check "FilterA[2]" 100 200;
  check "OutputA[1]" 0 200;
  check "NormA[1]" 0 200;
  check "FilterB[1]" 0 200;
  check "OutputB[1]" 0 100;
  check "OutputB[2]" 100 200;
  (* CoefB's server deadline d_p − T_u = 500 truncated to H = 200 *)
  check "CoefB[1]" 0 200;
  check "CoefB[2]" 0 200

let test_fig3_server_info () =
  let d = fig1_derived () in
  let net = Fppn_apps.Fig1.network () in
  match d.Derive.servers with
  | [ s ] ->
    Alcotest.(check string) "server is CoefB" "CoefB"
      (Process.name (Network.process net s.Derive.sporadic));
    Alcotest.(check string) "user is FilterB" "FilterB"
      (Process.name (Network.process net s.Derive.user));
    Alcotest.check rat "server period = user period" (ms 200) s.Derive.server_period;
    Alcotest.check rat "corrected deadline 700-200" (ms 500)
      s.Derive.server_relative_deadline;
    Alcotest.(check bool) "CoefB -> FilterB means closed-right window" true
      s.Derive.boundary_closed_right
  | l -> Alcotest.failf "expected 1 server, got %d" (List.length l)

let test_fig3_edges () =
  let d = fig1_derived () in
  let g = d.Derive.graph in
  let e a b = Graph.has_edge g (find g a) (find g b) in
  (* edges present in Fig. 3 *)
  Alcotest.(check bool) "InputA->FilterA" true (e "InputA[1]" "FilterA[1]");
  Alcotest.(check bool) "InputA->FilterB" true (e "InputA[1]" "FilterB[1]");
  Alcotest.(check bool) "CoefB[1]->CoefB[2]" true (e "CoefB[1]" "CoefB[2]");
  Alcotest.(check bool) "server jobs precede the user job" true
    (e "CoefB[2]" "FilterB[1]");
  Alcotest.(check bool) "FilterB->OutputB" true (e "FilterB[1]" "OutputB[1]");
  Alcotest.(check bool) "OutputB chain" true (e "OutputB[1]" "OutputB[2]");
  (* the InputA->NormA edge is redundant (path via FilterA) and removed *)
  Alcotest.(check bool) "InputA->NormA removed by transitive reduction" false
    (e "InputA[1]" "NormA[1]");
  Alcotest.(check bool) "but reachability retained" true
    (Rt_util.Digraph.path_exists (Graph.dag g) (find g "InputA[1]")
       (find g "NormA[1]"));
  Alcotest.(check bool) "reduction removed edges" true
    (d.Derive.raw_edges > Graph.n_edges g)

let test_reduce_flag () =
  let net = Fppn_apps.Fig1.network () in
  let with_red = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let without = Derive.derive_exn ~reduce:false ~wcet:Fppn_apps.Fig1.wcet net in
  Alcotest.(check int) "raw edge count preserved" without.Derive.raw_edges
    (Graph.n_edges without.Derive.graph);
  Alcotest.(check bool) "reduced has fewer edges" true
    (Graph.n_edges with_red.Derive.graph < Graph.n_edges without.Derive.graph);
  (* same reachability *)
  let cg = Rt_util.Digraph.transitive_closure (Graph.dag with_red.Derive.graph)
  and cu = Rt_util.Digraph.transitive_closure (Graph.dag without.Derive.graph) in
  Alcotest.(check bool) "same transitive closure" true
    (Array.for_all2 Rt_util.Bitset.equal cg cu)

(* --- footnote 3: fractional server period ------------------------------ *)

let footnote3_net () =
  let b = Network.Builder.create "fn3" in
  let nop _ = () in
  Network.Builder.add_process b
    (Process.make ~name:"U"
       ~event:(Event.periodic ~period:(ms 200) ~deadline:(ms 200) ())
       (Process.Native nop));
  (* deadline 150 <= user period 200: the plain server deadline would be
     negative, so the server period must drop to 200/2 = 100 *)
  Network.Builder.add_process b
    (Process.make ~name:"S"
       ~event:(Event.sporadic ~min_period:(ms 300) ~deadline:(ms 150) ())
       (Process.Native nop));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S" ~reader:"U" "c";
  Network.Builder.add_priority b "S" "U";
  Network.Builder.finish_exn b

let test_footnote3_fractional_server () =
  let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 1)) (footnote3_net ()) in
  match d.Derive.servers with
  | [ s ] ->
    Alcotest.check rat "server period halved" (ms 100) s.Derive.server_period;
    Alcotest.check rat "positive corrected deadline" (ms 50)
      s.Derive.server_relative_deadline;
    (* two server slots per hyperperiod (200/100), burst 1 each *)
    let g = d.Derive.graph in
    let server_jobs =
      List.length (Graph.jobs_of_process g s.Derive.sporadic)
    in
    Alcotest.(check int) "two server jobs" 2 server_jobs
  | _ -> Alcotest.fail "expected one server"

let test_footnote3_boundary_deadline () =
  (* d = T_u exactly: the plain correction would be zero, so the server
     period halves; with burst 2 the slot count doubles accordingly *)
  let b = Network.Builder.create "fn3b" in
  let nop _ = () in
  Network.Builder.add_process b
    (Process.make ~name:"U"
       ~event:(Event.periodic ~period:(ms 200) ~deadline:(ms 200) ())
       (Process.Native nop));
  Network.Builder.add_process b
    (Process.make ~name:"S"
       ~event:(Event.sporadic ~burst:2 ~min_period:(ms 400) ~deadline:(ms 200) ())
       (Process.Native nop));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S" ~reader:"U" "c";
  Network.Builder.add_priority b "U" "S";
  let net = Network.Builder.finish_exn b in
  let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 1)) net in
  match d.Derive.servers with
  | [ s ] ->
    Alcotest.check rat "server period 100 (= 200/2)" (ms 100) s.Derive.server_period;
    Alcotest.check rat "corrected deadline 100" (ms 100) s.Derive.server_relative_deadline;
    Alcotest.(check bool) "U -> S means open-right window" false
      s.Derive.boundary_closed_right;
    (* burst 2 x (200/100) slots *)
    Alcotest.(check int) "four server jobs" 4
      (List.length (Graph.jobs_of_process d.Derive.graph s.Derive.sporadic))
  | _ -> Alcotest.fail "expected one server"

(* --- errors ------------------------------------------------------------ *)

let test_subclass_error () =
  let b = Network.Builder.create "bad" in
  let nop _ = () in
  Network.Builder.add_process b
    (Process.make ~name:"P"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native nop));
  Network.Builder.add_process b
    (Process.make ~name:"S"
       ~event:(Event.sporadic ~min_period:(ms 500) ~deadline:(ms 1000) ())
       (Process.Native nop));
  let net = Network.Builder.finish_exn b in
  match Derive.derive ~wcet:(Derive.const_wcet Rat.one) net with
  | Error (Derive.Subclass _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected a Subclass error"

(* --- total order and edge-rule invariants ------------------------------ *)

let test_order_is_sorted () =
  let d = fig1_derived () in
  let g = d.Derive.graph in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "ascending arrival along <J" true
        Rat.((Graph.job g a).Job.arrival <= (Graph.job g b).Job.arrival);
      check rest
    | [ _ ] | [] -> ()
  in
  check d.Derive.order

let qprop name ?(count = 40) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let random_net_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* n_periodic = int_range 1 6 in
    let* n_sporadic = int_range 0 3 in
    return
      {
        Fppn_apps.Randgen.default_params with
        seed;
        n_periodic;
        n_sporadic;
        channel_density = 0.5;
      })

let derive_random params =
  let net = Fppn_apps.Randgen.network params in
  let wcet =
    Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 10) (Derive.const_wcet Rat.one) net
  in
  (net, Derive.derive_exn ~wcet net)

let prop_jobs_within_hyperperiod =
  qprop "all jobs arrive within [0,H) and deadlines are truncated"
    random_net_gen (fun params ->
      let _, d = derive_random params in
      let g = d.Derive.graph in
      Array.for_all
        (fun j ->
          Rat.sign j.Job.arrival >= 0
          && Rat.(j.Job.arrival < d.Derive.hyperperiod)
          && Rat.(j.Job.deadline <= d.Derive.hyperperiod)
          && Rat.(j.Job.arrival < j.Job.deadline))
        (Graph.jobs g))

let prop_job_counts =
  qprop "every process contributes burst * H/T jobs" random_net_gen
    (fun params ->
      let net, d = derive_random params in
      let g = d.Derive.graph in
      List.for_all
        (fun p ->
          let proc = Network.process net p in
          let expected =
            let period =
              match Derive.server_of d p with
              | Some s -> s.Derive.server_period
              | None -> Process.period proc
            in
            Process.burst proc
            * Rat.to_int_exn (Rat.div d.Derive.hyperperiod period)
          in
          List.length (Graph.jobs_of_process g p) = expected)
        (List.init (Network.n_processes net) Fun.id))

let prop_edges_follow_the_total_order =
  qprop "edges point forward in <J; same-process jobs stay chained"
    random_net_gen (fun params ->
      let net, d = derive_random params in
      let g = d.Derive.graph in
      (* job ids are assigned along <J, so every edge must go forward *)
      List.for_all (fun (a, b) -> a < b) (Graph.edges g)
      &&
      (* same-process jobs are totally ordered by reachability *)
      List.for_all
        (fun p ->
          let rec chain = function
            | a :: (b :: _ as rest) ->
              Rt_util.Digraph.path_exists (Graph.dag g) a b && chain rest
            | [ _ ] | [] -> true
          in
          chain (Graph.jobs_of_process g p))
        (List.init (Network.n_processes net) Fun.id))

let prop_graph_acyclic =
  qprop "derived task graph is a DAG" random_net_gen (fun params ->
      let _, d = derive_random params in
      Rt_util.Digraph.is_acyclic (Graph.dag d.Derive.graph))

let () =
  Alcotest.run "derive"
    [
      ( "fig3",
        [
          Alcotest.test_case "job set" `Quick test_fig3_job_set;
          Alcotest.test_case "job parameters" `Quick test_fig3_job_params;
          Alcotest.test_case "server transformation" `Quick test_fig3_server_info;
          Alcotest.test_case "edges" `Quick test_fig3_edges;
          Alcotest.test_case "reduce flag" `Quick test_reduce_flag;
        ] );
      ( "servers",
        [
          Alcotest.test_case "footnote-3 fractional period" `Quick
            test_footnote3_fractional_server;
          Alcotest.test_case "footnote-3 boundary deadline" `Quick
            test_footnote3_boundary_deadline;
          Alcotest.test_case "subclass violation" `Quick test_subclass_error;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "total order sorted" `Quick test_order_is_sorted;
          prop_jobs_within_hyperperiod;
          prop_job_counts;
          prop_edges_follow_the_total_order;
          prop_graph_acyclic;
        ] );
    ]
